//! Efficiency analysis: how many test patterns are enough? (paper Fig 7)
//!
//! For each candidate pattern count `k`, the detector is truncated to its
//! first `k` patterns, the confidence distance of every fault model in a
//! campaign is recomputed, and the across-model standard deviation of the
//! distance estimate is reported. A method is *efficient* if this std
//! converges at small `k` — the paper finds O-TP stable at 10 patterns
//! while AET needs ~150 images.

use crate::detect::Detector;
use crate::stability::series_stats;
use healthmon_faults::FaultModel;
use healthmon_nn::Network;

/// One row of the efficiency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyPoint {
    /// Number of patterns used.
    pub patterns: usize,
    /// Across-fault-model std of the top-ranked confidence distance.
    pub std_top_ranked: f32,
    /// Across-fault-model std of the all-class confidence distance.
    pub std_all_classes: f32,
    /// Across-fault-model mean of the all-class confidence distance.
    pub mean_all_classes: f32,
}

/// Sweeps pattern counts and returns the efficiency curve.
///
/// `counts` must be ascending and bounded by the detector's pattern-set
/// size. Each point runs a full campaign of `campaign_size` fault models
/// (the same models for every count, so the curve isolates the effect of
/// `k`).
///
/// # Panics
///
/// Panics if `counts` is empty, not ascending, or exceeds the pattern
/// count.
pub fn pattern_count_sweep(
    detector: &Detector,
    golden_net: &Network,
    fault: &FaultModel,
    campaign_size: usize,
    seed: u64,
    counts: &[usize],
) -> Vec<EfficiencyPoint> {
    assert!(!counts.is_empty(), "need at least one pattern count");
    assert!(
        counts.windows(2).all(|w| w[0] < w[1]),
        "pattern counts must be strictly ascending"
    );
    assert!(
        *counts.last().expect("non-empty") <= detector.patterns().len(),
        "count {} exceeds pattern-set size {}",
        counts.last().expect("non-empty"),
        detector.patterns().len()
    );
    counts
        .iter()
        .map(|&k| {
            let truncated = detector.truncated(k);
            let distances = truncated.campaign_distances(golden_net, fault, campaign_size, seed);
            let top: Vec<f32> = distances.iter().map(|d| d.top_ranked).collect();
            let all: Vec<f32> = distances.iter().map(|d| d.all_classes).collect();
            let all_stats = series_stats(&all);
            EfficiencyPoint {
                patterns: k,
                std_top_ranked: series_stats(&top).std,
                std_all_classes: all_stats.std,
                mean_all_classes: all_stats.mean,
            }
        })
        .collect()
}

/// The smallest pattern count whose std is within `tolerance` (relative)
/// of the largest-count std — the "converged" count of the paper's Fig 7
/// discussion. Returns the last count if none converge earlier.
///
/// # Panics
///
/// Panics if `curve` is empty or `tolerance` is negative.
pub fn converged_count(curve: &[EfficiencyPoint], tolerance: f32) -> usize {
    assert!(!curve.is_empty(), "empty efficiency curve");
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    let asymptote = curve.last().expect("non-empty").std_all_classes;
    for point in curve {
        if (point.std_all_classes - asymptote).abs() <= tolerance * asymptote.max(f32::EPSILON) {
            return point.patterns;
        }
    }
    curve.last().expect("non-empty").patterns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::TestPatternSet;
    use healthmon_nn::models::tiny_mlp;
    use healthmon_tensor::{SeededRng, Tensor};

    fn setup() -> (Network, Detector) {
        let mut rng = SeededRng::new(1);
        let net = tiny_mlp(8, 16, 4, &mut rng);
        let patterns =
            TestPatternSet::new("rand", Tensor::rand_uniform(&[30, 8], 0.0, 1.0, &mut rng));
        let det = Detector::new(&net, patterns);
        (net, det)
    }

    #[test]
    fn sweep_shape_and_counts() {
        let (net, det) = setup();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.3 };
        let curve = pattern_count_sweep(&det, &net, &fault, 10, 3, &[5, 10, 20, 30]);
        assert_eq!(curve.len(), 4);
        assert_eq!(curve[0].patterns, 5);
        assert_eq!(curve[3].patterns, 30);
        assert!(curve.iter().all(|p| p.std_all_classes >= 0.0));
        assert!(curve.iter().all(|p| p.mean_all_classes > 0.0));
    }

    #[test]
    fn deterministic() {
        let (net, det) = setup();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.3 };
        let a = pattern_count_sweep(&det, &net, &fault, 8, 3, &[5, 15]);
        let b = pattern_count_sweep(&det, &net, &fault, 8, 3, &[5, 15]);
        assert_eq!(a, b);
    }

    #[test]
    fn converged_count_finds_plateau() {
        let curve = vec![
            EfficiencyPoint { patterns: 5, std_top_ranked: 0.0, std_all_classes: 0.10, mean_all_classes: 0.1 },
            EfficiencyPoint { patterns: 10, std_top_ranked: 0.0, std_all_classes: 0.052, mean_all_classes: 0.1 },
            EfficiencyPoint { patterns: 20, std_top_ranked: 0.0, std_all_classes: 0.050, mean_all_classes: 0.1 },
        ];
        assert_eq!(converged_count(&curve, 0.1), 10);
        assert_eq!(converged_count(&curve, 0.0001), 20);
        assert_eq!(converged_count(&curve, 2.0), 5);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_unsorted_counts() {
        let (net, det) = setup();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.3 };
        pattern_count_sweep(&det, &net, &fault, 4, 3, &[10, 5]);
    }

    #[test]
    #[should_panic(expected = "exceeds pattern-set size")]
    fn rejects_oversized_count() {
        let (net, det) = setup();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.3 };
        pattern_count_sweep(&det, &net, &fault, 4, 3, &[10, 50]);
    }
}
