//! Cross-backend equivalence and live-analog-state regression tests.
//!
//! The contract under test: an [`AnalogBackend`] configured with exact
//! cells (`cell_bits = 0`), ideal converters, zero write noise and no IR
//! drop computes **bit-identical** logits to the plain digital network —
//! on real paper-scale architectures, not just toy matrices. And the
//! other direction: faults injected into *live* crossbar state (stuck
//! cells, drift) must invalidate the cached differential conductances and
//! change what the concurrent-test detector observes.

use healthmon::{BackendSpec, CrossbarConfig, Detector, InferenceBackend, TestPatternSet};
use healthmon_nn::models::{convnet7, lenet5, tiny_mlp};
use healthmon_reram::{AnalogBackend, CellFault};
use healthmon_tensor::{SeededRng, Tensor};

/// Exact-mode analog spec large enough for every paper-scale layer
/// (crossbars allocate the actual matrix shape, not the tile geometry).
fn exact_spec() -> BackendSpec {
    BackendSpec::analog(CrossbarConfig { rows: 4096, cols: 4096, ..CrossbarConfig::exact() })
}

fn assert_bitwise_eq(digital: &Tensor, analog: &Tensor, what: &str) {
    assert_eq!(digital.shape(), analog.shape(), "{what}: shape mismatch");
    for (i, (d, a)) in digital.as_slice().iter().zip(analog.as_slice()).enumerate() {
        assert_eq!(
            d.to_bits(),
            a.to_bits(),
            "{what}: logit {i} diverges (digital {d} vs analog {a})"
        );
    }
}

#[test]
fn exact_analog_is_bit_identical_to_digital_on_lenet5() {
    let mut rng = SeededRng::new(11);
    let net = lenet5(&mut rng);
    let images = Tensor::rand_uniform(&[4, 1, 28, 28], 0.0, 1.0, &mut rng);
    let backend = AnalogBackend::program(&net, &exact_spec(), &mut rng);
    assert_bitwise_eq(&net.infer(&images), &backend.infer(&images), "lenet5");
}

#[test]
fn exact_analog_is_bit_identical_to_digital_on_convnet7() {
    let mut rng = SeededRng::new(12);
    let net = convnet7(&mut rng);
    let images = Tensor::rand_uniform(&[3, 3, 32, 32], 0.0, 1.0, &mut rng);
    let backend = AnalogBackend::program(&net, &exact_spec(), &mut rng);
    assert_bitwise_eq(&net.infer(&images), &backend.infer(&images), "convnet7");
}

#[test]
fn exact_analog_readback_matches_digital_weights() {
    let mut rng = SeededRng::new(13);
    let net = lenet5(&mut rng);
    let backend = AnalogBackend::program(&net, &exact_spec(), &mut rng);
    let digital = net.state_dict();
    let readback = backend.readback().state_dict();
    for ((dk, dt), (rk, rt)) in digital.iter().zip(&readback) {
        assert_eq!(dk, rk);
        for (d, r) in dt.as_slice().iter().zip(rt.as_slice()) {
            // Exact mode programs -0.0 as +0.0; everything else is
            // bit-preserved.
            if *d == 0.0 && *r == 0.0 {
                continue;
            }
            assert_eq!(d.to_bits(), r.to_bits(), "`{dk}` diverges in read-back");
        }
    }
}

/// Regression for the PR 2 conductance cache: mutating *live* analog
/// state (stuck cells, drift) between detector evaluations must
/// invalidate the cached differential matrices, so the detector sees the
/// aged device — not a stale snapshot from before the fault.
#[test]
fn live_analog_faults_change_detection_responses() {
    let mut rng = SeededRng::new(21);
    let net = tiny_mlp(16, 32, 4, &mut rng);
    let patterns =
        TestPatternSet::new("t", Tensor::rand_uniform(&[8, 16], 0.0, 1.0, &mut rng));
    let detector = Detector::new(&net, patterns);

    let spec = BackendSpec::analog(CrossbarConfig::exact());
    let mut backend = AnalogBackend::program(&net, &spec, &mut rng);

    // Freshly programmed exact-mode backend: indistinguishable from the
    // golden network. This evaluation also populates the conductance
    // cache — the point of the test is that the mutations below evict it.
    let d0 = detector.confidence_distance(&backend);
    assert_eq!(d0.all_classes, 0.0, "exact analog baseline must match golden");

    backend.inject_stuck_cells(CellFault::StuckLow, 0.10, &mut rng);
    let d1 = detector.confidence_distance(&backend);
    let r1 = detector.responses(&backend);
    assert!(
        d1.all_classes > 0.0,
        "stuck cells on live conductances must move the detector (got {d1:?})"
    );

    backend.drift(0.5, 1.0, &mut rng);
    let d2 = detector.confidence_distance(&backend);
    let r2 = detector.responses(&backend);
    assert_ne!(r1, r2, "drift after stuck cells must change the responses again");
    assert!(d2.all_classes > 0.0, "drifted device must stay distinguishable (got {d2:?})");
}

/// The same live-fault visibility holds end-to-end through the monitor's
/// verdict, not just the raw distances.
#[test]
fn live_analog_faults_flip_the_verdict() {
    use healthmon::SdcCriterion;
    let mut rng = SeededRng::new(22);
    let net = tiny_mlp(16, 32, 4, &mut rng);
    let patterns =
        TestPatternSet::new("t", Tensor::rand_uniform(&[8, 16], 0.0, 1.0, &mut rng));
    let detector = Detector::new(&net, patterns);
    let spec = BackendSpec::analog(CrossbarConfig::exact());
    let mut backend = AnalogBackend::program(&net, &spec, &mut rng);
    let criterion = SdcCriterion::SdcA { threshold: 1e-4 };
    assert!(!detector.is_faulty(&backend, criterion), "fresh exact backend is healthy");
    backend.inject_stuck_cells(CellFault::StuckHigh, 0.25, &mut rng);
    assert!(detector.is_faulty(&backend, criterion), "injured backend must be flagged");
}
