use crate::{Scalar, SeededRng, Shape, TensorError};

/// A dense, contiguous, row-major tensor over a sealed [`Scalar`] element
/// type.
///
/// The f32 instantiation — aliased back to [`Tensor`] — is the single
/// numeric container used throughout the workspace: network weights,
/// activations, gradients, images, and logits are all tensors. It is
/// deliberately simple — owned contiguous storage, no views, no
/// broadcasting beyond what the explicit ops provide — which keeps the
/// fault-injection and crossbar-mapping code easy to audit.
///
/// Structural operations (construction, indexing, reshape, map/zip,
/// transpose) live on this generic type; float numerics (matmul, stats,
/// random sampling) stay on the concrete [`Tensor`] alias so the f32
/// world keeps its bit-exact reproducibility contract. [`TensorI8`] is
/// the quantized integer instantiation.
///
/// # Example
///
/// ```
/// use healthmon_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// # Ok::<(), healthmon_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GenericTensor<S: Scalar> {
    shape: Shape,
    data: Vec<S>,
}

/// The f32 tensor — the workspace's default numeric world.
pub type Tensor = GenericTensor<f32>;

/// The quantized 8-bit integer tensor (see [`Tensor::quantize_i8`]).
pub type TensorI8 = GenericTensor<i8>;

impl<S: Scalar> GenericTensor<S> {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let shape = Shape::from(shape);
        let len = shape.len();
        GenericTensor { shape, data: vec![S::ZERO; len] }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, S::ONE)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: S) -> Self {
        let shape = Shape::from(shape);
        let len = shape.len();
        GenericTensor { shape, data: vec![value; len] }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not
    /// equal the product of `shape`.
    pub fn from_vec(data: Vec<S>, shape: &[usize]) -> Result<Self, TensorError> {
        if shape.is_empty() {
            return Err(TensorError::EmptyShape);
        }
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::LengthMismatch { expected, actual: data.len() });
        }
        Ok(GenericTensor { shape: Shape::from(shape), data })
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice(data: &[S]) -> Self {
        GenericTensor { shape: Shape::new(vec![data.len().max(1)]), data: data.to_vec() }
    }

    /// The tensor's shape extents.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The tensor's shape as a [`Shape`].
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true: shapes have
    /// non-zero extents).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<S> {
        self.data
    }

    /// Overwrites this tensor's elements with `src`'s, reusing the
    /// existing allocation (the in-place counterpart of cloning).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, src: &Self) {
        assert_eq!(
            self.shape(),
            src.shape(),
            "copy_from shape mismatch: {:?} vs {:?}",
            self.shape(),
            src.shape()
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any component is out of bounds.
    pub fn at(&self, index: &[usize]) -> S {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any component is out of bounds.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut S {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() || shape.is_empty() {
            return Err(TensorError::ReshapeMismatch {
                from: self.shape.dims().to_vec(),
                to: shape.to_vec(),
            });
        }
        Ok(GenericTensor { shape: Shape::from(shape), data: self.data.clone() })
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(S) -> S) -> Self {
        GenericTensor { shape: self.shape.clone(), data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(S) -> S) {
        for v in self.data.iter_mut() {
            *v = f(*v);
        }
    }

    /// Combines two same-shape tensors element-wise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Self, f: impl Fn(S, S) -> S) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "zip_map shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        GenericTensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Extracts row `row` of a 2-D tensor as a new 1-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `row` is out of bounds.
    pub fn row(&self, row: usize) -> Self {
        assert_eq!(self.ndim(), 2, "row() requires a 2-D tensor, got {}", self.shape);
        let cols = self.shape.dim(1);
        let start = row * cols;
        Self::from_slice(&self.data[start..start + cols])
    }

    /// Copies `src` (1-D, length = columns) into row `row` of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible or `row` is out of bounds.
    pub fn set_row(&mut self, row: usize, src: &Self) {
        assert_eq!(self.ndim(), 2, "set_row() requires a 2-D tensor, got {}", self.shape);
        let cols = self.shape.dim(1);
        assert_eq!(src.len(), cols, "row length {} != column count {cols}", src.len());
        let start = row * cols;
        self.data[start..start + cols].copy_from_slice(src.as_slice());
    }

    /// Stacks 1-D tensors of equal length into a 2-D tensor (rows).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or lengths differ.
    pub fn stack_rows(rows: &[Self]) -> Self {
        assert!(!rows.is_empty(), "stack_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "stack_rows length mismatch");
            data.extend_from_slice(r.as_slice());
        }
        GenericTensor { shape: Shape::new(vec![rows.len(), cols]), data }
    }

    /// Transposes a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Self {
        assert_eq!(self.ndim(), 2, "transpose() requires a 2-D tensor, got {}", self.shape);
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Self::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Widens every element to `f32`, exactly (see [`Scalar::to_f32`]).
    pub fn cast_f32(&self) -> Tensor {
        GenericTensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| v.to_f32()).collect(),
        }
    }
}

impl Tensor {
    /// Samples every element i.i.d. from the standard normal distribution.
    pub fn randn(shape: &[usize], rng: &mut SeededRng) -> Self {
        let mut t = Tensor::zeros(shape);
        for v in t.data.iter_mut() {
            *v = rng.normal(0.0, 1.0);
        }
        t
    }

    /// Samples every element i.i.d. uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut SeededRng) -> Self {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "invalid uniform bounds [{lo}, {hi})");
        let mut t = Tensor::zeros(shape);
        for v in t.data.iter_mut() {
            *v = rng.uniform(lo, hi);
        }
        t
    }

    /// Clamps every element into `[lo, hi]` in place.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp_inplace(&mut self, lo: f32, hi: f32) {
        assert!(lo <= hi, "clamp bounds inverted: [{lo}, {hi}]");
        self.map_inplace(|v| v.clamp(lo, hi));
    }

    /// Whether every element is finite (no NaN, no ±∞).
    ///
    /// Fault-injected weights and saturated accumulations can poison
    /// activations with non-finite values; the detection pipeline uses
    /// this guard so such devices escalate deterministically instead of
    /// slipping past NaN comparisons.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Quantizes to [`TensorI8`] with the symmetric affine map
    /// `code = round(v / scale)`, saturating to `[-128, 127]`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a finite positive number.
    pub fn quantize_i8(&self, scale: f32) -> TensorI8 {
        assert!(scale.is_finite() && scale > 0.0, "quantize_i8 scale must be finite positive, got {scale}");
        GenericTensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| i8::from_f32(v / scale)).collect(),
        }
    }
}

impl TensorI8 {
    /// Reverses [`Tensor::quantize_i8`]: `v = code * scale`, exact up to
    /// the one f32 multiply (every `i8` is exactly representable).
    pub fn dequantize(&self, scale: f32) -> Tensor {
        GenericTensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&c| c as f32 * scale).collect(),
        }
    }
}

impl<S: Scalar> Default for GenericTensor<S> {
    /// A single-element zero tensor.
    fn default() -> Self {
        Self::zeros(&[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let o = Tensor::ones(&[4]);
        assert!(o.as_slice().iter().all(|&v| v == 1.0));
        let f = Tensor::full(&[2, 2], 3.5);
        assert_eq!(f.at(&[1, 1]), 3.5);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        let err = Tensor::from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
        assert_eq!(err, TensorError::LengthMismatch { expected: 6, actual: 5 });
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.at(&[2, 1]), 5.0);
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        *t.at_mut(&[1, 2, 3]) = 7.0;
        assert_eq!(t.at(&[1, 2, 3]), 7.0);
        assert_eq!(t.as_slice()[23], 7.0);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        assert_eq!(a.map(|v| v * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!(a.zip_map(&b, |x, y| x + y).as_slice(), &[11.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_map_rejects_mismatch() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        a.zip_map(&b, |x, _| x);
    }

    #[test]
    fn rows() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(t.row(1).as_slice(), &[3.0, 4.0, 5.0]);
        let mut t2 = t.clone();
        t2.set_row(0, &Tensor::from_slice(&[9.0, 9.0, 9.0]));
        assert_eq!(t2.row(0).as_slice(), &[9.0, 9.0, 9.0]);
        let stacked = Tensor::stack_rows(&[t.row(0), t.row(1)]);
        assert_eq!(stacked, t);
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transpose();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(&[0, 1]), 4.0);
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn clamp() {
        let mut t = Tensor::from_vec(vec![-2.0, 0.5, 3.0], &[3]).unwrap();
        t.clamp_inplace(0.0, 1.0);
        assert_eq!(t.as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn randn_deterministic_from_seed() {
        let mut r1 = SeededRng::new(7);
        let mut r2 = SeededRng::new(7);
        assert_eq!(Tensor::randn(&[8], &mut r1), Tensor::randn(&[8], &mut r2));
    }

    #[test]
    fn rand_uniform_in_bounds() {
        let mut rng = SeededRng::new(1);
        let t = Tensor::rand_uniform(&[100], -0.5, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn i8_tensor_constructors_and_structure() {
        let z = TensorI8::zeros(&[2, 3]);
        assert!(z.as_slice().iter().all(|&v| v == 0));
        let o = TensorI8::ones(&[4]);
        assert!(o.as_slice().iter().all(|&v| v == 1));
        let t = TensorI8::from_vec(vec![1, -2, 3, -4, 5, -6], &[2, 3]).unwrap();
        assert_eq!(t.at(&[1, 0]), -4);
        assert_eq!(t.row(1).as_slice(), &[-4, 5, -6]);
        let tt = t.transpose();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(&[0, 1]), -4);
        assert_eq!(t.reshape(&[6]).unwrap().as_slice(), t.as_slice());
        assert_eq!(t.map(|v| v.saturating_neg()).at(&[0, 1]), 2);
        let err = TensorI8::from_vec(vec![0; 5], &[2, 3]).unwrap_err();
        assert_eq!(err, TensorError::LengthMismatch { expected: 6, actual: 5 });
    }

    #[test]
    fn quantize_dequantize_round_trip() {
        let t = Tensor::from_vec(vec![-1.0, -0.25, 0.0, 0.26, 0.5, 10.0], &[6]).unwrap();
        let q = t.quantize_i8(0.25);
        assert_eq!(q.as_slice(), &[-4, -1, 0, 1, 2, 40]);
        let back = q.dequantize(0.25);
        assert_eq!(back.as_slice(), &[-1.0, -0.25, 0.0, 0.25, 0.5, 10.0]);
        // Saturation at the i8 rails.
        let hot = Tensor::from_slice(&[1000.0, -1000.0]).quantize_i8(1.0);
        assert_eq!(hot.as_slice(), &[127, -128]);
    }

    #[test]
    fn cast_f32_is_exact_for_i8() {
        let q = TensorI8::from_vec(vec![-128, -1, 0, 1, 127], &[5]).unwrap();
        assert_eq!(q.cast_f32().as_slice(), &[-128.0, -1.0, 0.0, 1.0, 127.0]);
        assert_eq!(q.cast_f32().shape(), q.shape());
    }
}
