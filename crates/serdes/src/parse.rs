//! A recursive-descent JSON parser.
//!
//! Accepts standard JSON (RFC 8259). Errors report the byte offset of the
//! failure. Weight snapshots can be tens of megabytes of numbers, so the
//! number fast path avoids allocation.

use crate::error::JsonError;
use crate::value::Json;

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`JsonError::Parse`] (with byte offset) on malformed input or
/// trailing garbage.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after top-level value"));
    }
    Ok(value)
}

/// Nesting deeper than this is rejected rather than risking a stack
/// overflow on adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError::Parse { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH}")));
        }
        let out = match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected byte `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        };
        self.depth -= 1;
        out
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar; the input is a &str, so
                    // byte boundaries are always valid.
                    let rest = &self.bytes[self.pos..];
                    let ch_len = utf8_len(rest[0]);
                    let s = std::str::from_utf8(&rest[..ch_len])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos += ch_len;
                }
            }
        }
    }

    /// Parses the 4 hex digits of a `\uXXXX` escape (cursor already past
    /// the `u`), handling surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a low surrogate must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.error("unpaired surrogate"));
                }
                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"));
            }
            return Err(self.error("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.error("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.error("expected 4 hex digits")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        let n: f64 = text.parse().map_err(|_| self.error("unparseable number"))?;
        Ok(Json::Number(n))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("3").unwrap(), Json::Number(3.0));
        assert_eq!(parse("-2.5e2").unwrap(), Json::Number(-250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parses_containers() {
        let v = parse("{\"a\": [1, 2, {\"b\": null}], \"c\": false}").unwrap();
        assert_eq!(v.field("c").unwrap(), &Json::Bool(false));
        let arr = v.field("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].field("b").unwrap(), &Json::Null);
    }

    #[test]
    fn parses_empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Object(vec![]));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(parse(r#""a\nb\t\"c\"""#).unwrap(), Json::String("a\nb\t\"c\"".into()));
        assert_eq!(parse(r#""é""#).unwrap(), Json::String("é".into()));
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(parse(r#""😀""#).unwrap(), Json::String("😀".into()));
        assert_eq!(parse("\"héllo\"").unwrap(), Json::String("héllo".into()));
    }

    #[test]
    fn render_parse_round_trip() {
        let src = Json::Object(vec![
            ("weights".into(), Json::Array(vec![Json::Number(0.125), Json::Number(-3.0)])),
            ("name".into(), Json::String("layer0.weight".into())),
            ("ok".into(), Json::Bool(true)),
        ]);
        assert_eq!(parse(&src.render()).unwrap(), src);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "tru", "[1,", "{\"a\"}", "{\"a\":}", "01x", "\"abc", "[1] extra", "nul"] {
            assert!(parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn rejects_unpaired_surrogates() {
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ud83dA""#).is_err());
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn error_reports_offset() {
        match parse("[1, x]") {
            Err(JsonError::Parse { offset, .. }) => assert_eq!(offset, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
