//! `SynthDigits`: a procedural 28×28 grayscale digit dataset standing in
//! for MNIST.
//!
//! Each class renders a seven-segment digit glyph with per-sample random
//! affine jitter (rotation, scale, translation), stroke-width and
//! intensity variation, occasional segment weakening, and pixel noise.
//! The jitter is tuned so classes overlap slightly — a trained LeNet-5
//! sits in the high-90s, the regime the paper's MNIST experiments occupy,
//! and genuine "corner data" (samples near decision boundaries) exist for
//! C-TP to find.

use crate::draw::Canvas;
use crate::{DataSplit, Dataset, DatasetSpec};
use healthmon_tensor::{SeededRng, Tensor};

/// Image side length.
pub const SIDE: usize = 28;
/// Number of digit classes.
pub const CLASSES: usize = 10;

/// Seven-segment identifiers, indexed A..G = 0..6.
/// Segment endpoints on a canonical `[0,1]²` glyph box:
/// A top, B top-right, C bottom-right, D bottom, E bottom-left,
/// F top-left, G middle.
const SEGMENTS: [((f32, f32), (f32, f32)); 7] = [
    ((0.1, 0.0), (0.9, 0.0)), // A
    ((1.0, 0.1), (1.0, 0.45)), // B
    ((1.0, 0.55), (1.0, 0.9)), // C
    ((0.1, 1.0), (0.9, 1.0)), // D
    ((0.0, 0.55), (0.0, 0.9)), // E
    ((0.0, 0.1), (0.0, 0.45)), // F
    ((0.1, 0.5), (0.9, 0.5)), // G
];

/// Which segments are lit for each digit 0–9.
const DIGIT_SEGMENTS: [&[usize]; 10] = [
    &[0, 1, 2, 3, 4, 5],       // 0: ABCDEF
    &[1, 2],                   // 1: BC
    &[0, 1, 6, 4, 3],          // 2: ABGED
    &[0, 1, 6, 2, 3],          // 3: ABGCD
    &[5, 6, 1, 2],             // 4: FGBC
    &[0, 5, 6, 2, 3],          // 5: AFGCD
    &[0, 5, 6, 4, 3, 2],       // 6: AFGEDC
    &[0, 1, 2],                // 7: ABC
    &[0, 1, 2, 3, 4, 5, 6],    // 8: all
    &[0, 1, 2, 3, 5, 6],       // 9: ABCDFG
];

/// Generator for the synthetic digit dataset.
///
/// # Example
///
/// ```
/// use healthmon_data::{DatasetSpec, SynthDigits};
///
/// let spec = DatasetSpec { train: 100, test: 20, seed: 3, ..Default::default() };
/// let split = SynthDigits::new(spec).generate();
/// assert_eq!(split.test.images.shape(), &[20, 1, 28, 28]);
/// assert!(split.train.labels.iter().all(|&l| l < 10));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SynthDigits {
    spec: DatasetSpec,
}

impl SynthDigits {
    /// Creates a generator from a spec.
    pub fn new(spec: DatasetSpec) -> Self {
        SynthDigits { spec }
    }

    /// Renders one digit sample into a fresh `[1, 28, 28]` tensor.
    pub fn render(digit: usize, noise: f32, rng: &mut SeededRng) -> Tensor {
        assert!(digit < CLASSES, "digit {digit} out of range");
        let mut img = Tensor::zeros(&[1, SIDE, SIDE]);

        // Per-sample appearance jitter.
        let scale_x = rng.uniform(10.0, 14.0); // glyph half-extent in px
        let scale_y = rng.uniform(16.0, 21.0);
        let cx = SIDE as f32 / 2.0 + rng.uniform(-2.5, 2.5);
        let cy = SIDE as f32 / 2.0 + rng.uniform(-2.0, 2.0);
        let angle = rng.uniform(-0.22, 0.22); // ~±12.5°
        let (sin, cos) = angle.sin_cos();
        let half_width = rng.uniform(0.8, 1.6);
        let base_intensity = rng.uniform(0.7, 1.0);

        {
            let mut canvas = Canvas::new(img.as_mut_slice(), SIDE, SIDE);
            let place = |(gx, gy): (f32, f32)| {
                // Glyph box [0,1]² -> centered, scaled, rotated, translated.
                let x = (gx - 0.5) * scale_x;
                let y = (gy - 0.5) * scale_y;
                (cx + x * cos - y * sin, cy + x * sin + y * cos)
            };
            for &seg in DIGIT_SEGMENTS[digit] {
                let (p0, p1) = SEGMENTS[seg];
                // Occasionally weaken a segment; this is what creates
                // boundary-adjacent "corner data" (a weak-G 8 resembles 0).
                let intensity = if rng.chance(0.18) {
                    base_intensity * rng.uniform(0.3, 0.7)
                } else {
                    base_intensity
                };
                let (x0, y0) = place(p0);
                let (x1, y1) = place(p1);
                canvas.line(x0, y0, x1, y1, half_width, intensity);
            }
        }

        if noise > 0.0 {
            for v in img.as_mut_slice() {
                *v += rng.normal(0.0, noise);
            }
            img.clamp_inplace(0.0, 1.0);
        }
        img
    }

    fn generate_partition(&self, count: usize, rng: &mut SeededRng) -> Dataset {
        let mut images = Tensor::zeros(&[count.max(1), 1, SIDE, SIDE]);
        let mut labels = Vec::with_capacity(count);
        let plane = SIDE * SIDE;
        for i in 0..count {
            let digit = i % CLASSES; // balanced classes
            let sample = Self::render(digit, self.spec.noise, rng);
            images.as_mut_slice()[i * plane..(i + 1) * plane]
                .copy_from_slice(sample.as_slice());
            labels.push(digit);
        }
        Dataset::new(images, labels, CLASSES)
    }

    /// Generates the train/test split described by the spec.
    pub fn generate(&self) -> DataSplit {
        let mut rng = SeededRng::new(self.spec.seed);
        let mut train_rng = rng.fork(1);
        let mut test_rng = rng.fork(2);
        DataSplit {
            train: self.generate_partition(self.spec.train, &mut train_rng),
            test: self.generate_partition(self.spec.test, &mut test_rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_produces_ink_in_range() {
        let mut rng = SeededRng::new(1);
        for digit in 0..10 {
            let img = SynthDigits::render(digit, 0.05, &mut rng);
            assert_eq!(img.shape(), &[1, SIDE, SIDE]);
            assert!(img.max() <= 1.0 && img.min() >= 0.0);
            assert!(img.sum() > 5.0, "digit {digit} rendered almost empty");
        }
    }

    #[test]
    fn distinct_digits_render_differently() {
        // Render without jitter noise dominating: same rng stream, compare
        // mean images of two classes over several samples.
        let mut rng = SeededRng::new(2);
        let mean_img = |d: usize, rng: &mut SeededRng| {
            let mut acc = Tensor::zeros(&[1, SIDE, SIDE]);
            for _ in 0..8 {
                acc += &SynthDigits::render(d, 0.0, rng);
            }
            acc.scale(1.0 / 8.0)
        };
        let m1 = mean_img(1, &mut rng);
        let m8 = mean_img(8, &mut rng);
        assert!(m1.l1_distance(&m8) > 20.0, "digit 1 and 8 should differ substantially");
        // Digit 8 has more segments lit than digit 1.
        assert!(m8.sum() > m1.sum() * 1.5);
    }

    #[test]
    fn generate_is_deterministic() {
        let spec = DatasetSpec { train: 30, test: 10, seed: 9, ..Default::default() };
        let a = SynthDigits::new(spec).generate();
        let b = SynthDigits::new(spec).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn train_and_test_are_different_samples() {
        let spec = DatasetSpec { train: 20, test: 20, seed: 4, ..Default::default() };
        let split = SynthDigits::new(spec).generate();
        assert_ne!(split.train.images, split.test.images);
    }

    #[test]
    fn classes_are_balanced() {
        let spec = DatasetSpec { train: 100, test: 50, seed: 5, ..Default::default() };
        let split = SynthDigits::new(spec).generate();
        let dist = split.train.class_distribution();
        for d in dist {
            assert!((d - 0.1).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_digit() {
        SynthDigits::render(10, 0.0, &mut SeededRng::new(0));
    }
}
