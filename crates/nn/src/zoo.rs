//! The model registry: every architecture the health stack can monitor,
//! addressable by name.
//!
//! Callers that used to hard-code `lenet5`/`convnet7` match arms resolve a
//! [`ModelSpec`] through [`lookup`] instead; the spec carries everything a
//! campaign needs that is not derivable from the built [`Network`] — a
//! stable name, the synthetic [`DataFamily`] the model trains on, and a
//! seeded builder. The registry is a static slice, so adding an
//! architecture is one entry plus one factory function in
//! [`crate::models`]; every CLI subcommand, campaign, and the CI smoke
//! matrix pick it up automatically.

use crate::models;
use crate::Network;
use healthmon_tensor::SeededRng;
use std::fmt;

/// Which synthetic dataset family a model consumes.
///
/// The data crate generates two families: 28×28 single-channel digit
/// images (784 elements per sample) and 32×32 three-channel object images
/// (3072 elements per sample). A model's native input shape may reshape
/// those elements (e.g. `[784]` for MLPs, `[28, 28]` for the attention
/// block) but the element budget must match the family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataFamily {
    /// 28×28×1 synthetic digits, 784 elements per sample.
    Digits,
    /// 32×32×3 synthetic objects, 3072 elements per sample.
    Objects,
}

impl DataFamily {
    /// Elements per sample produced by this family.
    pub fn sample_elems(self) -> usize {
        match self {
            DataFamily::Digits => 28 * 28,
            DataFamily::Objects => 3 * 32 * 32,
        }
    }
}

/// A named, buildable architecture in the zoo.
#[derive(Clone, Copy)]
pub struct ModelSpec {
    /// Registry name, as accepted by `--arch` on the CLI.
    pub name: &'static str,
    /// One-line human description.
    pub description: &'static str,
    /// Per-sample input shape the built network expects.
    pub input_shape: &'static [usize],
    /// Synthetic dataset family the model trains and tests on.
    pub family: DataFamily,
    builder: fn(&mut SeededRng) -> Network,
}

impl ModelSpec {
    /// Builds a freshly initialized network from `rng`. Deterministic:
    /// the same seed always yields the same weights.
    pub fn build(&self, rng: &mut SeededRng) -> Network {
        (self.builder)(rng)
    }
}

impl fmt::Debug for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelSpec")
            .field("name", &self.name)
            .field("input_shape", &self.input_shape)
            .field("family", &self.family)
            .finish_non_exhaustive()
    }
}

fn build_mlp(rng: &mut SeededRng) -> Network {
    models::tiny_mlp(28 * 28, 64, models::NUM_CLASSES, rng)
}

/// Every model in the zoo, in presentation order.
pub const ZOO: &[ModelSpec] = &[
    ModelSpec {
        name: "lenet5",
        description: "classic LeNet-5 CNN (2 conv + 3 fc)",
        input_shape: &[1, 28, 28],
        family: DataFamily::Digits,
        builder: models::lenet5,
    },
    ModelSpec {
        name: "convnet7",
        description: "7-layer CNN (4 conv + 3 fc) for 32x32x3 objects",
        input_shape: &[3, 32, 32],
        family: DataFamily::Objects,
        builder: models::convnet7,
    },
    ModelSpec {
        name: "mlp",
        description: "tiny 784-64-10 MLP baseline",
        input_shape: &[784],
        family: DataFamily::Digits,
        builder: build_mlp,
    },
    ModelSpec {
        name: "resnet8",
        description: "residual CNN with two identity-skip blocks",
        input_shape: &[3, 32, 32],
        family: DataFamily::Objects,
        builder: models::resnet8,
    },
    ModelSpec {
        name: "mlp4",
        description: "pure 4-layer MLP 784-256-128-64-10",
        input_shape: &[784],
        family: DataFamily::Digits,
        builder: models::mlp4,
    },
    ModelSpec {
        name: "attention",
        description: "single-head self-attention classifier over 28 tokens",
        input_shape: &[28, 28],
        family: DataFamily::Digits,
        builder: models::attention_net,
    },
];

/// Requested model name not present in [`ZOO`]. The display message lists
/// every known name so a typo is self-correcting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownModel {
    requested: String,
}

impl fmt::Display for UnknownModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown model `{}` (known models: {})", self.requested, known_models())
    }
}

impl std::error::Error for UnknownModel {}

/// Resolves a registry name to its [`ModelSpec`].
///
/// # Errors
///
/// Returns [`UnknownModel`] — whose message enumerates the whole zoo —
/// when `name` is not registered.
pub fn lookup(name: &str) -> Result<&'static ModelSpec, UnknownModel> {
    ZOO.iter()
        .find(|spec| spec.name == name)
        .ok_or_else(|| UnknownModel { requested: name.to_owned() })
}

/// Comma-separated list of every registered model name.
pub fn known_models() -> String {
    ZOO.iter().map(|spec| spec.name).collect::<Vec<_>>().join("|")
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_tensor::Tensor;

    #[test]
    fn every_spec_builds_and_infers_its_declared_shape() {
        for spec in ZOO {
            let mut rng = SeededRng::new(9);
            let mut net = spec.build(&mut rng);
            assert_eq!(net.input_shape(), spec.input_shape, "{}", spec.name);
            let mut input_shape = vec![2usize];
            input_shape.extend_from_slice(spec.input_shape);
            let logits = net.forward(&Tensor::zeros(&input_shape));
            assert_eq!(logits.shape(), &[2, models::NUM_CLASSES], "{}", spec.name);
            // Input element budget matches the declared dataset family.
            let elems: usize = spec.input_shape.iter().product();
            assert_eq!(elems, spec.family.sample_elems(), "{}", spec.name);
        }
    }

    #[test]
    fn lookup_resolves_and_rejects() {
        assert_eq!(lookup("lenet5").unwrap().name, "lenet5");
        assert_eq!(lookup("attention").unwrap().name, "attention");
        let err = lookup("lennet5").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown model `lennet5`"), "{msg}");
        for spec in ZOO {
            assert!(msg.contains(spec.name), "error must list {}: {msg}", spec.name);
        }
    }

    #[test]
    fn names_are_unique() {
        for (i, a) in ZOO.iter().enumerate() {
            for b in &ZOO[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn builders_are_deterministic() {
        for spec in ZOO {
            let mut a = SeededRng::new(5);
            let mut b = SeededRng::new(5);
            assert_eq!(spec.build(&mut a).state_dict(), spec.build(&mut b).state_dict());
        }
    }

    #[test]
    fn state_dicts_round_trip_through_load() {
        for spec in ZOO {
            let mut rng = SeededRng::new(3);
            let net = spec.build(&mut rng);
            let dict = net.state_dict();
            let mut fresh = spec.build(&mut SeededRng::new(4));
            fresh.load_state_dict(&dict).unwrap();
            assert_eq!(fresh.state_dict(), dict, "{}", spec.name);
        }
    }
}
