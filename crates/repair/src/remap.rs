//! Fault-aware row remapping (the cheap repair).
//!
//! ReRAM accelerators can reorder which logical weight-matrix row is
//! programmed onto which physical word line at negligible cost (it is a
//! routing-table change). Since stuck cells sit at fixed *physical*
//! positions, a good assignment parks high-magnitude logical weights away
//! from defects. This module implements the greedy assignment used by
//! fault-aware remapping proposals (cf. Chen et al., DATE'17, cited by
//! the paper as a repair mechanism).

use crate::defects::{identity, DefectMap};
use healthmon_tensor::Tensor;

/// Result of a row-remapping repair.
#[derive(Debug, Clone, PartialEq)]
pub struct RowRemap {
    /// `assignment[logical_row] = physical_row`.
    pub assignment: Vec<usize>,
    /// L1 weight damage under the identity assignment (no repair).
    pub unrepaired_error: f32,
    /// L1 weight damage under the chosen assignment.
    pub repaired_error: f32,
    /// The weight matrix as the damaged-but-remapped array realizes it.
    pub repaired_weights: Tensor,
}

impl RowRemap {
    /// Fraction of the defect-induced weight error removed by the remap
    /// (1.0 = all damage parked on zero weights; 0.0 = no improvement).
    pub fn recovery(&self) -> f32 {
        if self.unrepaired_error <= f32::EPSILON {
            return 0.0;
        }
        1.0 - self.repaired_error / self.unrepaired_error
    }
}

/// Cost of placing logical row `logical` on physical row `physical`:
/// the L1 weight error its defects would inflict.
fn placement_cost(weights: &Tensor, defects: &DefectMap, logical: usize, physical: usize) -> f32 {
    defects
        .cells_in_row(physical)
        .map(|cell| (weights.at(&[logical, cell.col]) - cell.value).abs())
        .sum()
}

/// Computes a fault-aware logical→physical row assignment for `weights`
/// given the array's `defects`, by greedy assignment: process logical
/// rows in decreasing order of their worst-case exposure, giving each the
/// cheapest remaining physical row.
///
/// The greedy result is guaranteed to be no worse than the identity
/// assignment (it falls back to identity if greedy loses, which can
/// happen on adversarial inputs).
///
/// # Panics
///
/// Panics if `weights` is not 2-D or a defect lies outside the matrix.
pub fn remap_rows(weights: &Tensor, defects: &DefectMap) -> RowRemap {
    assert_eq!(weights.ndim(), 2, "remap operates on 2-D matrices");
    let rows = weights.shape()[0];
    let id = identity(rows);
    let unrepaired_error = defects.damage(weights, &id);

    // Rows with defects, by total stuck-cell count; defect-free physical
    // rows are free parking.
    let mut defective_rows: Vec<usize> =
        (0..rows).filter(|&r| defects.cells_in_row(r).next().is_some()).collect();
    defective_rows.sort_by_key(|&r| std::cmp::Reverse(defects.cells_in_row(r).count()));

    // Order logical rows by how expensive they are on the most defective
    // physical rows (their exposure), assign greedily.
    let mut logical_order: Vec<usize> = (0..rows).collect();
    let exposure = |l: usize| -> f32 {
        defective_rows.iter().map(|&p| placement_cost(weights, defects, l, p)).sum()
    };
    let exposures: Vec<f32> = (0..rows).map(exposure).collect();
    logical_order.sort_by(|&a, &b| {
        exposures[b].partial_cmp(&exposures[a]).unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut assignment = vec![usize::MAX; rows];
    let mut taken = vec![false; rows];
    for &logical in &logical_order {
        let mut best_physical = usize::MAX;
        let mut best_cost = f32::INFINITY;
        for (physical, &is_taken) in taken.iter().enumerate() {
            if is_taken {
                continue;
            }
            let cost = placement_cost(weights, defects, logical, physical);
            if cost < best_cost {
                best_cost = cost;
                best_physical = physical;
            }
        }
        assignment[logical] = best_physical;
        taken[best_physical] = true;
    }

    let mut repaired_error = defects.damage(weights, &assignment);
    // Greedy can in principle lose to identity; never return a
    // worse-than-nothing repair.
    let assignment = if repaired_error <= unrepaired_error {
        assignment
    } else {
        repaired_error = unrepaired_error;
        id
    };
    let repaired_weights = defects.apply_with_assignment(weights, &assignment);
    RowRemap { assignment, unrepaired_error, repaired_error, repaired_weights }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defects::StuckCell;
    use healthmon_tensor::SeededRng;

    #[test]
    fn no_defects_keeps_identity_and_zero_error() {
        let mut rng = SeededRng::new(1);
        let w = Tensor::randn(&[6, 4], &mut rng);
        let repair = remap_rows(&w, &DefectMap::default());
        assert_eq!(repair.unrepaired_error, 0.0);
        assert_eq!(repair.repaired_error, 0.0);
        assert_eq!(repair.repaired_weights, w);
    }

    #[test]
    fn parks_defect_under_small_weight() {
        // Physical row 0 col 0 stuck at 0; logical row 0 has weight 10
        // there, logical row 1 has weight 0.
        let w = Tensor::from_vec(vec![10.0, 1.0, 0.0, 1.0], &[2, 2]).unwrap();
        let defects = DefectMap::new(vec![StuckCell { row: 0, col: 0, value: 0.0 }]);
        let repair = remap_rows(&w, &defects);
        assert_eq!(repair.unrepaired_error, 10.0);
        assert_eq!(repair.repaired_error, 0.0);
        assert_eq!(repair.assignment, vec![1, 0]);
        assert!((repair.recovery() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn never_worse_than_identity_random() {
        let mut rng = SeededRng::new(2);
        for seed in 0..10u64 {
            let mut local = SeededRng::new(seed);
            let w = Tensor::randn(&[12, 8], &mut rng);
            let defects = DefectMap::sample_for_matrix(&w, 0.08, &mut local);
            let repair = remap_rows(&w, &defects);
            assert!(
                repair.repaired_error <= repair.unrepaired_error + 1e-5,
                "seed {seed}: {} > {}",
                repair.repaired_error,
                repair.unrepaired_error
            );
        }
    }

    #[test]
    fn recovery_substantial_on_sparse_defects() {
        // With few defects and many rows, greedy should recover most of
        // the damage in expectation.
        let mut rng = SeededRng::new(3);
        let w = Tensor::randn(&[32, 16], &mut rng);
        let defects = DefectMap::sample_for_matrix(&w, 0.01, &mut rng);
        if defects.is_empty() {
            return;
        }
        let repair = remap_rows(&w, &defects);
        assert!(
            repair.recovery() > 0.3,
            "expected meaningful recovery, got {}",
            repair.recovery()
        );
    }

    #[test]
    fn assignment_is_a_permutation() {
        let mut rng = SeededRng::new(4);
        let w = Tensor::randn(&[10, 10], &mut rng);
        let defects = DefectMap::sample_for_matrix(&w, 0.1, &mut rng);
        let repair = remap_rows(&w, &defects);
        let mut sorted = repair.assignment.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn repaired_weights_match_assignment() {
        let mut rng = SeededRng::new(5);
        let w = Tensor::randn(&[8, 4], &mut rng);
        let defects = DefectMap::sample_for_matrix(&w, 0.1, &mut rng);
        let repair = remap_rows(&w, &defects);
        assert_eq!(
            repair.repaired_weights,
            defects.apply_with_assignment(&w, &repair.assignment)
        );
    }
}
