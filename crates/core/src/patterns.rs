//! Test pattern sets: the deliverable of every generator.

use healthmon_nn::InferenceBackend;
use healthmon_tensor::Tensor;
use healthmon_telemetry as tel;

// Pattern evaluations are counted per batched forward pass; both tallies
// are pure functions of the call sequence (Stable).
static LOGITS_BATCHES: tel::Counter =
    tel::Counter::new("patterns.logits.batches", tel::Stability::Stable);
static LOGITS_PATTERNS: tel::Counter =
    tel::Counter::new("patterns.logits.patterns", tel::Stability::Stable);
static LOGITS_BATCH_ROWS: tel::Histogram =
    tel::Histogram::new("patterns.logits.batch_rows", tel::Stability::Stable);

/// A named set of test patterns (images) shaped for a particular network.
///
/// Stored as one batched tensor `[N, ...sample_shape]` so a whole set is
/// evaluated with a single forward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct TestPatternSet {
    method: String,
    images: Tensor,
}

impl TestPatternSet {
    /// Creates a pattern set from a batched image tensor.
    ///
    /// # Panics
    ///
    /// Panics if `images` has fewer than 2 dimensions (it must be
    /// batched) or `method` is empty.
    pub fn new(method: impl Into<String>, images: Tensor) -> Self {
        let method = method.into();
        assert!(!method.is_empty(), "pattern set needs a method name");
        assert!(images.ndim() >= 2, "pattern images must be batched, got {:?}", images.shape());
        TestPatternSet { method, images }
    }

    /// Creates a pattern set by stacking individual samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or shapes differ.
    pub fn from_samples(method: impl Into<String>, samples: &[Tensor]) -> Self {
        assert!(!samples.is_empty(), "pattern set cannot be empty");
        let sample_shape = samples[0].shape().to_vec();
        let flat: Vec<Tensor> = samples
            .iter()
            .map(|s| {
                assert_eq!(s.shape(), &sample_shape[..], "pattern shapes must agree");
                s.reshape(&[s.len()]).expect("flatten preserves count")
            })
            .collect();
        let stacked = Tensor::stack_rows(&flat);
        let mut shape = vec![samples.len()];
        shape.extend_from_slice(&sample_shape);
        let images = stacked.reshape(&shape).expect("restack preserves count");
        Self::new(method, images)
    }

    /// The generating method's name (`"C-TP"`, `"O-TP"`, `"AET"`, ...).
    pub fn method(&self) -> &str {
        &self.method
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.images.shape()[0]
    }

    /// Whether the set is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The batched image tensor.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// Pattern `index` as an owned sample tensor.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn pattern(&self, index: usize) -> Tensor {
        assert!(index < self.len(), "pattern index {index} out of bounds for {}", self.len());
        let sample_shape = &self.images.shape()[1..];
        let sample_len: usize = sample_shape.iter().product();
        let start = index * sample_len;
        Tensor::from_vec(
            self.images.as_slice()[start..start + sample_len].to_vec(),
            sample_shape,
        )
        .expect("sample slice matches sample shape")
    }

    /// A new set containing only the first `k` patterns (used by the
    /// efficiency analysis).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the set size.
    pub fn truncated(&self, k: usize) -> TestPatternSet {
        assert!(k > 0 && k <= self.len(), "cannot truncate {} patterns to {k}", self.len());
        let sample_len: usize = self.images.shape()[1..].iter().product();
        let mut shape = self.images.shape().to_vec();
        shape[0] = k;
        let images = Tensor::from_vec(
            self.images.as_slice()[..k * sample_len].to_vec(),
            &shape,
        )
        .expect("prefix preserves sample shape");
        TestPatternSet { method: self.method.clone(), images }
    }

    /// Evaluates the set on an execution backend (a plain digital
    /// [`healthmon_nn::Network`], or any analog crossbar backend),
    /// returning the raw logits `[N, classes]`.
    ///
    /// # Panics
    ///
    /// Panics if the pattern shape does not match the network input shape.
    pub fn logits<B: InferenceBackend + ?Sized>(&self, net: &B) -> Tensor {
        LOGITS_BATCHES.inc();
        LOGITS_PATTERNS.add(self.len() as u64);
        LOGITS_BATCH_ROWS.record(self.len() as u64);
        net.infer(&self.images)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_nn::models::tiny_mlp;
    use healthmon_tensor::SeededRng;

    #[test]
    fn from_samples_round_trip() {
        let s0 = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let s1 = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        let set = TestPatternSet::from_samples("test", &[s0.clone(), s1.clone()]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.pattern(0), s0);
        assert_eq!(set.pattern(1), s1);
        assert_eq!(set.method(), "test");
    }

    #[test]
    fn truncated_keeps_prefix() {
        let samples: Vec<Tensor> =
            (0..5).map(|i| Tensor::full(&[4], i as f32)).collect();
        let set = TestPatternSet::from_samples("t", &samples);
        let t = set.truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.pattern(1), samples[1]);
        assert_eq!(t.method(), "t");
    }

    #[test]
    fn logits_shape() {
        let mut rng = SeededRng::new(1);
        let net = tiny_mlp(4, 8, 3, &mut rng);
        let set = TestPatternSet::new("t", Tensor::randn(&[5, 4], &mut rng));
        assert_eq!(set.logits(&net).shape(), &[5, 3]);
    }

    #[test]
    fn multichannel_patterns() {
        let samples: Vec<Tensor> = (0..3).map(|_| Tensor::zeros(&[1, 4, 4])).collect();
        let set = TestPatternSet::from_samples("t", &samples);
        assert_eq!(set.images().shape(), &[3, 1, 4, 4]);
        assert_eq!(set.pattern(0).shape(), &[1, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn rejects_empty() {
        TestPatternSet::from_samples("t", &[]);
    }
}
