//! Uniform quantization shared by the DAC, ADC and cell-programming
//! models.

/// A uniform mid-tread quantizer over a closed range.
///
/// # Example
///
/// ```
/// use healthmon_reram::Quantizer;
///
/// let q = Quantizer::new(0.0, 1.0, 2); // 4 levels: 0, 1/3, 2/3, 1
/// assert_eq!(q.quantize(0.4), 1.0 / 3.0);
/// assert_eq!(q.quantize(0.55), 2.0 / 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    lo: f32,
    hi: f32,
    levels: u32,
}

impl Quantizer {
    /// Creates a quantizer with `2^bits` levels spanning `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bits` is 0 or > 24.
    pub fn new(lo: f32, hi: f32, bits: u32) -> Self {
        assert!(lo < hi, "quantizer range [{lo}, {hi}] inverted");
        assert!((1..=24).contains(&bits), "bits {bits} out of supported range 1..=24");
        Quantizer { lo, hi, levels: 1u32 << bits }
    }

    /// Number of representable levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// The step between adjacent levels.
    pub fn step(&self) -> f32 {
        (self.hi - self.lo) / (self.levels - 1) as f32
    }

    /// Snaps `v` to the nearest representable level (values outside the
    /// range clamp to the endpoints).
    pub fn quantize(&self, v: f32) -> f32 {
        let clamped = v.clamp(self.lo, self.hi);
        let idx = ((clamped - self.lo) / self.step()).round();
        self.lo + idx * self.step()
    }

    /// The level index `v` snaps to.
    pub fn index_of(&self, v: f32) -> u32 {
        let clamped = v.clamp(self.lo, self.hi);
        ((clamped - self.lo) / self.step()).round() as u32
    }

    /// The value of level `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= levels()`.
    pub fn value_of(&self, index: u32) -> f32 {
        assert!(index < self.levels, "level index {index} out of range");
        self.lo + index as f32 * self.step()
    }

    /// Quantizes a slice in place.
    pub fn quantize_slice(&self, values: &mut [f32]) {
        for v in values {
            *v = self.quantize(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_are_exact() {
        let q = Quantizer::new(-1.0, 1.0, 3);
        assert_eq!(q.quantize(-1.0), -1.0);
        assert_eq!(q.quantize(1.0), 1.0);
        assert_eq!(q.quantize(-5.0), -1.0); // clamps
        assert_eq!(q.quantize(5.0), 1.0);
    }

    #[test]
    fn idempotent() {
        let q = Quantizer::new(0.0, 2.0, 4);
        for i in 0..100 {
            let v = i as f32 * 0.02;
            let once = q.quantize(v);
            assert_eq!(q.quantize(once), once);
        }
    }

    #[test]
    fn error_bounded_by_half_step() {
        let q = Quantizer::new(0.0, 1.0, 5);
        let half = q.step() / 2.0;
        for i in 0..=100 {
            let v = i as f32 / 100.0;
            assert!((q.quantize(v) - v).abs() <= half + 1e-6);
        }
    }

    #[test]
    fn index_value_round_trip() {
        let q = Quantizer::new(-2.0, 2.0, 4);
        for idx in 0..q.levels() {
            assert_eq!(q.index_of(q.value_of(idx)), idx);
        }
    }

    #[test]
    fn monotone() {
        let q = Quantizer::new(0.0, 1.0, 3);
        let mut prev = f32::NEG_INFINITY;
        for i in 0..=50 {
            let v = q.quantize(i as f32 / 50.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn slice_quantization() {
        let q = Quantizer::new(0.0, 1.0, 1);
        let mut vals = vec![0.2, 0.7, 0.5];
        q.quantize_slice(&mut vals);
        assert_eq!(vals, vec![0.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn rejects_inverted_range() {
        Quantizer::new(1.0, 0.0, 4);
    }
}
