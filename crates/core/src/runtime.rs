//! The closed-loop self-healing lifetime runtime: detect → diagnose →
//! repair → re-validate under aging.
//!
//! The paper's deployment story is a loop, not a one-shot experiment: a
//! crossbar accelerator ages in the field (drift, disturb, wear-out), a
//! cheap concurrent checkup notices, and a repair hierarchy — remapping,
//! spare columns, cloud retraining, graceful degradation — brings the
//! device back before silent data corruption reaches users.
//! [`LifetimeRuntime`] simulates that whole lifetime deterministically:
//!
//! * **Aging** (per epoch): resistance drift, random soft errors, and
//!   Poisson-arriving stuck cells accumulate on the deployed network.
//! * **Detect**: a [`HealthMonitor`] checkup after every epoch.
//! * **Diagnose**: once the state escalates past the configured trigger,
//!   a [`diagnose`] pass localizes the damage per layer.
//! * **Repair**: escalating attempts — reprogram with fault-aware row
//!   remapping, spare-column substitution, fault-aware retraining, and
//!   finally graceful degradation of the pattern budget — each followed
//!   by a re-validation checkup before the repair is acknowledged.
//! * **Park**: exhausting the repair budget (or an epoch panicking)
//!   parks the runtime in `Critical` with a structured
//!   [`IncidentReport`].
//!
//! The lifetime can run on any execution backend
//! ([`LifetimeConfig::backend`]): the default `digital` backend keeps the
//! device as a weight-space [`Network`] (byte-identical to the historical
//! behaviour), while the `analog` and `bitsliced` backends keep it as
//! live crossbar state — drift ages the conductance planes directly,
//! stuck cells freeze physical cells via
//! [`healthmon_reram::AnalogBackend::stick_cell`], and repairs reprogram
//! layers through the crossbar write path.
//!
//! Everything is a pure function of the inputs: the per-epoch RNG is
//! derived as `SeededRng::new(seed).fork(epoch)`, so a checkpoint needs
//! no RNG state and a resumed run is **bit-identical** to an
//! uninterrupted one.

use crate::confidence::ConfidenceDistance;
use crate::detect::Detector;
use crate::diagnose::{diagnose, Diagnosis};
use crate::error::HealthmonError;
use crate::monitor::{Checkup, HealthMonitor, HealthState, MonitorPolicy, MonitorSnapshot};
use crate::patterns::TestPatternSet;
use healthmon_faults::{sample_cell_arrivals, FaultModel};
use healthmon_nn::{InferenceBackend, Network};
use healthmon_repair::{
    remap_rows, repair_with_spares, retrain_with_faults, DefectMap, FaultyRetrainConfig, StuckCell,
};
use healthmon_reram::{
    deploy, AnalogBackend, BackendKind, BackendSpec, BitSlicedBackend, CrossbarConfig,
    ParityCheck, ScrubOutcome,
};
use healthmon_serdes::{FromJson, Json, JsonError, ToJson};
use healthmon_tensor::{SeededRng, Tensor};
use healthmon_telemetry as tel;
use std::panic::{catch_unwind, AssertUnwindSafe};

// The lifetime is a pure function of (config, golden, patterns), so the
// event-stream tallies are Stable; only the wall-clock histogram is
// scheduling-dependent.
static EV_DEPLOYED: tel::Counter =
    tel::Counter::new("lifetime.events.deployed", tel::Stability::Stable);
static EV_AGED: tel::Counter =
    tel::Counter::new("lifetime.events.aged", tel::Stability::Stable);
static EV_CHECKUP: tel::Counter =
    tel::Counter::new("lifetime.events.checkup", tel::Stability::Stable);
static EV_DIAGNOSED: tel::Counter =
    tel::Counter::new("lifetime.events.diagnosed", tel::Stability::Stable);
static EV_REPAIR: tel::Counter =
    tel::Counter::new("lifetime.events.repair", tel::Stability::Stable);
static EV_DEGRADED: tel::Counter =
    tel::Counter::new("lifetime.events.degraded", tel::Stability::Stable);
static EV_BACKOFF: tel::Counter =
    tel::Counter::new("lifetime.events.backoff", tel::Stability::Stable);
static EV_SCRUBBED: tel::Counter =
    tel::Counter::new("lifetime.events.scrubbed", tel::Stability::Stable);
static EV_PARKED: tel::Counter =
    tel::Counter::new("lifetime.events.parked", tel::Stability::Stable);
static REPAIRS_SUCCEEDED: tel::Counter =
    tel::Counter::new("lifetime.repairs.succeeded", tel::Stability::Stable);
static EPOCH_NS: tel::Histogram =
    tel::Histogram::new("lifetime.epoch_ns", tel::Stability::Volatile);
// Latency attribution across the checkup pipeline (DESIGN.md §7): the
// digital-side phases live here, the converter-side phases
// (phase.dac/accumulate/adc) on the crossbar. All wall-clock, all
// Volatile.
static PHASE_DETECTOR_NS: tel::Histogram =
    tel::Histogram::new("phase.detector_ns", tel::Stability::Volatile);
static PHASE_DIAGNOSE_NS: tel::Histogram =
    tel::Histogram::new("phase.diagnose_ns", tel::Stability::Volatile);
static PHASE_REPAIR_NS: tel::Histogram =
    tel::Histogram::new("phase.repair_ns", tel::Stability::Volatile);

/// The per-kind tally behind the unified [`LifetimeEvent`] stream.
fn event_counter(kind: &str) -> &'static tel::Counter {
    match kind {
        "deployed" => &EV_DEPLOYED,
        "aged" => &EV_AGED,
        "checkup" => &EV_CHECKUP,
        "diagnosed" => &EV_DIAGNOSED,
        "repair" => &EV_REPAIR,
        "degraded" => &EV_DEGRADED,
        "backoff" => &EV_BACKOFF,
        "scrubbed" => &EV_SCRUBBED,
        _ => &EV_PARKED,
    }
}

/// Salt for the reprogram-repair RNG streams, so they never collide with
/// the deploy stream (`fork(0)`) or the per-epoch aging streams
/// (`fork(epoch)`).
const REPROGRAM_SALT: u64 = 0x5EED_0DAC_2020_0001;

/// How the deployed device degrades each epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingModel {
    /// Per-epoch resistance-drift scale (`FaultModel::Drift { nu }`);
    /// zero disables drift.
    pub drift_nu: f32,
    /// Elapsed drift time per epoch.
    pub drift_time: f32,
    /// Per-weight soft-error probability per epoch; zero disables.
    pub soft_error_p: f64,
    /// Expected number of *new* stuck cells arriving per epoch across the
    /// whole device (Poisson); distributed over layers by cell count.
    pub stuck_lambda: f64,
}

impl Default for AgingModel {
    fn default() -> Self {
        AgingModel { drift_nu: 0.01, drift_time: 1.0, soft_error_p: 0.0, stuck_lambda: 0.5 }
    }
}

impl AgingModel {
    fn validate(&self) {
        assert!(
            self.drift_nu.is_finite() && self.drift_nu >= 0.0,
            "drift_nu must be finite and non-negative, got {}",
            self.drift_nu
        );
        assert!(
            self.drift_time.is_finite() && self.drift_time >= 0.0,
            "drift_time must be finite and non-negative, got {}",
            self.drift_time
        );
        assert!(
            (0.0..=1.0).contains(&self.soft_error_p),
            "soft_error_p {} outside [0, 1]",
            self.soft_error_p
        );
        assert!(
            self.stuck_lambda.is_finite() && self.stuck_lambda >= 0.0,
            "stuck_lambda must be finite and non-negative, got {}",
            self.stuck_lambda
        );
    }
}

/// Full configuration of a [`LifetimeRuntime`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeConfig {
    /// Master seed; every RNG stream of the lifetime forks off it.
    pub seed: u64,
    /// Number of aging epochs to simulate.
    pub epochs: usize,
    /// The per-epoch degradation model.
    pub aging: AgingModel,
    /// Thresholds and hysteresis for the health monitor.
    pub policy: MonitorPolicy,
    /// The crossbar hardware the golden model is deployed onto (the
    /// digital deploy path; analog backends carry their own geometry in
    /// [`LifetimeConfig::backend`]).
    pub crossbar: CrossbarConfig,
    /// Execution backend the lifetime runs on. `digital` reproduces the
    /// historical weight-space simulation byte-for-byte; `analog` and
    /// `bitsliced` keep the device as live crossbar state and apply
    /// aging at the conductance level.
    pub backend: BackendSpec,
    /// Online soft-error tolerance: program spare-column parity
    /// alongside the weights and scrub transient conductance flips
    /// in-situ every epoch, before they can accumulate between checkups.
    /// When `false` (the default) every output is byte-identical to the
    /// historical unhardened runtime.
    pub hardened: bool,
    /// Health state at which a repair session starts (must be above
    /// `Healthy`).
    pub trigger: HealthState,
    /// Total repair attempts allowed over the whole lifetime; exhausting
    /// it parks the runtime in `Critical`.
    pub repair_budget: usize,
    /// Spare bit lines provisioned per conductance-mapped layer.
    pub spare_columns: usize,
    /// Epochs to wait after a failed repair session before trying again;
    /// doubles with each consecutive failure.
    pub backoff_epochs: usize,
    /// Graceful degradation floor: the pattern budget is never halved
    /// below this.
    pub min_patterns: usize,
    /// Fault-aware retraining hyperparameters (used only when training
    /// data is supplied).
    pub retrain: FaultyRetrainConfig,
}

impl Default for LifetimeConfig {
    fn default() -> Self {
        LifetimeConfig {
            seed: 0,
            epochs: 10,
            aging: AgingModel::default(),
            policy: MonitorPolicy::default(),
            crossbar: CrossbarConfig::default(),
            backend: BackendSpec::digital(),
            hardened: false,
            trigger: HealthState::Watch,
            repair_budget: 8,
            spare_columns: 2,
            backoff_epochs: 1,
            min_patterns: 2,
            retrain: FaultyRetrainConfig::default(),
        }
    }
}

impl LifetimeConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on a zero epoch count, a `Healthy` trigger, a zero pattern
    /// floor or backoff, or invalid nested policy/aging parameters.
    pub fn validate(&self) {
        self.policy.validate();
        self.aging.validate();
        self.backend.validate();
        assert!(self.epochs > 0, "a lifetime needs at least one epoch");
        assert!(
            self.trigger > HealthState::Healthy,
            "the repair trigger must be Watch or Critical — repairing a healthy device loops forever"
        );
        assert!(self.min_patterns > 0, "the degradation floor must keep at least one pattern");
        assert!(self.backoff_epochs > 0, "backoff must be at least one epoch");
    }

    /// FNV-1a digest of the configuration, stored in checkpoints so a
    /// resume under different parameters is rejected instead of silently
    /// diverging.
    pub fn digest(&self) -> u64 {
        fnv1a(FNV_OFFSET, format!("{self:?}").bytes())
    }
}

/// Labelled training data for the retraining rung of the repair ladder.
#[derive(Debug, Clone)]
pub struct TrainData {
    /// Training inputs, `[n, features...]`.
    pub images: Tensor,
    /// One label per input row.
    pub labels: Vec<usize>,
}

/// One rung of the escalating repair ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairAction {
    /// Rewrite every conductance-mapped layer from the golden copy,
    /// parking known stuck cells via fault-aware row remapping.
    Reprogram,
    /// Substitute spare bit lines for the most damaged columns of the
    /// most suspect layer, then reprogram it.
    Spares,
    /// Fault-aware retraining around the stuck cells (cloud-side).
    Retrain,
    /// Graceful degradation: halve the concurrent-test pattern budget.
    Degrade,
}

impl RepairAction {
    /// Stable lowercase label used by serialized artifacts and reports.
    pub fn label(self) -> &'static str {
        match self {
            RepairAction::Reprogram => "reprogram",
            RepairAction::Spares => "spares",
            RepairAction::Retrain => "retrain",
            RepairAction::Degrade => "degrade",
        }
    }
}

impl ToJson for RepairAction {
    fn to_json(&self) -> Json {
        Json::String(self.label().to_owned())
    }
}

impl FromJson for RepairAction {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str()? {
            "reprogram" => Ok(RepairAction::Reprogram),
            "spares" => Ok(RepairAction::Spares),
            "retrain" => Ok(RepairAction::Retrain),
            "degrade" => Ok(RepairAction::Degrade),
            other => Err(JsonError::invalid(format!("unknown repair action `{other}`"))),
        }
    }
}

/// One entry of the lifetime event log.
#[derive(Debug, Clone, PartialEq)]
pub enum LifetimeEvent {
    /// The golden model was programmed onto the crossbars.
    Deployed {
        /// Crossbar tiles consumed.
        tiles: usize,
        /// Total L1 mapping error of the deployment.
        mapping_error_l1: f32,
    },
    /// One epoch of aging was applied.
    Aged {
        /// The epoch (1-based).
        epoch: usize,
        /// Stuck cells that arrived this epoch.
        new_stuck: usize,
        /// Cumulative stuck cells on the device.
        total_stuck: usize,
    },
    /// A concurrent-test checkup ran.
    CheckupDone {
        /// The epoch (0 = post-deployment baseline).
        epoch: usize,
        /// Observed confidence distance.
        distance: ConfidenceDistance,
        /// Hysteresis-filtered state after the checkup.
        state: HealthState,
    },
    /// A diagnosis pass localized the damage.
    Diagnosed {
        /// The epoch.
        epoch: usize,
        /// State-dict key of the most suspect layer.
        suspect: String,
    },
    /// One rung of the repair ladder was attempted and re-validated.
    RepairAttempted {
        /// The epoch.
        epoch: usize,
        /// Lifetime-cumulative attempt number (1-based).
        attempt: usize,
        /// The rung attempted.
        action: RepairAction,
        /// Health state after the re-validation checkup.
        state_after: HealthState,
        /// Whether the re-validation cleared the trigger.
        success: bool,
    },
    /// The pattern budget was halved (graceful degradation).
    Degraded {
        /// The epoch.
        epoch: usize,
        /// Patterns remaining after the halving.
        patterns: usize,
    },
    /// The online parity scrub caught transient soft errors (hardened
    /// runtimes only).
    Scrubbed {
        /// The epoch.
        epoch: usize,
        /// Corrupted cells restored bitwise in-situ.
        corrected: usize,
        /// Corrupted cells detected but not isolatable; left for the
        /// next checkup/repair cycle.
        uncorrectable: usize,
    },
    /// A failed repair session scheduled a backoff.
    Backoff {
        /// The epoch.
        epoch: usize,
        /// No repair session will start before this epoch.
        until_epoch: usize,
    },
    /// The runtime parked in `Critical`.
    Parked {
        /// The epoch.
        epoch: usize,
        /// Why the runtime parked.
        reason: String,
    },
}

impl LifetimeEvent {
    /// One deterministic human-readable line for reports.
    pub fn describe(&self) -> String {
        match self {
            LifetimeEvent::Deployed { tiles, mapping_error_l1 } => {
                format!("[deploy] {tiles} tiles, mapping error {mapping_error_l1}")
            }
            LifetimeEvent::Aged { epoch, new_stuck, total_stuck } => {
                format!("[epoch {epoch}] aged: +{new_stuck} stuck (total {total_stuck})")
            }
            LifetimeEvent::CheckupDone { epoch, distance, state } => {
                format!(
                    "[epoch {epoch}] checkup: distance {} -> {}",
                    distance.all_classes,
                    state.label()
                )
            }
            LifetimeEvent::Diagnosed { epoch, suspect } => {
                format!("[epoch {epoch}] diagnosis: prime suspect {suspect}")
            }
            LifetimeEvent::RepairAttempted { epoch, attempt, action, state_after, success } => {
                format!(
                    "[epoch {epoch}] repair #{attempt} ({}): {} ({})",
                    action.label(),
                    state_after.label(),
                    if *success { "healed" } else { "failed" }
                )
            }
            LifetimeEvent::Degraded { epoch, patterns } => {
                format!("[epoch {epoch}] degraded to {patterns} patterns")
            }
            LifetimeEvent::Scrubbed { epoch, corrected, uncorrectable } => {
                format!(
                    "[epoch {epoch}] scrubbed: {corrected} corrected, \
                     {uncorrectable} uncorrectable"
                )
            }
            LifetimeEvent::Backoff { epoch, until_epoch } => {
                format!("[epoch {epoch}] backing off until epoch {until_epoch}")
            }
            LifetimeEvent::Parked { epoch, reason } => {
                format!("[epoch {epoch}] parked: {reason}")
            }
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            LifetimeEvent::Deployed { .. } => "deployed",
            LifetimeEvent::Aged { .. } => "aged",
            LifetimeEvent::CheckupDone { .. } => "checkup",
            LifetimeEvent::Diagnosed { .. } => "diagnosed",
            LifetimeEvent::RepairAttempted { .. } => "repair",
            LifetimeEvent::Degraded { .. } => "degraded",
            LifetimeEvent::Scrubbed { .. } => "scrubbed",
            LifetimeEvent::Backoff { .. } => "backoff",
            LifetimeEvent::Parked { .. } => "parked",
        }
    }
}

impl ToJson for LifetimeEvent {
    fn to_json(&self) -> Json {
        let mut fields = vec![("kind".to_owned(), Json::String(self.kind().to_owned()))];
        match self {
            LifetimeEvent::Deployed { tiles, mapping_error_l1 } => {
                fields.push(("tiles".to_owned(), tiles.to_json()));
                fields.push(("mapping_error_l1".to_owned(), mapping_error_l1.to_json()));
            }
            LifetimeEvent::Aged { epoch, new_stuck, total_stuck } => {
                fields.push(("epoch".to_owned(), epoch.to_json()));
                fields.push(("new_stuck".to_owned(), new_stuck.to_json()));
                fields.push(("total_stuck".to_owned(), total_stuck.to_json()));
            }
            LifetimeEvent::CheckupDone { epoch, distance, state } => {
                fields.push(("epoch".to_owned(), epoch.to_json()));
                fields.push(("distance".to_owned(), distance.to_json()));
                fields.push(("state".to_owned(), state.to_json()));
            }
            LifetimeEvent::Diagnosed { epoch, suspect } => {
                fields.push(("epoch".to_owned(), epoch.to_json()));
                fields.push(("suspect".to_owned(), suspect.to_json()));
            }
            LifetimeEvent::RepairAttempted { epoch, attempt, action, state_after, success } => {
                fields.push(("epoch".to_owned(), epoch.to_json()));
                fields.push(("attempt".to_owned(), attempt.to_json()));
                fields.push(("action".to_owned(), action.to_json()));
                fields.push(("state_after".to_owned(), state_after.to_json()));
                fields.push(("success".to_owned(), success.to_json()));
            }
            LifetimeEvent::Degraded { epoch, patterns } => {
                fields.push(("epoch".to_owned(), epoch.to_json()));
                fields.push(("patterns".to_owned(), patterns.to_json()));
            }
            LifetimeEvent::Scrubbed { epoch, corrected, uncorrectable } => {
                fields.push(("epoch".to_owned(), epoch.to_json()));
                fields.push(("corrected".to_owned(), corrected.to_json()));
                fields.push(("uncorrectable".to_owned(), uncorrectable.to_json()));
            }
            LifetimeEvent::Backoff { epoch, until_epoch } => {
                fields.push(("epoch".to_owned(), epoch.to_json()));
                fields.push(("until_epoch".to_owned(), until_epoch.to_json()));
            }
            LifetimeEvent::Parked { epoch, reason } => {
                fields.push(("epoch".to_owned(), epoch.to_json()));
                fields.push(("reason".to_owned(), reason.to_json()));
            }
        }
        Json::Object(fields)
    }
}

impl FromJson for LifetimeEvent {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let kind = value.field("kind")?.as_str()?;
        match kind {
            "deployed" => Ok(LifetimeEvent::Deployed {
                tiles: usize::from_json(value.field("tiles")?)?,
                mapping_error_l1: f32::from_json(value.field("mapping_error_l1")?)?,
            }),
            "aged" => Ok(LifetimeEvent::Aged {
                epoch: usize::from_json(value.field("epoch")?)?,
                new_stuck: usize::from_json(value.field("new_stuck")?)?,
                total_stuck: usize::from_json(value.field("total_stuck")?)?,
            }),
            "checkup" => Ok(LifetimeEvent::CheckupDone {
                epoch: usize::from_json(value.field("epoch")?)?,
                distance: ConfidenceDistance::from_json(value.field("distance")?)?,
                state: HealthState::from_json(value.field("state")?)?,
            }),
            "diagnosed" => Ok(LifetimeEvent::Diagnosed {
                epoch: usize::from_json(value.field("epoch")?)?,
                suspect: String::from_json(value.field("suspect")?)?,
            }),
            "repair" => Ok(LifetimeEvent::RepairAttempted {
                epoch: usize::from_json(value.field("epoch")?)?,
                attempt: usize::from_json(value.field("attempt")?)?,
                action: RepairAction::from_json(value.field("action")?)?,
                state_after: HealthState::from_json(value.field("state_after")?)?,
                success: bool::from_json(value.field("success")?)?,
            }),
            "degraded" => Ok(LifetimeEvent::Degraded {
                epoch: usize::from_json(value.field("epoch")?)?,
                patterns: usize::from_json(value.field("patterns")?)?,
            }),
            "scrubbed" => Ok(LifetimeEvent::Scrubbed {
                epoch: usize::from_json(value.field("epoch")?)?,
                corrected: usize::from_json(value.field("corrected")?)?,
                uncorrectable: usize::from_json(value.field("uncorrectable")?)?,
            }),
            "backoff" => Ok(LifetimeEvent::Backoff {
                epoch: usize::from_json(value.field("epoch")?)?,
                until_epoch: usize::from_json(value.field("until_epoch")?)?,
            }),
            "parked" => Ok(LifetimeEvent::Parked {
                epoch: usize::from_json(value.field("epoch")?)?,
                reason: String::from_json(value.field("reason")?)?,
            }),
            other => Err(JsonError::invalid(format!("unknown lifetime event kind `{other}`"))),
        }
    }
}

/// Structured report produced when the runtime parks in `Critical`.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentReport {
    /// Epoch at which the runtime parked.
    pub epoch: usize,
    /// Why it parked (budget exhaustion or a contained panic).
    pub reason: String,
    /// The final health state (always `Critical`).
    pub final_state: HealthState,
    /// Confidence distance of the last checkup before parking.
    pub final_distance: ConfidenceDistance,
    /// Repair attempts consumed over the lifetime.
    pub repairs_attempted: usize,
    /// Stuck cells accumulated on the device.
    pub stuck_cells: usize,
    /// Concurrent-test patterns still active (after any degradation).
    pub active_patterns: usize,
    /// The paper's recommended action for the final state.
    pub recommended_action: String,
}

impl IncidentReport {
    /// Deterministic multi-line rendering for operator-facing reports.
    pub fn render(&self) -> String {
        format!(
            "  epoch: {}\n  reason: {}\n  final state: {}\n  final distance: {}\n  \
             repairs attempted: {}\n  stuck cells: {}\n  active patterns: {}\n  \
             recommended action: {}\n",
            self.epoch,
            self.reason,
            self.final_state.label(),
            self.final_distance.all_classes,
            self.repairs_attempted,
            self.stuck_cells,
            self.active_patterns,
            self.recommended_action
        )
    }
}

impl ToJson for IncidentReport {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("epoch".to_owned(), self.epoch.to_json()),
            ("reason".to_owned(), self.reason.to_json()),
            ("final_state".to_owned(), self.final_state.to_json()),
            ("final_distance".to_owned(), self.final_distance.to_json()),
            ("repairs_attempted".to_owned(), self.repairs_attempted.to_json()),
            ("stuck_cells".to_owned(), self.stuck_cells.to_json()),
            ("active_patterns".to_owned(), self.active_patterns.to_json()),
            ("recommended_action".to_owned(), self.recommended_action.to_json()),
        ])
    }
}

impl FromJson for IncidentReport {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(IncidentReport {
            epoch: usize::from_json(value.field("epoch")?)?,
            reason: String::from_json(value.field("reason")?)?,
            final_state: HealthState::from_json(value.field("final_state")?)?,
            final_distance: ConfidenceDistance::from_json(value.field("final_distance")?)?,
            repairs_attempted: usize::from_json(value.field("repairs_attempted")?)?,
            stuck_cells: usize::from_json(value.field("stuck_cells")?)?,
            active_patterns: usize::from_json(value.field("active_patterns")?)?,
            recommended_action: String::from_json(value.field("recommended_action")?)?,
        })
    }
}

/// Per-layer repair bookkeeping: accumulated physical defects, the
/// current logical→physical row assignment, and remaining spare columns.
#[derive(Debug, Clone, PartialEq)]
struct LayerState {
    key: String,
    map: DefectMap,
    assignment: Vec<usize>,
    spares_left: usize,
}

impl ToJson for LayerState {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("key".to_owned(), self.key.to_json()),
            ("defects".to_owned(), self.map.to_json()),
            ("assignment".to_owned(), self.assignment.to_json()),
            ("spares_left".to_owned(), self.spares_left.to_json()),
        ])
    }
}

impl FromJson for LayerState {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(LayerState {
            key: String::from_json(value.field("key")?)?,
            map: DefectMap::from_json(value.field("defects")?)?,
            assignment: Vec::from_json(value.field("assignment")?)?,
            spares_left: usize::from_json(value.field("spares_left")?)?,
        })
    }
}

/// The deployed device: a weight-space digital simulation (the
/// historical, byte-identical path) or live analog crossbar state.
#[derive(Debug, Clone)]
enum DeviceState {
    Digital(Network),
    // 'static: the runtime owns its device outright — the backends are
    // severed from the deploy-time network via `into_owned`.
    Analog(AnalogBackend<'static>),
    BitSliced(BitSlicedBackend<'static>),
}

impl DeviceState {
    /// The programmed network image. For analog variants this carries the
    /// structure, biases and last-written digital weights; conductance-
    /// level aging is only visible through [`DeviceState::readback`].
    fn network(&self) -> &Network {
        match self {
            DeviceState::Digital(net) => net,
            DeviceState::Analog(b) => b.network(),
            DeviceState::BitSliced(b) => b.network(),
        }
    }

    /// Effective weights as the device actually computes them.
    fn readback(&self) -> Network {
        match self {
            DeviceState::Digital(net) => net.clone(),
            DeviceState::Analog(b) => b.readback(),
            DeviceState::BitSliced(b) => b.readback(),
        }
    }

    fn is_digital(&self) -> bool {
        matches!(self, DeviceState::Digital(_))
    }

    fn drift(&mut self, nu: f32, time: f32, rng: &mut SeededRng) {
        match self {
            DeviceState::Digital(net) => FaultModel::Drift { nu, time }.apply(net, rng),
            DeviceState::Analog(b) => b.drift(nu, time, rng),
            DeviceState::BitSliced(b) => b.drift(nu, time, rng),
        }
    }

    fn soft_errors(&mut self, probability: f64, rng: &mut SeededRng) {
        match self {
            DeviceState::Digital(net) => {
                FaultModel::RandomSoftError { probability }.apply(net, rng);
            }
            // The analog image of random soft errors is read-disturb
            // noise: lognormal conductance jitter driven by the same
            // per-epoch probability knob.
            DeviceState::Analog(b) => b.disturb(probability as f32, rng),
            DeviceState::BitSliced(b) => b.disturb(probability as f32, rng),
        }
    }

    fn stick_cell(&mut self, key: &str, row: usize, col: usize, weight: f32) {
        match self {
            DeviceState::Digital(_) => unreachable!("digital defects are clamped, not stuck"),
            DeviceState::Analog(b) => b.stick_cell(key, row, col, weight),
            DeviceState::BitSliced(b) => b.stick_cell(key, row, col, weight),
        }
    }

    fn write_layer(&mut self, key: &str, weights: &Tensor, rng: &mut SeededRng) {
        match self {
            DeviceState::Digital(_) => unreachable!("digital repairs write the network directly"),
            DeviceState::Analog(b) => b.write_layer(key, weights, rng),
            DeviceState::BitSliced(b) => b.write_layer(key, weights, rng),
        }
    }
}

/// The closed-loop lifetime simulation: see the module docs.
#[derive(Debug, Clone)]
pub struct LifetimeRuntime {
    config: LifetimeConfig,
    golden: Network,
    patterns: TestPatternSet,
    full_detector: Detector,
    train: Option<TrainData>,
    device: DeviceState,
    monitor: HealthMonitor,
    layers: Vec<LayerState>,
    /// Digital parity planes, one per conductance-mapped weight tensor
    /// (analog backends keep parity on the crossbar tiles instead).
    /// Empty unless the config is hardened.
    parity: Vec<(String, ParityCheck)>,
    soft_corrected: usize,
    soft_uncorrectable: usize,
    epoch: usize,
    active_patterns: usize,
    repairs_used: usize,
    failed_sessions: usize,
    next_repair_epoch: usize,
    events: Vec<LifetimeEvent>,
    incident: Option<IncidentReport>,
    /// Transient checkup-depth cap for the *next* epoch, set by
    /// [`LifetimeRuntime::step_shallow`] (fleet budget shedding). Never
    /// serialized: a resumed runtime starts with no override, and the
    /// fleet supervisor re-derives its shedding decisions
    /// deterministically each epoch.
    depth_override: Option<usize>,
    /// Per-device health history on the virtual epoch clock. Derived
    /// exclusively from deterministic runtime state, so it is
    /// bit-identical across reruns and thread counts. Never serialized:
    /// checkpoints keep their pre-timeline byte layout, and a resumed
    /// runtime restarts its history from the resume epoch.
    timeline: tel::HealthTimeline,
    /// Supervisor retries absorbed so far (fleet runs bump this via
    /// [`LifetimeRuntime::note_retries`]); folded into timeline points.
    /// Never serialized.
    retries: u64,
    /// Flight-recorder sink: `(directory, device id)`. When set, a park
    /// dumps a postmortem artifact there. Never serialized.
    flight: Option<(std::path::PathBuf, u32)>,
}

impl LifetimeRuntime {
    /// Deploys `golden` onto the configured crossbars and runs the
    /// post-deployment baseline checkup.
    ///
    /// `train` enables the retraining rung of the repair ladder; without
    /// it that rung is skipped.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid, the pattern set is smaller than
    /// the degradation floor, or `train` labels mismatch its images.
    pub fn new(
        golden: &Network,
        patterns: TestPatternSet,
        config: LifetimeConfig,
        train: Option<TrainData>,
    ) -> Self {
        config.validate();
        assert!(
            patterns.len() >= config.min_patterns,
            "pattern set ({}) smaller than the degradation floor ({})",
            patterns.len(),
            config.min_patterns
        );
        if let Some(t) = &train {
            assert_eq!(
                t.images.shape()[0],
                t.labels.len(),
                "training data needs one label per image"
            );
        }
        let golden = golden.clone();
        let full_detector = Detector::new(&golden, patterns.clone());
        let mut deploy_rng = SeededRng::new(config.seed).fork(0);
        let (device, tiles, mapping_error_l1) = match config.backend.kind {
            BackendKind::Digital => {
                let (net, report) = deploy(&golden, &config.crossbar, &mut deploy_rng);
                (DeviceState::Digital(net), report.total_tiles(), report.total_error_l1())
            }
            BackendKind::Analog => {
                let backend =
                    AnalogBackend::program(&golden, &config.backend, &mut deploy_rng).into_owned();
                let report = backend.deploy_report(patterns.images());
                (DeviceState::Analog(backend), report.total_tiles(), report.total_error_l1())
            }
            BackendKind::BitSliced => {
                let backend = BitSlicedBackend::program(&golden, &config.backend, &mut deploy_rng)
                    .into_owned();
                let report = backend.deploy_report(patterns.images());
                (DeviceState::BitSliced(backend), report.total_tiles(), report.total_error_l1())
            }
        };
        let layers = golden
            .state_dict()
            .into_iter()
            .filter(|(key, _)| key.ends_with("weight"))
            .map(|(key, tensor)| LayerState {
                key,
                map: DefectMap::default(),
                assignment: (0..tensor.shape()[0]).collect(),
                spares_left: config.spare_columns,
            })
            .collect();
        let monitor = HealthMonitor::new(full_detector.clone(), config.policy);
        let active_patterns = patterns.len();
        let mut runtime = LifetimeRuntime {
            config,
            golden,
            patterns,
            full_detector,
            train,
            device,
            monitor,
            layers,
            parity: Vec::new(),
            soft_corrected: 0,
            soft_uncorrectable: 0,
            epoch: 0,
            active_patterns,
            repairs_used: 0,
            failed_sessions: 0,
            next_repair_epoch: 0,
            events: Vec::new(),
            incident: None,
            depth_override: None,
            timeline: tel::HealthTimeline::default(),
            retries: 0,
            flight: None,
        };
        if runtime.config.hardened {
            // Program the spare-column parity alongside the weights.
            runtime.enable_parity();
        }
        runtime.push_event(LifetimeEvent::Deployed { tiles, mapping_error_l1 });
        let baseline = runtime.run_checkup();
        runtime.push_event(LifetimeEvent::CheckupDone {
            epoch: 0,
            distance: baseline.distance,
            state: baseline.state,
        });
        runtime.record_timeline(0);
        runtime
    }

    /// The configuration.
    pub fn config(&self) -> &LifetimeConfig {
        &self.config
    }

    /// Completed epochs.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// The deployed (aged, possibly repaired) device network.
    ///
    /// On analog backends this is the programmed digital image
    /// (structure, biases, last-written weights); conductance-level
    /// aging shows up in [`LifetimeRuntime::device_readback`] instead.
    pub fn device(&self) -> &Network {
        self.device.network()
    }

    /// The device's effective weights as the hardware actually computes
    /// them: a crossbar read-back for analog backends, a clone of the
    /// device network for digital.
    pub fn device_readback(&self) -> Network {
        self.device.readback()
    }

    /// The golden (cloud-side) reference network.
    pub fn golden(&self) -> &Network {
        &self.golden
    }

    /// The health monitor, including its full checkup log.
    pub fn monitor(&self) -> &HealthMonitor {
        &self.monitor
    }

    /// The lifetime event log, oldest first.
    pub fn events(&self) -> &[LifetimeEvent] {
        &self.events
    }

    /// The incident report, if the runtime parked.
    pub fn incident(&self) -> Option<&IncidentReport> {
        self.incident.as_ref()
    }

    /// Repair attempts consumed so far.
    pub fn repairs_used(&self) -> usize {
        self.repairs_used
    }

    /// Concurrent-test patterns currently active (after degradation).
    pub fn active_patterns(&self) -> usize {
        self.active_patterns
    }

    /// Cumulative stuck cells across all layers.
    pub fn total_stuck(&self) -> usize {
        self.layers.iter().map(|l| l.map.len()).sum()
    }

    /// Soft errors corrected in-situ by the online parity scrub over the
    /// whole lifetime (always zero when the config is not hardened).
    pub fn soft_corrected(&self) -> usize {
        self.soft_corrected
    }

    /// Soft errors the scrub detected but could not isolate; they were
    /// left for the ordinary checkup/repair cycle.
    pub fn soft_uncorrectable(&self) -> usize {
        self.soft_uncorrectable
    }

    /// The per-device health timeline recorded so far (since process
    /// start or resume; timelines are never checkpointed).
    pub fn timeline(&self) -> &tel::HealthTimeline {
        &self.timeline
    }

    /// Records `n` supervisor retries against this device; the running
    /// total is folded into subsequent timeline points and flight
    /// records.
    pub fn note_retries(&mut self, n: u64) {
        self.retries += n;
    }

    /// Supervisor retries absorbed so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Points the flight recorder at `dir`: a park now dumps a
    /// postmortem artifact `incident-<device>-<epoch>.json` there.
    pub fn set_flight(&mut self, dir: std::path::PathBuf, device: u32) {
        self.flight = Some((dir, device));
    }

    /// Builds the postmortem artifact for this device's current state.
    /// Only device-deterministic data goes in — see
    /// [`crate::flight`] for the contract.
    pub fn flight_record(
        &self,
        device: u32,
        epoch: u64,
        reason: &str,
        detail: &str,
        config_digest: u64,
    ) -> crate::flight::FlightRecord {
        use crate::flight::{FLIGHT_EVENT_WINDOW, FLIGHT_TIMELINE_WINDOW};
        let mut record = crate::flight::FlightRecord::new(device, epoch, reason, detail, config_digest);
        let start = self.events.len().saturating_sub(FLIGHT_EVENT_WINDOW);
        record.events = self.events[start..].iter().map(ToJson::to_json).collect();
        if let Json::Array(points) = self.timeline.window_json(FLIGHT_TIMELINE_WINDOW) {
            record.timeline = points;
        }
        record.push_tally("epoch", self.epoch as u64);
        record.push_tally("checkups", self.monitor.history().len() as u64);
        record.push_tally("repairs_used", self.repairs_used as u64);
        record.push_tally("stuck_cells", self.total_stuck() as u64);
        record.push_tally("soft_corrected", self.soft_corrected as u64);
        record.push_tally("soft_uncorrectable", self.soft_uncorrectable as u64);
        record.push_tally("active_patterns", self.active_patterns as u64);
        record.push_tally("retries", self.retries);
        record
    }

    /// Appends the end-of-epoch observation to the health timeline.
    /// Always recorded (telemetry on or off): the timeline is plain
    /// deterministic data, bounded by downsampling, and the flight
    /// recorder depends on it being present.
    fn record_timeline(&mut self, epoch: usize) {
        let last = self.monitor.history().last();
        let distance = last.map(|c| c.distance).unwrap_or(ConfidenceDistance::POISONED);
        // Accuracy proxy: confidence similarity over all classes. The
        // runtime has no labeled eval set, so 1 − clamped all-classes
        // distance stands in for an accuracy estimate.
        let accuracy = f64::from((1.0 - distance.all_classes).clamp(0.0, 1.0));
        self.timeline.record(tel::TimelinePoint {
            epoch: epoch as u64,
            state: self.state().label().to_owned(),
            accuracy,
            score: f64::from(distance.top_ranked),
            repairs: self.repairs_used as u64,
            scrubs: (self.soft_corrected + self.soft_uncorrectable) as u64,
            retries: self.retries,
        });
    }

    /// Whether the runtime parked in `Critical`.
    pub fn is_parked(&self) -> bool {
        self.incident.is_some()
    }

    /// Whether the lifetime is over (all epochs simulated, or parked).
    pub fn is_finished(&self) -> bool {
        self.incident.is_some() || self.epoch >= self.config.epochs
    }

    /// The current health state (`Critical` once parked).
    pub fn state(&self) -> HealthState {
        if self.is_parked() {
            HealthState::Critical
        } else {
            self.monitor.state()
        }
    }

    /// Runs up to `max_steps` epochs (all remaining if `None`), stopping
    /// early if the runtime parks. Returns the resulting health state.
    pub fn run(&mut self, max_steps: Option<usize>) -> HealthState {
        let mut remaining = max_steps.unwrap_or(usize::MAX);
        while !self.is_finished() && remaining > 0 {
            self.step();
            remaining -= 1;
        }
        self.state()
    }

    /// Simulates one epoch: age → checkup → (if escalated) diagnose and
    /// repair. A panic anywhere inside the epoch is contained: the
    /// runtime parks in `Critical` with the panic message in the
    /// incident report instead of unwinding into the caller.
    ///
    /// # Panics
    ///
    /// Panics if called after [`LifetimeRuntime::is_finished`].
    pub fn step(&mut self) -> HealthState {
        assert!(!self.is_finished(), "lifetime runtime already finished");
        let epoch = self.epoch + 1;
        let _epoch_span = tel::span("lifetime.epoch");
        let t0 = tel::enabled().then(std::time::Instant::now);
        let outcome = catch_unwind(AssertUnwindSafe(|| self.epoch_body(epoch)));
        if let Some(t0) = t0 {
            EPOCH_NS.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        self.epoch = epoch;
        if let Err(payload) = outcome {
            let message = panic_message(payload);
            self.park(epoch, format!("epoch {epoch} panicked: {message}"));
        }
        self.state()
    }

    /// Like [`LifetimeRuntime::step`], but the epoch's checkup evaluates
    /// at most `max_patterns` test patterns (clamped into `1..=len`). The
    /// cap applies to this one epoch only: the runtime's persistent
    /// pattern budget (`active_patterns`, the degradation ladder state)
    /// is untouched, so a fleet supervisor can shed checkup *depth* under
    /// budget pressure without permanently degrading the device.
    ///
    /// # Panics
    ///
    /// Panics if called after [`LifetimeRuntime::is_finished`].
    pub fn step_shallow(&mut self, max_patterns: usize) -> HealthState {
        self.depth_override = Some(max_patterns.clamp(1, self.patterns.len()));
        let state = self.step();
        self.depth_override = None;
        state
    }

    /// The single choke point of the lifetime event stream: appends to
    /// the in-memory log and, when telemetry is recording, mirrors the
    /// event into the per-kind counters and the ring-buffer recorder —
    /// repair-ladder transitions and epoch milestones land in one stream.
    fn push_event(&mut self, event: LifetimeEvent) {
        if tel::enabled() {
            event_counter(event.kind()).inc();
            if matches!(&event, LifetimeEvent::RepairAttempted { success: true, .. }) {
                REPAIRS_SUCCEEDED.inc();
            }
            tel::record_event("lifetime.event", event.describe());
        }
        self.events.push(event);
    }

    /// Runs one concurrent-test checkup against the live device state.
    ///
    /// An active [`LifetimeRuntime::step_shallow`] override swaps a
    /// smaller detector in for this single checkup and restores the
    /// persistent-depth detector afterwards, so budget-shed epochs never
    /// leak into the runtime's durable degradation state.
    fn run_checkup(&mut self) -> Checkup {
        let _span = tel::span("lifetime.checkup");
        let shallow = self.depth_override.filter(|&k| k < self.active_patterns);
        if let Some(k) = shallow {
            let detector = self
                .full_detector
                .subset(k)
                .expect("step_shallow clamps the depth into 1..=len");
            self.monitor.set_detector(detector);
        }
        let t0 = tel::enabled().then(std::time::Instant::now);
        let checkup = match &self.device {
            DeviceState::Digital(net) => self.monitor.check(net),
            DeviceState::Analog(b) => self.monitor.check(b),
            DeviceState::BitSliced(b) => self.monitor.check(b),
        };
        if let Some(t0) = t0 {
            PHASE_DETECTOR_NS.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        if shallow.is_some() {
            let detector = if self.active_patterns < self.patterns.len() {
                self.full_detector
                    .subset(self.active_patterns)
                    .expect("active_patterns is kept in 1..=len")
            } else {
                self.full_detector.clone()
            };
            self.monitor.set_detector(detector);
        }
        checkup
    }

    fn epoch_body(&mut self, epoch: usize) {
        self.age(epoch);
        let checkup = self.run_checkup();
        self.push_event(LifetimeEvent::CheckupDone {
            epoch,
            distance: checkup.distance,
            state: checkup.state,
        });
        if checkup.state >= self.config.trigger && epoch >= self.next_repair_epoch {
            self.repair_session(epoch);
        }
        self.record_timeline(epoch);
    }

    /// Applies one epoch of aging. The RNG is re-derived from the master
    /// seed and the epoch number, so aging is a pure function of
    /// `(seed, epoch)` and checkpoints need no RNG state.
    fn age(&mut self, epoch: usize) {
        let aging = self.config.aging;
        let mut epoch_rng = SeededRng::new(self.config.seed).fork(epoch as u64);
        if aging.drift_nu > 0.0 && aging.drift_time > 0.0 {
            let mut rng = epoch_rng.fork(0);
            self.device.drift(aging.drift_nu, aging.drift_time, &mut rng);
        }
        if aging.soft_error_p > 0.0 {
            let mut rng = epoch_rng.fork(1);
            if self.config.hardened {
                // Re-baseline the parity first: drift is genuine aging,
                // not a transient, and must never be "corrected" away.
                self.refresh_parity();
                self.inject_transient_flips(aging.soft_error_p, &mut rng);
                let outcome = self.scrub_parity();
                self.soft_corrected += outcome.corrected;
                self.soft_uncorrectable += outcome.uncorrectable;
                if outcome.any() {
                    self.push_event(LifetimeEvent::Scrubbed {
                        epoch,
                        corrected: outcome.corrected,
                        uncorrectable: outcome.uncorrectable,
                    });
                }
            } else {
                self.device.soft_errors(aging.soft_error_p, &mut rng);
            }
        }
        let mut new_stuck = 0usize;
        if aging.stuck_lambda > 0.0 {
            let weights: Vec<Tensor> =
                self.layers.iter().map(|l| golden_param(&self.golden, &l.key)).collect();
            let total_cells: usize = weights.iter().map(Tensor::len).sum();
            for (li, (layer, w)) in self.layers.iter_mut().zip(&weights).enumerate() {
                let (rows, cols) = (w.shape()[0], w.shape()[1]);
                let lambda = aging.stuck_lambda * (rows * cols) as f64 / total_cells as f64;
                let mut rng = epoch_rng.fork(2 + li as u64);
                let w_max = w.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                for arrival in sample_cell_arrivals(rows, cols, lambda, &mut rng) {
                    let occupied = layer
                        .map
                        .cells()
                        .iter()
                        .any(|c| c.row == arrival.row && c.col == arrival.col);
                    if occupied {
                        continue;
                    }
                    // Stuck-high freezes at ±w_max keeping the sign the
                    // cell held; stuck-low at zero conductance.
                    let value = if arrival.stuck_high {
                        if w.at(&[arrival.row, arrival.col]) >= 0.0 { w_max } else { -w_max }
                    } else {
                        0.0
                    };
                    let mut cells = layer.map.cells().to_vec();
                    cells.push(StuckCell { row: arrival.row, col: arrival.col, value });
                    layer.map = DefectMap::new(cells);
                    new_stuck += 1;
                }
            }
        }
        self.clamp_defects();
        if self.config.hardened {
            // Stuck cells are known persistent defects owned by the
            // checkup/repair path; fold them into the parity baseline so
            // the next scrub never mistakes them for transients.
            self.refresh_parity();
        }
        self.push_event(LifetimeEvent::Aged {
            epoch,
            new_stuck,
            total_stuck: self.total_stuck(),
        });
    }

    /// Programs the parity checksums over the current device state:
    /// weight-tensor planes for the digital backend, crossbar tiles for
    /// the analog ones.
    fn enable_parity(&mut self) {
        match &mut self.device {
            DeviceState::Digital(net) => {
                let mut parity = Vec::new();
                net.for_each_param(|key, tensor| {
                    if key.ends_with("weight") {
                        let rows = tensor.shape()[0];
                        let cols = tensor.len() / rows;
                        parity.push((
                            key.to_owned(),
                            ParityCheck::capture(rows, cols, tensor.as_slice()),
                        ));
                    }
                });
                self.parity = parity;
            }
            DeviceState::Analog(b) => b.enable_parity(),
            DeviceState::BitSliced(b) => b.enable_parity(),
        }
    }

    /// Re-baselines every parity checksum to the current device state.
    fn refresh_parity(&mut self) {
        let parity = &mut self.parity;
        match &mut self.device {
            DeviceState::Digital(net) => net.for_each_param(|key, tensor| {
                if let Some((_, check)) = parity.iter_mut().find(|(k, _)| k == key) {
                    check.refresh(tensor.as_slice());
                }
            }),
            DeviceState::Analog(b) => b.refresh_parity(),
            DeviceState::BitSliced(b) => b.refresh_parity(),
        }
    }

    /// One in-situ parity scrub over the whole device.
    fn scrub_parity(&mut self) -> ScrubOutcome {
        let parity = &self.parity;
        let mut outcome = ScrubOutcome::default();
        match &mut self.device {
            DeviceState::Digital(net) => net.for_each_param_mut(|key, tensor| {
                if let Some((_, check)) = parity.iter().find(|(k, _)| k == key) {
                    outcome.merge(check.scrub(tensor.as_mut_slice()));
                }
            }),
            DeviceState::Analog(b) => outcome = b.scrub_parity(),
            DeviceState::BitSliced(b) => outcome = b.scrub_parity(),
        }
        outcome
    }

    /// Hardened-mode soft errors. The digital backend keeps the exact
    /// weight-space `RandomSoftError` stream of the unhardened runtime;
    /// the analog backends inject sparse conductance flips — the
    /// device-level image of the same fault class — instead of dense
    /// read-disturb jitter, which no parity column could isolate.
    fn inject_transient_flips(&mut self, probability: f64, rng: &mut SeededRng) {
        match &mut self.device {
            DeviceState::Digital(net) => {
                FaultModel::RandomSoftError { probability }.apply(net, rng);
            }
            DeviceState::Analog(b) => {
                b.flip_cells(probability, rng);
            }
            DeviceState::BitSliced(b) => {
                b.flip_cells(probability, rng);
            }
        }
    }

    /// Overrides the device weights at every stuck position (under the
    /// current row assignments): a stuck cell reads its frozen value no
    /// matter what drift or a repair wrote there.
    fn clamp_defects(&mut self) {
        let layers = &self.layers;
        match &mut self.device {
            DeviceState::Digital(net) => net.for_each_param_mut(|key, tensor| {
                if let Some(layer) = layers.iter().find(|l| l.key == key) {
                    if !layer.map.is_empty() {
                        *tensor = layer.map.apply_with_assignment(tensor, &layer.assignment);
                    }
                }
            }),
            device => {
                // Freeze the physical cells on the live crossbars. The
                // defect rows are physical; the backend addresses cells
                // through the digital (logical) layout, so invert the
                // row assignment exactly like `apply_with_assignment`.
                for layer in layers {
                    if layer.map.is_empty() {
                        continue;
                    }
                    let mut logical_of = vec![0usize; layer.assignment.len()];
                    for (logical, &physical) in layer.assignment.iter().enumerate() {
                        logical_of[physical] = logical;
                    }
                    for cell in layer.map.cells() {
                        device.stick_cell(
                            &layer.key,
                            logical_of[cell.row],
                            cell.col,
                            cell.value,
                        );
                    }
                }
            }
        }
    }

    /// One repair session: diagnose, then walk the escalating ladder,
    /// re-validating after each rung. Success acknowledges the repair;
    /// failure schedules an exponential backoff; exhausting the lifetime
    /// budget parks the runtime.
    fn repair_session(&mut self, epoch: usize) {
        let _span = tel::span("lifetime.repair_session");
        let t0 = tel::enabled().then(std::time::Instant::now);
        let diagnosis = match &self.device {
            DeviceState::Digital(net) => diagnose(self.monitor.detector(), &self.golden, net),
            DeviceState::Analog(b) => diagnose(self.monitor.detector(), &self.golden, b),
            DeviceState::BitSliced(b) => diagnose(self.monitor.detector(), &self.golden, b),
        };
        if let Some(t0) = t0 {
            PHASE_DIAGNOSE_NS.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        if let Some(prime) = diagnosis.prime_suspect() {
            self.push_event(LifetimeEvent::Diagnosed { epoch, suspect: prime.key.clone() });
        }
        let ladder = [
            RepairAction::Reprogram,
            RepairAction::Spares,
            RepairAction::Retrain,
            RepairAction::Degrade,
        ];
        let mut healed = false;
        for action in ladder {
            if self.repairs_used >= self.config.repair_budget {
                break;
            }
            let applicable = match action {
                RepairAction::Spares => {
                    self.layers.iter().any(|l| l.spares_left > 0 && !l.map.is_empty())
                }
                RepairAction::Retrain => self.train.is_some(),
                RepairAction::Degrade => self.active_patterns > self.config.min_patterns,
                RepairAction::Reprogram => true,
            };
            if !applicable {
                continue;
            }
            self.repairs_used += 1;
            let t0 = tel::enabled().then(std::time::Instant::now);
            match action {
                RepairAction::Reprogram => self.reprogram(),
                RepairAction::Spares => self.consume_spares(&diagnosis),
                RepairAction::Retrain => self.retrain(epoch),
                RepairAction::Degrade => self.degrade(epoch),
            }
            if let Some(t0) = t0 {
                PHASE_REPAIR_NS.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            }
            if self.config.hardened {
                // Repairs rewrite conductances; re-baseline the parity so
                // the next scrub protects the repaired state.
                self.refresh_parity();
            }
            let checkup = self.run_checkup();
            let success = checkup.state < self.config.trigger;
            self.push_event(LifetimeEvent::RepairAttempted {
                epoch,
                attempt: self.repairs_used,
                action,
                state_after: checkup.state,
                success,
            });
            if success {
                self.monitor.acknowledge_repair();
                healed = true;
                break;
            }
        }
        if healed {
            self.failed_sessions = 0;
            self.next_repair_epoch = 0;
        } else if self.repairs_used >= self.config.repair_budget {
            self.park(epoch, "repair budget exhausted with the device still degraded".to_owned());
        } else {
            self.failed_sessions += 1;
            let shift = (self.failed_sessions - 1).min(8) as u32;
            let backoff = self.config.backoff_epochs << shift;
            self.next_repair_epoch = epoch + backoff;
            self.push_event(LifetimeEvent::Backoff { epoch, until_epoch: self.next_repair_epoch });
        }
    }

    /// Rung 1: rewrite every conductance-mapped layer from the golden
    /// copy through the crossbar write path, parking known stuck cells
    /// via fault-aware row remapping.
    fn reprogram(&mut self) {
        let mut rng =
            SeededRng::new(self.config.seed ^ REPROGRAM_SALT).fork(self.repairs_used as u64);
        if self.device.is_digital() {
            let (mut fresh, _) = deploy(&self.golden, &self.config.crossbar, &mut rng);
            let layers = &mut self.layers;
            fresh.for_each_param_mut(|key, tensor| {
                if let Some(layer) = layers.iter_mut().find(|l| l.key == key) {
                    if layer.map.is_empty() {
                        layer.assignment = (0..tensor.shape()[0]).collect();
                    } else {
                        let remap = remap_rows(tensor, &layer.map);
                        layer.assignment = remap.assignment;
                        *tensor = remap.repaired_weights;
                    }
                }
            });
            self.device = DeviceState::Digital(fresh);
        } else {
            // Live-crossbar path: rewrite every mapped layer from the
            // golden weights through the crossbar write path, then
            // re-freeze the surviving physical defects.
            for li in 0..self.layers.len() {
                let key = self.layers[li].key.clone();
                let golden_w = golden_param(&self.golden, &key);
                let tensor = if self.layers[li].map.is_empty() {
                    self.layers[li].assignment = (0..golden_w.shape()[0]).collect();
                    golden_w
                } else {
                    let remap = remap_rows(&golden_w, &self.layers[li].map);
                    self.layers[li].assignment = remap.assignment;
                    remap.repaired_weights
                };
                self.device.write_layer(&key, &tensor, &mut rng);
            }
            self.clamp_defects();
        }
    }

    /// Rung 2: substitute spare bit lines on the most suspect defective
    /// layer, then reprogram that layer with a fresh remap over the
    /// surviving defects.
    fn consume_spares(&mut self, diagnosis: &Diagnosis) {
        let has_work = |l: &LayerState| l.spares_left > 0 && !l.map.is_empty();
        let target = diagnosis
            .ranking
            .iter()
            .map(|d| d.key.as_str())
            .find(|k| self.layers.iter().any(|l| l.key == *k && has_work(l)))
            .map(str::to_owned)
            .or_else(|| self.layers.iter().find(|l| has_work(l)).map(|l| l.key.clone()));
        let Some(key) = target else { return };
        let golden_w = golden_param(&self.golden, &key);
        let layer = self.layers.iter_mut().find(|l| l.key == key).expect("target layer exists");
        let spare = repair_with_spares(&golden_w, &layer.map, layer.spares_left);
        layer.spares_left -= spare.replaced_columns.len();
        let surviving: Vec<StuckCell> = layer
            .map
            .cells()
            .iter()
            .copied()
            .filter(|c| !spare.replaced_columns.contains(&c.col))
            .collect();
        layer.map = DefectMap::new(surviving);
        let remap = remap_rows(&golden_w, &layer.map);
        layer.assignment = remap.assignment;
        let repaired = remap.repaired_weights;
        match &mut self.device {
            DeviceState::Digital(net) => net.for_each_param_mut(|k, tensor| {
                if k == key {
                    *tensor = repaired.clone();
                }
            }),
            device => {
                let mut rng = SeededRng::new(self.config.seed ^ REPROGRAM_SALT)
                    .fork(self.repairs_used as u64);
                device.write_layer(&key, &repaired, &mut rng);
            }
        }
        if !self.device.is_digital() {
            self.clamp_defects();
        }
    }

    /// Rung 3: fault-aware retraining around the stuck cells (in logical
    /// coordinates under the current assignments).
    fn retrain(&mut self, epoch: usize) {
        let Some(train) = &self.train else { return };
        let defect_layers: Vec<(String, DefectMap)> = self
            .layers
            .iter()
            .filter(|l| !l.map.is_empty())
            .map(|l| {
                let mut logical_of = vec![0usize; l.assignment.len()];
                for (logical, &physical) in l.assignment.iter().enumerate() {
                    logical_of[physical] = logical;
                }
                let cells = l
                    .map
                    .cells()
                    .iter()
                    .map(|c| StuckCell { row: logical_of[c.row], col: c.col, value: c.value })
                    .collect();
                (l.key.clone(), DefectMap::new(cells))
            })
            .collect();
        // The retrain seed mixes in (epoch, attempt) so repeated rungs
        // explore different shuffles, while staying a pure function of
        // checkpointed state.
        let config = FaultyRetrainConfig {
            seed: self
                .config
                .retrain
                .seed
                .wrapping_add((epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(self.repairs_used as u64),
            ..self.config.retrain
        };
        match &mut self.device {
            DeviceState::Digital(net) => {
                retrain_with_faults(net, &defect_layers, &train.images, &train.labels, config);
            }
            device => {
                // Retrain digitally on the read-back effective weights,
                // then write the conductance-mapped layers back through
                // the crossbar write path. (Bias updates stay cloud-side:
                // only mapped parameters have a crossbar write path.)
                let mut snapshot = device.readback();
                retrain_with_faults(
                    &mut snapshot,
                    &defect_layers,
                    &train.images,
                    &train.labels,
                    config,
                );
                let mut rng = SeededRng::new(self.config.seed ^ REPROGRAM_SALT)
                    .fork(self.repairs_used as u64);
                let dict = snapshot.state_dict();
                for layer in &self.layers {
                    if let Some((_, tensor)) = dict.iter().find(|(k, _)| *k == layer.key) {
                        device.write_layer(&layer.key, tensor, &mut rng);
                    }
                }
            }
        }
        if !self.device.is_digital() {
            self.clamp_defects();
        }
    }

    /// Rung 4: graceful degradation — halve the concurrent-test pattern
    /// budget (never below the floor) and keep serving at reduced
    /// assurance.
    fn degrade(&mut self, epoch: usize) {
        let k = (self.active_patterns / 2).max(self.config.min_patterns);
        self.active_patterns = k;
        let detector =
            self.full_detector.subset(k).expect("degradation stays within 1..=len");
        self.monitor.set_detector(detector);
        self.push_event(LifetimeEvent::Degraded { epoch, patterns: k });
    }

    /// Parks the runtime in `Critical` with a structured incident report.
    fn park(&mut self, epoch: usize, reason: String) {
        let final_distance = self
            .monitor
            .history()
            .last()
            .map(|c| c.distance)
            .unwrap_or(ConfidenceDistance::POISONED);
        self.push_event(LifetimeEvent::Parked { epoch, reason: reason.clone() });
        self.incident = Some(IncidentReport {
            epoch,
            reason: reason.clone(),
            final_state: HealthState::Critical,
            final_distance,
            repairs_attempted: self.repairs_used,
            stuck_cells: self.total_stuck(),
            active_patterns: self.active_patterns,
            recommended_action: HealthState::Critical.recommended_action().to_owned(),
        });
        if let Some((dir, device)) = self.flight.clone() {
            let record = self.flight_record(
                device,
                epoch as u64,
                "park",
                &reason,
                self.config.digest(),
            );
            if let Err(e) = record.write(&dir) {
                // A failing dump must never take the runtime down with it.
                tel::log_warn!("flight-record dump failed for device {device:04}: {e}");
            }
        }
    }

    /// Deterministic operator-facing report: byte-identical for
    /// byte-identical lifetimes, which is what the resume tests compare.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str("== lifetime report ==\n");
        out.push_str(&format!("seed: {}\n", self.config.seed));
        out.push_str(&format!("epochs: {}/{}\n", self.epoch, self.config.epochs));
        out.push_str(&format!("final state: {}\n", self.state().label()));
        out.push_str(&format!("checkups: {}\n", self.monitor.history().len()));
        out.push_str(&format!(
            "repairs used: {}/{}\n",
            self.repairs_used, self.config.repair_budget
        ));
        out.push_str(&format!("stuck cells: {}\n", self.total_stuck()));
        if self.config.hardened {
            // Gated on the flag so unhardened reports stay byte-identical
            // to the historical format.
            out.push_str(&format!(
                "soft errors scrubbed: {} corrected, {} uncorrectable\n",
                self.soft_corrected, self.soft_uncorrectable
            ));
        }
        out.push_str(&format!(
            "active patterns: {}/{}\n",
            self.active_patterns,
            self.patterns.len()
        ));
        out.push_str("events:\n");
        for event in &self.events {
            out.push_str("  ");
            out.push_str(&event.describe());
            out.push('\n');
        }
        match &self.incident {
            Some(incident) => {
                out.push_str("incident:\n");
                out.push_str(&incident.render());
            }
            None => out.push_str("incident: none\n"),
        }
        out
    }

    /// Serializes the full mutable state as a JSON checkpoint.
    ///
    /// The checkpoint embeds digests of the configuration, the golden
    /// network and the pattern set, so [`LifetimeRuntime::resume`] can
    /// reject a resume under different inputs instead of silently
    /// diverging. It does *not* embed the inputs themselves — the caller
    /// supplies them again, exactly as with campaign checkpoints.
    pub fn checkpoint_json(&self) -> String {
        let layers: Vec<Json> = self.layers.iter().map(ToJson::to_json).collect();
        let mut fields = vec![
            ("format".to_owned(), Json::String(CHECKPOINT_FORMAT.to_owned())),
            ("config_digest".to_owned(), Json::String(self.config.digest().to_string())),
            ("golden_digest".to_owned(), Json::String(network_digest(&self.golden).to_string())),
            (
                "patterns_digest".to_owned(),
                Json::String(patterns_digest(&self.patterns).to_string()),
            ),
            ("epoch".to_owned(), self.epoch.to_json()),
            ("active_patterns".to_owned(), self.active_patterns.to_json()),
            ("repairs_used".to_owned(), self.repairs_used.to_json()),
            ("failed_sessions".to_owned(), self.failed_sessions.to_json()),
            ("next_repair_epoch".to_owned(), self.next_repair_epoch.to_json()),
            ("device".to_owned(), self.device.readback().state_dict().to_json()),
            ("layers".to_owned(), Json::Array(layers)),
            ("monitor".to_owned(), self.monitor.snapshot().to_json()),
            ("events".to_owned(), self.events.to_json()),
            ("incident".to_owned(), self.incident.to_json()),
        ];
        if self.config.hardened {
            // Hardened-only fields keep unhardened checkpoints
            // byte-identical to the v1 layout. The parity words are
            // digest-guarded like every other resume input.
            let parity: Vec<Json> = self.parity.iter().map(parity_entry_json).collect();
            fields.push(("hardened".to_owned(), true.to_json()));
            fields.push(("soft_corrected".to_owned(), self.soft_corrected.to_json()));
            fields.push((
                "soft_uncorrectable".to_owned(),
                self.soft_uncorrectable.to_json(),
            ));
            fields.push(("parity".to_owned(), Json::Array(parity)));
            fields.push((
                "parity_digest".to_owned(),
                Json::String(parity_digest(&self.parity).to_string()),
            ));
        }
        healthmon_serdes::to_string(&Json::Object(fields))
    }

    /// Rebuilds a runtime from a checkpoint produced by
    /// [`LifetimeRuntime::checkpoint_json`], given the *same* golden
    /// network, pattern set, config and training data. The resumed
    /// runtime continues bit-identically to the uninterrupted one.
    ///
    /// # Errors
    ///
    /// [`HealthmonError::Json`] on malformed JSON;
    /// [`HealthmonError::CheckpointMismatch`] when the checkpoint was
    /// written under a different config, golden network or pattern set,
    /// or its internal state is inconsistent with them — and always when
    /// `config.backend` is not digital, because checkpoints capture
    /// weight-space device state, not live conductance planes.
    pub fn resume(
        golden: &Network,
        patterns: TestPatternSet,
        config: LifetimeConfig,
        train: Option<TrainData>,
        checkpoint: &str,
    ) -> Result<Self, HealthmonError> {
        if config.backend.kind != BackendKind::Digital {
            return Err(HealthmonError::CheckpointMismatch(format!(
                "lifetime checkpoints capture digital device state only; \
                 resume is not supported on the `{}` backend",
                config.backend.kind.label()
            )));
        }
        let value: Json = healthmon_serdes::from_str(checkpoint)?;
        let format = value.field("format")?.as_str()?;
        if format != CHECKPOINT_FORMAT {
            return Err(HealthmonError::CheckpointMismatch(format!(
                "unknown checkpoint format `{format}` (expected `{CHECKPOINT_FORMAT}`)"
            )));
        }
        let mut runtime = LifetimeRuntime::new(golden, patterns, config, train);
        verify_digest(&value, "config_digest", runtime.config.digest(), "configuration")?;
        verify_digest(
            &value,
            "golden_digest",
            network_digest(&runtime.golden),
            &format!(
                "golden network (resume built `{}` weights: {} params over {} layers)",
                runtime.golden.input_shape().iter().map(|d| d.to_string()).collect::<Vec<_>>().join("x"),
                runtime.golden.num_params(),
                runtime.golden.layers().len()
            ),
        )?;
        verify_digest(
            &value,
            "patterns_digest",
            patterns_digest(&runtime.patterns),
            "pattern set",
        )?;

        let dict: Vec<(String, Tensor)> = Vec::from_json(value.field("device")?)?;
        let DeviceState::Digital(device_net) = &mut runtime.device else {
            unreachable!("non-digital resume was rejected above")
        };
        device_net
            .load_state_dict(&dict)
            .map_err(|e| HealthmonError::CheckpointMismatch(e.to_string()))?;

        let layers: Vec<LayerState> = Vec::from_json(value.field("layers")?)?;
        if layers.len() != runtime.layers.len()
            || layers.iter().zip(&runtime.layers).any(|(a, b)| a.key != b.key)
        {
            let list = |ls: &[LayerState]| {
                ls.iter().map(|l| l.key.as_str()).collect::<Vec<_>>().join(", ")
            };
            return Err(HealthmonError::CheckpointMismatch(format!(
                "checkpointed layer keys do not match the golden network: \
                 checkpoint has [{}], golden expects [{}]",
                list(&layers),
                list(&runtime.layers)
            )));
        }
        for (restored, fresh) in layers.iter().zip(&runtime.layers) {
            if restored.assignment.len() != fresh.assignment.len() {
                return Err(HealthmonError::CheckpointMismatch(format!(
                    "layer `{}` assignment covers {} rows, expected {}",
                    restored.key,
                    restored.assignment.len(),
                    fresh.assignment.len()
                )));
            }
        }
        runtime.layers = layers;

        runtime.epoch = usize::from_json(value.field("epoch")?)?;
        runtime.active_patterns = usize::from_json(value.field("active_patterns")?)?;
        runtime.repairs_used = usize::from_json(value.field("repairs_used")?)?;
        runtime.failed_sessions = usize::from_json(value.field("failed_sessions")?)?;
        runtime.next_repair_epoch = usize::from_json(value.field("next_repair_epoch")?)?;
        if runtime.active_patterns == 0 || runtime.active_patterns > runtime.patterns.len() {
            return Err(HealthmonError::CheckpointMismatch(format!(
                "active pattern count {} outside 1..={}",
                runtime.active_patterns,
                runtime.patterns.len()
            )));
        }
        let detector = if runtime.active_patterns < runtime.patterns.len() {
            runtime.full_detector.subset(runtime.active_patterns)?
        } else {
            runtime.full_detector.clone()
        };
        let snapshot = MonitorSnapshot::from_json(value.field("monitor")?)?;
        runtime.monitor = HealthMonitor::from_snapshot(detector, runtime.config.policy, snapshot);
        runtime.events = Vec::from_json(value.field("events")?)?;
        runtime.incident = Option::from_json(value.field("incident")?)?;
        // Timelines are never checkpointed: drop the construction-time
        // baseline point and restart history at the resume epoch.
        runtime.timeline = tel::HealthTimeline::default();
        if runtime.config.hardened {
            if !bool::from_json(value.field("hardened")?)? {
                return Err(HealthmonError::CheckpointMismatch(
                    "the checkpoint was written by an unhardened runtime".to_owned(),
                ));
            }
            runtime.soft_corrected = usize::from_json(value.field("soft_corrected")?)?;
            runtime.soft_uncorrectable =
                usize::from_json(value.field("soft_uncorrectable")?)?;
            let parity: Vec<(String, ParityCheck)> = value
                .field("parity")?
                .as_array()?
                .iter()
                .map(parity_entry_from_json)
                .collect::<Result<_, _>>()?;
            verify_digest(&value, "parity_digest", parity_digest(&parity), "parity state")?;
            // The checkpoint is taken at an epoch boundary, where the
            // parity baseline always matches the device: a stored word
            // that disagrees with the restored weights means either the
            // weights or the parity were tampered with.
            for (key, check) in &parity {
                let mut current = None;
                runtime.device.network().for_each_param(|k, t| {
                    if k == key {
                        current = Some(t.clone());
                    }
                });
                let (rows, cols) = check.shape();
                let consistent = current
                    .as_ref()
                    .is_some_and(|t| t.len() == rows * cols && check.verify(t.as_slice()));
                if !consistent {
                    return Err(HealthmonError::CheckpointMismatch(format!(
                        "checkpointed parity for `{key}` does not match the \
                         restored device weights"
                    )));
                }
            }
            runtime.parity = parity;
        }
        Ok(runtime)
    }
}

/// Checkpoint format tag; bumped on incompatible layout changes.
const CHECKPOINT_FORMAT: &str = "healthmon-lifetime-checkpoint-v1";

pub(crate) fn verify_digest(
    value: &Json,
    field: &str,
    expected: u64,
    what: &str,
) -> Result<(), HealthmonError> {
    let stored = value.field(field)?.as_str()?.parse::<u64>().map_err(|_| {
        HealthmonError::CheckpointMismatch(format!("`{field}` is not a u64 digest"))
    })?;
    if stored != expected {
        return Err(HealthmonError::CheckpointMismatch(format!(
            "the checkpoint was written under a different {what} \
             (digest {stored} != {expected})"
        )));
    }
    Ok(())
}

fn golden_param(net: &Network, key: &str) -> Tensor {
    let mut found = None;
    net.for_each_param(|k, t| {
        if k == key {
            found = Some(t.clone());
        }
    });
    found.unwrap_or_else(|| panic!("golden parameter `{key}` exists"))
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    // Note the explicit reborrow: downcasting `&Box<dyn Any>` directly
    // would question the box, not the payload, and always miss.
    let payload: &(dyn std::any::Any + Send) = &*payload;
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

pub(crate) fn fnv1a(mut hash: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    for byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a over every parameter key and the exact f32 bit patterns.
pub(crate) fn network_digest(net: &Network) -> u64 {
    let mut hash = FNV_OFFSET;
    net.for_each_param(|key, tensor| {
        hash = fnv1a(hash, key.bytes());
        for &v in tensor.as_slice() {
            hash = fnv1a(hash, v.to_bits().to_le_bytes());
        }
    });
    hash
}

/// One checkpointed parity plane: key, shape, and raw checksum words.
fn parity_entry_json(entry: &(String, ParityCheck)) -> Json {
    let (key, check) = entry;
    let (rows, cols) = check.shape();
    Json::Object(vec![
        ("key".to_owned(), key.to_json()),
        ("rows".to_owned(), rows.to_json()),
        ("cols".to_owned(), cols.to_json()),
        ("row_words".to_owned(), check.row_words().to_json()),
        ("col_words".to_owned(), check.col_words().to_json()),
    ])
}

fn parity_entry_from_json(value: &Json) -> Result<(String, ParityCheck), JsonError> {
    let key = String::from_json(value.field("key")?)?;
    let rows = usize::from_json(value.field("rows")?)?;
    let cols = usize::from_json(value.field("cols")?)?;
    let row_words: Vec<u32> = Vec::from_json(value.field("row_words")?)?;
    let col_words: Vec<u32> = Vec::from_json(value.field("col_words")?)?;
    if rows == 0 || cols == 0 || row_words.len() != rows || col_words.len() != cols {
        return Err(JsonError::invalid(format!(
            "parity plane for `{key}` has inconsistent shape {rows}x{cols} \
             ({} row words, {} column words)",
            row_words.len(),
            col_words.len()
        )));
    }
    Ok((key, ParityCheck::from_words(rows, cols, row_words, col_words)))
}

/// FNV-1a over every parity key, shape, and exact checksum words.
fn parity_digest(parity: &[(String, ParityCheck)]) -> u64 {
    let mut hash = FNV_OFFSET;
    for (key, check) in parity {
        hash = fnv1a(hash, key.bytes());
        let (rows, cols) = check.shape();
        hash = fnv1a(hash, (rows as u64).to_le_bytes());
        hash = fnv1a(hash, (cols as u64).to_le_bytes());
        for &w in check.row_words().iter().chain(check.col_words()) {
            hash = fnv1a(hash, w.to_le_bytes());
        }
    }
    hash
}

/// FNV-1a over the pattern method, shape, and exact image bit patterns.
pub(crate) fn patterns_digest(patterns: &TestPatternSet) -> u64 {
    let mut hash = fnv1a(FNV_OFFSET, patterns.method().bytes());
    for &dim in patterns.images().shape() {
        hash = fnv1a(hash, (dim as u64).to_le_bytes());
    }
    for &v in patterns.images().as_slice() {
        hash = fnv1a(hash, v.to_bits().to_le_bytes());
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_nn::models::tiny_mlp;

    fn setup(seed: u64) -> (Network, TestPatternSet) {
        let mut rng = SeededRng::new(seed);
        let net = tiny_mlp(8, 16, 4, &mut rng);
        let patterns =
            TestPatternSet::new("t", Tensor::rand_uniform(&[6, 8], 0.0, 1.0, &mut rng));
        (net, patterns)
    }

    fn quiet_aging() -> AgingModel {
        AgingModel { drift_nu: 0.0, drift_time: 0.0, soft_error_p: 0.0, stuck_lambda: 0.0 }
    }

    #[test]
    fn quiet_lifetime_stays_healthy() {
        let (net, patterns) = setup(1);
        let config = LifetimeConfig {
            epochs: 3,
            aging: quiet_aging(),
            crossbar: CrossbarConfig::ideal(),
            ..LifetimeConfig::default()
        };
        let mut runtime = LifetimeRuntime::new(&net, patterns, config, None);
        assert_eq!(runtime.run(None), HealthState::Healthy);
        assert!(runtime.is_finished() && !runtime.is_parked());
        assert_eq!(runtime.repairs_used(), 0);
        // deploy + baseline checkup + 3 × (aged + checkup).
        assert_eq!(runtime.events().len(), 8);
        assert!(runtime.render_report().contains("incident: none"));
    }

    #[test]
    fn heavy_drift_escalates_and_reprogram_heals() {
        let (net, patterns) = setup(2);
        let config = LifetimeConfig {
            epochs: 4,
            aging: AgingModel { drift_nu: 0.6, drift_time: 1.0, ..quiet_aging() },
            crossbar: CrossbarConfig::ideal(),
            ..LifetimeConfig::default()
        };
        let mut runtime = LifetimeRuntime::new(&net, patterns, config, None);
        let state = runtime.run(None);
        assert_eq!(state, HealthState::Healthy, "reprogram must heal pure drift");
        assert!(runtime.incident().is_none());
        let healed = runtime.events().iter().any(|e| {
            matches!(e, LifetimeEvent::RepairAttempted { action, success: true, .. }
                if *action == RepairAction::Reprogram)
        });
        assert!(healed, "expected a successful reprogram; events: {:#?}", runtime.events());
    }

    #[test]
    fn stuck_cells_accumulate_monotonically() {
        let (net, patterns) = setup(3);
        let config = LifetimeConfig {
            epochs: 3,
            aging: AgingModel { stuck_lambda: 8.0, ..quiet_aging() },
            crossbar: CrossbarConfig::ideal(),
            // Never repair: observe raw accumulation.
            policy: MonitorPolicy { watch_threshold: 10.0, critical_threshold: 20.0, ..MonitorPolicy::default() },
            ..LifetimeConfig::default()
        };
        let mut runtime = LifetimeRuntime::new(&net, patterns, config, None);
        let mut last_total = 0usize;
        while !runtime.is_finished() {
            runtime.step();
            let total = runtime.total_stuck();
            assert!(total >= last_total, "stuck cells never vanish without a spare repair");
            last_total = total;
        }
        assert!(last_total > 0, "λ=8 over 3 epochs must land some arrivals");
        // The arrivals are recorded in the event log too.
        let logged: usize = runtime
            .events()
            .iter()
            .map(|e| match e {
                LifetimeEvent::Aged { new_stuck, .. } => *new_stuck,
                _ => 0,
            })
            .sum();
        assert_eq!(logged, last_total);
    }

    #[test]
    fn budget_exhaustion_parks_critical_with_complete_report() {
        let (net, patterns) = setup(4);
        // 2-bit cells leave a quantization floor no repair can cross with
        // thresholds this tight, and there is nothing to retrain with.
        let config = LifetimeConfig {
            epochs: 10,
            aging: quiet_aging(),
            crossbar: CrossbarConfig { cell_bits: 2, ..CrossbarConfig::ideal() },
            policy: MonitorPolicy {
                watch_threshold: 1e-7,
                critical_threshold: 1e-6,
                escalation_count: 1,
            },
            repair_budget: 2,
            ..LifetimeConfig::default()
        };
        let mut runtime = LifetimeRuntime::new(&net, patterns.clone(), config, None);
        let state = runtime.run(None);
        assert_eq!(state, HealthState::Critical);
        assert!(runtime.is_parked() && runtime.is_finished());
        let incident = runtime.incident().expect("parked runtime carries a report");
        assert_eq!(incident.final_state, HealthState::Critical);
        assert_eq!(incident.repairs_attempted, 2);
        assert!(incident.reason.contains("budget exhausted"));
        assert!(incident.epoch >= 1);
        assert!(incident.final_distance.all_classes > 1e-7);
        assert!(incident.recommended_action.contains("retraining"));
        let report = runtime.render_report();
        assert!(report.contains("incident:"));
        assert!(report.contains("parked: repair budget exhausted"));
    }

    #[test]
    fn epoch_panic_is_contained_as_incident() {
        let (net, patterns) = setup(5);
        let train = TrainData {
            images: Tensor::rand_uniform(&[12, 8], 0.0, 1.0, &mut SeededRng::new(6)),
            labels: vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3],
        };
        // retrain.epochs == 0 makes the retrain rung panic; the runtime
        // must park instead of unwinding into the caller.
        let config = LifetimeConfig {
            epochs: 5,
            aging: quiet_aging(),
            crossbar: CrossbarConfig { cell_bits: 2, ..CrossbarConfig::ideal() },
            policy: MonitorPolicy {
                watch_threshold: 1e-7,
                critical_threshold: 1e-6,
                escalation_count: 1,
            },
            retrain: FaultyRetrainConfig { epochs: 0, ..FaultyRetrainConfig::default() },
            ..LifetimeConfig::default()
        };
        let mut runtime = LifetimeRuntime::new(&net, patterns, config, Some(train));
        let state = runtime.run(None);
        assert_eq!(state, HealthState::Critical);
        let incident = runtime.incident().expect("contained panic parks the runtime");
        assert!(incident.reason.contains("panicked"), "reason: {}", incident.reason);
        assert!(incident.reason.contains("non-trivial"), "reason: {}", incident.reason);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let (net, patterns) = setup(7);
        let config = LifetimeConfig {
            epochs: 6,
            aging: AgingModel {
                drift_nu: 0.3,
                drift_time: 1.0,
                soft_error_p: 0.002,
                stuck_lambda: 1.5,
            },
            crossbar: CrossbarConfig::ideal(),
            ..LifetimeConfig::default()
        };

        let mut uninterrupted =
            LifetimeRuntime::new(&net, patterns.clone(), config, None);
        uninterrupted.run(None);

        let mut first = LifetimeRuntime::new(&net, patterns.clone(), config, None);
        first.run(Some(2));
        let checkpoint = first.checkpoint_json();
        drop(first); // the "kill" between the two processes
        let mut resumed =
            LifetimeRuntime::resume(&net, patterns, config, None, &checkpoint).unwrap();
        resumed.run(None);

        assert_eq!(resumed.events(), uninterrupted.events());
        assert_eq!(resumed.monitor().history(), uninterrupted.monitor().history());
        assert_eq!(
            resumed.device().state_dict(),
            uninterrupted.device().state_dict(),
            "resumed device weights must be bit-identical"
        );
        assert_eq!(resumed.render_report(), uninterrupted.render_report());
        assert_eq!(resumed.checkpoint_json(), uninterrupted.checkpoint_json());
    }

    #[test]
    fn resume_rejects_mismatched_inputs() {
        let (net, patterns) = setup(8);
        let config =
            LifetimeConfig { epochs: 2, aging: quiet_aging(), ..LifetimeConfig::default() };
        let mut runtime = LifetimeRuntime::new(&net, patterns.clone(), config, None);
        runtime.run(Some(1));
        let checkpoint = runtime.checkpoint_json();

        // Different config.
        let other = LifetimeConfig { seed: 99, ..config };
        let err = LifetimeRuntime::resume(&net, patterns.clone(), other, None, &checkpoint)
            .unwrap_err();
        assert!(matches!(err, HealthmonError::CheckpointMismatch(_)), "{err}");
        assert!(err.to_string().contains("configuration"));

        // Different golden network.
        let (other_net, _) = setup(9);
        let err = LifetimeRuntime::resume(&other_net, patterns.clone(), config, None, &checkpoint)
            .unwrap_err();
        assert!(err.to_string().contains("golden network"), "{err}");

        // Different pattern set.
        let other_patterns = TestPatternSet::new(
            "t",
            Tensor::rand_uniform(&[6, 8], 0.0, 1.0, &mut SeededRng::new(77)),
        );
        let err = LifetimeRuntime::resume(&net, other_patterns, config, None, &checkpoint)
            .unwrap_err();
        assert!(err.to_string().contains("pattern set"), "{err}");

        // Corrupted format tag.
        let bad = checkpoint.replace(CHECKPOINT_FORMAT, "healthmon-lifetime-checkpoint-v0");
        let err = LifetimeRuntime::resume(&net, patterns, config, None, &bad).unwrap_err();
        assert!(err.to_string().contains("format"), "{err}");
    }

    #[test]
    fn events_round_trip_through_json() {
        let distance = ConfidenceDistance { top_ranked: 0.01, all_classes: 0.02 };
        let events = vec![
            LifetimeEvent::Deployed { tiles: 4, mapping_error_l1: 0.125 },
            LifetimeEvent::Aged { epoch: 1, new_stuck: 2, total_stuck: 5 },
            LifetimeEvent::CheckupDone { epoch: 1, distance, state: HealthState::Watch },
            LifetimeEvent::Diagnosed { epoch: 1, suspect: "layer0.weight".to_owned() },
            LifetimeEvent::RepairAttempted {
                epoch: 1,
                attempt: 3,
                action: RepairAction::Spares,
                state_after: HealthState::Healthy,
                success: true,
            },
            LifetimeEvent::Degraded { epoch: 2, patterns: 3 },
            LifetimeEvent::Scrubbed { epoch: 2, corrected: 4, uncorrectable: 1 },
            LifetimeEvent::Backoff { epoch: 2, until_epoch: 4 },
            LifetimeEvent::Parked { epoch: 5, reason: "out of budget".to_owned() },
        ];
        let json = healthmon_serdes::to_string(&events);
        let back: Vec<LifetimeEvent> = healthmon_serdes::from_str(&json).unwrap();
        assert_eq!(back, events);
        // Every event renders a non-empty deterministic line.
        for event in &events {
            assert!(!event.describe().is_empty());
            assert_eq!(event.describe(), event.describe());
        }
        assert!(healthmon_serdes::from_str::<LifetimeEvent>("{\"kind\":\"nope\"}").is_err());
    }

    #[test]
    fn incident_report_round_trips_and_renders() {
        let incident = IncidentReport {
            epoch: 7,
            reason: "repair budget exhausted".to_owned(),
            final_state: HealthState::Critical,
            final_distance: ConfidenceDistance::POISONED,
            repairs_attempted: 8,
            stuck_cells: 13,
            active_patterns: 2,
            recommended_action: "weight reprogramming / cloud retraining".to_owned(),
        };
        let json = healthmon_serdes::to_string(&incident);
        let back: IncidentReport = healthmon_serdes::from_str(&json).unwrap();
        assert_eq!(back, incident);
        let rendered = incident.render();
        assert!(rendered.contains("epoch: 7"));
        assert!(rendered.contains("final state: critical"));
        assert!(rendered.contains("stuck cells: 13"));
    }

    fn analog_config(epochs: usize, aging: AgingModel) -> LifetimeConfig {
        LifetimeConfig {
            epochs,
            aging,
            backend: BackendSpec::analog(healthmon_reram::CrossbarConfig::exact()),
            ..LifetimeConfig::default()
        }
    }

    #[test]
    fn analog_heavy_drift_escalates_and_reprogram_heals() {
        let (net, patterns) = setup(2);
        let config =
            analog_config(4, AgingModel { drift_nu: 0.6, drift_time: 1.0, ..quiet_aging() });
        let mut runtime = LifetimeRuntime::new(&net, patterns, config, None);
        let state = runtime.run(None);
        assert_eq!(state, HealthState::Healthy, "reprogram must heal pure drift");
        let healed = runtime.events().iter().any(|e| {
            matches!(e, LifetimeEvent::RepairAttempted { action, success: true, .. }
                if *action == RepairAction::Reprogram)
        });
        assert!(healed, "expected a successful reprogram; events: {:#?}", runtime.events());
    }

    #[test]
    fn analog_stuck_arrivals_land_on_live_conductances() {
        let (net, patterns) = setup(3);
        let mut config =
            analog_config(3, AgingModel { stuck_lambda: 8.0, ..quiet_aging() });
        // Never repair: observe the raw conductance-level accumulation.
        config.policy = MonitorPolicy {
            watch_threshold: 10.0,
            critical_threshold: 20.0,
            ..MonitorPolicy::default()
        };
        let mut runtime = LifetimeRuntime::new(&net, patterns, config, None);
        runtime.run(None);
        assert!(runtime.total_stuck() > 0, "λ=8 over 3 epochs must land some arrivals");
        // The sticks live on the crossbars, not on the digital image: the
        // read-back differs from the programmed network exactly there.
        let image = runtime.device().state_dict();
        let live = runtime.device_readback().state_dict();
        assert_ne!(image, live, "stuck conductances must be visible in the read-back");
    }

    #[test]
    fn analog_lifetime_is_deterministic() {
        let (net, patterns) = setup(4);
        let config = analog_config(
            3,
            AgingModel { drift_nu: 0.1, drift_time: 1.0, stuck_lambda: 2.0, ..quiet_aging() },
        );
        let mut a = LifetimeRuntime::new(&net, patterns.clone(), config, None);
        let mut b = LifetimeRuntime::new(&net, patterns, config, None);
        a.run(None);
        b.run(None);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.render_report(), b.render_report());
        assert_eq!(
            a.device_readback().state_dict(),
            b.device_readback().state_dict(),
            "analog lifetimes must be bit-reproducible"
        );
    }

    #[test]
    fn analog_resume_is_rejected() {
        let (net, patterns) = setup(5);
        let digital =
            LifetimeConfig { epochs: 2, aging: quiet_aging(), ..LifetimeConfig::default() };
        let mut runtime = LifetimeRuntime::new(&net, patterns.clone(), digital, None);
        runtime.run(Some(1));
        let checkpoint = runtime.checkpoint_json();
        let analog = LifetimeConfig { backend: analog_config(2, quiet_aging()).backend, ..digital };
        let err =
            LifetimeRuntime::resume(&net, patterns, analog, None, &checkpoint).unwrap_err();
        assert!(matches!(err, HealthmonError::CheckpointMismatch(_)), "{err}");
        assert!(err.to_string().contains("resume is not supported"), "{err}");
    }

    /// Soft-error-only aging under tight thresholds and a small repair
    /// budget: the plain ladder burns budget on every flip, the hardened
    /// runtime scrubs them in-situ for free.
    fn soft_error_config(hardened: bool) -> LifetimeConfig {
        LifetimeConfig {
            seed: 16,
            epochs: 6,
            aging: AgingModel { soft_error_p: 0.006, ..quiet_aging() },
            crossbar: CrossbarConfig::exact(),
            policy: MonitorPolicy {
                watch_threshold: 1e-6,
                critical_threshold: 1e-3,
                escalation_count: 1,
            },
            repair_budget: 3,
            hardened,
            ..LifetimeConfig::default()
        }
    }

    #[test]
    fn hardened_digital_scrubs_soft_errors_and_avoids_repairs() {
        let (net, patterns) = setup(16);

        let mut plain = LifetimeRuntime::new(&net, patterns.clone(), soft_error_config(false), None);
        plain.run(None);
        assert!(plain.repairs_used() > 0, "plain ladder must burn repair budget on soft errors");
        assert_eq!(plain.soft_corrected(), 0);

        let mut hardened =
            LifetimeRuntime::new(&net, patterns, soft_error_config(true), None);
        let state = hardened.run(None);
        assert_eq!(state, HealthState::Healthy, "scrubbed soft errors never reach the monitor");
        assert_eq!(hardened.repairs_used(), 0, "online tolerance is a zero-repair-cost rung");
        assert!(hardened.soft_corrected() > 0, "p=0.02 over 6 epochs must flip something");
        assert!(hardened.events().iter().any(|e| matches!(e, LifetimeEvent::Scrubbed { .. })));
        assert!(hardened.repairs_used() < plain.repairs_used());
        // The scrub restores bit patterns exactly: the device ends the
        // lifetime bit-identical to its deployment.
        let report = hardened.render_report();
        assert!(report.contains("soft errors scrubbed:"), "report: {report}");
    }

    #[test]
    fn hardened_scrub_restores_device_bitwise() {
        let (net, patterns) = setup(16);
        let mut runtime = LifetimeRuntime::new(&net, patterns, soft_error_config(true), None);
        let deployed = runtime.device().state_dict();
        runtime.run(None);
        assert!(runtime.soft_corrected() > 0);
        assert_eq!(runtime.soft_uncorrectable(), 0, "isolated flips are always correctable");
        assert_eq!(
            runtime.device().state_dict(),
            deployed,
            "with drift and stuck aging off, every epoch must scrub back to the deployed bits"
        );
    }

    #[test]
    fn hardened_checkpoint_resume_is_bit_identical() {
        let (net, patterns) = setup(13);
        let config = LifetimeConfig {
            epochs: 6,
            aging: AgingModel {
                drift_nu: 0.05,
                drift_time: 1.0,
                soft_error_p: 0.02,
                stuck_lambda: 0.5,
            },
            crossbar: CrossbarConfig::ideal(),
            hardened: true,
            ..LifetimeConfig::default()
        };

        let mut uninterrupted = LifetimeRuntime::new(&net, patterns.clone(), config, None);
        uninterrupted.run(None);
        assert!(uninterrupted.soft_corrected() > 0, "the scenario must exercise the scrubber");

        let mut first = LifetimeRuntime::new(&net, patterns.clone(), config, None);
        first.run(Some(2));
        assert!(
            first.soft_corrected() > 0,
            "resume must happen after at least one corrected soft error"
        );
        let checkpoint = first.checkpoint_json();
        drop(first);
        let mut resumed =
            LifetimeRuntime::resume(&net, patterns, config, None, &checkpoint).unwrap();
        resumed.run(None);

        assert_eq!(resumed.events(), uninterrupted.events());
        assert_eq!(resumed.soft_corrected(), uninterrupted.soft_corrected());
        assert_eq!(resumed.soft_uncorrectable(), uninterrupted.soft_uncorrectable());
        assert_eq!(resumed.device().state_dict(), uninterrupted.device().state_dict());
        assert_eq!(resumed.render_report(), uninterrupted.render_report());
        assert_eq!(resumed.checkpoint_json(), uninterrupted.checkpoint_json());
    }

    #[test]
    fn hardened_resume_rejects_tampered_parity() {
        let (net, patterns) = setup(13);
        let config = LifetimeConfig {
            epochs: 4,
            aging: AgingModel { soft_error_p: 0.02, ..quiet_aging() },
            crossbar: CrossbarConfig::ideal(),
            hardened: true,
            ..LifetimeConfig::default()
        };
        let mut runtime = LifetimeRuntime::new(&net, patterns.clone(), config, None);
        runtime.run(Some(2));
        let checkpoint = runtime.checkpoint_json();

        let digest = parity_digest(&runtime.parity).to_string();
        let tampered = checkpoint.replace(&digest, "12345");
        assert_ne!(tampered, checkpoint, "the digest must appear in the checkpoint");
        let err =
            LifetimeRuntime::resume(&net, patterns.clone(), config, None, &tampered).unwrap_err();
        assert!(err.to_string().contains("parity state"), "{err}");

        // An unhardened checkpoint cannot seed a hardened resume.
        let plain_config = LifetimeConfig { hardened: false, ..config };
        let mut plain = LifetimeRuntime::new(&net, patterns.clone(), plain_config, None);
        plain.run(Some(1));
        let plain_checkpoint = plain.checkpoint_json();
        assert!(
            !plain_checkpoint.contains("parity_digest"),
            "unhardened checkpoints keep the historical v1 layout"
        );
        let err = LifetimeRuntime::resume(&net, patterns, config, None, &plain_checkpoint)
            .unwrap_err();
        assert!(matches!(err, HealthmonError::CheckpointMismatch(_)), "{err}");
    }

    #[test]
    fn hardened_analog_scrubs_conductance_flips() {
        let (net, patterns) = setup(16);
        let config = LifetimeConfig {
            backend: BackendSpec::analog(healthmon_reram::CrossbarConfig::exact()),
            epochs: 4,
            ..soft_error_config(true)
        };
        let mut runtime = LifetimeRuntime::new(&net, patterns, config, None);
        let state = runtime.run(None);
        assert_eq!(state, HealthState::Healthy, "scrubbed flips never reach the monitor");
        assert_eq!(runtime.repairs_used(), 0);
        assert!(runtime.soft_corrected() > 0, "p=0.01 over 4 epochs must flip some cells");
        // In exact mode the scrubbed crossbars read back bit-identical to
        // the programmed digital image.
        assert_eq!(
            runtime.device_readback().state_dict(),
            runtime.device().state_dict(),
            "corrected flips must leave no residue in the read-back"
        );
    }

    #[test]
    #[should_panic(expected = "trigger must be Watch or Critical")]
    fn rejects_healthy_trigger() {
        LifetimeConfig { trigger: HealthState::Healthy, ..LifetimeConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn stepping_a_finished_lifetime_panics() {
        let (net, patterns) = setup(10);
        let config =
            LifetimeConfig { epochs: 1, aging: quiet_aging(), ..LifetimeConfig::default() };
        let mut runtime = LifetimeRuntime::new(&net, patterns, config, None);
        runtime.run(None);
        runtime.step();
    }
}
