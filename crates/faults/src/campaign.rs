//! Fault campaigns: statistical fleets of fault models derived from one
//! golden network.
//!
//! The paper reports detection rates averaged over 100 fault models per
//! error level; [`FaultCampaign`] reproduces that protocol with exact
//! per-index determinism, and [`par_map_models`] fans evaluation out
//! across threads.

use crate::FaultModel;
use healthmon_nn::Network;
use healthmon_tensor::{pool, SeededRng};
use healthmon_telemetry as tel;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

// Sweep shape (how many models were evaluated) is part of the campaign
// spec, so these are Stable regardless of how chunks land on threads.
static CAMPAIGN_SWEEPS: tel::Counter =
    tel::Counter::new("campaign.sweeps", tel::Stability::Stable);
static CAMPAIGN_MODELS: tel::Counter =
    tel::Counter::new("campaign.models_evaluated", tel::Stability::Stable);
static CAMPAIGN_PANICS: tel::Counter =
    tel::Counter::new("campaign.contained_panics", tel::Stability::Stable);

/// A generator of faulty copies of a golden network.
///
/// Fault model `i` of a campaign is always identical for the same
/// `(golden weights, campaign seed, fault spec, i)` regardless of how many
/// other models were generated or in what order — each index derives its
/// own RNG stream.
#[derive(Debug, Clone)]
pub struct FaultCampaign<'a> {
    golden: &'a Network,
    seed: u64,
}

impl<'a> FaultCampaign<'a> {
    /// Creates a campaign over `golden` with the given seed.
    pub fn new(golden: &'a Network, seed: u64) -> Self {
        FaultCampaign { golden, seed }
    }

    /// The campaign seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The RNG stream for fault-model `index`.
    fn stream(&self, index: usize) -> SeededRng {
        SeededRng::new(self.seed).fork(index as u64)
    }

    /// Builds fault model `index`: a clone of the golden network with
    /// `fault` applied under the index's own RNG stream.
    pub fn model(&self, fault: &FaultModel, index: usize) -> Network {
        let mut net = self.golden.clone();
        let mut rng = self.stream(index);
        fault.apply(&mut net, &mut rng);
        net
    }

    /// Iterates over the first `count` fault models.
    pub fn models<'b>(
        &'b self,
        fault: &'b FaultModel,
        count: usize,
    ) -> impl Iterator<Item = Network> + 'b {
        (0..count).map(move |i| self.model(fault, i))
    }
}

/// The evaluation closure of a [`try_par_map_models`] campaign panicked.
///
/// The campaign is wound down in an orderly fashion (every other model's
/// evaluation still completes) and the *lowest* panicking index is
/// reported, so the failure is deterministic regardless of thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignPanic {
    /// The lowest fault-model index whose evaluation panicked.
    pub index: usize,
    /// The panic payload, when it was a string (the common case); a
    /// placeholder otherwise.
    pub message: String,
}

impl fmt::Display for CampaignPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation of fault model {} panicked: {}", self.index, self.message)
    }
}

impl Error for CampaignPanic {}

/// The number of worker threads to use for `len` independent items,
/// derived from the process-wide cached budget
/// ([`healthmon_tensor::pool::max_threads`]).
fn auto_threads(len: usize) -> usize {
    pool::max_threads().min(len.max(1))
}

/// Evaluates `f` on the fault models named by `indices`, using exactly
/// `threads` worker threads (clamped to `[1, indices.len()]`), returning
/// results in the order of `indices`.
///
/// This is the engine under every `par_map_*` entry point; exposed so
/// resumable campaign drivers can evaluate an arbitrary remainder set.
/// Determinism matches [`FaultCampaign::model`]: the result for index `i`
/// depends only on `(golden, fault, seed, i)`, never on `threads`.
pub fn par_map_indices_with_threads<T, F>(
    golden: &Network,
    fault: &FaultModel,
    seed: u64,
    indices: &[usize],
    threads: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Network) -> T + Sync,
{
    let threads = threads.clamp(1, indices.len().max(1));
    let campaign = FaultCampaign::new(golden, seed);
    let mut results: Vec<Option<T>> = (0..indices.len()).map(|_| None).collect();
    if results.is_empty() {
        return Vec::new();
    }
    CAMPAIGN_SWEEPS.inc();
    CAMPAIGN_MODELS.add(indices.len() as u64);
    let _sweep_span = tel::span("campaign.sweep");
    let chunk = indices.len().div_ceil(threads);
    pool::run_chunks(&mut results, chunk, |ci, slots| {
        let idx_chunk = &indices[ci * chunk..ci * chunk + slots.len()];
        // One scratch network per chunk: cloned once, then re-derived per
        // index by copying the golden parameters in place. Every index
        // sees the same reset (params = golden, grads = 0) regardless of
        // its position in the chunk, so results are independent of chunk
        // boundaries and thread count. Evaluation closures must not read
        // state they did not produce (see the determinism contract in
        // DESIGN.md).
        let mut scratch: Option<Network> = None;
        for (&i, slot) in idx_chunk.iter().zip(slots.iter_mut()) {
            let net = match scratch.as_mut() {
                Some(net) => {
                    net.copy_params_from(golden);
                    net
                }
                None => scratch.insert(golden.clone()),
            };
            net.zero_grads();
            let mut rng = campaign.stream(i);
            fault.apply(net, &mut rng);
            *slot = Some(f(i, net));
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every index was evaluated"))
        .collect()
}

/// [`par_map_indices_with_threads`] with an automatic thread count.
pub fn par_map_indices<T, F>(
    golden: &Network,
    fault: &FaultModel,
    seed: u64,
    indices: &[usize],
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Network) -> T + Sync,
{
    par_map_indices_with_threads(golden, fault, seed, indices, auto_threads(indices.len()), f)
}

/// Evaluates `f` on `count` fault models in parallel, returning results in
/// index order.
///
/// `f` receives the fault-model index and a mutable reference to that
/// index's faulty network (mutable because inference through
/// [`Network::forward`] caches activations).
///
/// Determinism matches [`FaultCampaign::model`]: the result for index `i`
/// does not depend on thread count.
pub fn par_map_models<T, F>(
    golden: &Network,
    fault: &FaultModel,
    seed: u64,
    count: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Network) -> T + Sync,
{
    par_map_models_with_threads(golden, fault, seed, count, auto_threads(count), f)
}

/// [`par_map_models`] with an explicit worker-thread count (clamped to
/// `[1, count]`) — for determinism tests and for callers that must bound
/// their parallelism.
pub fn par_map_models_with_threads<T, F>(
    golden: &Network,
    fault: &FaultModel,
    seed: u64,
    count: usize,
    threads: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Network) -> T + Sync,
{
    let indices: Vec<usize> = (0..count).collect();
    par_map_indices_with_threads(golden, fault, seed, &indices, threads, f)
}

/// Fault-containing variant of [`par_map_models`]: a panic in `f` is
/// caught per model and surfaced as an orderly [`CampaignPanic`] instead
/// of tearing down the caller.
///
/// All `count` evaluations run to completion (panicking or not) so the
/// reported index is the lowest panicking one, independent of thread
/// count and scheduling.
pub fn try_par_map_models<T, F>(
    golden: &Network,
    fault: &FaultModel,
    seed: u64,
    count: usize,
    f: F,
) -> Result<Vec<T>, CampaignPanic>
where
    T: Send,
    F: Fn(usize, &mut Network) -> T + Sync,
{
    let outcomes = par_map_models(golden, fault, seed, count, |i, net| {
        catch_unwind(AssertUnwindSafe(|| f(i, net)))
    });
    let mut results = Vec::with_capacity(count);
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(v) => results.push(v),
            Err(payload) => {
                CAMPAIGN_PANICS.inc();
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                return Err(CampaignPanic { index: i, message });
            }
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_nn::models::tiny_mlp;
    use healthmon_tensor::Tensor;

    fn golden() -> Network {
        let mut rng = SeededRng::new(1);
        tiny_mlp(4, 8, 3, &mut rng)
    }

    fn weights(net: &Network) -> Vec<f32> {
        let mut v = Vec::new();
        net.for_each_param(|_, t| v.extend_from_slice(t.as_slice()));
        v
    }

    #[test]
    fn model_index_is_deterministic() {
        let g = golden();
        let c = FaultCampaign::new(&g, 5);
        let fault = FaultModel::ProgrammingVariation { sigma: 0.2 };
        let a = c.model(&fault, 3);
        let b = c.model(&fault, 3);
        assert_eq!(weights(&a), weights(&b));
    }

    #[test]
    fn different_indices_differ() {
        let g = golden();
        let c = FaultCampaign::new(&g, 5);
        let fault = FaultModel::ProgrammingVariation { sigma: 0.2 };
        assert_ne!(weights(&c.model(&fault, 0)), weights(&c.model(&fault, 1)));
    }

    #[test]
    fn different_seeds_differ() {
        let g = golden();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.2 };
        let a = FaultCampaign::new(&g, 1).model(&fault, 0);
        let b = FaultCampaign::new(&g, 2).model(&fault, 0);
        assert_ne!(weights(&a), weights(&b));
    }

    #[test]
    fn golden_model_unchanged_by_campaign() {
        let g = golden();
        let before = weights(&g);
        let c = FaultCampaign::new(&g, 5);
        let _ = c
            .models(&FaultModel::RandomSoftError { probability: 0.5 }, 4)
            .collect::<Vec<_>>();
        assert_eq!(before, weights(&g));
    }

    #[test]
    fn par_map_matches_sequential() {
        let g = golden();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.3 };
        let x = Tensor::ones(&[4]);
        let seq: Vec<f32> = FaultCampaign::new(&g, 9)
            .models(&fault, 8)
            .map(|mut net| net.forward_single(&x).sum())
            .collect();
        let par = par_map_models(&g, &fault, 9, 8, |_, net| net.forward_single(&x).sum());
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_preserves_index_order() {
        let g = golden();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.1 };
        let idx = par_map_models(&g, &fault, 0, 13, |i, _| i);
        assert_eq!(idx, (0..13).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_zero_count_is_empty() {
        let g = golden();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.1 };
        let out: Vec<usize> = par_map_models(&g, &fault, 0, 0, |i, _| i);
        assert!(out.is_empty());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let g = golden();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.25 };
        let x = Tensor::ones(&[4]);
        let runs: Vec<Vec<u32>> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                par_map_models_with_threads(&g, &fault, 13, 11, threads, |_, net| {
                    net.forward_single(&x).sum().to_bits()
                })
            })
            .collect();
        assert_eq!(runs[0], runs[1], "2 threads diverged from sequential");
        assert_eq!(runs[0], runs[2], "8 threads diverged from sequential");
    }

    #[test]
    fn scratch_reuse_does_not_leak_between_indices() {
        // A sparse fault touches few weights per index, so any incomplete
        // scratch reset between consecutive indices of a chunk would leave
        // the previous model's corruption behind. Compare against fresh
        // clones at several thread counts (= several chunk geometries).
        let g = golden();
        let fault = FaultModel::RandomSoftError { probability: 0.02 };
        let x = Tensor::ones(&[4]);
        let fresh: Vec<u32> = FaultCampaign::new(&g, 77)
            .models(&fault, 12)
            .map(|mut net| net.forward_single(&x).sum().to_bits())
            .collect();
        for threads in [1usize, 2, 5, 12] {
            let reused = par_map_models_with_threads(&g, &fault, 77, 12, threads, |_, net| {
                net.forward_single(&x).sum().to_bits()
            });
            assert_eq!(fresh, reused, "scratch reuse leaked state at {threads} threads");
        }
    }

    #[test]
    fn par_map_indices_matches_full_sweep() {
        let g = golden();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.2 };
        let x = Tensor::ones(&[4]);
        let full = par_map_models(&g, &fault, 21, 10, |_, net| {
            net.forward_single(&x).sum().to_bits()
        });
        let subset = [7usize, 2, 9];
        let partial = par_map_indices(&g, &fault, 21, &subset, |_, net| {
            net.forward_single(&x).sum().to_bits()
        });
        for (&i, &v) in subset.iter().zip(&partial) {
            assert_eq!(full[i], v, "index {i} differs between full and partial sweeps");
        }
    }

    #[test]
    fn try_par_map_contains_a_panicking_closure() {
        let g = golden();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.1 };
        let err = try_par_map_models(&g, &fault, 0, 9, |i, _| {
            if i >= 4 {
                panic!("model {i} exploded");
            }
            i
        })
        .unwrap_err();
        // Lowest panicking index, deterministically, with the payload.
        assert_eq!(err.index, 4);
        assert_eq!(err.message, "model 4 exploded");
        assert!(err.to_string().contains("fault model 4"));
    }

    #[test]
    fn try_par_map_passes_through_clean_campaigns() {
        let g = golden();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.1 };
        let out = try_par_map_models(&g, &fault, 3, 6, |i, _| i).unwrap();
        assert_eq!(out, (0..6).collect::<Vec<_>>());
    }
}
