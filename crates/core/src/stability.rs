//! Stability analysis: coefficient of variation of confidence distances
//! (paper Table IV).
//!
//! A good testing method should report *consistent* confidence distances
//! across different fault models drawn from the same error level; the
//! paper quantifies this with the coefficient of variation `CV = σ/μ`
//! (smaller is more stable).

use crate::confidence::ConfidenceDistance;

/// Mean, standard deviation and coefficient of variation of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesStats {
    /// Arithmetic mean.
    pub mean: f32,
    /// Population standard deviation.
    pub std: f32,
    /// Coefficient of variation `std / mean` (0 when the mean is 0).
    pub cv: f32,
}

/// Computes series statistics.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn series_stats(values: &[f32]) -> SeriesStats {
    assert!(!values.is_empty(), "statistics of an empty series are undefined");
    let n = values.len() as f64;
    let mean = values.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var = values
        .iter()
        .map(|&v| (v as f64 - mean) * (v as f64 - mean))
        .sum::<f64>()
        / n;
    let std = var.sqrt();
    let cv = if mean.abs() < f64::EPSILON { 0.0 } else { std / mean };
    SeriesStats { mean: mean as f32, std: std as f32, cv: cv as f32 }
}

/// Stability of a campaign's confidence distances: the CV of the
/// top-ranked distance series and of the all-class distance series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityReport {
    /// Stats of the top-ranked confidence-distance series.
    pub top_ranked: SeriesStats,
    /// Stats of the all-class confidence-distance series.
    pub all_classes: SeriesStats,
}

/// Computes the paper's Table IV quantity from a campaign's distances
/// (see [`crate::Detector::campaign_distances`]).
///
/// # Panics
///
/// Panics if `distances` is empty.
pub fn stability(distances: &[ConfidenceDistance]) -> StabilityReport {
    let top: Vec<f32> = distances.iter().map(|d| d.top_ranked).collect();
    let all: Vec<f32> = distances.iter().map(|d| d.all_classes).collect();
    StabilityReport { top_ranked: series_stats(&top), all_classes: series_stats(&all) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_hand_example() {
        let s = series_stats(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-6);
        assert!((s.std - 2.0).abs() < 1e-6);
        assert!((s.cv - 0.4).abs() < 1e-6);
    }

    #[test]
    fn constant_series_has_zero_cv() {
        let s = series_stats(&[3.0, 3.0, 3.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.cv, 0.0);
    }

    #[test]
    fn zero_mean_cv_defined_as_zero() {
        let s = series_stats(&[0.0, 0.0]);
        assert_eq!(s.cv, 0.0);
    }

    #[test]
    fn tighter_series_has_smaller_cv() {
        let loose = series_stats(&[1.0, 5.0, 9.0]);
        let tight = series_stats(&[4.5, 5.0, 5.5]);
        assert!(tight.cv < loose.cv);
    }

    #[test]
    fn stability_report_from_distances() {
        let distances = vec![
            ConfidenceDistance { top_ranked: 0.10, all_classes: 0.02 },
            ConfidenceDistance { top_ranked: 0.12, all_classes: 0.03 },
            ConfidenceDistance { top_ranked: 0.08, all_classes: 0.01 },
        ];
        let report = stability(&distances);
        assert!((report.top_ranked.mean - 0.10).abs() < 1e-6);
        assert!(report.all_classes.cv > report.top_ranked.cv);
    }

    #[test]
    #[should_panic(expected = "empty series")]
    fn rejects_empty() {
        series_stats(&[]);
    }
}
