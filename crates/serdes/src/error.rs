//! The JSON error type shared by parsing and conversion.

use crate::value::Json;
use std::error::Error;
use std::fmt;

/// An error from JSON parsing, conversion, or file IO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// The text is not valid JSON.
    Parse {
        /// Byte offset of the error in the input.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A value had the wrong JSON type for the target.
    Type {
        /// The type the target expected.
        expected: &'static str,
        /// The type actually found.
        found: &'static str,
    },
    /// An object was missing a required field.
    MissingField(String),
    /// A value was structurally valid JSON but semantically out of range
    /// for the target (e.g. a negative count, an unknown enum tag).
    Invalid(String),
    /// Reading or writing the underlying file failed.
    Io(String),
}

impl JsonError {
    /// Convenience constructor for "expected X, found Y" mismatches;
    /// usable by downstream `FromJson` impls as well.
    pub fn type_error(expected: &'static str, found: &Json) -> Self {
        JsonError::Type { expected, found: found.type_name() }
    }

    /// Convenience constructor for semantic errors.
    pub fn invalid(message: impl Into<String>) -> Self {
        JsonError::Invalid(message.into())
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse { offset, message } => {
                write!(f, "JSON parse error at byte {offset}: {message}")
            }
            JsonError::Type { expected, found } => {
                write!(f, "expected JSON {expected}, found {found}")
            }
            JsonError::MissingField(key) => write!(f, "missing JSON field `{key}`"),
            JsonError::Invalid(message) => write!(f, "invalid JSON value: {message}"),
            JsonError::Io(message) => write!(f, "i/o error: {message}"),
        }
    }
}

impl Error for JsonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        let e = JsonError::Parse { offset: 12, message: "unexpected `}`".into() };
        assert!(e.to_string().contains("byte 12"));
        assert!(JsonError::MissingField("shape".into()).to_string().contains("`shape`"));
        assert!(JsonError::Type { expected: "array", found: "null" }
            .to_string()
            .contains("expected JSON array"));
    }
}
