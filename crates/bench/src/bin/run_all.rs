//! Runs every table/figure experiment in sequence. Outputs are printed
//! and mirrored to `artifacts/*.txt`; set `HEALTHMON_MODELS_PER_LEVEL`
//! (default 100) and `HEALTHMON_ACC_SAMPLES` (default 500) to trade
//! fidelity for speed.

use std::process::Command;

fn main() {
    let bins = [
        "table1", "table2", "table3", "table4", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
        "fig8", "ablations",
    ];
    let self_path = std::env::current_exe().expect("current exe path");
    let bin_dir = self_path.parent().expect("exe has a parent dir").to_path_buf();
    let mut failed = Vec::new();
    for bin in bins {
        eprintln!("=== running {bin} ===");
        let status = Command::new(bin_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        if !status.success() {
            eprintln!("!!! {bin} exited with {status}");
            failed.push(bin);
        }
    }
    if failed.is_empty() {
        eprintln!("all experiments completed; outputs in artifacts/");
    } else {
        eprintln!("failed experiments: {failed:?}");
        std::process::exit(1);
    }
}
