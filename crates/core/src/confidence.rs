//! Confidence responses and confidence-distance measures.
//!
//! Every SDC detection criterion in the paper reduces to comparing two
//! [`ResponseSet`]s — the golden model's softmax responses on the test
//! patterns versus a running accelerator's — through a
//! [`ConfidenceDistance`].

use healthmon_serdes::{FromJson, Json, JsonError, ToJson};
use healthmon_tensor::Tensor;

/// The softmax responses of one model on one pattern set.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseSet {
    /// Raw logits, `[patterns, classes]`.
    logits: Tensor,
    /// Softmax probabilities, `[patterns, classes]`.
    probs: Tensor,
}

impl ResponseSet {
    /// Builds a response set from raw logits.
    ///
    /// A poisoned accelerator emits non-finite logits; the softmax kernel
    /// (rightly) refuses NaN input, so instead of panicking the monitor,
    /// every probability is marked NaN — which
    /// [`ConfidenceDistance::between`] maps to
    /// [`ConfidenceDistance::POISONED`].
    ///
    /// # Panics
    ///
    /// Panics if `logits` is not 2-D.
    pub fn from_logits(logits: Tensor) -> Self {
        assert_eq!(logits.ndim(), 2, "responses must be [patterns, classes]");
        let probs = if logits.all_finite() {
            logits.softmax_rows()
        } else {
            Tensor::from_vec(vec![f32::NAN; logits.len()], logits.shape())
                .expect("poisoned probs keep the logit shape")
        };
        ResponseSet { logits, probs }
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.logits.shape()[0]
    }

    /// Whether there are no patterns.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.logits.shape()[1]
    }

    /// Raw logits, `[patterns, classes]`.
    pub fn logits(&self) -> &Tensor {
        &self.logits
    }

    /// Softmax probabilities, `[patterns, classes]`.
    pub fn probs(&self) -> &Tensor {
        &self.probs
    }

    /// Top-1 class of pattern `p`.
    pub fn top1(&self, p: usize) -> usize {
        self.probs.row(p).argmax()
    }

    /// The set of top-`k` classes of pattern `p`, sorted ascending (order
    /// within the top-k is deliberately discarded: SDC-5 asks whether the
    /// *membership* changed).
    pub fn topk_set(&self, p: usize, k: usize) -> Vec<usize> {
        let mut idx = self.probs.row(p).topk(k).indices;
        idx.sort_unstable();
        idx
    }

    /// A response set containing only the first `k` patterns.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the pattern count.
    pub fn truncated(&self, k: usize) -> ResponseSet {
        assert!(k > 0 && k <= self.len(), "cannot truncate {} responses to {k}", self.len());
        let classes = self.classes();
        let rows: Vec<Tensor> = (0..k).map(|p| self.logits.row(p)).collect();
        let logits = Tensor::stack_rows(&rows)
            .reshape(&[k, classes])
            .expect("stack preserves shape");
        ResponseSet::from_logits(logits)
    }
}

/// The two confidence-distance aggregates the paper evaluates (Fig 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceDistance {
    /// **SDC-T distance**: mean over patterns of
    /// `|p_ideal[c*] − p_target[c*]|` where `c*` is the ideal model's
    /// top-1 class for that pattern.
    pub top_ranked: f32,
    /// **SDC-A distance**: mean over patterns and classes of
    /// `|p_ideal − p_target|`.
    pub all_classes: f32,
}

impl ToJson for ConfidenceDistance {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("top_ranked".to_owned(), self.top_ranked.to_json()),
            ("all_classes".to_owned(), self.all_classes.to_json()),
        ])
    }
}

impl FromJson for ConfidenceDistance {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ConfidenceDistance {
            top_ranked: f32::from_json(value.field("top_ranked")?)?,
            all_classes: f32::from_json(value.field("all_classes")?)?,
        })
    }
}

impl ConfidenceDistance {
    /// The distance reported for a poisoned comparison: both aggregates
    /// at `+inf`, which is `>=` every finite monitoring threshold.
    pub const POISONED: ConfidenceDistance =
        ConfidenceDistance { top_ranked: f32::INFINITY, all_classes: f32::INFINITY };

    /// Whether either aggregate is non-finite — i.e. one of the compared
    /// response sets contained NaN or infinite probabilities.
    pub fn is_poisoned(&self) -> bool {
        !self.top_ranked.is_finite() || !self.all_classes.is_finite()
    }

    /// Computes both distances between an ideal (golden) response set and
    /// a target (possibly faulty) one.
    ///
    /// If either set contains a non-finite probability (a NaN or infinite
    /// logit poisons the whole softmax row) the result is
    /// [`ConfidenceDistance::POISONED`] rather than a NaN-laced mean:
    /// `NaN >= threshold` is false for every threshold, so propagating the
    /// NaN would make a dead accelerator read *healthy* downstream.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different shapes.
    pub fn between(ideal: &ResponseSet, target: &ResponseSet) -> Self {
        assert_eq!(ideal.len(), target.len(), "response sets must cover the same patterns");
        assert_eq!(ideal.classes(), target.classes(), "response sets must share classes");
        if !ideal.probs.all_finite() || !target.probs.all_finite() {
            return ConfidenceDistance::POISONED;
        }
        let n = ideal.len();
        let classes = ideal.classes();
        let pi = ideal.probs.as_slice();
        let pt = target.probs.as_slice();
        let mut top_sum = 0.0f64;
        let mut all_sum = 0.0f64;
        for p in 0..n {
            let row = p * classes;
            let mut top_class = 0usize;
            let mut top_val = f32::NEG_INFINITY;
            let mut row_abs = 0.0f32;
            for c in 0..classes {
                let a = pi[row + c];
                if a > top_val {
                    top_val = a;
                    top_class = c;
                }
                row_abs += (a - pt[row + c]).abs();
            }
            top_sum += (pi[row + top_class] - pt[row + top_class]).abs() as f64;
            all_sum += (row_abs / classes as f32) as f64;
        }
        ConfidenceDistance {
            top_ranked: (top_sum / n as f64) as f32,
            all_classes: (all_sum / n as f64) as f32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(rows: &[&[f32]]) -> ResponseSet {
        let tensors: Vec<Tensor> = rows.iter().map(|r| Tensor::from_slice(r)).collect();
        ResponseSet::from_logits(
            Tensor::stack_rows(&tensors),
        )
    }

    #[test]
    fn identical_sets_have_zero_distance() {
        let a = set(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 5.0]]);
        let d = ConfidenceDistance::between(&a, &a);
        assert_eq!(d.top_ranked, 0.0);
        assert_eq!(d.all_classes, 0.0);
    }

    #[test]
    fn distances_grow_with_perturbation() {
        let ideal = set(&[&[2.0, 0.0, 0.0]]);
        let near = set(&[&[1.8, 0.1, 0.1]]);
        let far = set(&[&[0.0, 2.0, 0.0]]);
        let d_near = ConfidenceDistance::between(&ideal, &near);
        let d_far = ConfidenceDistance::between(&ideal, &far);
        assert!(d_far.top_ranked > d_near.top_ranked);
        assert!(d_far.all_classes > d_near.all_classes);
    }

    #[test]
    fn top_ranked_uses_ideal_top_class() {
        // Ideal top class is 0; target moved mass from 0 to 1.
        let ideal = set(&[&[3.0, 0.0]]);
        let target = set(&[&[0.0, 3.0]]);
        let d = ConfidenceDistance::between(&ideal, &target);
        let p_hi = 3.0f32.exp() / (3.0f32.exp() + 1.0);
        let expected = p_hi - (1.0 - p_hi);
        assert!((d.top_ranked - expected).abs() < 1e-5);
    }

    #[test]
    fn all_classes_is_mean_l1_over_classes() {
        let ideal = set(&[&[0.0, 0.0]]); // probs (0.5, 0.5)
        let target = set(&[&[f32::ln(3.0), 0.0]]); // probs (0.75, 0.25)
        let d = ConfidenceDistance::between(&ideal, &target);
        assert!((d.all_classes - 0.25).abs() < 1e-5);
    }

    #[test]
    fn top1_and_topk() {
        let a = set(&[&[0.1, 5.0, 2.0, 3.0]]);
        assert_eq!(a.top1(0), 1);
        assert_eq!(a.topk_set(0, 2), vec![1, 3]);
        assert_eq!(a.topk_set(0, 3), vec![1, 2, 3]);
    }

    #[test]
    fn probs_are_normalized() {
        let a = set(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        for p in 0..2 {
            assert!((a.probs().row(p).sum() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn truncated_prefix() {
        let a = set(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]);
        let t = a.truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.top1(0), a.top1(0));
        assert_eq!(t.top1(1), a.top1(1));
    }

    #[test]
    fn non_finite_target_poisons_the_distance() {
        let ideal = set(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let target = set(&[&[1.0, 0.0], &[f32::NAN, 1.0]]);
        let d = ConfidenceDistance::between(&ideal, &target);
        assert!(d.is_poisoned());
        assert_eq!(d.top_ranked, f32::INFINITY);
        assert_eq!(d.all_classes, f32::INFINITY);
        // Symmetric: a poisoned golden set is equally invalid.
        let d = ConfidenceDistance::between(&target, &ideal);
        assert!(d.is_poisoned());
    }

    #[test]
    fn infinite_logits_poison_too() {
        let ideal = set(&[&[1.0, 0.0]]);
        // exp(inf - inf) = NaN in the softmax row.
        let target = set(&[&[f32::INFINITY, f32::INFINITY]]);
        assert!(ConfidenceDistance::between(&ideal, &target).is_poisoned());
    }

    #[test]
    fn finite_distances_are_not_poisoned() {
        let a = set(&[&[1.0, 2.0, 3.0]]);
        assert!(!ConfidenceDistance::between(&a, &a).is_poisoned());
    }

    #[test]
    #[should_panic(expected = "same patterns")]
    fn rejects_mismatched_sets() {
        let a = set(&[&[1.0, 0.0]]);
        let b = set(&[&[1.0, 0.0], &[0.0, 1.0]]);
        ConfidenceDistance::between(&a, &b);
    }
}
