//! `healthmon` — command-line workflow for concurrent test of ReRAM NN
//! accelerators.
//!
//! ```text
//! healthmon train    --arch lenet5 --out model.json [--epochs 4] [--seed 7]
//! healthmon inject   --arch lenet5 --model model.json --fault pv:0.3 --out faulty.json [--seed 2020]
//! healthmon generate --arch lenet5 --model model.json --method ctp --out patterns.json [--count 50]
//! healthmon check    --arch lenet5 --model model.json --target faulty.json \
//!                    --patterns patterns.json [--threshold 0.03]
//! healthmon lifetime --arch lenet5 --model model.json --epochs 20 \
//!                    [--checkpoint cp.json] [--report report.txt]
//! ```
//!
//! Every artifact is a JSON file: models are state dicts
//! ([`healthmon_nn::Network::save_weights`]), pattern sets are image
//! tensors. Exit code of `check` is 0 for healthy, 2 for faulty, so it
//! can gate a maintenance cron job directly.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
