//! Uniform quantization shared by the DAC, ADC and cell-programming
//! models.

/// Largest magnitude [`round_fast`] handles: above 2²² the magic-constant
/// add loses integer resolution. Every converter grid the config
/// validator admits stays far below it (DAC ≤ 16 bits, ADC ≤ 24 would
/// exceed it, so slice quantization guards on it explicitly).
pub(crate) const ROUND_MAGIC_LIMIT: f32 = 4_194_304.0;

/// `f32::round` for non-negative `v < 2²²`, written so the loop
/// vectorizer can handle it. The magic-constant add/sub rounds to
/// nearest-ties-even (the value parks where the ulp is exactly 1), and
/// the compare/select bumps exact `.5` ties upward — bit-identical to
/// `round`'s half-away-from-zero on the whole supported domain, but four
/// branch-free ops instead of a ~10-cycle serial lowering. NaN
/// propagates (the tie compare is false for NaN).
#[inline(always)]
pub(crate) fn round_fast(v: f32) -> f32 {
    const MAGIC: f32 = 12_582_912.0; // 1.5 · 2²³
    let r = (v + MAGIC) - MAGIC;
    if v - r == 0.5 {
        r + 1.0
    } else {
        r
    }
}

/// Converts an integral `f32` in `[-32768, 32767]` to `i16` by reading
/// the integer straight out of the magic-add mantissa: biasing by 2¹⁵
/// and adding 1.5·2²³ parks the value where the mantissa's low 22 bits
/// ARE the biased integer. Bit-for-bit equal to `as i16` on that domain,
/// but pure add/and/sub ops the vectorizer handles — a float→small-int
/// `as` cast must saturate and gets scalarized.
#[inline(always)]
pub(crate) fn narrow_i16(c: f32) -> i16 {
    const MAGIC2: f32 = 12_582_912.0 + 32_768.0;
    (((c + MAGIC2).to_bits() & 0x3F_FFFF) as i32 - 32_768) as i16
}

/// [`narrow_i16`]'s wide sibling: converts an integral non-negative
/// `f32` below `2²² − 2¹⁵` to `u32` via the same magic-add mantissa
/// read. Bit-slice codes span `0..=2¹⁶` (16 weight bits plus the
/// rounding edge at `hi / step`), which overflows `i16` but sits well
/// inside this domain. Bit-for-bit equal to `as u32` there, without the
/// saturating-cast scalarization.
#[inline(always)]
pub(crate) fn narrow_code(c: f32) -> u32 {
    const MAGIC2: f32 = 12_582_912.0 + 32_768.0;
    (((c + MAGIC2).to_bits() & 0x3F_FFFF) as i32 - 32_768) as u32
}

/// A uniform mid-tread quantizer over a closed range.
///
/// # Example
///
/// ```
/// use healthmon_reram::Quantizer;
///
/// let q = Quantizer::new(0.0, 1.0, 2); // 4 levels: 0, 1/3, 2/3, 1
/// assert_eq!(q.quantize(0.4), 1.0 / 3.0);
/// assert_eq!(q.quantize(0.55), 2.0 / 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    lo: f32,
    hi: f32,
    levels: u32,
    // `(hi - lo) / (levels - 1)`, precomputed so the per-element hot path
    // pays one division instead of three. Pure function of the other
    // fields, so the derived PartialEq stays consistent.
    step: f32,
}

impl Quantizer {
    /// Creates a quantizer with `2^bits` levels spanning `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bits` is 0 or > 24.
    pub fn new(lo: f32, hi: f32, bits: u32) -> Self {
        assert!(lo < hi, "quantizer range [{lo}, {hi}] inverted");
        assert!((1..=24).contains(&bits), "bits {bits} out of supported range 1..=24");
        let levels = 1u32 << bits;
        Quantizer { lo, hi, levels, step: (hi - lo) / (levels - 1) as f32 }
    }

    /// Number of representable levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// The step between adjacent levels.
    pub fn step(&self) -> f32 {
        self.step
    }

    /// Snaps `v` to the nearest representable level (values outside the
    /// range clamp to the endpoints).
    pub fn quantize(&self, v: f32) -> f32 {
        let clamped = v.clamp(self.lo, self.hi);
        let idx = ((clamped - self.lo) / self.step).round();
        self.lo + idx * self.step
    }

    /// The level index `v` snaps to.
    pub fn index_of(&self, v: f32) -> u32 {
        let clamped = v.clamp(self.lo, self.hi);
        ((clamped - self.lo) / self.step).round() as u32
    }

    /// The value of level `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= levels()`.
    pub fn value_of(&self, index: u32) -> f32 {
        assert!(index < self.levels, "level index {index} out of range");
        self.lo + index as f32 * self.step
    }

    /// Quantizes a slice in place. Bit-identical to mapping
    /// [`Self::quantize`] over the slice, but grids with fewer than 2²²
    /// levels (every converter the config validator admits) take a
    /// branch-free `round_fast` loop the compiler can vectorize instead
    /// of `f32::round`'s serial scalar lowering.
    pub fn quantize_slice(&self, values: &mut [f32]) {
        if (self.levels - 1) as f32 >= ROUND_MAGIC_LIMIT {
            for v in values {
                *v = self.quantize(*v);
            }
            return;
        }
        for v in values {
            let clamped = (*v).clamp(self.lo, self.hi);
            let idx = round_fast((clamped - self.lo) / self.step);
            *v = self.lo + idx * self.step;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_are_exact() {
        let q = Quantizer::new(-1.0, 1.0, 3);
        assert_eq!(q.quantize(-1.0), -1.0);
        assert_eq!(q.quantize(1.0), 1.0);
        assert_eq!(q.quantize(-5.0), -1.0); // clamps
        assert_eq!(q.quantize(5.0), 1.0);
    }

    #[test]
    fn idempotent() {
        let q = Quantizer::new(0.0, 2.0, 4);
        for i in 0..100 {
            let v = i as f32 * 0.02;
            let once = q.quantize(v);
            assert_eq!(q.quantize(once), once);
        }
    }

    #[test]
    fn error_bounded_by_half_step() {
        let q = Quantizer::new(0.0, 1.0, 5);
        let half = q.step() / 2.0;
        for i in 0..=100 {
            let v = i as f32 / 100.0;
            assert!((q.quantize(v) - v).abs() <= half + 1e-6);
        }
    }

    #[test]
    fn index_value_round_trip() {
        let q = Quantizer::new(-2.0, 2.0, 4);
        for idx in 0..q.levels() {
            assert_eq!(q.index_of(q.value_of(idx)), idx);
        }
    }

    #[test]
    fn monotone() {
        let q = Quantizer::new(0.0, 1.0, 3);
        let mut prev = f32::NEG_INFINITY;
        for i in 0..=50 {
            let v = q.quantize(i as f32 / 50.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn slice_quantization() {
        let q = Quantizer::new(0.0, 1.0, 1);
        let mut vals = vec![0.2, 0.7, 0.5];
        q.quantize_slice(&mut vals);
        assert_eq!(vals, vec![0.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn rejects_inverted_range() {
        Quantizer::new(1.0, 0.0, 4);
    }

    #[test]
    fn narrow_code_matches_as_cast_on_the_code_domain() {
        // Exhaustive over the whole bit-slice code range, including the
        // 2¹⁶ rounding edge that overflows i16.
        for code in 0..=65_536u32 {
            let f = code as f32;
            assert_eq!(narrow_code(f), f as u32, "code {code}");
        }
    }
}
