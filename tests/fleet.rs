//! Fleet-supervision contract tests: the failure behavior the ISSUE
//! turns into a tested guarantee.
//!
//! 1. **Chaos determinism** — a fleet run with active fault injection
//!    (checkup panics, stalls, poisoned distances) is a pure function of
//!    `(seed, ChaosConfig)`: two runs produce byte-identical reports,
//!    and no injected panic ever escapes the supervisor. (Thread-count
//!    invariance is asserted cross-process by `scripts/ci.sh`, since the
//!    pool latches `HEALTHMON_THREADS` once per process.)
//! 2. **Kill-resume with a torn shard** — truncating one checkpoint
//!    shard mid-file must cost exactly that shard: every other device
//!    resumes bit-identically and the damage is reported, never fatal.
//! 3. **Structured corruption errors** — damaged checkpoint artifacts
//!    (fleet shards, campaign checkpoints) surface as
//!    `HealthmonError::CheckpointCorrupt` naming the offending path.

use healthmon::{
    CampaignCheckpoint, ChaosConfig, FleetConfig, FleetSupervisor, FlightRecord,
    HealthmonError, LifetimeConfig, LifetimeRuntime, SdcCriterion, TestPatternSet,
    CHECKUP_PHASES,
};
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::Network;
use healthmon_tensor::{SeededRng, Tensor};
use healthmon_telemetry as tel;
use std::path::PathBuf;
use std::str::FromStr;

fn fixture(seed: u64) -> (Network, TestPatternSet) {
    let mut rng = SeededRng::new(seed);
    let net = tiny_mlp(12, 20, 5, &mut rng);
    let patterns = TestPatternSet::new("fleet-test", Tensor::randn(&[7, 12], &mut rng));
    (net, patterns)
}

fn config(devices: usize, chaos: ChaosConfig) -> FleetConfig {
    FleetConfig {
        seed: 99,
        devices,
        device: LifetimeConfig { epochs: 5, ..LifetimeConfig::default() },
        shards: 4,
        chaos,
        ..FleetConfig::default()
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("healthmon_fleet_it_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn chaos_fleet_is_deterministic_and_never_aborts() {
    let (net, patterns) = fixture(21);
    let chaos = ChaosConfig::parse("panic:0.15,stall:0.2,stallms:500,poison:0.05,seed:7")
        .unwrap();
    let cfg = config(12, chaos);
    let run = |net: &Network, patterns: &TestPatternSet| {
        let mut fleet = FleetSupervisor::new(net, patterns.clone(), cfg).unwrap();
        fleet.run(None);
        fleet
    };
    let a = run(&net, &patterns);
    let b = run(&net, &patterns);
    // Byte-identical reports under active chaos: injection is keyed by
    // (device, epoch, attempt), never by scheduling or wall clock.
    assert_eq!(a.render_report(), b.render_report());
    // The chaos rates above guarantee injected faults actually fired —
    // and the fact that we got here at all means no panic escaped.
    let report = a.render_report();
    assert!(
        !report.contains("retries: 0,"),
        "chaos at these rates must leave visible retries:\n{report}"
    );
    assert!(a.is_done());
}

#[test]
fn fleet_telemetry_rollups_are_stable_counters() {
    let (net, patterns) = fixture(21);
    tel::reset();
    tel::set_enabled(true);
    // A clean fleet exercises the success counter; an all-panics fleet
    // deterministically exercises the whole failure ladder (failed →
    // retries → incidents → quarantines).
    let mut clean = FleetSupervisor::new(&net, patterns.clone(), config(4, ChaosConfig::default()))
        .unwrap();
    clean.run(Some(2));
    let chaos = ChaosConfig { seed: 5, panic_p: 1.0, ..ChaosConfig::default() };
    let mut broken = FleetSupervisor::new(&net, patterns, config(4, chaos)).unwrap();
    broken.run(Some(3));
    let snapshot = tel::snapshot();
    tel::set_enabled(false);
    let find = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("counter {name} missing"))
    };
    for name in [
        "fleet.checkups.ok",
        "fleet.checkups.failed",
        "fleet.retries",
        "fleet.incidents",
        "fleet.quarantines",
    ] {
        let c = find(name);
        assert!(c.stable, "{name} must be Stable for thread-invariance gating");
        assert!(c.value > 0, "{name} must have fired");
    }
}

#[test]
fn kill_resume_with_one_torn_shard_recovers_every_other_device() {
    let (net, patterns) = fixture(33);
    let cfg = config(13, ChaosConfig::default());
    let dir = temp_dir("torn");

    // Reference: the same fleet stopped at the same epoch, untouched.
    let mut reference = FleetSupervisor::new(&net, patterns.clone(), cfg).unwrap();
    reference.run(Some(3));

    let mut fleet = FleetSupervisor::new(&net, patterns.clone(), cfg).unwrap();
    fleet.run(Some(3));
    fleet.save_checkpoint(&dir).unwrap();

    // Tear shard 2 mid-file, as a kill-9 during a non-atomic write would.
    let victim = dir.join("shard-002.json");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 3]).unwrap();

    let resumed = FleetSupervisor::resume(&net, patterns.clone(), cfg, &dir).unwrap();
    assert_eq!(resumed.damaged_shards().len(), 1, "exactly the torn shard is damaged");
    assert_eq!(resumed.damaged_shards()[0].0, 2);
    let resumed_lines = resumed.device_summaries();
    let reference_lines = reference.device_summaries();
    for id in 0..13 {
        if id % cfg.shards == 2 {
            // Devices of the torn shard restart fresh instead of killing
            // the fleet.
            assert!(
                resumed_lines[id].contains("epochs=0/"),
                "device {id} of the torn shard must restart fresh: {}",
                resumed_lines[id]
            );
        } else {
            assert_eq!(
                resumed_lines[id], reference_lines[id],
                "device {id} must resume bit-identically"
            );
        }
    }
    assert!(resumed.render_report().contains("damaged shards: 1"));

    // And after a *clean* stop, resume is bit-identical end to end.
    let dir2 = temp_dir("clean");
    let mut full = FleetSupervisor::new(&net, patterns.clone(), cfg).unwrap();
    full.run(None);
    let mut partial = FleetSupervisor::new(&net, patterns.clone(), cfg).unwrap();
    partial.run(Some(3));
    partial.save_checkpoint(&dir2).unwrap();
    let mut resumed = FleetSupervisor::resume(&net, patterns, cfg, &dir2).unwrap();
    assert!(resumed.damaged_shards().is_empty());
    resumed.run(None);
    assert_eq!(resumed.render_report(), full.render_report());
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir2).ok();
}

#[test]
fn flight_recorder_dumps_deterministic_digest_verified_artifacts() {
    let (net, patterns) = fixture(21);
    let chaos = ChaosConfig::parse("panic:0.35,stall:0.2,stallms:600,poison:0.05,seed:13")
        .unwrap();
    let mut cfg = config(24, chaos);
    cfg.quarantine_threshold = 2;
    let dir_a = temp_dir("flight_a");
    let dir_b = temp_dir("flight_b");
    let run = |flight: Option<&PathBuf>| {
        let mut fleet = FleetSupervisor::new(&net, patterns.clone(), cfg).unwrap();
        if let Some(dir) = flight {
            fleet.set_flight_dir(dir.clone());
        }
        fleet.run(Some(4));
        fleet.render_report()
    };
    let plain = run(None);
    let report_a = run(Some(&dir_a));
    let report_b = run(Some(&dir_b));
    // Arming the recorder never moves the deterministic report
    // (observability on vs off), and the run stays deterministic.
    assert_eq!(plain, report_a);
    assert_eq!(report_a, report_b);
    let list = |dir: &PathBuf| {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        names
    };
    let names = list(&dir_a);
    assert!(!names.is_empty(), "chaos at these rates must dump postmortems");
    assert_eq!(names, list(&dir_b), "rerun must dump the identical artifact set");
    for name in &names {
        let a = std::fs::read_to_string(dir_a.join(name)).unwrap();
        let b = std::fs::read_to_string(dir_b.join(name)).unwrap();
        assert_eq!(a, b, "artifact {name} must be byte-identical across reruns");
        // Every artifact digest-verifies and carries the full contract.
        let record = FlightRecord::from_str(&a).unwrap();
        assert_eq!(record.phases, CHECKUP_PHASES.to_vec());
        assert!(record.epoch >= 1);
        assert!(record.tallies.iter().any(|(k, _)| k == "offenses"));
        assert!(!record.timeline.is_empty(), "{name} must embed a timeline window");
    }
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn health_timeline_is_recorded_bounded_and_deterministic() {
    let (net, patterns) = fixture(5);
    let cfg = LifetimeConfig { epochs: 6, ..LifetimeConfig::default() };
    let run = || {
        let mut rt = LifetimeRuntime::new(&net, patterns.clone(), cfg, None);
        rt.run(None);
        rt
    };
    let a = run();
    let b = run();
    // One baseline point plus one per completed epoch, downsampled to a
    // bounded buffer; the recorded points are a pure function of the run.
    assert_eq!(a.timeline().observed(), a.epoch() as u64 + 1);
    assert!(a.timeline().len() <= tel::TIMELINE_CAPACITY);
    let pa: Vec<_> = a.timeline().points().cloned().collect();
    let pb: Vec<_> = b.timeline().points().cloned().collect();
    assert_eq!(pa, pb);
    let last = pa.last().unwrap();
    assert_eq!(last.epoch, a.epoch() as u64);
    assert!((0.0..=1.0).contains(&last.accuracy));
}

#[test]
fn corrupt_checkpoints_surface_structured_errors_with_paths() {
    // Campaign checkpoints: truncated JSON names the damaged file.
    let dir = temp_dir("campaign");
    let path = dir.join("campaign.json");
    let cp = CampaignCheckpoint::new(3, 4, &[SdcCriterion::Sdc1]);
    cp.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
    match CampaignCheckpoint::load(&path).unwrap_err() {
        HealthmonError::CheckpointCorrupt { path: p, .. } => {
            assert!(p.contains("campaign.json"))
        }
        other => panic!("expected CheckpointCorrupt, got {other}"),
    }
    // Missing files report the same structured error.
    match CampaignCheckpoint::load(dir.join("nope.json")).unwrap_err() {
        HealthmonError::CheckpointCorrupt { path: p, .. } => assert!(p.contains("nope.json")),
        other => panic!("expected CheckpointCorrupt, got {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
