//! Shared experiment plumbing: train-or-load cached models, standard
//! dataset specs, and row formatting.

use healthmon::{AetGenerator, CtpGenerator, OtpGenerator, TestPatternSet};
use healthmon_data::{DataSplit, Dataset, DatasetSpec, SynthDigits, SynthObjects};
use healthmon_faults::{FaultCampaign, FaultModel};
use healthmon_nn::models::{convnet7, lenet5};
use healthmon_nn::optim::Sgd;
use healthmon_nn::{Network, TrainConfig, Trainer};
use healthmon_tensor::{SeededRng, Tensor};
use std::path::PathBuf;
use std::time::Instant;

/// Seed every campaign in the experiment suite derives from.
pub const CAMPAIGN_SEED: u64 = 2020;

/// Seed used only for generating patterns (kept distinct from
/// [`CAMPAIGN_SEED`] so O-TP's reference fault model is *not* one of the
/// fault models later used for evaluation).
pub const PATTERN_SEED: u64 = 777;

/// Which of the paper's two benchmarks an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Benchmark {
    /// LeNet-5 on SynthDigits (the MNIST substitute).
    Lenet5Digits,
    /// ConvNet-7 on SynthObjects (the CIFAR10 substitute).
    Convnet7Objects,
}

impl Benchmark {
    /// Display name matching the paper's terminology.
    pub fn label(self) -> &'static str {
        match self {
            Benchmark::Lenet5Digits => "LeNet-5 (SynthDigits/MNIST)",
            Benchmark::Convnet7Objects => "ConvNet-7 (SynthObjects/CIFAR10)",
        }
    }

    /// Cache file stem for trained weights.
    fn cache_stem(self) -> &'static str {
        match self {
            Benchmark::Lenet5Digits => "lenet5_digits",
            Benchmark::Convnet7Objects => "convnet7_objects",
        }
    }

    /// Standard dataset spec used by all experiments.
    pub fn dataset_spec(self) -> DatasetSpec {
        match self {
            Benchmark::Lenet5Digits => DatasetSpec { train: 4000, test: 1000, seed: 7, noise: 0.16 },
            Benchmark::Convnet7Objects => DatasetSpec { train: 2500, test: 1000, seed: 7, noise: 0.15 },
        }
    }

    /// Generates the benchmark's dataset split.
    pub fn dataset(self) -> DataSplit {
        match self {
            Benchmark::Lenet5Digits => SynthDigits::new(self.dataset_spec()).generate(),
            Benchmark::Convnet7Objects => SynthObjects::new(self.dataset_spec()).generate(),
        }
    }

    /// Builds the untrained model with the standard seed.
    pub fn fresh_model(self) -> Network {
        let mut rng = SeededRng::new(42);
        match self {
            Benchmark::Lenet5Digits => lenet5(&mut rng),
            Benchmark::Convnet7Objects => convnet7(&mut rng),
        }
    }

    fn train_config(self) -> (f32, TrainConfig) {
        match self {
            Benchmark::Lenet5Digits => (
                0.05,
                TrainConfig {
                    epochs: 4,
                    batch_size: 32,
                    lr_decay: 0.85,
                    seed: 0,
                    verbose: true,
                    drop_connect: None,
                },
            ),
            Benchmark::Convnet7Objects => (
                0.03,
                TrainConfig {
                    epochs: 7,
                    batch_size: 32,
                    lr_decay: 0.85,
                    seed: 0,
                    verbose: true,
                    drop_connect: None,
                },
            ),
        }
    }
}

/// A trained golden model plus the data it was trained on.
#[derive(Debug)]
pub struct TrainedBenchmark {
    /// Which benchmark this is.
    pub benchmark: Benchmark,
    /// The trained (clean/golden) network.
    pub model: Network,
    /// Train/test split.
    pub data: DataSplit,
    /// Accuracy of the golden model on the held-out test set.
    pub test_accuracy: f32,
}

/// Directory where trained weights and experiment outputs are cached.
pub fn artifact_dir() -> PathBuf {
    let dir = std::env::var("HEALTHMON_ARTIFACTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("artifacts"));
    std::fs::create_dir_all(&dir).expect("artifact directory must be creatable");
    dir
}

/// Trains the benchmark model, or loads it from the artifact cache if a
/// previous run already trained it. Returns the model together with its
/// dataset and measured test accuracy.
pub fn train_or_load(benchmark: Benchmark) -> TrainedBenchmark {
    let data = benchmark.dataset();
    let mut model = benchmark.fresh_model();
    let cache = artifact_dir().join(format!("{}.json", benchmark.cache_stem()));
    if cache.exists() {
        match model.load_weights(&cache) {
            Ok(()) => {
                let acc = healthmon_nn::trainer::accuracy(
                    &mut model,
                    &data.test.images,
                    &data.test.labels,
                    64,
                );
                healthmon_telemetry::log_info!("[harness] loaded cached {} (test acc {:.2}%)", benchmark.label(), acc * 100.0);
                return TrainedBenchmark { benchmark, model, data, test_accuracy: acc };
            }
            Err(e) => healthmon_telemetry::log_info!("[harness] cache at {} unusable ({e}); retraining", cache.display()),
        }
    }
    let (lr, config) = benchmark.train_config();
    healthmon_telemetry::log_info!("[harness] training {} ...", benchmark.label());
    let started = Instant::now();
    let report = Trainer::new(&mut model, Sgd::new(lr).momentum(0.9), config).fit(
        &data.train.images,
        &data.train.labels,
        Some((&data.test.images, &data.test.labels)),
    );
    let acc = report.test_accuracy.expect("test set was provided");
    healthmon_telemetry::log_info!(
        "[harness] trained {} in {:.1}s, test acc {:.2}%",
        benchmark.label(),
        started.elapsed().as_secs_f32(),
        acc * 100.0
    );
    model.save_weights(&cache).expect("artifact cache must be writable");
    TrainedBenchmark { benchmark, model, data, test_accuracy: acc }
}

impl Benchmark {
    /// The paper's programming-variation sweep for this benchmark
    /// (Table I: σ ∈ {0.05 … 0.5}; Table II: σ ∈ {0.05 … 0.3}).
    pub fn sigma_grid(self) -> Vec<f32> {
        let max = match self {
            Benchmark::Lenet5Digits => 10,
            Benchmark::Convnet7Objects => 6,
        };
        (1..=max).map(|i| i as f32 * 0.05).collect()
    }

    /// The paper's random-soft-error probabilities for this benchmark
    /// (LeNet-5: 0.5% and 1%; ConvNet-7: 0.1% and 0.3%).
    pub fn soft_error_grid(self) -> Vec<f64> {
        match self {
            Benchmark::Lenet5Digits => vec![0.005, 0.01],
            Benchmark::Convnet7Objects => vec![0.001, 0.003],
        }
    }

    /// Reference fault model used by O-TP generation (a mid-grid
    /// programming variation, never reused as an evaluation fault model).
    pub fn otp_reference_fault(self) -> FaultModel {
        match self {
            Benchmark::Lenet5Digits => FaultModel::ProgrammingVariation { sigma: 0.3 },
            Benchmark::Convnet7Objects => FaultModel::ProgrammingVariation { sigma: 0.2 },
        }
    }

    /// O-TP Adam iteration budget: the bigger ConvNet-7 gets a smaller
    /// cap (each iteration costs ~20× a LeNet-5 iteration and the
    /// constraints plateau well before 600 there).
    fn otp_iters(self) -> usize {
        match self {
            Benchmark::Lenet5Digits => 600,
            Benchmark::Convnet7Objects => 300,
        }
    }

    /// Candidate pool for C-TP selection. The paper searches the full
    /// 10K-image inference set; our standard test split is 1K, which
    /// leaves too thin a tail of genuine corner data, so C-TP selects
    /// from a larger held-out pool drawn from the same generator (distinct
    /// seed — disjoint from both train and test by construction).
    pub fn ctp_pool(self) -> Dataset {
        let spec = match self {
            Benchmark::Lenet5Digits => DatasetSpec { train: 1, test: 6000, seed: 1234, noise: 0.16 },
            Benchmark::Convnet7Objects => DatasetSpec { train: 1, test: 2500, seed: 1234, noise: 0.15 },
        };
        match self {
            Benchmark::Lenet5Digits => SynthDigits::new(spec).generate().test,
            Benchmark::Convnet7Objects => SynthObjects::new(spec).generate().test,
        }
    }
}

/// Number of fault models per error level (paper: 100). Override with
/// `HEALTHMON_MODELS_PER_LEVEL` for quick runs.
pub fn models_per_level() -> usize {
    std::env::var("HEALTHMON_MODELS_PER_LEVEL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}

/// Number of held-out samples used when measuring a fault model's
/// accuracy (Tables I/II, Fig 8). Override with `HEALTHMON_ACC_SAMPLES`.
pub fn acc_samples() -> usize {
    std::env::var("HEALTHMON_ACC_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500)
}

/// The four pattern sets every comparison experiment evaluates, each 50
/// patterns as in the paper's fair-comparison protocol, plus O-TP's
/// native 10-pattern set (one per class) used by the efficiency analysis.
#[derive(Debug, Clone)]
pub struct PatternSuite {
    /// 50 random test images (Fig 8's "original image" baseline).
    pub original: TestPatternSet,
    /// FGSM adversarial baseline, 50 patterns.
    pub aet: TestPatternSet,
    /// Corner-data selection, 50 patterns.
    pub ctp: TestPatternSet,
    /// Optimization-generated, 50 patterns (k = 5 per class).
    pub otp: TestPatternSet,
    /// Optimization-generated, 10 patterns (k = 1, the paper's headline
    /// low-cost configuration).
    pub otp10: TestPatternSet,
}

impl PatternSuite {
    /// The three compared methods (AET, C-TP, O-TP at 50 patterns), in
    /// paper order.
    pub fn methods(&self) -> [&TestPatternSet; 3] {
        [&self.aet, &self.ctp, &self.otp]
    }
}

fn pattern_cache_path(benchmark: Benchmark, name: &str) -> PathBuf {
    artifact_dir().join(format!(
        "{}_{name}_patterns.json",
        match benchmark {
            Benchmark::Lenet5Digits => "lenet5",
            Benchmark::Convnet7Objects => "convnet7",
        }
    ))
}

fn load_patterns(benchmark: Benchmark, name: &str, method: &str) -> Option<TestPatternSet> {
    let path = pattern_cache_path(benchmark, name);
    let json = std::fs::read_to_string(path).ok()?;
    let images: Tensor = healthmon_serdes::from_str(&json).ok()?;
    Some(TestPatternSet::new(method, images))
}

fn store_patterns(benchmark: Benchmark, name: &str, set: &TestPatternSet) {
    let path = pattern_cache_path(benchmark, name);
    let json = healthmon_serdes::to_string(set.images());
    std::fs::write(path, json).expect("artifact cache must be writable");
}

/// Builds (or loads from the artifact cache) the full pattern suite for a
/// trained benchmark. O-TP generation is the only expensive step (a few
/// hundred Adam iterations through both models); everything else is
/// seconds.
pub fn pattern_suite(trained: &mut TrainedBenchmark) -> PatternSuite {
    let benchmark = trained.benchmark;
    let count = 50usize;
    let mut rng = SeededRng::new(PATTERN_SEED);

    let original = load_patterns(benchmark, "original", "original").unwrap_or_else(|| {
        let mut pick_rng = rng.fork(1);
        let subset = trained.data.test.random_subset(count, &mut pick_rng);
        let set = TestPatternSet::new("original", subset.images.clone());
        store_patterns(benchmark, "original", &set);
        set
    });

    let aet = load_patterns(benchmark, "aet", "AET").unwrap_or_else(|| {
        let mut gen_rng = rng.fork(2);
        let set = AetGenerator::new(count, 0.15).generate(
            &mut trained.model,
            &trained.data.test,
            &mut gen_rng,
        );
        store_patterns(benchmark, "aet", &set);
        set
    });

    let ctp = load_patterns(benchmark, "ctp", "C-TP").unwrap_or_else(|| {
        let pool = benchmark.ctp_pool();
        let set = CtpGenerator::new(count).select(&mut trained.model, &pool);
        store_patterns(benchmark, "ctp", &set);
        set
    });

    let otp_sets = ["otp", "otp10"].map(|name| load_patterns(benchmark, name, "O-TP"));
    let (otp, otp10) = match otp_sets {
        [Some(a), Some(b)] => (a, b),
        _ => {
            healthmon_telemetry::log_info!("[harness] generating O-TP patterns for {} ...", benchmark.label());
            let started = Instant::now();
            let reference = FaultCampaign::new(&trained.model, PATTERN_SEED)
                .model(&benchmark.otp_reference_fault(), 0);
            let mut gen_rng = rng.fork(3);
            let (otp, outcomes) = OtpGenerator::new()
                .per_class(5)
                .max_iters(benchmark.otp_iters())
                .generate(&trained.model, &reference, &mut gen_rng);
            let converged = outcomes.iter().filter(|o| o.converged).count();
            let mut gen_rng10 = rng.fork(4);
            let (otp10, _) = OtpGenerator::new()
                .max_iters(benchmark.otp_iters())
                .generate(&trained.model, &reference, &mut gen_rng10);
            healthmon_telemetry::log_info!(
                "[harness] O-TP done in {:.1}s ({converged}/{} fully converged)",
                started.elapsed().as_secs_f32(),
                outcomes.len()
            );
            store_patterns(benchmark, "otp", &otp);
            store_patterns(benchmark, "otp10", &otp10);
            (otp, otp10)
        }
    };

    PatternSuite { original, aet, ctp, otp, otp10 }
}

/// Mean accuracy of `count` fault models at the given fault spec,
/// measured on a fixed subsample of the held-out set (in parallel).
pub fn campaign_accuracy(
    trained: &TrainedBenchmark,
    fault: &FaultModel,
    count: usize,
    seed: u64,
) -> f32 {
    let n = acc_samples().min(trained.data.test.len());
    let idx: Vec<usize> = (0..n).collect();
    let subset = trained.data.test.subset(&idx);
    let accs = healthmon_faults::par_map_models(&trained.model, fault, seed, count, |_, net| {
        healthmon_nn::trainer::accuracy(net, &subset.images, &subset.labels, 64)
    });
    accs.iter().sum::<f32>() / accs.len().max(1) as f32
}

/// Prints an experiment's output to stdout and records it under
/// `artifacts/<name>.txt` for `EXPERIMENTS.md` assembly.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let path = artifact_dir().join(format!("{name}.txt"));
    std::fs::write(&path, content).expect("artifact directory must be writable");
    healthmon_telemetry::log_info!("[harness] wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_grids_match_paper() {
        let lenet = Benchmark::Lenet5Digits.sigma_grid();
        assert_eq!(lenet.len(), 10);
        assert!((lenet[0] - 0.05).abs() < 1e-6);
        assert!((lenet[9] - 0.5).abs() < 1e-6);
        let convnet = Benchmark::Convnet7Objects.sigma_grid();
        assert_eq!(convnet.len(), 6);
        assert!((convnet[5] - 0.3).abs() < 1e-6);
    }

    #[test]
    fn soft_error_grids_match_paper() {
        assert_eq!(Benchmark::Lenet5Digits.soft_error_grid(), vec![0.005, 0.01]);
        assert_eq!(Benchmark::Convnet7Objects.soft_error_grid(), vec![0.001, 0.003]);
    }

    #[test]
    fn fresh_models_have_paper_topologies() {
        let lenet = Benchmark::Lenet5Digits.fresh_model();
        assert_eq!(lenet.input_shape(), &[1, 28, 28]);
        let convnet = Benchmark::Convnet7Objects.fresh_model();
        assert_eq!(convnet.input_shape(), &[3, 32, 32]);
        let conv_layers =
            convnet.layers().iter().filter(|l| l.name() == "conv2d").count();
        assert_eq!(conv_layers, 4, "ConvNet-7 must have 4 conv layers");
    }

    #[test]
    fn dataset_specs_are_deterministic() {
        let a = Benchmark::Lenet5Digits.dataset();
        let b = Benchmark::Lenet5Digits.dataset();
        assert_eq!(a.train.images, b.train.images);
    }

    #[test]
    fn ctp_pool_disjoint_from_test_split() {
        let pool = Benchmark::Lenet5Digits.ctp_pool();
        let data = Benchmark::Lenet5Digits.dataset();
        assert!(pool.len() > data.test.len());
        // Different generator seeds: no shared images.
        assert_ne!(
            &pool.images.as_slice()[..784],
            &data.test.images.as_slice()[..784]
        );
    }

    #[test]
    fn env_overrides_parse() {
        // Defaults when the vars are absent (do not set them here: tests
        // run in parallel and the env is process-global).
        let m = models_per_level();
        let a = acc_samples();
        assert!(m > 0 && a > 0);
    }
}
