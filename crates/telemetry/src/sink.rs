//! Output sinks for a [`MetricsSnapshot`]: JSON lines (via
//! `healthmon-serdes`), Prometheus-style text exposition, and a
//! human-readable end-of-run report with a rendered span tree.
//!
//! The JSONL format is self-describing, one object per line, each with
//! a `kind` tag (`counter`/`gauge`/`histogram`/`span`/`event`) and a
//! `stable` flag. CI's thread-invariance check byte-compares only the
//! `"stable":true` lines; [`parse_jsonl`] round-trips the whole file.

use crate::metrics::{
    CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot,
};
use crate::span::{EventSnapshot, SpanSnapshot};
use healthmon_serdes::{parse, Json, JsonError};
use std::fmt::Write as _;

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn num(v: u64) -> Json {
    // serdes numbers are f64: exact for integers below 2^53, which every
    // counter in this workspace stays far under. Clamp rather than lose
    // precision silently if one ever overflows.
    Json::Number(v.min(1 << 53) as f64)
}

fn counter_line(c: &CounterSnapshot) -> Json {
    obj(vec![
        ("kind", Json::String("counter".into())),
        ("name", Json::String(c.name.clone())),
        ("stable", Json::Bool(c.stable)),
        ("value", num(c.value)),
    ])
}

fn gauge_line(g: &GaugeSnapshot) -> Json {
    obj(vec![
        ("kind", Json::String("gauge".into())),
        ("name", Json::String(g.name.clone())),
        ("stable", Json::Bool(g.stable)),
        ("value", Json::Number(g.value)),
    ])
}

fn histogram_line(h: &HistogramSnapshot) -> Json {
    let buckets = h
        .buckets
        .iter()
        .map(|&(i, n)| Json::Array(vec![num(u64::from(i)), num(n)]))
        .collect();
    obj(vec![
        ("kind", Json::String("histogram".into())),
        ("name", Json::String(h.name.clone())),
        ("stable", Json::Bool(h.stable)),
        ("count", num(h.count)),
        ("sum", num(h.sum)),
        ("buckets", Json::Array(buckets)),
    ])
}

fn span_line(s: &SpanSnapshot) -> Json {
    obj(vec![
        ("kind", Json::String("span".into())),
        ("name", Json::String(s.path.clone())),
        ("stable", Json::Bool(false)),
        ("calls", num(s.calls)),
        ("total_ns", num(s.total_ns)),
        ("self_ns", num(s.self_ns)),
        ("max_ns", num(s.max_ns)),
    ])
}

fn event_line(e: &EventSnapshot) -> Json {
    obj(vec![
        ("kind", Json::String("event".into())),
        ("name", Json::String(e.name.to_string())),
        ("stable", Json::Bool(false)),
        ("seq", num(e.seq)),
        ("t_ns", num(e.t_ns)),
        ("detail", Json::String(e.detail.clone())),
    ])
}

/// Renders a snapshot as JSON lines: one object per metric, span path,
/// and event, terminated by `\n`. Deterministic: metrics sorted by
/// name, spans by path, events by recording order.
pub fn render_jsonl(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        out.push_str(&counter_line(c).render());
        out.push('\n');
    }
    for g in &snap.gauges {
        out.push_str(&gauge_line(g).render());
        out.push('\n');
    }
    for h in &snap.histograms {
        out.push_str(&histogram_line(h).render());
        out.push('\n');
    }
    for s in &snap.spans {
        out.push_str(&span_line(s).render());
        out.push('\n');
    }
    for e in &snap.events {
        out.push_str(&event_line(e).render());
        out.push('\n');
    }
    out
}

fn parse_u64(v: &Json) -> Result<u64, JsonError> {
    let n = v.as_number()?;
    if n < 0.0 || n.fract() != 0.0 || n > (1u64 << 53) as f64 {
        return Err(JsonError::invalid(format!("expected a u64 count, got {n}")));
    }
    Ok(n as u64)
}

/// Static string table for event names parsed back from JSONL. Event
/// names in live recording are `&'static str`; a parsed file can hold
/// arbitrary names, so they are leaked once per distinct name (bounded
/// by the event-name vocabulary, which is tiny).
fn intern(name: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::Mutex;
    static TABLE: Mutex<Option<HashSet<&'static str>>> = Mutex::new(None);
    let mut table = TABLE.lock().unwrap();
    let set = table.get_or_insert_with(HashSet::new);
    match set.get(name) {
        Some(s) => s,
        None => {
            let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
            set.insert(leaked);
            leaked
        }
    }
}

/// Parses JSONL text produced by [`render_jsonl`] back into a
/// [`MetricsSnapshot`].
///
/// # Errors
///
/// Returns a [`JsonError`] if any line is not valid JSON or does not
/// match the telemetry line schema.
pub fn parse_jsonl(text: &str) -> Result<MetricsSnapshot, JsonError> {
    let mut snap = MetricsSnapshot::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line)?;
        let kind = v.field("kind")?.as_str()?.to_string();
        let name = v.field("name")?.as_str()?.to_string();
        let stable = v.field("stable")?.as_bool()?;
        match kind.as_str() {
            "counter" => snap.counters.push(CounterSnapshot {
                name,
                value: parse_u64(v.field("value")?)?,
                stable,
            }),
            "gauge" => snap.gauges.push(GaugeSnapshot {
                name,
                value: v.field("value")?.as_number()?,
                stable,
            }),
            "histogram" => {
                let mut buckets = Vec::new();
                for b in v.field("buckets")?.as_array()? {
                    let pair = b.as_array()?;
                    if pair.len() != 2 {
                        return Err(JsonError::invalid("histogram bucket is not a pair"));
                    }
                    buckets.push((parse_u64(&pair[0])? as u32, parse_u64(&pair[1])?));
                }
                snap.histograms.push(HistogramSnapshot {
                    name,
                    count: parse_u64(v.field("count")?)?,
                    sum: parse_u64(v.field("sum")?)?,
                    buckets,
                    stable,
                });
            }
            "span" => snap.spans.push(SpanSnapshot {
                path: name,
                calls: parse_u64(v.field("calls")?)?,
                total_ns: parse_u64(v.field("total_ns")?)?,
                self_ns: parse_u64(v.field("self_ns")?)?,
                max_ns: parse_u64(v.field("max_ns")?)?,
            }),
            "event" => snap.events.push(EventSnapshot {
                seq: parse_u64(v.field("seq")?)?,
                t_ns: parse_u64(v.field("t_ns")?)?,
                name: intern(&name),
                detail: v.field("detail")?.as_str()?.to_string(),
            }),
            other => {
                return Err(JsonError::invalid(format!("unknown telemetry line kind `{other}`")))
            }
        }
    }
    Ok(snap)
}

/// Maps a metric name to a Prometheus-legal identifier.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("healthmon_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a snapshot in Prometheus text exposition format (counters,
/// gauges, and histograms; spans and events have no Prometheus shape).
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let n = prom_name(&c.name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {}", c.value);
    }
    for g in &snap.gauges {
        let n = prom_name(&g.name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", g.value);
    }
    for h in &snap.histograms {
        let n = prom_name(&h.name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cumulative = 0u64;
        for &(i, count) in &h.buckets {
            cumulative += count;
            let upper = HistogramSnapshot::bucket_upper(i);
            let _ = writeln!(out, "{n}_bucket{{le=\"{upper}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
        // Pre-computed quantile gauges so dashboards need no PromQL
        // histogram_quantile over the coarse log2 buckets.
        for (q, suffix) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
            let _ = writeln!(out, "# TYPE {n}_{suffix} gauge");
            let _ = writeln!(out, "{n}_{suffix} {}", h.quantile(q));
        }
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the human-readable end-of-run report: metric tables, the
/// span tree (indentation = nesting), and the tail of the event ring.
pub fn render_report(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("== healthmon telemetry ==\n");
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for c in &snap.counters {
            let tag = if c.stable { "" } else { "  (volatile)" };
            let _ = writeln!(out, "  {:<44} {:>14}{tag}", c.name, c.value);
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for g in &snap.gauges {
            let tag = if g.stable { "" } else { "  (volatile)" };
            let _ = writeln!(out, "  {:<44} {:>14.6}{tag}", g.name, g.value);
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms:\n");
        for h in &snap.histograms {
            let mean = if h.count > 0 { h.sum as f64 / h.count as f64 } else { 0.0 };
            let _ = writeln!(
                out,
                "  {:<44} count={} sum={} mean={:.1}",
                h.name, h.count, h.sum, mean
            );
            // Quantile estimates from the log2 buckets replace the raw
            // bucket dump: three numbers an operator can read at a
            // glance instead of a page of bucket edges.
            let _ = writeln!(
                out,
                "      p50={} p95={} p99={}",
                h.quantile(0.5),
                h.quantile(0.95),
                h.quantile(0.99),
            );
        }
    }
    if !snap.spans.is_empty() {
        out.push_str("spans (indent = nesting):\n");
        for s in &snap.spans {
            let depth = s.path.matches('/').count();
            let leaf = s.path.rsplit('/').next().unwrap_or(&s.path);
            let indent = "  ".repeat(depth + 1);
            let _ = writeln!(
                out,
                "{indent}{:<width$} calls={:<8} total={:<10} self={:<10} max={}",
                leaf,
                s.calls,
                fmt_ns(s.total_ns),
                fmt_ns(s.self_ns),
                fmt_ns(s.max_ns),
                width = 32usize.saturating_sub(2 * depth),
            );
        }
    }
    if !snap.events.is_empty() {
        let tail = 32;
        let start = snap.events.len().saturating_sub(tail);
        let _ = writeln!(
            out,
            "events (last {} of {}):",
            snap.events.len() - start,
            snap.events.len()
        );
        for e in &snap.events[start..] {
            let _ = writeln!(out, "  +{:<12} {} {}", fmt_ns(e.t_ns), e.name, e.detail);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Counter, Gauge, Histogram, Stability};
    use crate::testlock;

    fn sample_snapshot() -> MetricsSnapshot {
        static C: Counter = Counter::new("sink.calls", Stability::Stable);
        static G: Gauge = Gauge::new("sink.ratio", Stability::Volatile);
        static H: Histogram = Histogram::new("sink.wait_ns", Stability::Volatile);
        C.add(42);
        G.set(0.75);
        H.record(0);
        H.record(5);
        H.record(1000);
        {
            let _outer = crate::span("run");
            let _inner = crate::span("step");
        }
        crate::record_event("sink.event", "something happened");
        crate::snapshot()
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let _g = testlock::exclusive();
        let snap = sample_snapshot();
        let text = render_jsonl(&snap);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(render_jsonl(&back), text);
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.histograms, snap.histograms);
        assert_eq!(back.spans, snap.spans);
        assert_eq!(back.events, snap.events);
    }

    #[test]
    fn jsonl_lines_carry_stability() {
        let _g = testlock::exclusive();
        let snap = sample_snapshot();
        let text = render_jsonl(&snap);
        assert!(text.lines().any(|l| l.contains("\"stable\":true")));
        assert!(text.lines().any(|l| l.contains("\"stable\":false")));
        // Every line parses standalone.
        for line in text.lines() {
            parse(line).unwrap();
        }
    }

    #[test]
    fn prometheus_exposition_shape() {
        let _g = testlock::exclusive();
        let snap = sample_snapshot();
        let text = render_prometheus(&snap);
        assert!(text.contains("# TYPE healthmon_sink_calls counter"));
        assert!(text.contains("healthmon_sink_calls 42"));
        assert!(text.contains("healthmon_sink_wait_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("healthmon_sink_wait_ns_count 3"));
        // Per-histogram quantile gauges ride along for dashboards.
        assert!(text.contains("# TYPE healthmon_sink_wait_ns_p95 gauge"));
        assert!(text.contains("healthmon_sink_wait_ns_p50 "));
        assert!(text.contains("healthmon_sink_wait_ns_p99 "));
    }

    #[test]
    fn report_renders_span_tree() {
        let _g = testlock::exclusive();
        let snap = sample_snapshot();
        let text = render_report(&snap);
        assert!(text.contains("== healthmon telemetry =="));
        assert!(text.contains("sink.calls"));
        assert!(text.contains("p50=") && text.contains("p99="));
        assert!(text.contains("run"));
        assert!(text.contains("step"));
        assert!(text.contains("sink.event something happened"));
    }

    #[test]
    fn parse_rejects_unknown_kind() {
        let bad = "{\"kind\":\"mystery\",\"name\":\"x\",\"stable\":true}\n";
        assert!(parse_jsonl(bad).is_err());
    }
}
