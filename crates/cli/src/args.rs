//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    pub command: String,
    options: BTreeMap<String, String>,
}

impl ParsedArgs {
    /// Parses `argv` (without the program name).
    ///
    /// Grammar: `<command> (--key value)*`.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut iter = argv.iter();
        let command = iter
            .next()
            .ok_or_else(|| "missing subcommand".to_owned())?
            .clone();
        let mut options = BTreeMap::new();
        while let Some(flag) = iter.next() {
            let key = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, found `{flag}`"))?;
            let value = iter
                .next()
                .ok_or_else(|| format!("flag --{key} is missing a value"))?;
            if options.insert(key.to_owned(), value.clone()).is_some() {
                return Err(format!("flag --{key} given twice"));
            }
        }
        Ok(ParsedArgs { command, options })
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An optional string option, `None` when absent.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// An optional parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("flag --{key}: cannot parse `{raw}`")),
        }
    }

    /// Rejects unknown flags (catches typos early).
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), String> {
        for key in self.options.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(format!("unknown flag --{key} for `{}`", self.command));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = ParsedArgs::parse(&argv("train --arch lenet5 --epochs 4")).unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.required("arch").unwrap(), "lenet5");
        assert_eq!(a.get_or("epochs", 0usize).unwrap(), 4);
    }

    #[test]
    fn defaults_apply() {
        let a = ParsedArgs::parse(&argv("train")).unwrap();
        assert_eq!(a.get_or("seed", 7u64).unwrap(), 7);
        assert_eq!(a.get_or("out", String::from("-")).unwrap(), "-");
    }

    #[test]
    fn rejects_missing_subcommand() {
        assert!(ParsedArgs::parse(&[]).is_err());
    }

    #[test]
    fn rejects_missing_value() {
        assert!(ParsedArgs::parse(&argv("train --arch")).is_err());
    }

    #[test]
    fn rejects_duplicate_flag() {
        assert!(ParsedArgs::parse(&argv("train --arch a --arch b")).is_err());
    }

    #[test]
    fn rejects_unknown_flag() {
        let a = ParsedArgs::parse(&argv("train --bogus 1")).unwrap();
        assert!(a.expect_only(&["arch"]).is_err());
        assert!(a.expect_only(&["bogus"]).is_ok());
    }

    #[test]
    fn rejects_unparsable_value() {
        let a = ParsedArgs::parse(&argv("train --epochs banana")).unwrap();
        assert!(a.get_or("epochs", 1usize).is_err());
    }
}
