//! Property-based tests for tensor algebra invariants.
//!
//! Run on the deterministic `healthmon-check` harness: each case index
//! seeds its own generator, so a failure reported as "case N" reproduces
//! exactly with `healthmon_check::run_case(N, ..)`.

use healthmon_check::{run_cases, Gen};
use healthmon_tensor::{SeededRng, Tensor};

const CASES: usize = 256;

fn tensor(g: &mut Gen, max_len: usize) -> Tensor {
    let n = g.usize_in(1, max_len + 1);
    Tensor::from_slice(&g.vec_f32(n, -100.0, 100.0))
}

fn tensor_pair(g: &mut Gen, max_len: usize) -> (Tensor, Tensor) {
    let n = g.usize_in(1, max_len + 1);
    (
        Tensor::from_slice(&g.vec_f32(n, -100.0, 100.0)),
        Tensor::from_slice(&g.vec_f32(n, -100.0, 100.0)),
    )
}

#[test]
fn add_commutes() {
    run_cases(CASES, |g| {
        let (a, b) = tensor_pair(g, 64);
        assert_eq!(&a + &b, &b + &a);
    });
}

#[test]
fn add_zero_is_identity() {
    run_cases(CASES, |g| {
        let a = tensor(g, 64);
        let z = Tensor::zeros(a.shape());
        assert_eq!(&a + &z, a.clone());
    });
}

#[test]
fn sub_self_is_zero() {
    run_cases(CASES, |g| {
        let a = tensor(g, 64);
        let d = &a - &a;
        assert!(d.as_slice().iter().all(|&v| v == 0.0));
    });
}

#[test]
fn scale_distributes_over_add() {
    run_cases(CASES, |g| {
        let (a, b) = tensor_pair(g, 32);
        let s = g.f32_in(-10.0, 10.0);
        let lhs = (&a + &b).scale(s);
        let rhs = &a.scale(s) + &b.scale(s);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((x - y).abs() <= 1e-2 * (1.0 + x.abs().max(y.abs())));
        }
    });
}

#[test]
fn dot_is_symmetric() {
    run_cases(CASES, |g| {
        let (a, b) = tensor_pair(g, 64);
        let d1 = a.dot(&b);
        let d2 = b.dot(&a);
        assert!((d1 - d2).abs() <= 1e-3 * (1.0 + d1.abs()));
    });
}

#[test]
fn l1_distance_triangle_inequality() {
    run_cases(CASES, |g| {
        let (a, b) = tensor_pair(g, 32);
        let z = Tensor::zeros(a.shape());
        let direct = a.l1_distance(&b);
        let via_zero = a.l1_distance(&z) + z.l1_distance(&b);
        assert!(direct <= via_zero + 1e-3 * (1.0 + via_zero.abs()));
    });
}

#[test]
fn softmax_is_probability_vector() {
    run_cases(CASES, |g| {
        let a = tensor(g, 32);
        let s = a.softmax();
        assert!(s.as_slice().iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        assert!((s.sum() - 1.0).abs() < 1e-4);
    });
}

#[test]
fn softmax_shift_invariant() {
    run_cases(CASES, |g| {
        let a = tensor(g, 16);
        let c = g.f32_in(-50.0, 50.0);
        let s1 = a.softmax();
        let s2 = a.shift(c).softmax();
        for (x, y) in s1.as_slice().iter().zip(s2.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    });
}

#[test]
fn softmax_preserves_ranking() {
    run_cases(CASES, |g| {
        let a = tensor(g, 16);
        let s = a.softmax();
        assert_eq!(a.argmax(), s.argmax());
    });
}

#[test]
fn topk_descending() {
    run_cases(CASES, |g| {
        let a = tensor(g, 32);
        let k = a.len().min(5);
        let top = a.topk(k);
        for w in top.values.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(top.indices.len(), k);
    });
}

#[test]
fn std_nonnegative_and_zero_for_constants() {
    run_cases(CASES, |g| {
        let v = g.f32_in(-100.0, 100.0);
        let n = g.usize_in(1, 32);
        let t = Tensor::full(&[n], v);
        // Mean rounding can leave a tiny residual; the std of a constant
        // tensor must still be negligible relative to the magnitude.
        assert!(t.std() <= 1e-4 * (1.0 + v.abs()));
    });
}

#[test]
fn reshape_round_trips() {
    run_cases(CASES, |g| {
        let a = tensor(g, 64);
        let n = a.len();
        let r = a.reshape(&[n]).unwrap();
        assert_eq!(r.as_slice(), a.as_slice());
    });
}

#[test]
fn matmul_associativity() {
    run_cases(CASES, |g| {
        let mut rng = SeededRng::new(g.seed());
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b = Tensor::randn(&[4, 5], &mut rng);
        let c = Tensor::randn(&[5, 2], &mut rng);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            assert!((x - y).abs() < 1e-3);
        }
    });
}

#[test]
fn matmul_distributes_over_add() {
    run_cases(CASES, |g| {
        let mut rng = SeededRng::new(g.seed());
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b1 = Tensor::randn(&[4, 5], &mut rng);
        let b2 = Tensor::randn(&[4, 5], &mut rng);
        let lhs = a.matmul(&(&b1 + &b2));
        let rhs = &a.matmul(&b1) + &a.matmul(&b2);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((x - y).abs() < 1e-3);
        }
    });
}

#[test]
fn transpose_involution() {
    run_cases(CASES, |g| {
        let mut rng = SeededRng::new(g.seed());
        let m = g.usize_in(1, 8);
        let n = g.usize_in(1, 8);
        let a = Tensor::randn(&[m, n], &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    });
}

#[test]
fn lognormal_always_positive() {
    run_cases(CASES, |g| {
        let mut rng = SeededRng::new(g.seed());
        let sigma = g.f32_in(0.0, 1.0);
        for _ in 0..32 {
            assert!(rng.lognormal(0.0, sigma) > 0.0);
        }
    });
}

#[test]
fn seeded_rng_reproducible() {
    run_cases(CASES, |g| {
        let seed = g.seed();
        let mut a = SeededRng::new(seed);
        let mut b = SeededRng::new(seed);
        for _ in 0..16 {
            assert_eq!(a.unit(), b.unit());
        }
    });
}

#[test]
fn json_round_trip_preserves_tensor() {
    run_cases(CASES, |g| {
        let a = tensor(g, 64);
        let back: Tensor =
            healthmon_serdes::from_str(&healthmon_serdes::to_string(&a)).unwrap();
        assert_eq!(back.shape(), a.shape());
        for (x, y) in a.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    });
}
