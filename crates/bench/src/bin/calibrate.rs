//! Trains both benchmark models from scratch and reports accuracy — a
//! calibration/smoke entry point, not a paper artifact.

use healthmon_bench::harness::{train_or_load, Benchmark};

fn main() {
    for b in [Benchmark::Lenet5Digits, Benchmark::Convnet7Objects] {
        let trained = train_or_load(b);
        println!("{}: test accuracy {:.2}%", b.label(), trained.test_accuracy * 100.0);
    }
}
