//! Fleet supervision: a registry of independently-seeded
//! [`LifetimeRuntime`] devices driven by a crash-isolated supervisor.
//!
//! The single-device lifetime runtime ages *one* accelerator; the fleet
//! layer turns it into a service that monitors many. Each fleet epoch the
//! [`FleetSupervisor`] schedules a checkup for every live device across
//! the persistent worker pool, with the reliability contract the paper's
//! concurrent-test premise needs at scale:
//!
//! * **Panic isolation** — every device attempt runs under
//!   `catch_unwind`; a wedged or crashing checkup becomes a structured
//!   [`FleetIncident`], never a fleet abort.
//! * **Retry with backoff** — transient failures are retried up to a
//!   bounded attempt count with exponential backoff plus deterministic
//!   jitter, accounted in *virtual* milliseconds so reports stay
//!   byte-identical at any thread count.
//! * **Deadlines** — an attempt whose (injected) stall exceeds the
//!   per-checkup deadline is abandoned before the device transaction
//!   lands, so a timed-out checkup has no side effects and is safe to
//!   retry.
//! * **Quarantine** — a device that exhausts its retries in
//!   `quarantine_threshold` distinct epochs is parked out of the
//!   schedule; repeat offenders cannot starve the healthy fleet.
//! * **Priority + budget shedding** — Critical devices jump the queue;
//!   under a per-epoch pattern-evaluation budget the supervisor first
//!   sheds checkup *depth* on Healthy devices
//!   ([`LifetimeRuntime::step_shallow`]) and only then sheds whole
//!   devices, lowest priority first.
//!
//! Persistence is crash-safe: device state is partitioned into shard
//! files written atomically (temp + fsync + rename, per
//! [`crate::store`]) and guarded by a per-shard FNV digest, so
//! [`FleetSupervisor::resume`] recovers every healthy shard
//! bit-identically and reports torn or bit-flipped shards instead of
//! failing wholesale.
//!
//! Everything above is *proven* by the seeded [`ChaosConfig`] layer:
//! probabilistic checkup panics, virtual stalls, poisoned (NaN) checkup
//! distances, and checkpoint-write truncation/bit-flips, all drawn from
//! a chaos RNG keyed by `(device, epoch, attempt)` — independent of
//! scheduling, so a chaos run is as deterministic as a clean one.

use crate::error::HealthmonError;
use crate::monitor::HealthState;
use crate::patterns::TestPatternSet;
use crate::runtime::{
    fnv1a, network_digest, panic_message, patterns_digest, verify_digest, LifetimeConfig,
    LifetimeRuntime, FNV_OFFSET,
};
use crate::store;
use healthmon_nn::Network;
use healthmon_reram::BackendKind;
use healthmon_serdes::{FromJson, Json, JsonError, ToJson};
use healthmon_tensor::{pool, SeededRng};
use healthmon_telemetry as tel;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

// Fleet rollups are pure functions of (config, golden, patterns): chaos
// draws are keyed by (device, epoch, attempt) and never by thread or
// wall clock, so every counter here is Stable and participates in the
// thread-count-invariance byte comparisons. Only the epoch wall-clock
// histogram is Volatile.
static FLEET_CHECKUPS_OK: tel::Counter =
    tel::Counter::new("fleet.checkups.ok", tel::Stability::Stable);
static FLEET_CHECKUPS_FAILED: tel::Counter =
    tel::Counter::new("fleet.checkups.failed", tel::Stability::Stable);
static FLEET_RETRIES: tel::Counter = tel::Counter::new("fleet.retries", tel::Stability::Stable);
static FLEET_QUARANTINES: tel::Counter =
    tel::Counter::new("fleet.quarantines", tel::Stability::Stable);
static FLEET_INCIDENTS: tel::Counter =
    tel::Counter::new("fleet.incidents", tel::Stability::Stable);
static FLEET_SHED_DEPTH: tel::Counter =
    tel::Counter::new("fleet.shed.depth", tel::Stability::Stable);
static FLEET_SHED_DEVICES: tel::Counter =
    tel::Counter::new("fleet.shed.devices", tel::Stability::Stable);
static FLEET_BACKOFF_MS: tel::Counter =
    tel::Counter::new("fleet.backoff_ms", tel::Stability::Stable);
static FLEET_FLIGHT_RECORDS: tel::Counter =
    tel::Counter::new("fleet.flight_records", tel::Stability::Stable);
static FLEET_EPOCH_NS: tel::Histogram =
    tel::Histogram::new("fleet.epoch_ns", tel::Stability::Volatile);

/// Shard file format tag; bumped on incompatible layout changes.
const SHARD_FORMAT: &str = "healthmon-fleet-shard-v1";

/// Seeded fault injection into the *monitor itself*. All probabilities
/// are per checkup attempt except the checkpoint knobs, which are per
/// shard write. A default (all-zero) config injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the chaos stream; draws are keyed by
    /// `(seed, device, epoch, attempt)` so they are independent of
    /// scheduling and thread count.
    pub seed: u64,
    /// Probability an attempt panics before touching the device.
    pub panic_p: f64,
    /// Probability an attempt stalls for a drawn virtual duration.
    pub stall_p: f64,
    /// Maximum virtual stall in milliseconds (uniform in `1..=stall_ms`).
    pub stall_ms: u64,
    /// Per-shard probability a checkpoint write is truncated mid-file.
    pub truncate_p: f64,
    /// Per-shard probability a single checkpoint byte is bit-flipped.
    pub bitflip_p: f64,
    /// Probability a *successful* checkup's recorded confidence distance
    /// is poisoned to NaN, forcing a priority escalation.
    pub poison_p: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            panic_p: 0.0,
            stall_p: 0.0,
            stall_ms: 250,
            truncate_p: 0.0,
            bitflip_p: 0.0,
            poison_p: 0.0,
        }
    }
}

impl ChaosConfig {
    /// Parses a spec like `panic:0.05,stall:0.1,stallms:400,trunc:1,
    /// flip:0.5,poison:0.02,seed:9`. The literal `off` (or an empty
    /// string) is the inactive default.
    ///
    /// # Errors
    ///
    /// A description of the first malformed `key:value` pair.
    pub fn parse(spec: &str) -> Result<ChaosConfig, String> {
        let mut chaos = ChaosConfig::default();
        if spec.is_empty() || spec == "off" {
            return Ok(chaos);
        }
        for part in spec.split(',') {
            let (key, raw) = part
                .split_once(':')
                .ok_or_else(|| format!("chaos spec part `{part}` must look like key:value"))?;
            let bad = || format!("chaos spec `{key}`: cannot parse `{raw}`");
            match key {
                "panic" => chaos.panic_p = raw.parse().map_err(|_| bad())?,
                "stall" => chaos.stall_p = raw.parse().map_err(|_| bad())?,
                "stallms" => chaos.stall_ms = raw.parse().map_err(|_| bad())?,
                "trunc" => chaos.truncate_p = raw.parse().map_err(|_| bad())?,
                "flip" => chaos.bitflip_p = raw.parse().map_err(|_| bad())?,
                "poison" => chaos.poison_p = raw.parse().map_err(|_| bad())?,
                "seed" => chaos.seed = raw.parse().map_err(|_| bad())?,
                other => {
                    return Err(format!(
                        "unknown chaos knob `{other}` \
                         (panic|stall|stallms|trunc|flip|poison|seed)"
                    ))
                }
            }
        }
        chaos.validate().map_err(|e| e.to_string())?;
        Ok(chaos)
    }

    /// Whether any injection knob is non-zero.
    pub fn is_active(&self) -> bool {
        self.panic_p > 0.0
            || self.stall_p > 0.0
            || self.truncate_p > 0.0
            || self.bitflip_p > 0.0
            || self.poison_p > 0.0
    }

    /// Validates every probability into `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`HealthmonError::InvalidPolicy`] naming the offending knob.
    pub fn validate(&self) -> Result<(), HealthmonError> {
        for (name, p) in [
            ("panic", self.panic_p),
            ("stall", self.stall_p),
            ("trunc", self.truncate_p),
            ("flip", self.bitflip_p),
            ("poison", self.poison_p),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(HealthmonError::InvalidPolicy(format!(
                    "chaos probability `{name}` is {p}, outside [0, 1]"
                )));
            }
        }
        Ok(())
    }

    /// The chaos RNG for one checkup attempt, keyed so draws never depend
    /// on scheduling: same `(seed, device, epoch, attempt)` ⇒ same fault.
    fn attempt_rng(&self, device: usize, epoch: usize, attempt: usize) -> SeededRng {
        let mut h = fnv1a(FNV_OFFSET, self.seed.to_le_bytes());
        h = fnv1a(h, (device as u64).to_le_bytes());
        h = fnv1a(h, (epoch as u64).to_le_bytes());
        h = fnv1a(h, (attempt as u64).to_le_bytes());
        SeededRng::new(h)
    }

    /// The chaos RNG for one shard write.
    fn shard_rng(&self, shard: usize, epoch: usize) -> SeededRng {
        let mut h = fnv1a(FNV_OFFSET, self.seed.to_le_bytes());
        h = fnv1a(h, 0xF_1EE7_CA05u64.to_le_bytes());
        h = fnv1a(h, (shard as u64).to_le_bytes());
        h = fnv1a(h, (epoch as u64).to_le_bytes());
        SeededRng::new(h)
    }
}

/// One attempt's injected faults, drawn up front in a fixed order so the
/// stream is identical whichever faults end up firing.
struct AttemptChaos {
    panic: bool,
    stall_ms: u64,
    poison: bool,
    jitter_ms: u64,
}

fn draw_attempt(chaos: &ChaosConfig, device: usize, epoch: usize, attempt: usize) -> AttemptChaos {
    let mut rng = chaos.attempt_rng(device, epoch, attempt);
    let panic = rng.chance(chaos.panic_p);
    let stalled = rng.chance(chaos.stall_p);
    let stall_ms = if stalled && chaos.stall_ms > 0 {
        1 + rng.below(chaos.stall_ms as usize) as u64
    } else {
        0
    };
    let poison = rng.chance(chaos.poison_p);
    let jitter_ms = rng.below(16) as u64;
    AttemptChaos { panic, stall_ms, poison, jitter_ms }
}

/// Full configuration of a [`FleetSupervisor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Fleet master seed; each device's [`LifetimeConfig::seed`] is an
    /// FNV mix of this and its id.
    pub seed: u64,
    /// Number of devices in the registry.
    pub devices: usize,
    /// Per-device lifetime template (its `seed` field is overridden).
    pub device: LifetimeConfig,
    /// Checkup attempts per device per epoch before it counts as an
    /// offense (must be at least 1).
    pub retry_limit: usize,
    /// Base of the exponential retry backoff, in virtual milliseconds.
    pub backoff_base_ms: u64,
    /// Virtual per-attempt deadline: a stalled attempt exceeding it is
    /// abandoned (before the device transaction lands) and retried.
    pub deadline_ms: u64,
    /// Offenses (epochs with all retries exhausted) before a device is
    /// quarantined out of the schedule (must be at least 1).
    pub quarantine_threshold: usize,
    /// Per-epoch checkup budget in pattern evaluations; 0 = unlimited.
    /// Under pressure the supervisor sheds checkup depth on Healthy
    /// devices first, then sheds whole low-priority devices.
    pub budget: usize,
    /// Checkpoint shard count (must be at least 1).
    pub shards: usize,
    /// Safety bound on fleet epochs; 0 derives `2 * device.epochs + 8`,
    /// enough slack for shed devices to catch up.
    pub max_epochs: usize,
    /// The seeded fault-injection layer.
    pub chaos: ChaosConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 0,
            devices: 8,
            device: LifetimeConfig::default(),
            retry_limit: 3,
            backoff_base_ms: 50,
            deadline_ms: 200,
            quarantine_threshold: 2,
            budget: 0,
            shards: 4,
            max_epochs: 0,
            chaos: ChaosConfig::default(),
        }
    }
}

impl FleetConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`HealthmonError::InvalidPolicy`] naming the first invalid knob.
    pub fn validate(&self) -> Result<(), HealthmonError> {
        self.device.validate();
        self.chaos.validate()?;
        let positive = [
            ("devices", self.devices),
            ("retry_limit", self.retry_limit),
            ("quarantine_threshold", self.quarantine_threshold),
            ("shards", self.shards),
        ];
        for (name, v) in positive {
            if v == 0 {
                return Err(HealthmonError::InvalidPolicy(format!(
                    "fleet `{name}` must be at least 1"
                )));
            }
        }
        if self.deadline_ms == 0 {
            return Err(HealthmonError::InvalidPolicy(
                "fleet `deadline_ms` must be at least 1".to_owned(),
            ));
        }
        Ok(())
    }

    /// FNV-1a digest, stored in every shard so a resume under different
    /// parameters is rejected instead of silently diverging.
    pub fn digest(&self) -> u64 {
        fnv1a(FNV_OFFSET, format!("{self:?}").bytes())
    }

    /// The lifetime configuration of device `id`: the template with an
    /// independent derived seed.
    pub fn device_config(&self, id: usize) -> LifetimeConfig {
        let mut seed = fnv1a(FNV_OFFSET, self.seed.to_le_bytes());
        seed = fnv1a(seed, (id as u64).to_le_bytes());
        LifetimeConfig { seed, ..self.device }
    }

    fn epoch_bound(&self) -> usize {
        if self.max_epochs > 0 {
            self.max_epochs
        } else {
            2 * self.device.epochs + 8
        }
    }
}

/// What went wrong in one failed (or poisoned) device interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// The checkup attempt panicked (isolated by the supervisor).
    CheckupPanic,
    /// The attempt stalled past the per-checkup deadline and was
    /// abandoned before the device transaction landed.
    Timeout,
    /// The checkup completed but its recorded confidence distance was
    /// non-finite; the device is escalated to Critical priority.
    PoisonedDistance,
}

impl IncidentKind {
    /// Stable lowercase label used by serialized artifacts and reports.
    pub fn label(self) -> &'static str {
        match self {
            IncidentKind::CheckupPanic => "checkup-panic",
            IncidentKind::Timeout => "timeout",
            IncidentKind::PoisonedDistance => "poisoned-distance",
        }
    }
}

impl ToJson for IncidentKind {
    fn to_json(&self) -> Json {
        Json::String(self.label().to_owned())
    }
}

impl FromJson for IncidentKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str()? {
            "checkup-panic" => Ok(IncidentKind::CheckupPanic),
            "timeout" => Ok(IncidentKind::Timeout),
            "poisoned-distance" => Ok(IncidentKind::PoisonedDistance),
            other => Err(JsonError::invalid(format!("unknown incident kind `{other}`"))),
        }
    }
}

/// A structured supervisor-level incident: a device interaction that
/// failed (after retries) or returned poisoned data. Device-internal
/// incidents (parks) stay in the device's own
/// [`IncidentReport`](crate::IncidentReport).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetIncident {
    /// The offending device id.
    pub device: usize,
    /// Fleet epoch of the incident.
    pub epoch: usize,
    /// What happened.
    pub kind: IncidentKind,
    /// Human-readable detail (panic message, timings).
    pub message: String,
}

impl FleetIncident {
    fn describe(&self) -> String {
        format!(
            "device {:04} epoch {}: {} — {}",
            self.device,
            self.epoch,
            self.kind.label(),
            self.message
        )
    }
}

impl ToJson for FleetIncident {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("device".to_owned(), self.device.to_json()),
            ("epoch".to_owned(), self.epoch.to_json()),
            ("kind".to_owned(), self.kind.to_json()),
            ("message".to_owned(), self.message.to_json()),
        ])
    }
}

impl FromJson for FleetIncident {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(FleetIncident {
            device: usize::from_json(value.field("device")?)?,
            epoch: usize::from_json(value.field("epoch")?)?,
            kind: IncidentKind::from_json(value.field("kind")?)?,
            message: String::from_json(value.field("message")?)?,
        })
    }
}

/// One registered device plus its supervision state.
#[derive(Debug, Clone)]
struct DeviceRecord {
    id: usize,
    runtime: LifetimeRuntime,
    /// Epochs in which every retry was exhausted.
    offenses: usize,
    /// Fleet epoch at which the device was quarantined, if it was.
    quarantined_at: Option<usize>,
    /// Total retry attempts across the lifetime.
    retries: usize,
    /// Epochs run with shed checkup depth.
    shed_depth: usize,
    /// Epochs skipped entirely under budget pressure.
    shed_skipped: usize,
    /// Virtual milliseconds lost to stalls, timeouts and backoff.
    backoff_ms: u64,
    /// The last checkup's distance was poisoned; escalates priority
    /// until the next clean checkup.
    poisoned: bool,
    incidents: Vec<FleetIncident>,
}

impl DeviceRecord {
    /// Scheduling priority: higher goes first. Poisoned data is treated
    /// like Critical — non-finite distances bypass hysteresis exactly as
    /// in the single-device monitor.
    fn priority(&self) -> u8 {
        if self.poisoned {
            return 2;
        }
        match self.runtime.state() {
            HealthState::Critical => 2,
            HealthState::Watch => 1,
            HealthState::Healthy => 0,
        }
    }

    fn is_active(&self) -> bool {
        self.quarantined_at.is_none() && !self.runtime.is_finished()
    }

    fn summary(&self) -> String {
        let mut line = format!(
            "device {:04}: state={} epochs={}/{} repairs={} stuck={} \
             offenses={} retries={} shed={}+{} backoff_ms={}",
            self.id,
            self.runtime.state().label(),
            self.runtime.epoch(),
            self.runtime.config().epochs,
            self.runtime.repairs_used(),
            self.runtime.total_stuck(),
            self.offenses,
            self.retries,
            self.shed_depth,
            self.shed_skipped,
            self.backoff_ms,
        );
        if self.runtime.is_parked() {
            line.push_str(" PARKED");
        }
        if let Some(epoch) = self.quarantined_at {
            line.push_str(&format!(" QUARANTINED@{epoch}"));
        }
        line
    }
}

/// What the scheduler decided for one device this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Plan {
    /// Not scheduled: quarantined, finished, or shed under budget.
    Skip { shed: bool },
    /// Full-depth checkup.
    Full,
    /// Depth-shed checkup at the given pattern count.
    Shallow(usize),
}

/// The fleet supervisor: owns the registry and drives it epoch by epoch.
/// See the module docs for the supervision contract.
#[derive(Debug)]
pub struct FleetSupervisor {
    config: FleetConfig,
    golden: Network,
    patterns: TestPatternSet,
    devices: Vec<DeviceRecord>,
    fleet_epoch: usize,
    /// Shards reported damaged by the last [`FleetSupervisor::resume`]:
    /// `(shard index, detail)`. Their devices were reinitialized fresh.
    damaged_shards: Vec<(usize, String)>,
    /// Flight-recorder directory: when set, incidents, quarantines and
    /// poisoned distances dump postmortem artifacts there. Runtime
    /// state only — never serialized into shards (checkpoint layout is
    /// unchanged from earlier formats).
    flight_dir: Option<PathBuf>,
}

impl FleetSupervisor {
    /// Builds and deploys the whole registry: one independently-seeded
    /// [`LifetimeRuntime`] per device, constructed in parallel on the
    /// worker pool (construction is a pure function of the device id, so
    /// the result is scheduling-independent).
    ///
    /// # Errors
    ///
    /// [`HealthmonError::InvalidPolicy`] on an invalid configuration.
    pub fn new(
        golden: &Network,
        patterns: TestPatternSet,
        config: FleetConfig,
    ) -> Result<Self, HealthmonError> {
        config.validate()?;
        if patterns.len() < config.device.min_patterns {
            return Err(HealthmonError::InvalidPolicy(format!(
                "pattern set ({}) smaller than the degradation floor ({})",
                patterns.len(),
                config.device.min_patterns
            )));
        }
        let mut slots: Vec<Option<DeviceRecord>> = (0..config.devices).map(|_| None).collect();
        let golden_ref = golden;
        let patterns_ref = &patterns;
        pool::run_chunks(&mut slots, 1, |id, chunk| {
            let runtime = LifetimeRuntime::new(
                golden_ref,
                patterns_ref.clone(),
                config.device_config(id),
                None,
            );
            chunk[0] = Some(DeviceRecord {
                id,
                runtime,
                offenses: 0,
                quarantined_at: None,
                retries: 0,
                shed_depth: 0,
                shed_skipped: 0,
                backoff_ms: 0,
                poisoned: false,
                incidents: Vec::new(),
            });
        });
        let devices = slots
            .into_iter()
            .map(|slot| slot.expect("every construction chunk ran"))
            .collect();
        Ok(FleetSupervisor {
            config,
            golden: golden.clone(),
            patterns,
            devices,
            fleet_epoch: 0,
            damaged_shards: Vec::new(),
            flight_dir: None,
        })
    }

    /// Arms the incident flight recorder: every incident, quarantine
    /// transition, poisoned distance and device park from now on dumps a
    /// self-contained `incident-<device>-<epoch>.json` postmortem into
    /// `dir` (see [`crate::flight`]). Applied after construction *or*
    /// resume, so it covers both paths; it never changes detection
    /// outcomes, reports or checkpoints — artifacts are written on the
    /// side via [`store::write_atomic`].
    pub fn set_flight_dir(&mut self, dir: impl Into<PathBuf>) {
        let dir = dir.into();
        for rec in &mut self.devices {
            rec.runtime.set_flight(dir.clone(), rec.id as u32);
        }
        self.flight_dir = Some(dir);
    }

    /// The armed flight-recorder directory, if any.
    pub fn flight_dir(&self) -> Option<&Path> {
        self.flight_dir.as_deref()
    }

    /// The configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Completed fleet epochs.
    pub fn fleet_epoch(&self) -> usize {
        self.fleet_epoch
    }

    /// Whether every device is finished or quarantined.
    pub fn is_done(&self) -> bool {
        self.devices.iter().all(|r| !r.is_active())
    }

    /// Quarantined device ids, ascending.
    pub fn quarantined(&self) -> Vec<usize> {
        self.devices
            .iter()
            .filter(|r| r.quarantined_at.is_some())
            .map(|r| r.id)
            .collect()
    }

    /// Supervisor-level incidents across all devices, ordered by
    /// `(device, occurrence)`.
    pub fn incidents(&self) -> Vec<FleetIncident> {
        self.devices.iter().flat_map(|r| r.incidents.iter().cloned()).collect()
    }

    /// Total device epochs completed (the fleet's checkup throughput
    /// denominator for the load-generator mode).
    pub fn total_device_epochs(&self) -> usize {
        self.devices.iter().map(|r| r.runtime.epoch()).sum()
    }

    /// Shards the last [`FleetSupervisor::resume`] found damaged:
    /// `(shard index, detail)`.
    pub fn damaged_shards(&self) -> &[(usize, String)] {
        &self.damaged_shards
    }

    /// Per-device state histogram `(healthy, watch, critical)`.
    pub fn state_histogram(&self) -> (usize, usize, usize) {
        let mut h = (0usize, 0usize, 0usize);
        for r in &self.devices {
            match r.runtime.state() {
                HealthState::Healthy => h.0 += 1,
                HealthState::Watch => h.1 += 1,
                HealthState::Critical => h.2 += 1,
            }
        }
        h
    }

    /// One deterministic summary line per device, ascending by id — the
    /// unit the shard-recovery tests compare bit-for-bit.
    pub fn device_summaries(&self) -> Vec<String> {
        self.devices.iter().map(DeviceRecord::summary).collect()
    }

    /// Builds this epoch's schedule: priority order, then budget
    /// shedding (depth before devices).
    fn plan_epoch(&mut self) -> Vec<Plan> {
        let mut plan: Vec<Plan> = self
            .devices
            .iter()
            .map(|r| if r.is_active() { Plan::Full } else { Plan::Skip { shed: false } })
            .collect();
        if self.config.budget == 0 {
            return plan;
        }
        let cost = |rec: &DeviceRecord, p: Plan| -> usize {
            match p {
                Plan::Skip { .. } => 0,
                Plan::Full => rec.runtime.active_patterns(),
                Plan::Shallow(k) => k,
            }
        };
        let mut total: usize =
            self.devices.iter().zip(&plan).map(|(r, &p)| cost(r, p)).sum();
        if total <= self.config.budget {
            return plan;
        }
        // Scheduling order: priority descending, id ascending. Shedding
        // walks it back to front, so the healthiest devices give up
        // checkup depth (and, if that is not enough, their whole slot)
        // before anything is taken from Watch or Critical devices.
        let mut order: Vec<usize> = (0..self.devices.len())
            .filter(|&i| self.devices[i].is_active())
            .collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(self.devices[i].priority()), i));
        let floor = self.config.device.min_patterns;
        // Pass 1: shed depth on Healthy devices, lowest priority first.
        for &i in order.iter().rev() {
            if total <= self.config.budget {
                break;
            }
            let rec = &self.devices[i];
            if rec.priority() > 0 {
                continue;
            }
            let full = rec.runtime.active_patterns();
            if full > floor {
                plan[i] = Plan::Shallow(floor);
                total -= full - floor;
                self.devices[i].shed_depth += 1;
                FLEET_SHED_DEPTH.inc();
            }
        }
        // Pass 2: shed whole devices, lowest priority first.
        for &i in order.iter().rev() {
            if total <= self.config.budget {
                break;
            }
            let c = cost(&self.devices[i], plan[i]);
            plan[i] = Plan::Skip { shed: true };
            total -= c;
            self.devices[i].shed_skipped += 1;
            FLEET_SHED_DEVICES.inc();
        }
        plan
    }

    /// Runs one fleet epoch: plan, fan the scheduled checkups out over
    /// the worker pool with per-device isolation, and fold the outcomes
    /// back into the registry. Chaos (when configured) is injected here.
    pub fn run_epoch(&mut self) {
        let _span = tel::span("fleet.epoch");
        let t0 = tel::enabled().then(std::time::Instant::now);
        self.fleet_epoch += 1;
        let epoch = self.fleet_epoch;
        let plan = self.plan_epoch();
        let config = self.config;
        let flight = self.flight_dir.clone();
        let flight = flight.as_deref();
        pool::run_chunks(&mut self.devices, 1, |i, chunk| {
            let rec = &mut chunk[0];
            match plan[i] {
                Plan::Skip { .. } => {}
                Plan::Full => run_device_epoch(rec, epoch, None, &config, flight),
                Plan::Shallow(k) => run_device_epoch(rec, epoch, Some(k), &config, flight),
            }
        });
        if let Some(t0) = t0 {
            FLEET_EPOCH_NS.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// Runs up to `max_epochs` fleet epochs (until done, or until the
    /// configured safety bound, if `None`).
    pub fn run(&mut self, max_epochs: Option<usize>) {
        let mut remaining = max_epochs.unwrap_or(usize::MAX);
        while !self.is_done() && self.fleet_epoch < self.config.epoch_bound() && remaining > 0 {
            self.run_epoch();
            remaining -= 1;
        }
    }

    /// Deterministic operator-facing report: byte-identical for
    /// byte-identical fleets, at any thread count — the artifact the
    /// chaos-determinism and kill-resume CI gates compare.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str("== fleet report ==\n");
        out.push_str(&format!("seed: {}\n", self.config.seed));
        out.push_str(&format!(
            "devices: {} ({} shards)\n",
            self.config.devices, self.config.shards
        ));
        out.push_str(&format!("fleet epochs: {}\n", self.fleet_epoch));
        out.push_str(&format!(
            "chaos: {}\n",
            if self.config.chaos.is_active() { "active" } else { "off" }
        ));
        let (healthy, watch, critical) = self.state_histogram();
        out.push_str(&format!(
            "states: healthy {healthy}, watch {watch}, critical {critical}\n"
        ));
        let parked = self.devices.iter().filter(|r| r.runtime.is_parked()).count();
        out.push_str(&format!("parked devices: {parked}\n"));
        let quarantined = self.quarantined();
        out.push_str(&format!(
            "quarantined devices: {}{}\n",
            quarantined.len(),
            if quarantined.is_empty() {
                String::new()
            } else {
                format!(
                    " [{}]",
                    quarantined
                        .iter()
                        .map(|id| id.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
        ));
        let retries: usize = self.devices.iter().map(|r| r.retries).sum();
        let offenses: usize = self.devices.iter().map(|r| r.offenses).sum();
        let shed_depth: usize = self.devices.iter().map(|r| r.shed_depth).sum();
        let shed_skipped: usize = self.devices.iter().map(|r| r.shed_skipped).sum();
        let backoff: u64 = self.devices.iter().map(|r| r.backoff_ms).sum();
        out.push_str(&format!("retries: {retries}, offenses: {offenses}\n"));
        out.push_str(&format!(
            "shed: {shed_depth} shallow epochs, {shed_skipped} skipped epochs\n"
        ));
        out.push_str(&format!("virtual backoff: {backoff} ms\n"));
        match self.damaged_shards.as_slice() {
            [] => out.push_str("damaged shards: none\n"),
            damaged => {
                out.push_str(&format!("damaged shards: {}\n", damaged.len()));
                for (index, detail) in damaged {
                    out.push_str(&format!("  shard {index:03}: {detail}\n"));
                }
            }
        }
        let incidents = self.incidents();
        out.push_str(&format!("incidents: {}\n", incidents.len()));
        const INCIDENT_CAP: usize = 50;
        for incident in incidents.iter().take(INCIDENT_CAP) {
            out.push_str("  ");
            out.push_str(&incident.describe());
            out.push('\n');
        }
        if incidents.len() > INCIDENT_CAP {
            out.push_str(&format!("  (+{} more)\n", incidents.len() - INCIDENT_CAP));
        }
        out.push_str("devices:\n");
        for line in self.device_summaries() {
            out.push_str("  ");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Writes the fleet state as `shards` atomic shard files under
    /// `dir`, each guarded by an FNV digest over its content. A kill at
    /// any instant leaves every shard either at its previous complete
    /// state or its new complete state. With chaos checkpoint knobs
    /// active, shard writes are deliberately truncated or bit-flipped
    /// *after* the atomic write — simulating media corruption that the
    /// resume path must detect and contain.
    ///
    /// # Errors
    ///
    /// [`HealthmonError::CheckpointMismatch`] on a non-digital device
    /// backend; [`HealthmonError::CheckpointCorrupt`] on I/O failure.
    pub fn save_checkpoint(&self, dir: impl AsRef<Path>) -> Result<(), HealthmonError> {
        if self.config.device.backend.kind != BackendKind::Digital {
            return Err(HealthmonError::CheckpointMismatch(format!(
                "fleet checkpoints capture digital device state only; \
                 not supported on the `{}` backend",
                self.config.device.backend.kind.label()
            )));
        }
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| HealthmonError::CheckpointCorrupt {
            path: dir.display().to_string(),
            detail: e.to_string(),
        })?;
        for shard in 0..self.config.shards {
            let path = shard_path(dir, shard);
            let members: Vec<&DeviceRecord> = self
                .devices
                .iter()
                .filter(|r| r.id % self.config.shards == shard)
                .collect();
            let entries: Vec<(usize, String, Json)> = members
                .iter()
                .map(|r| (r.id, r.runtime.checkpoint_json(), device_meta_json(r)))
                .collect();
            let digest = self.shard_digest(shard, &entries);
            let devices: Vec<Json> = entries
                .into_iter()
                .map(|(id, checkpoint, meta)| {
                    let mut fields = vec![("id".to_owned(), id.to_json())];
                    if let Json::Object(meta_fields) = meta {
                        fields.extend(meta_fields);
                    }
                    // The lifetime checkpoint rides as an escaped string,
                    // so the shard digest covers its exact bytes without
                    // depending on a parse→serialize round trip.
                    fields.push(("checkpoint".to_owned(), Json::String(checkpoint)));
                    Json::Object(fields)
                })
                .collect();
            let value = Json::Object(vec![
                ("format".to_owned(), Json::String(SHARD_FORMAT.to_owned())),
                ("config_digest".to_owned(), Json::String(self.config.digest().to_string())),
                (
                    "golden_digest".to_owned(),
                    Json::String(network_digest(&self.golden).to_string()),
                ),
                (
                    "patterns_digest".to_owned(),
                    Json::String(patterns_digest(&self.patterns).to_string()),
                ),
                ("shard".to_owned(), shard.to_json()),
                ("shards".to_owned(), self.config.shards.to_json()),
                ("fleet_epoch".to_owned(), self.fleet_epoch.to_json()),
                ("devices".to_owned(), Json::Array(devices)),
                ("digest".to_owned(), Json::String(digest.to_string())),
            ]);
            let mut bytes = healthmon_serdes::to_string(&value).into_bytes();
            let mut rng = self.config.chaos.shard_rng(shard, self.fleet_epoch);
            let truncate = rng.chance(self.config.chaos.truncate_p);
            let flip = rng.chance(self.config.chaos.bitflip_p);
            if truncate && bytes.len() > 2 {
                // A torn write: everything past a drawn offset is lost.
                bytes.truncate(1 + rng.below(bytes.len() - 1));
            } else if flip && !bytes.is_empty() {
                let at = rng.below(bytes.len());
                bytes[at] ^= 1 << rng.below(8);
            }
            store::write_atomic(&path, &bytes).map_err(|e| {
                HealthmonError::CheckpointCorrupt {
                    path: path.display().to_string(),
                    detail: e.to_string(),
                }
            })?;
        }
        Ok(())
    }

    /// The digest guarding one shard: FNV-1a over the header identity,
    /// the fleet epoch, and every member's id, supervision metadata and
    /// exact checkpoint bytes.
    fn shard_digest(&self, shard: usize, entries: &[(usize, String, Json)]) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, self.config.digest().to_le_bytes());
        h = fnv1a(h, network_digest(&self.golden).to_le_bytes());
        h = fnv1a(h, patterns_digest(&self.patterns).to_le_bytes());
        h = fnv1a(h, (shard as u64).to_le_bytes());
        h = fnv1a(h, (self.fleet_epoch as u64).to_le_bytes());
        for (id, checkpoint, meta) in entries {
            h = fnv1a(h, (*id as u64).to_le_bytes());
            h = fnv1a(h, healthmon_serdes::to_string(meta).bytes());
            h = fnv1a(h, checkpoint.bytes());
        }
        h
    }

    /// Rebuilds a fleet from the shard files under `dir`, given the same
    /// golden network, pattern set and config. Every shard that reads
    /// back complete and digest-clean restores its devices
    /// bit-identically; torn, bit-flipped or missing shards are recorded
    /// in [`FleetSupervisor::damaged_shards`] and their devices are
    /// reinitialized fresh — a damaged shard never takes the fleet down.
    ///
    /// # Errors
    ///
    /// [`HealthmonError::CheckpointMismatch`] when a digest-clean shard
    /// was written under a different config, golden network, pattern set
    /// or shard layout (that is operator error, not media corruption);
    /// [`HealthmonError::InvalidPolicy`] on an invalid config.
    pub fn resume(
        golden: &Network,
        patterns: TestPatternSet,
        config: FleetConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Self, HealthmonError> {
        let dir = dir.as_ref();
        let mut fleet = FleetSupervisor::new(golden, patterns, config)?;
        // The *minimum* healthy-shard epoch, not the maximum: a kill
        // mid-save leaves shards at mixed epochs, and resuming from the
        // slowest one replays only what it missed (devices already ahead
        // are finished or re-planned idempotently), so the completed
        // fleet converges to the uninterrupted run byte-for-byte.
        let mut fleet_epoch: Option<usize> = None;
        for shard in 0..config.shards {
            let path = shard_path(dir, shard);
            match fleet.load_shard(&path, shard) {
                Ok(epoch) => {
                    fleet_epoch = Some(fleet_epoch.map_or(epoch, |e| e.min(epoch)));
                }
                Err(HealthmonError::CheckpointCorrupt { detail, .. }) => {
                    fleet.damaged_shards.push((shard, detail));
                }
                Err(other) => return Err(other),
            }
        }
        fleet.fleet_epoch = fleet_epoch.unwrap_or(0);
        Ok(fleet)
    }

    /// Loads one shard into the registry, returning its fleet epoch.
    /// Corruption (unreadable, unparseable, digest-dirty) surfaces as
    /// [`HealthmonError::CheckpointCorrupt`]; semantic mismatches on a
    /// digest-clean shard surface as
    /// [`HealthmonError::CheckpointMismatch`].
    fn load_shard(&mut self, path: &Path, shard: usize) -> Result<usize, HealthmonError> {
        let text = store::read_checkpoint(path)?;
        let value: Json =
            healthmon_serdes::from_str(&text).map_err(|e| store::mark_corrupt(path, e.into()))?;
        let parse = |e: JsonError| store::mark_corrupt(path, e.into());
        let format = value.field("format").map_err(parse)?.as_str().map_err(parse)?;
        if format != SHARD_FORMAT {
            return Err(HealthmonError::CheckpointCorrupt {
                path: path.display().to_string(),
                detail: format!("unknown shard format `{format}` (expected `{SHARD_FORMAT}`)"),
            });
        }
        let fleet_epoch = usize::from_json(value.field("fleet_epoch").map_err(parse)?)
            .map_err(parse)?;
        let devices = value.field("devices").map_err(parse)?.as_array().map_err(parse)?;
        let mut entries: Vec<(usize, String, Json, Json)> = Vec::with_capacity(devices.len());
        for device in devices {
            let id = usize::from_json(device.field("id").map_err(parse)?).map_err(parse)?;
            let checkpoint =
                String::from_json(device.field("checkpoint").map_err(parse)?).map_err(parse)?;
            let meta = device_meta_fields(device).map_err(parse)?;
            entries.push((id, checkpoint, meta, device.clone()));
        }
        let digest_entries: Vec<(usize, String, Json)> = entries
            .iter()
            .map(|(id, cp, meta, _)| (*id, cp.clone(), meta.clone()))
            .collect();
        let expected = self.shard_digest_at(shard, fleet_epoch, &digest_entries);
        match verify_digest(&value, "digest", expected, "fleet shard") {
            Ok(()) => {}
            Err(HealthmonError::CheckpointMismatch(detail)) => {
                // The digest covers the whole payload, so a mismatch here
                // is indistinguishable from media corruption — contain it
                // at shard granularity rather than failing the resume.
                return Err(HealthmonError::CheckpointCorrupt {
                    path: path.display().to_string(),
                    detail,
                });
            }
            Err(other) => return Err(store::mark_corrupt(path, other)),
        }
        // Digest-clean from here on: any inconsistency is operator error.
        verify_digest(&value, "config_digest", self.config.digest(), "fleet configuration")?;
        verify_digest(
            &value,
            "golden_digest",
            network_digest(&self.golden),
            &format!(
                "golden network (resume built `{}` weights: {} params over {} layers)",
                self.golden.input_shape().iter().map(|d| d.to_string()).collect::<Vec<_>>().join("x"),
                self.golden.num_params(),
                self.golden.layers().len()
            ),
        )?;
        verify_digest(&value, "patterns_digest", patterns_digest(&self.patterns), "pattern set")?;
        let shards = usize::from_json(value.field("shards")?)?;
        let stored_shard = usize::from_json(value.field("shard")?)?;
        if shards != self.config.shards || stored_shard != shard {
            return Err(HealthmonError::CheckpointMismatch(format!(
                "shard file {} claims shard {stored_shard}/{shards}, expected {shard}/{}",
                path.display(),
                self.config.shards
            )));
        }
        for (id, checkpoint, _, device) in &entries {
            let id = *id;
            if id >= self.config.devices || id % self.config.shards != shard {
                return Err(HealthmonError::CheckpointMismatch(format!(
                    "device id {id} does not belong to shard {shard}"
                )));
            }
            let runtime = LifetimeRuntime::resume(
                &self.golden,
                self.patterns.clone(),
                self.config.device_config(id),
                None,
                checkpoint,
            )?;
            let rec = &mut self.devices[id];
            rec.runtime = runtime;
            rec.offenses = usize::from_json(device.field("offenses")?)?;
            rec.quarantined_at = Option::from_json(device.field("quarantined_at")?)?;
            rec.retries = usize::from_json(device.field("retries")?)?;
            rec.shed_depth = usize::from_json(device.field("shed_depth")?)?;
            rec.shed_skipped = usize::from_json(device.field("shed_skipped")?)?;
            rec.backoff_ms = String::from_json(device.field("backoff_ms")?)?
                .parse::<u64>()
                .map_err(|_| JsonError::invalid("backoff_ms is not a decimal u64"))?;
            rec.poisoned = bool::from_json(device.field("poisoned")?)?;
            rec.incidents = Vec::from_json(device.field("incidents")?)?;
        }
        Ok(fleet_epoch)
    }

    /// [`FleetSupervisor::shard_digest`] against an explicit epoch (the
    /// one stored in the shard being verified, not the live one).
    fn shard_digest_at(
        &self,
        shard: usize,
        fleet_epoch: usize,
        entries: &[(usize, String, Json)],
    ) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, self.config.digest().to_le_bytes());
        h = fnv1a(h, network_digest(&self.golden).to_le_bytes());
        h = fnv1a(h, patterns_digest(&self.patterns).to_le_bytes());
        h = fnv1a(h, (shard as u64).to_le_bytes());
        h = fnv1a(h, (fleet_epoch as u64).to_le_bytes());
        for (id, checkpoint, meta) in entries {
            h = fnv1a(h, (*id as u64).to_le_bytes());
            h = fnv1a(h, healthmon_serdes::to_string(meta).bytes());
            h = fnv1a(h, checkpoint.bytes());
        }
        h
    }
}

fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}.json"))
}

/// The supervision metadata of one device as a JSON object (everything
/// except the id and the embedded lifetime checkpoint).
fn device_meta_json(rec: &DeviceRecord) -> Json {
    Json::Object(vec![
        ("offenses".to_owned(), rec.offenses.to_json()),
        ("quarantined_at".to_owned(), rec.quarantined_at.to_json()),
        ("retries".to_owned(), rec.retries.to_json()),
        ("shed_depth".to_owned(), rec.shed_depth.to_json()),
        ("shed_skipped".to_owned(), rec.shed_skipped.to_json()),
        // u64 as a decimal string, like every other 64-bit field.
        ("backoff_ms".to_owned(), Json::String(rec.backoff_ms.to_string())),
        ("poisoned".to_owned(), rec.poisoned.to_json()),
        ("incidents".to_owned(), rec.incidents.to_json()),
    ])
}

/// Re-extracts the metadata object from a parsed shard device entry, in
/// the exact field order [`device_meta_json`] writes, so the digest
/// recomputation sees byte-identical metadata serialization.
fn device_meta_fields(device: &Json) -> Result<Json, JsonError> {
    Ok(Json::Object(vec![
        ("offenses".to_owned(), device.field("offenses")?.clone()),
        ("quarantined_at".to_owned(), device.field("quarantined_at")?.clone()),
        ("retries".to_owned(), device.field("retries")?.clone()),
        ("shed_depth".to_owned(), device.field("shed_depth")?.clone()),
        ("shed_skipped".to_owned(), device.field("shed_skipped")?.clone()),
        ("backoff_ms".to_owned(), device.field("backoff_ms")?.clone()),
        ("poisoned".to_owned(), device.field("poisoned")?.clone()),
        ("incidents".to_owned(), device.field("incidents")?.clone()),
    ]))
}

/// Drives one device through one fleet epoch with panic isolation,
/// deadline enforcement, bounded retry and chaos injection. Runs inside
/// a pool chunk: it must never unwind (a panic here would poison the
/// whole job), so every failure folds into the record instead.
fn run_device_epoch(
    rec: &mut DeviceRecord,
    epoch: usize,
    depth: Option<usize>,
    config: &FleetConfig,
    flight: Option<&Path>,
) {
    let mut last_failure: Option<(IncidentKind, String)> = None;
    for attempt in 1..=config.retry_limit {
        let chaos = draw_attempt(&config.chaos, rec.id, epoch, attempt);
        if chaos.stall_ms > config.deadline_ms {
            // The checkup is wedged past its deadline: abandon the
            // attempt before the device transaction lands, so the retry
            // starts from untouched device state.
            rec.backoff_ms += config.deadline_ms;
            FLEET_CHECKUPS_FAILED.inc();
            last_failure = Some((
                IncidentKind::Timeout,
                format!(
                    "attempt {attempt} stalled {} ms, deadline {} ms",
                    chaos.stall_ms, config.deadline_ms
                ),
            ));
        } else {
            rec.backoff_ms += chaos.stall_ms;
            let runtime = &mut rec.runtime;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if chaos.panic {
                    panic!("chaos: injected checkup panic");
                }
                match depth {
                    Some(k) => runtime.step_shallow(k),
                    None => runtime.step(),
                }
            }));
            match outcome {
                Ok(_state) => {
                    FLEET_CHECKUPS_OK.inc();
                    rec.poisoned = false;
                    if chaos.poison {
                        // The checkup itself succeeded but its reported
                        // distance is non-finite: keep the device state
                        // (the epoch happened) and escalate priority, as
                        // the single-device monitor does for poisoned
                        // confidence distances.
                        rec.poisoned = true;
                        let incident = FleetIncident {
                            device: rec.id,
                            epoch,
                            kind: IncidentKind::PoisonedDistance,
                            message: "checkup distance read back NaN".to_owned(),
                        };
                        tel::record_event("fleet.incident", incident.describe());
                        rec.incidents.push(incident);
                        FLEET_INCIDENTS.inc();
                        if let Some(dir) = flight {
                            dump_flight(
                                rec,
                                epoch,
                                dir,
                                IncidentKind::PoisonedDistance.label(),
                                "checkup distance read back NaN",
                                config,
                            );
                        }
                    }
                    return;
                }
                Err(payload) => {
                    FLEET_CHECKUPS_FAILED.inc();
                    last_failure = Some((
                        IncidentKind::CheckupPanic,
                        format!("attempt {attempt}: {}", panic_message(payload)),
                    ));
                }
            }
        }
        if attempt < config.retry_limit {
            rec.retries += 1;
            rec.runtime.note_retries(1);
            FLEET_RETRIES.inc();
            // Exponential backoff with deterministic jitter, in virtual
            // milliseconds: visible in the report, invisible to the
            // wall clock.
            let backoff = config.backoff_base_ms.saturating_mul(1 << (attempt - 1).min(16))
                + chaos.jitter_ms;
            rec.backoff_ms += backoff;
            FLEET_BACKOFF_MS.add(backoff);
        }
    }
    // Every retry exhausted: one offense, one structured incident.
    let (kind, message) =
        last_failure.expect("retry loop records a failure before exhausting");
    rec.offenses += 1;
    let incident = FleetIncident { device: rec.id, epoch, kind, message: message.clone() };
    tel::record_event("fleet.incident", incident.describe());
    rec.incidents.push(incident);
    FLEET_INCIDENTS.inc();
    let quarantined_now =
        rec.offenses >= config.quarantine_threshold && rec.quarantined_at.is_none();
    if quarantined_now {
        rec.quarantined_at = Some(epoch);
        FLEET_QUARANTINES.inc();
    }
    if let Some(dir) = flight {
        // One artifact per (device, epoch): a quarantine transition
        // subsumes the incident that triggered it.
        let (reason, detail) = if quarantined_now {
            (
                "quarantine",
                format!(
                    "offense {} of {} reached the quarantine threshold; last: {message}",
                    rec.offenses, config.quarantine_threshold
                ),
            )
        } else {
            (kind.label(), message)
        };
        dump_flight(rec, epoch, dir, reason, &detail, config);
    }
}

/// Dumps one postmortem artifact for `rec` at `epoch`. Write failures
/// are logged, never propagated: the flight recorder must not be able
/// to take down the supervisor it observes.
fn dump_flight(
    rec: &DeviceRecord,
    epoch: usize,
    dir: &Path,
    reason: &str,
    detail: &str,
    config: &FleetConfig,
) {
    let mut record =
        rec.runtime
            .flight_record(rec.id as u32, epoch as u64, reason, detail, config.digest());
    record.push_tally("offenses", rec.offenses as u64);
    record.push_tally("fleet_retries", rec.retries as u64);
    record.push_tally("backoff_ms", rec.backoff_ms);
    match record.write(dir) {
        Ok(_) => FLEET_FLIGHT_RECORDS.inc(),
        Err(e) => {
            tel::log_warn!("flight-record dump failed for device {:04}: {e}", rec.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::TestPatternSet;
    use healthmon_nn::models::tiny_mlp;
    use healthmon_tensor::Tensor;

    fn setup(seed: u64) -> (Network, TestPatternSet) {
        let mut rng = SeededRng::new(seed);
        let net = tiny_mlp(8, 16, 4, &mut rng);
        let patterns = TestPatternSet::new("test", Tensor::randn(&[6, 8], &mut rng));
        (net, patterns)
    }

    fn small_config(devices: usize) -> FleetConfig {
        FleetConfig {
            seed: 33,
            devices,
            device: LifetimeConfig {
                epochs: 4,
                ..LifetimeConfig::default()
            },
            shards: 3,
            ..FleetConfig::default()
        }
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("healthmon_fleet_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn chaos_spec_parsing() {
        let c = ChaosConfig::parse("panic:0.05,stall:0.1,stallms:400,seed:9").unwrap();
        assert_eq!(c.panic_p, 0.05);
        assert_eq!(c.stall_p, 0.1);
        assert_eq!(c.stall_ms, 400);
        assert_eq!(c.seed, 9);
        assert!(c.is_active());
        assert!(!ChaosConfig::parse("off").unwrap().is_active());
        assert!(!ChaosConfig::parse("").unwrap().is_active());
        assert!(ChaosConfig::parse("panic").is_err());
        assert!(ChaosConfig::parse("panic:x").is_err());
        assert!(ChaosConfig::parse("frobnicate:1").is_err());
        assert!(ChaosConfig::parse("panic:1.5").is_err());
    }

    #[test]
    fn chaos_draws_are_scheduling_independent() {
        let chaos = ChaosConfig { seed: 7, panic_p: 0.3, stall_p: 0.3, ..Default::default() };
        for device in 0..5 {
            for epoch in 1..4 {
                let a = draw_attempt(&chaos, device, epoch, 1);
                let b = draw_attempt(&chaos, device, epoch, 1);
                assert_eq!(a.panic, b.panic);
                assert_eq!(a.stall_ms, b.stall_ms);
                assert_eq!(a.jitter_ms, b.jitter_ms);
            }
        }
    }

    #[test]
    fn clean_fleet_is_deterministic_and_completes() {
        let (net, patterns) = setup(5);
        let mut a = FleetSupervisor::new(&net, patterns.clone(), small_config(6)).unwrap();
        let mut b = FleetSupervisor::new(&net, patterns, small_config(6)).unwrap();
        a.run(None);
        b.run(None);
        assert!(a.is_done());
        assert_eq!(a.render_report(), b.render_report());
        assert!(a.quarantined().is_empty());
        assert!(a.incidents().is_empty());
    }

    #[test]
    fn chaos_panics_are_isolated_and_quarantine_offenders() {
        let (net, patterns) = setup(5);
        let mut config = small_config(8);
        // Every attempt panics: every device exhausts its retries every
        // epoch and must end up quarantined — with zero fleet aborts.
        config.chaos = ChaosConfig { seed: 3, panic_p: 1.0, ..Default::default() };
        config.quarantine_threshold = 2;
        let mut fleet = FleetSupervisor::new(&net, patterns, config).unwrap();
        fleet.run(None);
        assert!(fleet.is_done());
        assert_eq!(fleet.quarantined().len(), 8);
        assert!(fleet.incidents().iter().all(|i| i.kind == IncidentKind::CheckupPanic));
        // Devices never stepped: the panic fires before the transaction.
        assert_eq!(fleet.total_device_epochs(), 0);
    }

    #[test]
    fn stalls_past_deadline_time_out_and_retries_recover_transients() {
        let (net, patterns) = setup(5);
        let mut config = small_config(6);
        // Half the attempts stall far past the deadline; retries give
        // each epoch several chances, so most devices should still make
        // progress while timeouts show up as incidents or retries.
        config.chaos = ChaosConfig {
            seed: 11,
            stall_p: 0.5,
            stall_ms: 5_000,
            ..Default::default()
        };
        config.deadline_ms = 100;
        config.retry_limit = 4;
        config.quarantine_threshold = 100; // never quarantine here
        let mut fleet = FleetSupervisor::new(&net, patterns, config).unwrap();
        fleet.run(None);
        let report = fleet.render_report();
        assert!(fleet.total_device_epochs() > 0, "retries must recover some epochs");
        let retries: usize = report
            .lines()
            .find(|l| l.starts_with("retries:"))
            .and_then(|l| l.split(&[' ', ','][..]).nth(1).and_then(|v| v.parse().ok()))
            .unwrap();
        assert!(retries > 0, "stalls past the deadline must trigger retries");
    }

    #[test]
    fn poisoned_distances_escalate_priority() {
        let (net, patterns) = setup(5);
        let mut config = small_config(4);
        config.chaos = ChaosConfig { seed: 2, poison_p: 1.0, ..Default::default() };
        let mut fleet = FleetSupervisor::new(&net, patterns, config).unwrap();
        fleet.run_epoch();
        assert!(fleet
            .incidents()
            .iter()
            .all(|i| i.kind == IncidentKind::PoisonedDistance));
        assert_eq!(fleet.incidents().len(), 4);
        // Poisoned devices take top priority in the next plan.
        assert!(fleet.devices.iter().all(|r| r.priority() == 2));
    }

    #[test]
    fn budget_sheds_depth_before_devices() {
        let (net, patterns) = setup(5);
        let mut config = small_config(6);
        // 6 devices x 6 patterns = 36 evaluations; a budget of 20 forces
        // depth shedding (floor 2) on healthy devices: 6 x 2 = 12 fits,
        // so nothing should be skipped outright.
        config.budget = 20;
        let mut fleet = FleetSupervisor::new(&net, patterns, config).unwrap();
        fleet.run_epoch();
        let shed_depth: usize = fleet.devices.iter().map(|r| r.shed_depth).sum();
        let shed_skipped: usize = fleet.devices.iter().map(|r| r.shed_skipped).sum();
        assert!(shed_depth > 0, "budget pressure must shed checkup depth");
        assert_eq!(shed_skipped, 0, "depth shedding fits the budget; no device shed");
        assert_eq!(fleet.total_device_epochs(), 6, "every device still stepped");
        // A budget below the floor total forces device shedding too.
        let (net, patterns) = setup(5);
        let mut config = small_config(6);
        config.budget = 7; // floor total is 12
        let mut fleet = FleetSupervisor::new(&net, patterns, config).unwrap();
        fleet.run_epoch();
        let shed_skipped: usize = fleet.devices.iter().map(|r| r.shed_skipped).sum();
        assert!(shed_skipped > 0, "a floor-busting budget must shed devices");
        assert!(fleet.total_device_epochs() < 6);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let (net, patterns) = setup(9);
        let config = small_config(5);
        let dir = temp_dir("resume");
        let mut reference = FleetSupervisor::new(&net, patterns.clone(), config).unwrap();
        reference.run(None);
        let want = reference.render_report();

        let mut fleet = FleetSupervisor::new(&net, patterns.clone(), config).unwrap();
        fleet.run(Some(2));
        fleet.save_checkpoint(&dir).unwrap();
        let mut resumed = FleetSupervisor::resume(&net, patterns, config, &dir).unwrap();
        assert!(resumed.damaged_shards().is_empty());
        assert_eq!(resumed.fleet_epoch(), 2);
        resumed.run(None);
        assert_eq!(resumed.render_report(), want);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_shard_is_contained_and_reported() {
        let (net, patterns) = setup(9);
        let config = small_config(7); // 3 shards: ids {0,3,6}, {1,4}, {2,5}
        let dir = temp_dir("truncated");
        let mut fleet = FleetSupervisor::new(&net, patterns.clone(), config).unwrap();
        fleet.run(Some(2));
        fleet.save_checkpoint(&dir).unwrap();
        // Tear shard 1 mid-file, as a kill during a non-atomic write
        // would have.
        let path = dir.join("shard-001.json");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let resumed = FleetSupervisor::resume(&net, patterns, config, &dir).unwrap();
        assert_eq!(resumed.damaged_shards().len(), 1);
        assert_eq!(resumed.damaged_shards()[0].0, 1);
        // Healthy-shard devices restored bit-identically...
        let mut reference = FleetSupervisor::new(&net,
            TestPatternSet::new("test", resumed.patterns.images().clone()), config).unwrap();
        reference.run(Some(2));
        for id in [0usize, 2, 3, 5, 6] {
            assert_eq!(
                resumed.device_summaries()[id],
                reference.device_summaries()[id],
                "device {id} must resume bit-identically"
            );
        }
        // ...while damaged-shard devices fall back to a fresh registry
        // entry (epoch 0) instead of failing the resume.
        for id in [1usize, 4] {
            assert_eq!(resumed.devices[id].runtime.epoch(), 0);
        }
        assert!(resumed.render_report().contains("damaged shards: 1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flipped_shard_fails_its_digest() {
        let (net, patterns) = setup(9);
        let config = small_config(4);
        let dir = temp_dir("bitflip");
        let mut fleet = FleetSupervisor::new(&net, patterns.clone(), config).unwrap();
        fleet.run(Some(1));
        fleet.save_checkpoint(&dir).unwrap();
        // Flip one bit inside the payload (far from the JSON braces so
        // the file still parses and only the digest can catch it).
        let path = dir.join("shard-002.json");
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() / 2;
        let target = (at..bytes.len())
            .find(|&i| bytes[i].is_ascii_digit())
            .expect("a digit byte exists");
        bytes[target] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let resumed = FleetSupervisor::resume(&net, patterns, config, &dir).unwrap();
        let damaged = resumed.damaged_shards();
        assert_eq!(damaged.len(), 1);
        assert_eq!(damaged[0].0, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_a_different_config() {
        let (net, patterns) = setup(9);
        let config = small_config(4);
        let dir = temp_dir("wrong_config");
        let mut fleet = FleetSupervisor::new(&net, patterns.clone(), config).unwrap();
        fleet.run(Some(1));
        fleet.save_checkpoint(&dir).unwrap();
        let mut other = config;
        other.retry_limit += 1;
        // A clean shard under a different config digest: every shard is
        // "corrupt" relative to that config's digest chain, so the whole
        // resume degrades to fresh devices — but never silently mixes
        // configurations. (The config digest seeds the shard digest, so
        // the mismatch is caught by the earliest, strongest check.)
        let resumed = FleetSupervisor::resume(&net, patterns, other, &dir).unwrap();
        assert_eq!(resumed.damaged_shards().len(), config.shards);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_checkpoint_truncation_is_detected_on_resume() {
        let (net, patterns) = setup(9);
        let mut config = small_config(6);
        config.chaos = ChaosConfig { seed: 4, truncate_p: 0.5, ..Default::default() };
        let dir = temp_dir("chaos_trunc");
        let mut fleet = FleetSupervisor::new(&net, patterns.clone(), config).unwrap();
        fleet.run(Some(2));
        fleet.save_checkpoint(&dir).unwrap();
        // With truncate_p = 0.5 over 3 shards, the seeded draw damages at
        // least one shard (asserted, not assumed — the draw is fixed by
        // the chaos seed).
        let resumed = FleetSupervisor::resume(&net, patterns, config, &dir).unwrap();
        assert!(
            !resumed.damaged_shards().is_empty(),
            "seeded truncation chaos must damage at least one shard"
        );
        assert!(resumed.damaged_shards().len() < config.shards, "some shards survive");
        std::fs::remove_dir_all(&dir).ok();
    }
}
