//! The [`InferenceBackend`] abstraction: one seam through which the whole
//! detection stack (detector, fault campaigns, diagnosis, repair
//! re-validation, lifetime runtime) executes forward passes.
//!
//! The digital reference lives here ([`Network`] itself implements the
//! trait, and [`DigitalBackend`] is a thin owning wrapper); analog
//! implementations that route matmuls through conductance-mapped crossbars
//! live in `healthmon-reram` and plug into the same trait.

use crate::network::{Network, NonFiniteActivation};
use healthmon_tensor::Tensor;

/// An execution substrate for inference.
///
/// Implementations own (or borrow) everything a forward pass needs and
/// expose it behind `&self`, so detection can fan out over shared
/// references without cloning networks for the borrow checker.
///
/// # Contract
///
/// * `infer` must be deterministic: the same backend state and input
///   produce bitwise-identical logits, at any `HEALTHMON_THREADS`.
/// * `infer_checked` must return `Err` naming the first layer whose output
///   is non-finite instead of letting `NaN`/`±∞` poison downstream
///   statistics (`layer == usize::MAX` means the input itself).
/// * `readback` materializes the backend's *effective* weights into a
///   digital [`Network`] — for the digital backend that is a clone; for a
///   crossbar backend it is the conductance read-out, including every
///   fault and drift applied since programming.
pub trait InferenceBackend {
    /// Evaluation-mode forward pass over a batch `[N, ...input_shape]`.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the backend's network.
    fn infer(&self, input: &Tensor) -> Tensor;

    /// [`InferenceBackend::infer`] with per-layer non-finite containment.
    ///
    /// # Errors
    ///
    /// Returns [`NonFiniteActivation`] naming the first offending layer.
    fn infer_checked(&self, input: &Tensor) -> Result<Tensor, NonFiniteActivation>;

    /// Short backend identifier (`"digital"`, `"analog"`, `"bitsliced"`).
    fn backend_name(&self) -> &'static str;

    /// Materializes the effective weights into a digital [`Network`].
    fn readback(&self) -> Network;
}

impl InferenceBackend for Network {
    fn infer(&self, input: &Tensor) -> Tensor {
        Network::infer(self, input)
    }

    fn infer_checked(&self, input: &Tensor) -> Result<Tensor, NonFiniteActivation> {
        Network::infer_checked(self, input)
    }

    fn backend_name(&self) -> &'static str {
        "digital"
    }

    fn readback(&self) -> Network {
        self.clone()
    }
}

/// The bit-identical digital reference backend: owns a [`Network`] and
/// runs its plain evaluation-mode forward pass.
///
/// Exists so call sites can hold backends by value uniformly; borrowing
/// call sites can pass `&Network` directly since the trait is implemented
/// on [`Network`] itself.
#[derive(Debug, Clone)]
pub struct DigitalBackend {
    net: Network,
}

impl DigitalBackend {
    /// Wraps a network as a digital backend.
    pub fn new(net: Network) -> Self {
        DigitalBackend { net }
    }

    /// The wrapped network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the wrapped network (fault injection on the
    /// digital substrate edits weights directly).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Unwraps the backend into its network.
    pub fn into_network(self) -> Network {
        self.net
    }
}

impl InferenceBackend for DigitalBackend {
    fn infer(&self, input: &Tensor) -> Tensor {
        self.net.infer(input)
    }

    fn infer_checked(&self, input: &Tensor) -> Result<Tensor, NonFiniteActivation> {
        self.net.infer_checked(input)
    }

    fn backend_name(&self) -> &'static str {
        "digital"
    }

    fn readback(&self) -> Network {
        self.net.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{
        AvgPool2d, BatchNorm2d, Conv2d, Dense, Dropout, Flatten, MaxPool2d, Relu, Sigmoid, Tanh,
    };
    use crate::models;
    use healthmon_tensor::SeededRng;

    /// A network exercising every layer kind in one stack.
    fn kitchen_sink(rng: &mut SeededRng) -> Network {
        let mut net = Network::new(vec![2, 8, 8]);
        net.push(Conv2d::new(2, 4, 3, 1, 1, rng));
        net.push(BatchNorm2d::new(4));
        net.push(Relu::new());
        net.push(MaxPool2d::new(2, 2));
        net.push(Conv2d::new(4, 3, 3, 1, 0, rng));
        net.push(Tanh::new());
        net.push(AvgPool2d::new(2, 1));
        net.push(Flatten::new());
        net.push(Dense::new(3, 6, rng));
        net.push(Sigmoid::new());
        net.push(Dropout::new(0.3, rng));
        net.push(Dense::new(6, 4, rng));
        net
    }

    #[test]
    fn infer_matches_eval_forward_bitwise_all_layers() {
        let mut rng = SeededRng::new(41);
        let mut net = kitchen_sink(&mut rng);
        // Run a training pass first so batch-norm running stats are
        // non-trivial and dropout state is mid-stream.
        let warm = Tensor::randn(&[3, 2, 8, 8], &mut rng);
        net.set_training(true);
        net.forward(&warm);
        let x = Tensor::randn(&[2, 2, 8, 8], &mut rng);
        let inferred = net.infer(&x);
        net.set_training(false);
        let forwarded = net.forward(&x);
        assert_eq!(
            inferred, forwarded,
            "infer must be bit-identical to eval-mode forward"
        );
    }

    #[test]
    fn infer_matches_eval_forward_on_paper_models() {
        let mut rng = SeededRng::new(42);
        for (mut net, shape) in [
            (models::lenet5(&mut rng), vec![2, 1, 28, 28]),
            (models::convnet7(&mut rng), vec![2, 3, 32, 32]),
        ] {
            let x = Tensor::randn(&shape, &mut rng);
            let inferred = net.infer(&x);
            net.set_training(false);
            let forwarded = net.forward(&x);
            assert_eq!(inferred, forwarded);
        }
    }

    #[test]
    fn network_implements_backend() {
        let mut rng = SeededRng::new(43);
        let net = models::tiny_mlp(12, 7, 4, &mut rng);
        let x = Tensor::randn(&[3, 12], &mut rng);
        let backend: &dyn InferenceBackend = &net;
        assert_eq!(backend.backend_name(), "digital");
        assert_eq!(backend.infer(&x), net.infer(&x));
        assert_eq!(backend.infer_checked(&x).unwrap(), net.infer(&x));
        assert_eq!(backend.readback().state_dict(), net.state_dict());
    }

    #[test]
    fn digital_backend_wrapper_round_trips() {
        let mut rng = SeededRng::new(44);
        let net = models::tiny_mlp(6, 5, 3, &mut rng);
        let x = Tensor::randn(&[2, 6], &mut rng);
        let backend = DigitalBackend::new(net.clone());
        assert_eq!(backend.infer(&x), net.infer(&x));
        assert_eq!(backend.network().state_dict(), net.state_dict());
        assert_eq!(backend.into_network().state_dict(), net.state_dict());
    }

    #[test]
    fn infer_checked_contains_poison() {
        let mut rng = SeededRng::new(45);
        let mut net = models::tiny_mlp(4, 5, 3, &mut rng);
        net.for_each_param_mut(|k, t| {
            if k == "layer2.weight" {
                t.map_inplace(|_| f32::NAN);
            }
        });
        let x = Tensor::randn(&[1, 4], &mut rng);
        let err = InferenceBackend::infer_checked(&net, &x).unwrap_err();
        assert_eq!(err.layer, 2);
    }
}
