//! **Fig 7**: standard deviation of the confidence distance across fault
//! models as a function of the number of test patterns used — the
//! efficiency analysis. AET needs ~150+ images before its estimate
//! stabilizes, C-TP converges by ~50, and O-TP is stable with 10.

use healthmon::efficiency::pattern_count_sweep;
use healthmon::report::series_line;
use healthmon::{AetGenerator, CtpGenerator, Detector};
use healthmon_bench::harness::{
    emit, models_per_level, pattern_suite, train_or_load, Benchmark, CAMPAIGN_SEED, PATTERN_SEED,
};
use healthmon_faults::FaultModel;
use healthmon_tensor::SeededRng;
use std::fmt::Write as _;

fn main() {
    let count = models_per_level();
    // Mid-grid error level, as in the paper's convergence discussion.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 7 — std of confidence distance vs number of test patterns\n\
         ({count} fault models per point, programming variation at mid sigma)\n"
    );
    for benchmark in [Benchmark::Lenet5Digits, Benchmark::Convnet7Objects] {
        let mut trained = train_or_load(benchmark);
        let suite = pattern_suite(&mut trained);
        let sigma = match benchmark {
            Benchmark::Lenet5Digits => 0.25,
            Benchmark::Convnet7Objects => 0.15,
        };
        let fault = FaultModel::ProgrammingVariation { sigma };
        let _ = writeln!(out, "== {} (sigma = {sigma}) ==", benchmark.label());

        // Large AET / C-TP sets for the long sweep.
        let mut rng = SeededRng::new(PATTERN_SEED ^ 0xF167);
        let pool = benchmark.ctp_pool();
        let aet200 = AetGenerator::new(200, 0.15).generate(&mut trained.model, &pool, &mut rng);
        let ctp200 = CtpGenerator::new(200).select(&mut trained.model, &pool);
        let long_counts = [10usize, 25, 50, 100, 150, 200];
        for set in [aet200, ctp200] {
            let detector = Detector::new(&trained.model, set.clone());
            let curve = pattern_count_sweep(
                &detector,
                &trained.model,
                &fault,
                count,
                CAMPAIGN_SEED,
                &long_counts,
            );
            let top: Vec<(f32, f32)> =
                curve.iter().map(|p| (p.patterns as f32, p.std_top_ranked)).collect();
            let all: Vec<(f32, f32)> =
                curve.iter().map(|p| (p.patterns as f32, p.std_all_classes)).collect();
            let _ = writeln!(out, "{}", series_line(&format!("{} std(top-ranked)", set.method()), &top));
            let _ = writeln!(out, "{}", series_line(&format!("{} std(all-class)", set.method()), &all));
        }

        // O-TP: the 50-pattern suite set, swept down to its native 10.
        let detector = Detector::new(&trained.model, suite.otp.clone());
        let curve = pattern_count_sweep(
            &detector,
            &trained.model,
            &fault,
            count,
            CAMPAIGN_SEED,
            &[10, 20, 30, 40, 50],
        );
        let all: Vec<(f32, f32)> =
            curve.iter().map(|p| (p.patterns as f32, p.std_all_classes)).collect();
        let _ = writeln!(out, "{}", series_line("O-TP std(all-class)", &all));
        let _ = writeln!(out);
    }
    emit("fig7", &out);
}
