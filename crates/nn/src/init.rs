//! Weight initialization schemes.
//!
//! All schemes draw from a [`SeededRng`] so model construction is
//! reproducible; the paper's campaigns rely on retraining the same model
//! from the same seed.

use healthmon_tensor::{SeededRng, Tensor};

/// Initialization scheme for a layer's weight tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Init {
    /// He (Kaiming) normal: `N(0, sqrt(2 / fan_in))` — the right scale for
    /// ReLU networks, used by every model factory in this crate.
    #[default]
    HeNormal,
    /// Xavier (Glorot) uniform: `U(±sqrt(6 / (fan_in + fan_out)))`.
    XavierUniform,
    /// All zeros (used for biases).
    Zeros,
}

impl Init {
    /// Samples a tensor of the given shape.
    ///
    /// `fan_in` / `fan_out` are the effective connection counts — for a
    /// conv kernel these include the receptive-field area, not just channel
    /// counts.
    pub fn sample(self, shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut SeededRng) -> Tensor {
        match self {
            Init::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                let mut t = Tensor::zeros(shape);
                for v in t.as_mut_slice() {
                    *v = rng.normal(0.0, std);
                }
                t
            }
            Init::XavierUniform => {
                let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                Tensor::rand_uniform(shape, -bound, bound, rng)
            }
            Init::Zeros => Tensor::zeros(shape),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_normal_scale() {
        let mut rng = SeededRng::new(1);
        let t = Init::HeNormal.sample(&[100, 100], 100, 100, &mut rng);
        let std = t.std();
        let expected = (2.0f32 / 100.0).sqrt();
        assert!((std - expected).abs() < 0.02, "std {std} vs expected {expected}");
        assert!(t.mean().abs() < 0.01);
    }

    #[test]
    fn xavier_uniform_bounds() {
        let mut rng = SeededRng::new(2);
        let t = Init::XavierUniform.sample(&[50, 50], 50, 50, &mut rng);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(t.max() <= bound && t.min() >= -bound);
        // Should actually use the range, not collapse near zero.
        assert!(t.max() > bound * 0.8);
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = SeededRng::new(3);
        let t = Init::Zeros.sample(&[10], 10, 10, &mut rng);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = SeededRng::new(9);
        let mut b = SeededRng::new(9);
        assert_eq!(
            Init::HeNormal.sample(&[8, 8], 8, 8, &mut a),
            Init::HeNormal.sample(&[8, 8], 8, 8, &mut b)
        );
    }
}
