//! Plain-text report formatting for experiment outputs.
//!
//! The experiment binaries in `healthmon-bench` print the same rows and
//! series the paper's tables and figures report; these helpers keep the
//! formatting consistent and testable.

use std::fmt::Write as _;

/// A simple fixed-width text table.
///
/// # Example
///
/// ```
/// use healthmon::report::TextTable;
///
/// let mut t = TextTable::new(vec!["sigma".into(), "accuracy".into()]);
/// t.push_row(vec!["0.1".into(), "98.87%".into()]);
/// let s = t.render();
/// assert!(s.contains("sigma"));
/// assert!(s.contains("98.87%"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        TextTable { header, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for c in 0..cols {
                let _ = write!(out, "| {:width$} ", cells[c], width = widths[c]);
            }
            out.push_str("|\n");
        };
        fmt_row(&mut out, &self.header);
        for (c, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<width$}", "", width = w + 2);
            if c == cols - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal, paper style
/// (`0.948` → `"94.8%"`).
pub fn percent(fraction: f32) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a confidence distance with 4 decimals.
pub fn distance(d: f32) -> String {
    format!("{d:.4}")
}

/// Renders an `(x, y)` series as a compact single-line list, the form the
/// figure binaries print for each curve.
pub fn series_line(label: &str, points: &[(f32, f32)]) -> String {
    let body: Vec<String> = points.iter().map(|(x, y)| format!("({x:.3}, {y:.4})")).collect();
    format!("{label}: {}", body.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(vec!["a".into(), "long header".into()]);
        t.push_row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[1].len());
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(1.0), "100.0%");
        assert_eq!(percent(0.948), "94.8%");
        assert_eq!(percent(0.0), "0.0%");
    }

    #[test]
    fn distance_formatting() {
        assert_eq!(distance(0.12345), "0.1235");
    }

    #[test]
    fn series_rendering() {
        let s = series_line("C-TP", &[(0.1, 0.02), (0.2, 0.05)]);
        assert!(s.starts_with("C-TP:"));
        assert!(s.contains("(0.100, 0.0200)"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }
}
