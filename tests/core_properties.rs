//! Property-based tests over the core detection machinery.
//!
//! Run on the deterministic `healthmon-check` harness; a failure at case
//! `N` reproduces with `healthmon_check::run_case(N, ..)`.

use healthmon::stability::series_stats;
use healthmon::{SdcCriterion, TestPatternSet};
use healthmon_check::run_cases;
use healthmon_faults::FaultModel;
use healthmon_nn::models::tiny_mlp;
use healthmon_tensor::{SeededRng, Tensor};

const CASES: usize = 24;

/// A model is never "detected" against itself by any criterion.
#[test]
fn no_false_positive_against_self() {
    run_cases(CASES, |g| {
        let mut rng = SeededRng::new(g.seed());
        let patterns = g.usize_in(1, 12);
        let net = tiny_mlp(6, 12, 5, &mut rng);
        let set =
            TestPatternSet::new("t", Tensor::rand_uniform(&[patterns, 6], 0.0, 1.0, &mut rng));
        let golden = net.clone();
        let detector = healthmon::Detector::new(&golden, set);
        for crit in SdcCriterion::paper_suite() {
            assert!(!detector.is_faulty(&net, crit));
        }
    });
}

/// Confidence distances are always within [0, 1].
#[test]
fn confidence_distance_bounded() {
    run_cases(CASES, |g| {
        let seed = g.seed();
        let sigma = g.f32_in(0.0, 1.0);
        let mut rng = SeededRng::new(seed);
        let net = tiny_mlp(6, 12, 5, &mut rng);
        let set = TestPatternSet::new("t", Tensor::rand_uniform(&[6, 6], 0.0, 1.0, &mut rng));
        let golden = net.clone();
        let detector = healthmon::Detector::new(&golden, set);
        let mut faulty = net.clone();
        FaultModel::ProgrammingVariation { sigma }
            .apply(&mut faulty, &mut SeededRng::new(seed ^ 1));
        let d = detector.confidence_distance(&faulty);
        assert!((0.0..=1.0).contains(&d.top_ranked));
        assert!((0.0..=1.0).contains(&d.all_classes));
    });
}

/// A tighter SDC-A threshold can only detect at least as much.
#[test]
fn sdc_a_threshold_monotone() {
    run_cases(CASES, |g| {
        let seed = g.seed();
        let mut rng = SeededRng::new(seed);
        let net = tiny_mlp(6, 12, 5, &mut rng);
        let set = TestPatternSet::new("t", Tensor::rand_uniform(&[6, 6], 0.0, 1.0, &mut rng));
        let golden = net.clone();
        let detector = healthmon::Detector::new(&golden, set);
        let mut faulty = net.clone();
        FaultModel::ProgrammingVariation { sigma: 0.3 }
            .apply(&mut faulty, &mut SeededRng::new(seed ^ 2));
        let loose = detector.is_faulty(&faulty, SdcCriterion::SdcA { threshold: 0.05 });
        let tight = detector.is_faulty(&faulty, SdcCriterion::SdcA { threshold: 0.03 });
        // loose detection implies tight detection
        assert!(!loose || tight);
    });
}

/// Fault injection with sigma = 0 or p = 0 never triggers detection.
#[test]
fn null_faults_never_detected() {
    run_cases(CASES, |g| {
        let seed = g.seed();
        let mut rng = SeededRng::new(seed);
        let mut net = tiny_mlp(6, 12, 5, &mut rng);
        let set = TestPatternSet::new("t", Tensor::rand_uniform(&[4, 6], 0.0, 1.0, &mut rng));
        let golden = net.clone();
        let detector = healthmon::Detector::new(&golden, set);
        for fault in [
            FaultModel::ProgrammingVariation { sigma: 0.0 },
            FaultModel::RandomSoftError { probability: 0.0 },
            FaultModel::Drift { nu: 0.5, time: 0.0 },
        ] {
            fault.apply(&mut net, &mut SeededRng::new(seed));
            for crit in SdcCriterion::paper_suite() {
                assert!(!detector.is_faulty(&net, crit), "{}", crit.label());
            }
        }
    });
}

/// series_stats is scale-equivariant: mean and std scale linearly, CV
/// is scale-invariant.
#[test]
fn series_stats_scaling() {
    run_cases(CASES, |g| {
        let n = g.usize_in(2, 32);
        let values = g.vec_f32(n, 0.01, 10.0);
        let k = g.f32_in(0.1, 10.0);
        let base = series_stats(&values);
        let scaled: Vec<f32> = values.iter().map(|v| v * k).collect();
        let s = series_stats(&scaled);
        assert!((s.mean - base.mean * k).abs() < 1e-2 * (1.0 + s.mean.abs()));
        assert!((s.std - base.std * k).abs() < 1e-2 * (1.0 + s.std.abs()));
        assert!((s.cv - base.cv).abs() < 1e-3 + 1e-2 * base.cv);
    });
}

/// Truncating a pattern set preserves the prefix responses.
#[test]
fn truncation_consistency() {
    run_cases(CASES, |g| {
        let seed = g.seed();
        let total = g.usize_in(2, 10);
        let mut rng = SeededRng::new(seed);
        let net = tiny_mlp(5, 8, 4, &mut rng);
        let set = TestPatternSet::new("t", Tensor::rand_uniform(&[total, 5], 0.0, 1.0, &mut rng));
        let k = 1 + (seed as usize % total);
        let full = set.logits(&net);
        let prefix = set.truncated(k).logits(&net);
        for p in 0..k {
            for c in 0..4 {
                assert!((full.at(&[p, c]) - prefix.at(&[p, c])).abs() < 1e-5);
            }
        }
    });
}
