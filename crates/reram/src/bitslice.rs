//! ISAAC-style bit-sliced weight storage.
//!
//! Real crossbar cells store only a few bits each, so ISAAC-class
//! accelerators split a W-bit weight across several cells in adjacent
//! columns and recombine the per-slice analog products with a shift-add
//! ([Shafiee et al., ISCA'16], the architecture the paper cites). This
//! module models that scheme: magnitudes are quantized to `total_bits`,
//! sliced into `cell_bits` groups, each slice stored in its own
//! [`Crossbar`], and [`BitSlicedMatrix::matvec`] recombines slices with
//! their radix weights. Signs use the differential-pair convention of the
//! parent crate (the sign lives in which path of the pair carries the
//! magnitude, here modelled by signed per-slice storage).
//!
//! Each slice rides a [`TiledMatrix`], so on integer-path-capable configs
//! (see [`CrossbarConfig::integer_path_capable`]) every slice executes on
//! the quantize-once `i32` fast path automatically; the shift-add
//! recombination stays in `f32`.

use crate::quant::{narrow_code, round_fast};
use crate::{CellFault, CrossbarConfig, IrDropModel, Quantizer, ScrubOutcome, TiledMatrix};
use healthmon_tensor::{SeededRng, Tensor};

/// A weight matrix stored bit-sliced across multiple crossbar arrays.
///
/// # Example
///
/// ```
/// use healthmon_reram::{BitSlicedMatrix, CrossbarConfig};
/// use healthmon_tensor::{SeededRng, Tensor};
///
/// let mut rng = SeededRng::new(0);
/// let w = Tensor::randn(&[16, 8], &mut rng);
/// // 8-bit weights over 2-bit cells -> 4 slices.
/// let sliced = BitSlicedMatrix::program(&w, 8, 2, &CrossbarConfig::ideal(), &mut rng);
/// assert_eq!(sliced.num_slices(), 4);
/// let x = Tensor::randn(&[16], &mut rng);
/// assert_eq!(sliced.matvec(&x).shape(), &[8]);
/// ```
#[derive(Debug, Clone)]
pub struct BitSlicedMatrix {
    /// One tiled array per slice, least-significant slice first. Each
    /// stores the *signed* slice digits scaled into its own range.
    slices: Vec<TiledMatrix>,
    /// Radix weight of each slice (1, 2^b, 2^2b, ...), scaled back to the
    /// weight domain.
    slice_scale: Vec<f32>,
    rows: usize,
    cols: usize,
    total_bits: u32,
    cell_bits: u32,
}

impl BitSlicedMatrix {
    /// Programs `weights` with `total_bits` of magnitude resolution,
    /// sliced into `cell_bits`-wide digits.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is not 2-D, `total_bits` is not a positive
    /// multiple of `cell_bits`, or either exceeds 16 bits.
    pub fn program(
        weights: &Tensor,
        total_bits: u32,
        cell_bits: u32,
        config: &CrossbarConfig,
        rng: &mut SeededRng,
    ) -> Self {
        assert_eq!(weights.ndim(), 2, "bit slicing requires a 2-D matrix");
        assert!(
            cell_bits >= 1 && total_bits >= cell_bits && total_bits.is_multiple_of(cell_bits),
            "total bits {total_bits} must be a positive multiple of cell bits {cell_bits}"
        );
        assert!(total_bits <= 16, "more than 16 weight bits is not supported");
        let (rows, cols) = (weights.shape()[0], weights.shape()[1]);
        let num_slices = (total_bits / cell_bits) as usize;
        let w_max = weights
            .as_slice()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()))
            .max(f32::MIN_POSITIVE);
        let levels = (1u32 << total_bits) - 1;
        let q = Quantizer::new(0.0, w_max, total_bits);
        let digit_radix = 1u32 << cell_bits;

        // Decompose each |w| into digits, keep sign on every digit.
        //
        // Lowered per the DESIGN.md §8 checklist: quantize once into a
        // code vector with the branch-free round/narrow helpers (instead
        // of `f32::round` + a saturating `as u32` per element), then peel
        // each digit with shift/mask zip loops — `(code >> k·cell_bits) &
        // (radix−1)` equals the former `%`/`÷` cascade for every u32
        // code, and the zip stores carry no bounds checks. Bit-identical
        // to the scalar form on the whole ≤16-bit code domain (codes top
        // out at 2¹⁶, inside `narrow_code`'s window).
        let src = weights.as_slice();
        let qstep = q.step();
        let codes: Vec<u32> = src
            .iter()
            .map(|&w| narrow_code(round_fast(w.abs().min(w_max) / qstep)))
            .collect();
        let signs: Vec<f32> =
            src.iter().map(|&w| if w < 0.0 { -1.0f32 } else { 1.0 }).collect();
        let mut digit_planes: Vec<Tensor> =
            (0..num_slices).map(|_| Tensor::zeros(&[rows, cols])).collect();
        let mask = digit_radix - 1;
        for (k, plane) in digit_planes.iter_mut().enumerate() {
            let shift = k as u32 * cell_bits;
            for ((d, &code), &sign) in
                plane.as_mut_slice().iter_mut().zip(&codes).zip(&signs)
            {
                *d = sign * ((code >> shift) & mask) as f32;
            }
        }

        // Each plane holds digits in [-digit_max, digit_max]; the tiled
        // programmer normalizes to its own max, so record the plane's
        // weight-domain scale explicitly: value = digit * radix^k * step.
        let step = w_max / levels as f32;
        let mut slices = Vec::with_capacity(num_slices);
        let mut slice_scale = Vec::with_capacity(num_slices);
        for (k, plane) in digit_planes.iter().enumerate() {
            slices.push(TiledMatrix::program(plane, config, rng));
            let radix_weight = (digit_radix as f32).powi(k as i32);
            slice_scale.push(step * radix_weight);
        }
        BitSlicedMatrix { slices, slice_scale, rows, cols, total_bits, cell_bits }
    }

    /// Number of slices (`total_bits / cell_bits`).
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// Logical matrix dimensions.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Magnitude resolution in bits.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Bits stored per cell.
    pub fn cell_bits(&self) -> u32 {
        self.cell_bits
    }

    /// Mutable access to the per-slice arrays (LSB slice first), e.g. for
    /// injecting faults into a single significance level.
    pub fn slices_mut(&mut self) -> &mut [TiledMatrix] {
        &mut self.slices
    }

    /// Shared access to the per-slice arrays (LSB slice first).
    pub fn slices(&self) -> &[TiledMatrix] {
        &self.slices
    }

    /// Weight-domain radix scale of each slice (LSB slice first).
    pub fn slice_scales(&self) -> &[f32] {
        &self.slice_scale
    }

    /// Total crossbar tiles across all slices.
    pub fn tile_count(&self) -> usize {
        self.slices.iter().map(TiledMatrix::tile_count).sum()
    }

    /// Injects stuck cells into every slice array (LSB slice first, one
    /// continuous RNG stream).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn inject_stuck_cells(&mut self, fault: CellFault, fraction: f64, rng: &mut SeededRng) {
        for slice in &mut self.slices {
            slice.inject_stuck_cells(fault, fraction, rng);
        }
    }

    /// Applies conductance drift to every slice array (LSB slice first,
    /// one continuous RNG stream).
    pub fn drift(&mut self, nu: f32, time: f32, rng: &mut SeededRng) {
        for slice in &mut self.slices {
            slice.drift(nu, time, rng);
        }
    }

    /// Applies lognormal conductance disturbance to every slice array.
    pub fn disturb(&mut self, sigma: f32, rng: &mut SeededRng) {
        for slice in &mut self.slices {
            slice.disturb(sigma, rng);
        }
    }

    /// Flips cells with probability `probability` in every slice array
    /// (LSB slice first, one continuous RNG stream). Returns the total
    /// flipped cell count.
    pub fn flip_cells(&mut self, probability: f64, rng: &mut SeededRng) -> usize {
        let mut flipped = 0usize;
        for slice in &mut self.slices {
            flipped += slice.flip_cells(probability, rng);
        }
        flipped
    }

    /// Enables online parity tolerance on every slice array.
    pub fn enable_parity(&mut self) {
        for slice in &mut self.slices {
            slice.enable_parity();
        }
    }

    /// Re-baselines the parity checksums of every slice array.
    pub fn refresh_parity(&mut self) {
        for slice in &mut self.slices {
            slice.refresh_parity();
        }
    }

    /// Scrubs every slice array against its parity checksums.
    pub fn scrub_parity(&mut self) -> ScrubOutcome {
        let mut outcome = ScrubOutcome::default();
        for slice in &mut self.slices {
            outcome.merge(slice.scrub_parity());
        }
        outcome
    }

    /// Applies the first-order IR-drop model to every slice array.
    pub fn apply_ir_drop(&mut self, model: &IrDropModel) {
        for slice in &mut self.slices {
            slice.apply_ir_drop(model);
        }
    }

    /// Freezes the weight at logical position `(row, col)` to read as
    /// (approximately) `weight`: the magnitude is re-quantized to the
    /// slice code space and each slice's digit is stuck in its array.
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are outside the logical matrix or `weight` is
    /// non-finite.
    pub fn stick_cell(&mut self, row: usize, col: usize, weight: f32) {
        assert!(
            row < self.rows && col < self.cols,
            "cell ({row}, {col}) outside {}x{} matrix",
            self.rows,
            self.cols
        );
        assert!(weight.is_finite(), "stuck weight must be finite, got {weight}");
        let levels = (1u32 << self.total_bits) - 1;
        let step = self.slice_scale[0];
        let w_max = step * levels as f32;
        let q = Quantizer::new(0.0, w_max, self.total_bits);
        let sign = if weight < 0.0 { -1.0f32 } else { 1.0 };
        let mut code = q.index_of(weight.abs().min(w_max));
        let radix = 1u32 << self.cell_bits;
        for slice in &mut self.slices {
            let digit = code % radix;
            slice.stick_cell(row, col, sign * digit as f32);
            code /= radix;
        }
    }

    /// The weight matrix the sliced arrays actually realize.
    pub fn effective_weights(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.rows, self.cols]);
        for (slice, &scale) in self.slices.iter().zip(&self.slice_scale) {
            out.axpy(scale, &slice.effective_weights());
        }
        out
    }

    /// Crossbar matvec with shift-add recombination: each slice computes
    /// its partial product in analog, the digital periphery scales by the
    /// slice radix and accumulates.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the row count.
    pub fn matvec(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.len(), self.rows, "input length mismatch");
        let mut out = Tensor::zeros(&[self.cols]);
        for (slice, &scale) in self.slices.iter().zip(&self.slice_scale) {
            out.axpy(scale, &slice.matvec(input));
        }
        out
    }

    /// Batched crossbar product with shift-add recombination: every slice
    /// runs one tile-level GEMM over the whole `[batch, rows]` pattern set
    /// (see [`TiledMatrix::matmul`]), then the digital periphery scales by
    /// the slice radix and accumulates — the batch counterpart of
    /// [`BitSlicedMatrix::matvec`], with the identical per-element
    /// recombination order.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not 2-D with `rows` columns.
    pub fn matmul(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 2, "batched matmul expects 2-D input");
        assert_eq!(input.shape()[1], self.rows, "inner dimension mismatch");
        let mut out = Tensor::zeros(&[input.shape()[0], self.cols]);
        for (slice, &scale) in self.slices.iter().zip(&self.slice_scale) {
            out.axpy(scale, &slice.matmul(input));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellFault;

    #[test]
    fn slice_count() {
        let mut rng = SeededRng::new(1);
        let w = Tensor::randn(&[4, 4], &mut rng);
        let s = BitSlicedMatrix::program(&w, 8, 2, &CrossbarConfig::ideal(), &mut rng);
        assert_eq!(s.num_slices(), 4);
        let s = BitSlicedMatrix::program(&w, 6, 3, &CrossbarConfig::ideal(), &mut rng);
        assert_eq!(s.num_slices(), 2);
    }

    #[test]
    fn effective_weights_approximate_original() {
        let mut rng = SeededRng::new(2);
        let w = Tensor::randn(&[8, 6], &mut rng);
        let s = BitSlicedMatrix::program(&w, 12, 2, &CrossbarConfig::ideal(), &mut rng);
        let back = s.effective_weights();
        let w_max = w.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let tol = w_max / ((1u32 << 12) - 1) as f32 + 1e-4;
        for (a, b) in w.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
        }
    }

    #[test]
    fn matvec_matches_digital_reference() {
        let mut rng = SeededRng::new(3);
        let w = Tensor::randn(&[10, 5], &mut rng);
        let s = BitSlicedMatrix::program(&w, 12, 4, &CrossbarConfig::ideal(), &mut rng);
        let x = Tensor::randn(&[10], &mut rng).map(|v| v.clamp(-1.0, 1.0));
        let got = s.matvec(&x);
        let want = s.effective_weights().transpose().matvec(&x);
        for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn lowered_digit_decomposition_matches_scalar_reference() {
        // The §8-lowered program() path (round_fast + narrow_code +
        // shift/mask) must be bit-identical to the straightforward
        // index_of + %/÷ cascade it replaced.
        let mut rng = SeededRng::new(77);
        let w = Tensor::randn(&[9, 7], &mut rng).map(|v| v * 3.0);
        let (total_bits, cell_bits) = (16u32, 4u32);
        let w_max = w
            .as_slice()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()))
            .max(f32::MIN_POSITIVE);
        let q = Quantizer::new(0.0, w_max, total_bits);
        let digit_radix = 1u32 << cell_bits;
        let num_slices = (total_bits / cell_bits) as usize;
        for &weight in w.as_slice() {
            // Scalar reference.
            let mut reference = Vec::new();
            let mut code = q.index_of(weight.abs());
            for _ in 0..num_slices {
                reference.push(code % digit_radix);
                code /= digit_radix;
            }
            // Lowered form, exactly as program() computes it.
            let lowered_code =
                narrow_code(round_fast(weight.abs().min(w_max) / q.step()));
            for (k, &want) in reference.iter().enumerate() {
                let got = (lowered_code >> (k as u32 * cell_bits)) & (digit_radix - 1);
                assert_eq!(got, want, "weight {weight} digit {k}");
            }
        }
    }

    #[test]
    fn more_bits_give_finer_weights() {
        let mut rng = SeededRng::new(4);
        let w = Tensor::randn(&[12, 12], &mut rng);
        let coarse = BitSlicedMatrix::program(&w, 4, 2, &CrossbarConfig::ideal(), &mut rng)
            .effective_weights();
        let fine = BitSlicedMatrix::program(&w, 12, 2, &CrossbarConfig::ideal(), &mut rng)
            .effective_weights();
        assert!(w.l1_distance(&coarse) > w.l1_distance(&fine) * 4.0);
    }

    #[test]
    fn msb_slice_faults_hurt_more_than_lsb() {
        let mut rng = SeededRng::new(5);
        let w = Tensor::randn(&[16, 16], &mut rng);
        let run = |slice_idx: usize, rng: &mut SeededRng| {
            let mut s = BitSlicedMatrix::program(&w, 8, 2, &CrossbarConfig::ideal(), rng);
            let mut fault_rng = SeededRng::new(99);
            s.slices_mut()[slice_idx].inject_stuck_cells(CellFault::StuckLow, 0.5, &mut fault_rng);
            w.l1_distance(&s.effective_weights())
        };
        let lsb_damage = run(0, &mut rng);
        let msb_damage = run(3, &mut rng);
        assert!(
            msb_damage > lsb_damage * 4.0,
            "MSB slice faults must dominate: lsb {lsb_damage} msb {msb_damage}"
        );
    }

    #[test]
    fn sign_preserved() {
        let mut rng = SeededRng::new(6);
        let w = Tensor::from_vec(vec![0.9, -0.9, 0.3, -0.3], &[2, 2]).unwrap();
        let s = BitSlicedMatrix::program(&w, 8, 4, &CrossbarConfig::ideal(), &mut rng);
        let back = s.effective_weights();
        for (a, b) in w.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.signum(), b.signum());
        }
    }

    #[test]
    fn batched_matmul_bit_identical_to_matvec_rows() {
        let mut rng = SeededRng::new(8);
        let w = Tensor::randn(&[9, 5], &mut rng);
        let s = BitSlicedMatrix::program(&w, 8, 2, &CrossbarConfig::default(), &mut rng);
        let x = Tensor::randn(&[4, 9], &mut rng).map(|v| v.clamp(-1.0, 1.0));
        let batch = s.matmul(&x);
        assert_eq!(batch.shape(), &[4, 5]);
        for b in 0..4 {
            let single = s.matvec(&x.row(b));
            for (j, (p, q)) in batch.row(b).as_slice().iter().zip(single.as_slice()).enumerate() {
                assert_eq!(p.to_bits(), q.to_bits(), "row {b} col {j}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn stick_cell_pins_weight_across_slices() {
        let mut rng = SeededRng::new(9);
        let w = Tensor::randn(&[6, 6], &mut rng);
        let mut s = BitSlicedMatrix::program(&w, 8, 2, &CrossbarConfig::ideal(), &mut rng);
        let w_max = w.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let step = w_max / 255.0;
        for &(r, c, target) in &[(1usize, 2usize, 0.0f32), (4, 5, -0.4), (0, 0, 0.7)] {
            s.stick_cell(r, c, target);
            let got = s.effective_weights().at(&[r, c]);
            assert!(
                (got - target).abs() <= step + 1e-3,
                "stuck ({r},{c}) reads {got}, wanted ~{target}"
            );
        }
    }

    #[test]
    fn drift_and_ir_drop_propagate_to_slices() {
        let mut rng = SeededRng::new(10);
        let w = Tensor::randn(&[8, 8], &mut rng);
        let mut s = BitSlicedMatrix::program(&w, 8, 2, &CrossbarConfig::ideal(), &mut rng);
        let before = s.effective_weights().norm_l1();
        s.drift(0.5, 3.0, &mut rng);
        let after = s.effective_weights().norm_l1();
        assert!(after < before, "drift should shrink: {before} -> {after}");

        let mut s = BitSlicedMatrix::program(&w, 8, 2, &CrossbarConfig::ideal(), &mut rng);
        let before = s.effective_weights();
        s.apply_ir_drop(&IrDropModel::new(0.05));
        assert!(before.l1_distance(&s.effective_weights()) > 1e-3);
    }

    #[test]
    #[should_panic(expected = "multiple of cell bits")]
    fn rejects_non_multiple_bits() {
        let mut rng = SeededRng::new(7);
        BitSlicedMatrix::program(&Tensor::zeros(&[2, 2]), 7, 2, &CrossbarConfig::ideal(), &mut rng);
    }
}
