#!/usr/bin/env bash
# Hermetic CI: the whole pipeline must pass offline, proving the
# workspace builds from the standard library alone (no registry, no
# network, no vendored sources).
#
# Usage: scripts/ci.sh [--bench-smoke]
#   --bench-smoke  additionally run both bench binaries in short mode
#                  (HEALTHMON_BENCH_SMOKE=1) and refresh BENCH_pr2.json.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SMOKE=0
if [[ "${1:-}" == "--bench-smoke" ]]; then
    BENCH_SMOKE=1
fi

# Assembles BENCH_pr2.json: the checked-in back-to-back baseline
# measurements (artifacts/bench_pr2_baseline_ab_*.json, taken at the
# pre-engine commit) next to the current run of the same benches.
assemble_bench_report() {
    local mode="$1" kernels="$2" testgen="$3"
    {
        echo '{'
        echo "\"mode\": \"${mode}\","
        echo '"baseline": {'
        echo '"kernels":'
        cat artifacts/bench_pr2_baseline_ab_kernels.json
        echo ', "testgen":'
        cat artifacts/bench_pr2_baseline_ab_testgen.json
        echo '},'
        echo '"current": {'
        echo '"kernels":'
        cat "$kernels"
        echo ', "testgen":'
        cat "$testgen"
        echo '}'
        echo '}'
    } > BENCH_pr2.json
}

echo "== offline release build =="
cargo build --release --offline --workspace

echo "== offline tests =="
cargo test -q --offline --workspace

echo "== offline clippy (warnings are errors) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== lockfile is workspace-only =="
if grep -E '^source = ' Cargo.lock; then
    echo "ERROR: Cargo.lock references an external registry source" >&2
    exit 1
fi
echo "ok: every locked package is a workspace member"

echo "== lifetime smoke (checkpoint resume + thread-count determinism) =="
lt_dir="$(pwd)/target/lifetime-smoke"
rm -rf "$lt_dir"
mkdir -p "$lt_dir"
hm=./target/release/healthmon
"$hm" train --arch mlp --out "$lt_dir/model.json" --epochs 2 --train-size 300 --quiet true
lt_flags=(--arch mlp --model "$lt_dir/model.json" --epochs 6 --count 8 --drift 0.25 --stuck-lambda 0.5)
# Uninterrupted reference run, then the same lifetime killed after three
# epochs and resumed from its checkpoint: the reports must be identical
# down to the byte.
"$hm" lifetime "${lt_flags[@]}" --report "$lt_dir/full.txt" > /dev/null
"$hm" lifetime "${lt_flags[@]}" --checkpoint "$lt_dir/cp.json" --stop-after 3 > /dev/null
"$hm" lifetime "${lt_flags[@]}" --checkpoint "$lt_dir/cp.json" --report "$lt_dir/resumed.txt" > /dev/null
cmp "$lt_dir/full.txt" "$lt_dir/resumed.txt"
grep -q "repair #" "$lt_dir/full.txt"  # the smoke must exercise a repair session
echo "ok: resumed lifetime report is byte-identical to the uninterrupted run"
# The determinism contract holds at any thread count (DESIGN.md §6c):
# HEALTHMON_THREADS is latched per process, so vary it across runs.
for t in 1 2 7; do
    HEALTHMON_THREADS=$t "$hm" lifetime "${lt_flags[@]}" \
        --report "$lt_dir/threads_$t.txt" > /dev/null
done
cmp "$lt_dir/threads_1.txt" "$lt_dir/threads_2.txt"
cmp "$lt_dir/threads_1.txt" "$lt_dir/threads_7.txt"
echo "ok: lifetime report is byte-identical under HEALTHMON_THREADS=1/2/7"

if [[ "$BENCH_SMOKE" == "1" ]]; then
    echo "== bench smoke (short mode, refreshes BENCH_pr2.json) =="
    # Absolute path: cargo runs bench binaries from the package directory.
    report_dir="$(pwd)/target/bench-report"
    mkdir -p "$report_dir"
    HEALTHMON_BENCH_SMOKE=1 HEALTHMON_BENCH_JSON="$report_dir/kernels.json" \
        cargo bench --offline --bench kernels > /dev/null
    HEALTHMON_BENCH_SMOKE=1 HEALTHMON_BENCH_JSON="$report_dir/testgen.json" \
        cargo bench --offline --bench testgen > /dev/null
    assemble_bench_report smoke "$report_dir/kernels.json" "$report_dir/testgen.json"
    echo "ok: both bench binaries ran without panicking; BENCH_pr2.json written"
    echo "    (smoke-mode numbers: 2 samples, short calibration — for perf"
    echo "     claims use a full 'cargo bench' run as in artifacts/)"
fi

echo "CI passed."
