//! Whole-network deployment onto crossbar hardware.

use crate::{CrossbarConfig, TiledMatrix};
use healthmon_nn::Network;
use healthmon_tensor::SeededRng;

/// Per-parameter record of a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerMapping {
    /// State-dict key of the mapped parameter.
    pub key: String,
    /// Logical matrix shape.
    pub shape: (usize, usize),
    /// Number of crossbar tiles used.
    pub tiles: usize,
    /// L1 distance between the trained weights and what the conductances
    /// actually realize (quantization + write noise).
    pub mapping_error_l1: f32,
    /// Fraction of the allocated tile area the logical matrix actually
    /// occupies: `rows·cols / (tiles · tile_rows · tile_cols)`.
    pub utilization: f32,
    /// Fraction of the ADC full-scale range the largest observed output
    /// magnitude reached (0 when no inference has been profiled).
    pub adc_range_used: f32,
}

/// Summary of deploying a network onto crossbars.
#[derive(Debug, Clone, PartialEq)]
pub struct DeployReport {
    /// One record per conductance-mapped parameter.
    pub mappings: Vec<LayerMapping>,
    /// Mean per-image L1 distance between digital and analog logits on the
    /// profiling batch (`None` when no inference was profiled, e.g. for
    /// the plain read-back [`deploy`]).
    pub logit_divergence: Option<f32>,
}

impl DeployReport {
    /// Total crossbar tiles consumed.
    pub fn total_tiles(&self) -> usize {
        self.mappings.iter().map(|m| m.tiles).sum()
    }

    /// Sum of per-parameter mapping errors.
    pub fn total_error_l1(&self) -> f32 {
        self.mappings.iter().map(|m| m.mapping_error_l1).sum()
    }
}

/// Deploys `net` onto crossbar hardware described by `config`: every
/// conductance-mapped parameter (state-dict key ending in `weight`; these
/// are all 2-D in this workspace — dense `[in, out]`, conv `[filters,
/// c·k·k]`) is programmed into a [`TiledMatrix`] and read back, so the
/// returned network computes with exactly the weights the analog arrays
/// realize.
///
/// Because the crossbar MAC is linear in the conductances, running this
/// deployed network's standard forward pass is equivalent to routing every
/// matmul through [`TiledMatrix::matvec`] with ideal converters; DAC/ADC
/// effects are studied separately at the op level (see the crate docs).
///
/// # Panics
///
/// Panics if the config is invalid or a weight parameter is not 2-D.
pub fn deploy(net: &Network, config: &CrossbarConfig, rng: &mut SeededRng) -> (Network, DeployReport) {
    config.validate();
    let mut deployed = net.clone();
    let mut mappings = Vec::new();
    deployed.for_each_param_mut(|key, tensor| {
        if !key.ends_with("weight") {
            return;
        }
        assert_eq!(
            tensor.ndim(),
            2,
            "conductance-mapped parameter `{key}` must be 2-D, got {:?}",
            tensor.shape()
        );
        let tiled = TiledMatrix::program(tensor, config, rng);
        let realized = tiled.effective_weights();
        let (m, n) = tiled.shape();
        mappings.push(LayerMapping {
            key: key.to_owned(),
            shape: tiled.shape(),
            tiles: tiled.tile_count(),
            mapping_error_l1: tensor.l1_distance(&realized),
            utilization: (m * n) as f32 / (tiled.tile_count() * config.rows * config.cols) as f32,
            adc_range_used: 0.0,
        });
        *tensor = realized;
    });
    (deployed, DeployReport { mappings, logit_divergence: None })
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_nn::models::tiny_mlp;
    use healthmon_tensor::Tensor;

    #[test]
    fn ideal_deployment_preserves_outputs() {
        let mut rng = SeededRng::new(1);
        let mut net = tiny_mlp(6, 12, 4, &mut rng);
        let (mut deployed, report) = deploy(&net, &CrossbarConfig::ideal(), &mut rng);
        assert_eq!(report.mappings.len(), 2); // two dense weight matrices
        assert!(report.total_error_l1() < 1e-2, "ideal mapping error {}", report.total_error_l1());
        let x = Tensor::randn(&[3, 6], &mut rng);
        let a = net.forward(&x);
        let b = deployed.forward(&x);
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((p - q).abs() < 1e-3);
        }
    }

    #[test]
    fn quantized_deployment_reports_error() {
        let mut rng = SeededRng::new(2);
        let net = tiny_mlp(6, 12, 4, &mut rng);
        let coarse = CrossbarConfig { cell_bits: 2, ..CrossbarConfig::ideal() };
        let (_, report) = deploy(&net, &coarse, &mut rng);
        assert!(report.total_error_l1() > 0.05, "2-bit cells must show mapping error");
    }

    #[test]
    fn tile_accounting() {
        let mut rng = SeededRng::new(3);
        let net = tiny_mlp(6, 12, 4, &mut rng);
        let tiny_tiles = CrossbarConfig { rows: 4, cols: 4, ..CrossbarConfig::ideal() };
        let (_, report) = deploy(&net, &tiny_tiles, &mut rng);
        // 6x12 over 4x4 tiles = 2*3 = 6; 12x4 over 4x4 = 3*1 = 3.
        assert_eq!(report.total_tiles(), 9);
    }

    #[test]
    fn deployment_is_deterministic() {
        let mut rng_net = SeededRng::new(4);
        let net = tiny_mlp(4, 8, 3, &mut rng_net);
        let config = CrossbarConfig { write_noise: 0.1, ..CrossbarConfig::default() };
        let (a, _) = deploy(&net, &config, &mut SeededRng::new(9));
        let (b, _) = deploy(&net, &config, &mut SeededRng::new(9));
        assert_eq!(a.state_dict(), b.state_dict());
    }

    #[test]
    fn biases_not_mapped() {
        let mut rng = SeededRng::new(5);
        let net = tiny_mlp(4, 8, 3, &mut rng);
        let (_, report) = deploy(&net, &CrossbarConfig::ideal(), &mut rng);
        assert!(report.mappings.iter().all(|m| m.key.ends_with("weight")));
    }
}
