//! Spare-column redundancy (the hardware repair).
//!
//! Redundancy-equipped crossbars provision a few spare bit lines; the
//! column multiplexer can substitute a spare for any regular column.
//! Repair picks the columns whose defects inflict the most weight damage.

use crate::defects::{DefectMap, StuckCell};
use healthmon_tensor::Tensor;

/// Result of a spare-column repair.
#[derive(Debug, Clone, PartialEq)]
pub struct SpareRepair {
    /// Columns that were replaced by spares, in decreasing damage order.
    pub replaced_columns: Vec<usize>,
    /// L1 weight damage before the repair.
    pub unrepaired_error: f32,
    /// L1 weight damage after the repair.
    pub repaired_error: f32,
    /// The weight matrix as the repaired array realizes it.
    pub repaired_weights: Tensor,
}

/// Replaces up to `spares` of the most damaged columns with defect-free
/// spare columns.
///
/// # Panics
///
/// Panics if `weights` is not 2-D or a defect lies outside the matrix.
pub fn repair_with_spares(weights: &Tensor, defects: &DefectMap, spares: usize) -> SpareRepair {
    assert_eq!(weights.ndim(), 2, "spare repair operates on 2-D matrices");
    let cols = weights.shape()[1];
    let identity: Vec<usize> = (0..weights.shape()[0]).collect();
    let unrepaired_error = defects.damage(weights, &identity);

    // Damage per column.
    let mut damage: Vec<(usize, f32)> = (0..cols)
        .map(|c| {
            let d = defects
                .cells_in_col(c)
                .map(|cell| (weights.at(&[cell.row, c]) - cell.value).abs())
                .sum::<f32>();
            (c, d)
        })
        .filter(|&(_, d)| d > 0.0)
        .collect();
    damage.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let replaced_columns: Vec<usize> = damage.iter().take(spares).map(|&(c, _)| c).collect();

    // Surviving defects = those not on a replaced column.
    let surviving: Vec<StuckCell> = defects
        .cells()
        .iter()
        .copied()
        .filter(|cell| !replaced_columns.contains(&cell.col))
        .collect();
    let surviving_map = DefectMap::new(surviving);
    let repaired_error = surviving_map.damage(weights, &identity);
    let repaired_weights = surviving_map.apply(weights);
    SpareRepair { replaced_columns, unrepaired_error, repaired_error, repaired_weights }
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_tensor::SeededRng;

    #[test]
    fn zero_spares_changes_nothing() {
        let mut rng = SeededRng::new(1);
        let w = Tensor::randn(&[8, 6], &mut rng);
        let defects = DefectMap::sample_for_matrix(&w, 0.1, &mut rng);
        let repair = repair_with_spares(&w, &defects, 0);
        assert_eq!(repair.unrepaired_error, repair.repaired_error);
        assert!(repair.replaced_columns.is_empty());
    }

    #[test]
    fn replaces_most_damaged_column_first() {
        let w = Tensor::ones(&[2, 3]);
        let defects = DefectMap::new(vec![
            StuckCell { row: 0, col: 0, value: 0.0 }, // damage 1
            StuckCell { row: 0, col: 2, value: 0.0 }, // damage 2 (two cells)
            StuckCell { row: 1, col: 2, value: 0.0 },
        ]);
        let repair = repair_with_spares(&w, &defects, 1);
        assert_eq!(repair.replaced_columns, vec![2]);
        assert_eq!(repair.repaired_error, 1.0); // col 0's defect survives
    }

    #[test]
    fn enough_spares_fully_repair() {
        let mut rng = SeededRng::new(2);
        let w = Tensor::randn(&[10, 5], &mut rng);
        let defects = DefectMap::sample_for_matrix(&w, 0.2, &mut rng);
        let repair = repair_with_spares(&w, &defects, 5);
        assert_eq!(repair.repaired_error, 0.0);
        assert_eq!(repair.repaired_weights, w);
    }

    #[test]
    fn more_spares_never_hurt() {
        let mut rng = SeededRng::new(3);
        let w = Tensor::randn(&[12, 8], &mut rng);
        let defects = DefectMap::sample_for_matrix(&w, 0.15, &mut rng);
        let mut prev = f32::INFINITY;
        for spares in 0..=8 {
            let repair = repair_with_spares(&w, &defects, spares);
            assert!(repair.repaired_error <= prev + 1e-6);
            prev = repair.repaired_error;
        }
    }
}
