//! Property-based tests for the synthetic dataset generators.
//!
//! Run on the deterministic `healthmon-check` harness; a failure at case
//! `N` reproduces with `healthmon_check::run_case(N, ..)`.

use healthmon_check::run_cases;
use healthmon_data::{DatasetSpec, SynthDigits, SynthObjects, INPUT_MAX, INPUT_MIN};
use healthmon_tensor::SeededRng;

const CASES: usize = 12;

#[test]
fn digits_pixels_always_in_range() {
    run_cases(CASES, |g| {
        let spec = DatasetSpec { train: 12, test: 4, seed: g.seed(), noise: g.f32_in(0.0, 0.4) };
        let split = SynthDigits::new(spec).generate();
        assert!(split.train.images.min() >= INPUT_MIN);
        assert!(split.train.images.max() <= INPUT_MAX);
    });
}

#[test]
fn objects_pixels_always_in_range() {
    run_cases(CASES, |g| {
        let spec = DatasetSpec { train: 12, test: 4, seed: g.seed(), noise: g.f32_in(0.0, 0.4) };
        let split = SynthObjects::new(spec).generate();
        assert!(split.train.images.min() >= INPUT_MIN);
        assert!(split.train.images.max() <= INPUT_MAX);
    });
}

#[test]
fn digits_never_blank() {
    run_cases(CASES, |g| {
        let mut rng = SeededRng::new(g.seed());
        let digit = g.usize_in(0, 10);
        let img = SynthDigits::render(digit, 0.0, &mut rng);
        // Every rendered digit carries visible ink.
        assert!(img.sum() > 3.0, "digit {digit} nearly blank: {}", img.sum());
    });
}

#[test]
fn generation_deterministic() {
    run_cases(CASES, |g| {
        let spec = DatasetSpec { train: 10, test: 5, seed: g.seed(), noise: 0.1 };
        assert_eq!(SynthDigits::new(spec).generate(), SynthDigits::new(spec).generate());
    });
}

#[test]
fn labels_balanced_when_divisible() {
    run_cases(CASES, |g| {
        let groups = g.usize_in(1, 5);
        let n = groups * 10;
        let spec = DatasetSpec { train: n, test: 10, seed: g.seed(), noise: 0.1 };
        let split = SynthDigits::new(spec).generate();
        let dist = split.train.class_distribution();
        for d in dist {
            assert!((d - 0.1).abs() < 1e-6);
        }
    });
}

#[test]
fn subset_preserves_image_label_pairing() {
    run_cases(CASES, |g| {
        let seed = g.seed();
        let k = g.usize_in(1, 10);
        let spec = DatasetSpec { train: 20, test: 10, seed, noise: 0.1 };
        let split = SynthDigits::new(spec).generate();
        let mut rng = SeededRng::new(seed ^ 1);
        let sub = split.train.random_subset(k, &mut rng);
        assert_eq!(sub.len(), k);
        // Every subset sample exists (with matching label) in the parent.
        for i in 0..k {
            let img = sub.sample(i);
            let found = (0..split.train.len()).any(|j| {
                split.train.sample(j) == img && split.train.labels[j] == sub.labels[i]
            });
            assert!(found, "subset sample {i} not found in parent");
        }
    });
}

#[test]
fn class_indices_consistent() {
    run_cases(CASES, |g| {
        let class = g.usize_in(0, 10);
        let spec = DatasetSpec { train: 30, test: 10, seed: g.seed(), noise: 0.1 };
        let split = SynthDigits::new(spec).generate();
        for idx in split.train.indices_of_class(class) {
            assert_eq!(split.train.labels[idx], class);
        }
    });
}
