//! **healthmon-check** — a tiny deterministic property-test harness.
//!
//! A drop-in, offline replacement for the slice of `proptest` this
//! workspace used: run a property over `N` generated cases, failing with
//! the case index so a failure reproduces exactly. There is no shrinking —
//! cases are seeded deterministically from their index, so re-running a
//! single failing case is `run_case(index, property)`.
//!
//! # Example
//!
//! ```
//! use healthmon_check::{run_cases, Gen};
//!
//! // Property: absolute value is non-negative.
//! run_cases(64, |g: &mut Gen| {
//!     let x = g.f32_in(-100.0, 100.0);
//!     assert!(x.abs() >= 0.0);
//! });
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A deterministic case generator (SplitMix64 stream).
///
/// Every case of [`run_cases`] gets its own `Gen` seeded from the case
/// index, so the inputs of case `i` never depend on how many draws earlier
/// cases made.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
    /// The index of the case this generator belongs to.
    case: usize,
}

impl Gen {
    /// Creates a generator for the given case index.
    pub fn for_case(case: usize) -> Self {
        // Fixed harness salt keeps case streams stable across releases.
        Gen { state: (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5851_F42D_4C95_7F2D, case }
    }

    /// The case index this generator was seeded from.
    pub fn case(&self) -> usize {
        self.case
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `u64` seed suitable for seeding downstream RNGs.
    pub fn seed(&mut self) -> u64 {
        self.u64()
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "usize_in bounds inverted: [{lo}, {hi})");
        let span = (hi - lo) as u128;
        lo + ((self.u64() as u128 * span) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "f32_in bounds inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.unit_f64() as f32
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "f64_in bounds inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.unit_f64()
    }

    /// A vector of `len` uniform `f32` values in `[lo, hi)`.
    pub fn vec_f32(&mut self, len: usize, lo: f32, hi: f32) -> Vec<f32> {
        (0..len).map(|_| self.f32_in(lo, hi)).collect()
    }
}

/// Runs `property` over `cases` deterministic cases.
///
/// # Panics
///
/// Re-raises the property's panic after printing the failing case index,
/// so `cargo test` output pinpoints the reproduction (`run_case(i, ..)`).
pub fn run_cases(cases: usize, mut property: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut gen = Gen::for_case(case);
            property(&mut gen);
        }));
        if let Err(panic) = outcome {
            healthmon_telemetry::log_warn!(
                "property failed at case {case} of {cases}; rerun with run_case({case}, ..)"
            );
            resume_unwind(panic);
        }
    }
}

/// Runs a single case — the reproduction entry point for a failure
/// reported by [`run_cases`].
pub fn run_case(case: usize, mut property: impl FnMut(&mut Gen)) {
    let mut gen = Gen::for_case(case);
    property(&mut gen);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut a = Gen::for_case(7);
        let mut b = Gen::for_case(7);
        for _ in 0..32 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn distinct_cases_diverge() {
        let mut a = Gen::for_case(1);
        let mut b = Gen::for_case(2);
        let same = (0..32).filter(|_| a.u64() == b.u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn ranges_respected() {
        run_cases(128, |g| {
            let n = g.usize_in(3, 10);
            assert!((3..10).contains(&n));
            let x = g.f32_in(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
            let v = g.vec_f32(n, 0.0, 1.0);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        });
    }

    #[test]
    fn unit_f64_covers_the_interval() {
        let mut g = Gen::for_case(0);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u = g.unit_f64();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn failing_case_is_reported() {
        let result = std::panic::catch_unwind(|| {
            run_cases(16, |g| {
                assert!(g.case() < 5, "deliberate failure at case {}", g.case());
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn run_case_reproduces_case_stream() {
        let mut seen = 0u64;
        run_case(9, |g| seen = g.u64());
        assert_eq!(seen, Gen::for_case(9).u64());
    }
}
