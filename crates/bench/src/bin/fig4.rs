//! **Fig 4**: detection rate vs programming-variation σ on the
//! confidence-threshold criteria (SDC-T5%, SDC-T10%, SDC-A3%, SDC-A5%)
//! for AET, C-TP and O-TP on both benchmarks.
//!
//! O-TP is evaluated only on the SDC-A criteria, matching the paper: its
//! patterns have no meaningful top-ranked class on the clean model.

use healthmon::report::series_line;
use healthmon::{Detector, SdcCriterion};
use healthmon_bench::harness::{
    emit, models_per_level, pattern_suite, train_or_load, Benchmark, CAMPAIGN_SEED,
};
use healthmon_faults::FaultModel;
use std::fmt::Write as _;

fn main() {
    let criteria = [
        SdcCriterion::SdcT { threshold: 0.05 },
        SdcCriterion::SdcT { threshold: 0.10 },
        SdcCriterion::SdcA { threshold: 0.03 },
        SdcCriterion::SdcA { threshold: 0.05 },
    ];
    let count = models_per_level();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 4 — detection rate vs sigma on SDC-T/SDC-A criteria ({count} fault models per point)\n"
    );
    for benchmark in [Benchmark::Lenet5Digits, Benchmark::Convnet7Objects] {
        let mut trained = train_or_load(benchmark);
        let suite = pattern_suite(&mut trained);
        let _ = writeln!(out, "== {} ==", benchmark.label());
        for patterns in suite.methods() {
            let detector = Detector::new(&trained.model, patterns.clone());
            let active: Vec<SdcCriterion> = criteria
                .iter()
                .copied()
                .filter(|c| !(patterns.method() == "O-TP" && c.uses_top_class()))
                .collect();
            let mut series: Vec<Vec<(f32, f32)>> = vec![Vec::new(); active.len()];
            for sigma in benchmark.sigma_grid() {
                let rates = detector.detection_rates(
                    &trained.model,
                    &FaultModel::ProgrammingVariation { sigma },
                    count,
                    CAMPAIGN_SEED,
                    &active,
                );
                for (s, r) in series.iter_mut().zip(&rates) {
                    s.push((sigma, *r));
                }
            }
            for (crit, s) in active.iter().zip(&series) {
                let _ = writeln!(
                    out,
                    "{}",
                    series_line(&format!("{} {}", patterns.method(), crit.label()), s)
                );
            }
        }
        let _ = writeln!(out);
    }
    emit("fig4", &out);
}
