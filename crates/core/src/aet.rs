//! AET: the adversarial-example testing baseline (Li et al., ICCD 2019),
//! reproduced for comparison.

use crate::TestPatternSet;
use healthmon_data::{Dataset, INPUT_MAX, INPUT_MIN};
use healthmon_nn::loss::SoftmaxCrossEntropy;
use healthmon_nn::trainer::gather_batch;
use healthmon_nn::Network;
use healthmon_tensor::SeededRng;

/// Generates FGSM adversarial examples as test patterns.
///
/// This is the paper's comparison baseline: pick random test images and
/// push each one step along the sign of the input gradient of its loss,
/// `x' = clamp(x + ε·sign(∇ₓ L(x, y)))`. Adversarial inputs sit near
/// decision boundaries, which makes them more weight-error-sensitive than
/// ordinary images — but, as the paper shows, less sensitive and less
/// stable than C-TP/O-TP.
///
/// # Example
///
/// ```
/// use healthmon::AetGenerator;
/// use healthmon_data::{DatasetSpec, SynthDigits};
/// use healthmon_nn::models::lenet5;
/// use healthmon_tensor::SeededRng;
///
/// let mut rng = SeededRng::new(0);
/// let mut model = lenet5(&mut rng);
/// let pool = SynthDigits::new(DatasetSpec { train: 1, test: 20, seed: 1, ..Default::default() })
///     .generate()
///     .test;
/// let patterns = AetGenerator::new(8, 0.15).generate(&mut model, &pool, &mut rng);
/// assert_eq!(patterns.len(), 8);
/// assert_eq!(patterns.method(), "AET");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AetGenerator {
    count: usize,
    epsilon: f32,
}

impl AetGenerator {
    /// Creates a generator producing `count` FGSM examples with
    /// perturbation budget `epsilon` (in pixel units; the paper-scale
    /// default for comparisons is 0.1–0.2 on `[0,1]` images).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `epsilon` is not positive.
    pub fn new(count: usize, epsilon: f32) -> Self {
        assert!(count > 0, "pattern count must be non-zero");
        assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
        AetGenerator { count, epsilon }
    }

    /// Number of patterns generated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The FGSM perturbation budget.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Draws `count` random images from `pool` and perturbs each with one
    /// FGSM step against its true label on `net`.
    ///
    /// # Panics
    ///
    /// Panics if the pool has fewer than `count` samples or sample shapes
    /// do not match the network input.
    pub fn generate(
        &self,
        net: &mut Network,
        pool: &Dataset,
        rng: &mut SeededRng,
    ) -> TestPatternSet {
        assert!(
            pool.len() >= self.count,
            "pool has {} samples but {} were requested",
            pool.len(),
            self.count
        );
        net.set_training(false);
        let picks = rng.sample_indices(pool.len(), self.count);
        let batch = gather_batch(&pool.images, &picks);
        let labels: Vec<usize> = picks.iter().map(|&i| pool.labels[i]).collect();

        let logits = net.forward(&batch);
        let loss = SoftmaxCrossEntropy::with_labels(&logits, &labels);
        net.zero_grads();
        let grad_input = net.backward(&loss.grad);

        let mut adv = batch.zip_map(&grad_input, |x, g| x + self.epsilon * g.signum());
        adv.clamp_inplace(INPUT_MIN, INPUT_MAX);
        TestPatternSet::new("AET", adv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_nn::models::tiny_mlp;
    use healthmon_tensor::Tensor;

    fn pool(n: usize, dim: usize, rng: &mut SeededRng) -> Dataset {
        let images = Tensor::rand_uniform(&[n, dim], 0.2, 0.8, rng);
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(images, labels, 3)
    }

    #[test]
    fn perturbation_bounded_by_epsilon() {
        let mut rng = SeededRng::new(1);
        let mut net = tiny_mlp(8, 16, 3, &mut rng);
        let pool = pool(20, 8, &mut rng);
        let eps = 0.1;
        let gen = AetGenerator::new(20, eps);
        // Deterministic picks: use a fresh rng with the same seed to know
        // which samples were drawn.
        let mut pick_rng = SeededRng::new(5);
        let picks = pick_rng.sample_indices(20, 20);
        let mut gen_rng = SeededRng::new(5);
        let set = gen.generate(&mut net, &pool, &mut gen_rng);
        for (row, &src) in picks.iter().enumerate() {
            let orig = pool.sample(src);
            let adv = set.pattern(row);
            let linf = orig.linf_distance(&adv);
            assert!(linf <= eps + 1e-5, "perturbation {linf} exceeds epsilon");
        }
    }

    #[test]
    fn stays_in_image_range() {
        let mut rng = SeededRng::new(2);
        let mut net = tiny_mlp(8, 16, 3, &mut rng);
        let images = Tensor::rand_uniform(&[10, 8], 0.0, 1.0, &mut rng);
        let pool = Dataset::new(images, vec![0; 10], 3);
        let set = AetGenerator::new(10, 0.5).generate(&mut net, &pool, &mut rng);
        assert!(set.images().min() >= INPUT_MIN);
        assert!(set.images().max() <= INPUT_MAX);
    }

    #[test]
    fn increases_loss_against_true_label() {
        let mut rng = SeededRng::new(3);
        let mut net = tiny_mlp(8, 32, 3, &mut rng);
        let p = pool(30, 8, &mut rng);
        // Compare pool loss vs adversarial loss on the same picked samples.
        let mut pick_rng = SeededRng::new(9);
        let picks = pick_rng.sample_indices(30, 15);
        let labels: Vec<usize> = picks.iter().map(|&i| p.labels[i]).collect();
        let clean = gather_batch(&p.images, &picks);
        let clean_loss = SoftmaxCrossEntropy::with_labels(&net.forward(&clean), &labels).loss;
        let mut gen_rng = SeededRng::new(9);
        let set = AetGenerator::new(15, 0.2).generate(&mut net, &p, &mut gen_rng);
        let adv_loss = SoftmaxCrossEntropy::with_labels(&net.forward(set.images()), &labels).loss;
        assert!(adv_loss > clean_loss, "FGSM must increase loss: {clean_loss} -> {adv_loss}");
    }

    #[test]
    fn deterministic_from_rng() {
        let mut rng = SeededRng::new(4);
        let mut net = tiny_mlp(8, 16, 3, &mut rng);
        let p = pool(20, 8, &mut rng);
        let a = AetGenerator::new(5, 0.1).generate(&mut net, &p, &mut SeededRng::new(7));
        let b = AetGenerator::new(5, 0.1).generate(&mut net, &p, &mut SeededRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_epsilon() {
        AetGenerator::new(5, 0.0);
    }
}
