//! The incident flight recorder: self-contained postmortem artifacts
//! dumped when a device suffers a [`crate::FleetIncident`], is
//! quarantined, or parks.
//!
//! A fleet report tells an operator *that* device 0042 was quarantined;
//! the flight record tells them *why*: the last lifetime events leading
//! up to the incident, the recent health-timeline window, the checkup
//! pipeline structure, and the deterministic per-device tallies — all in
//! one `incident-<device>-<epoch>.json` written via
//! [`crate::store::write_atomic`], so a crash mid-dump never leaves a
//! torn artifact.
//!
//! # Determinism contract
//!
//! Every field is derived from *device-local, epoch-keyed* state. The
//! artifact deliberately excludes wall-clock measurements (span
//! durations, histogram contents): those are scheduling-dependent and
//! would break the guarantee that CI relies on — the same fleet run
//! produces byte-identical flight records across reruns and at any
//! `HEALTHMON_THREADS` setting. Live latency data is served by the
//! metrics exporter instead (`healthmon-telemetry::export`). The
//! structural phase list ([`CHECKUP_PHASES`]) stands in for the span
//! tree: it names the pipeline stages whose per-phase histograms the
//! exporter publishes.
//!
//! Each record carries the fleet/lifetime config digest (so a postmortem
//! can be matched to the exact run configuration) and an FNV-1a digest
//! over its own payload; the [`std::str::FromStr`] impl refuses artifacts
//! whose digest does not match, turning silent corruption into a loud
//! parse error.

use crate::error::HealthmonError;
use crate::runtime::{fnv1a, FNV_OFFSET};
use crate::store;
use healthmon_serdes::{parse, to_string, Json, JsonError};
use std::path::{Path, PathBuf};

/// Artifact format tag; bump on layout changes.
pub const FLIGHT_FORMAT: &str = "healthmon-flight-record-v1";

/// The checkup pipeline stages, in execution order. Matches the
/// `phase.*` latency histograms published by the telemetry exporter.
pub const CHECKUP_PHASES: [&str; 6] =
    ["dac", "accumulate", "adc", "detector", "diagnose", "repair"];

/// How many trailing lifetime events a record embeds.
pub const FLIGHT_EVENT_WINDOW: usize = 24;

/// How many trailing timeline points a record embeds.
pub const FLIGHT_TIMELINE_WINDOW: usize = 32;

/// One self-contained postmortem artifact. See the module docs for the
/// determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Fleet device id (0 for single-device lifetime runs).
    pub device: u32,
    /// Virtual epoch the trigger fired at.
    pub epoch: u64,
    /// Trigger class: an incident kind label, `quarantine`, or `park`.
    pub reason: String,
    /// Human-readable trigger description.
    pub detail: String,
    /// Digest of the run configuration the device was operating under.
    pub config_digest: String,
    /// Last-N lifetime events (JSON objects), oldest first.
    pub events: Vec<Json>,
    /// Recent health-timeline window (JSON objects), oldest first.
    pub timeline: Vec<Json>,
    /// Checkup pipeline stages, in execution order.
    pub phases: Vec<String>,
    /// Deterministic per-device tallies (`name`, `value`), in insertion
    /// order.
    pub tallies: Vec<(String, u64)>,
}

impl FlightRecord {
    /// Starts a record with the common header fields and the static
    /// phase list; callers append events, timeline, and tallies.
    pub fn new(device: u32, epoch: u64, reason: &str, detail: &str, config_digest: u64) -> Self {
        FlightRecord {
            device,
            epoch,
            reason: reason.to_owned(),
            detail: detail.to_owned(),
            config_digest: config_digest.to_string(),
            events: Vec::new(),
            timeline: Vec::new(),
            phases: CHECKUP_PHASES.iter().map(|p| (*p).to_owned()).collect(),
            tallies: Vec::new(),
        }
    }

    /// Appends one `(name, value)` tally.
    pub fn push_tally(&mut self, name: &str, value: u64) {
        self.tallies.push((name.to_owned(), value));
    }

    fn payload_json(&self) -> Json {
        let tallies = self
            .tallies
            .iter()
            .map(|(k, v)| (k.clone(), Json::Number(*v as f64)))
            .collect();
        Json::Object(vec![
            ("format".to_owned(), Json::String(FLIGHT_FORMAT.to_owned())),
            ("device".to_owned(), Json::Number(f64::from(self.device))),
            ("epoch".to_owned(), Json::Number(self.epoch as f64)),
            ("reason".to_owned(), Json::String(self.reason.clone())),
            ("detail".to_owned(), Json::String(self.detail.clone())),
            ("config_digest".to_owned(), Json::String(self.config_digest.clone())),
            ("events".to_owned(), Json::Array(self.events.clone())),
            ("timeline".to_owned(), Json::Array(self.timeline.clone())),
            (
                "phases".to_owned(),
                Json::Array(self.phases.iter().map(|p| Json::String(p.clone())).collect()),
            ),
            ("tallies".to_owned(), Json::Object(tallies)),
        ])
    }

    /// Renders the artifact, including its self-digest: FNV-1a over the
    /// rendered payload, appended as the final field.
    pub fn render(&self) -> String {
        let payload = to_string(&self.payload_json());
        let digest = fnv1a(FNV_OFFSET, payload.bytes());
        let Json::Object(mut fields) = self.payload_json() else {
            unreachable!("payload_json always builds an object");
        };
        fields.push(("digest".to_owned(), Json::String(digest.to_string())));
        to_string(&Json::Object(fields))
    }

    /// Canonical artifact file name: `incident-<device>-<epoch>.json`.
    pub fn file_name(device: u32, epoch: u64) -> String {
        format!("incident-{device:04}-{epoch}.json")
    }

    /// Atomically writes the artifact into `dir`, returning its path.
    ///
    /// # Errors
    ///
    /// Any I/O error from [`store::write_atomic`].
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(Self::file_name(self.device, self.epoch));
        store::write_atomic(&path, self.render().as_bytes())?;
        Ok(path)
    }

    /// One-line operator summary, used by `healthmon flight`.
    pub fn summary(&self) -> String {
        format!(
            "device {:04} epoch {}: {} — {} (events={}, timeline={}, tallies={})",
            self.device,
            self.epoch,
            self.reason,
            self.detail,
            self.events.len(),
            self.timeline.len(),
            self.tallies.len(),
        )
    }
}

impl std::str::FromStr for FlightRecord {
    type Err = HealthmonError;

    /// Parses and digest-verifies an artifact produced by
    /// [`FlightRecord::render`].
    ///
    /// # Errors
    ///
    /// [`HealthmonError::Json`] on malformed JSON, an unknown format
    /// tag, or an embedded digest that does not match the payload.
    fn from_str(text: &str) -> Result<FlightRecord, HealthmonError> {
        let v = parse(text)?;
        let format = v.field("format")?.as_str()?;
        if format != FLIGHT_FORMAT {
            return Err(JsonError::invalid(format!(
                "unknown flight-record format `{format}` (expected `{FLIGHT_FORMAT}`)"
            ))
            .into());
        }
        let mut record = FlightRecord {
            device: v.field("device")?.as_number()? as u32,
            epoch: v.field("epoch")?.as_number()? as u64,
            reason: v.field("reason")?.as_str()?.to_owned(),
            detail: v.field("detail")?.as_str()?.to_owned(),
            config_digest: v.field("config_digest")?.as_str()?.to_owned(),
            events: v.field("events")?.as_array()?.to_vec(),
            timeline: v.field("timeline")?.as_array()?.to_vec(),
            phases: Vec::new(),
            tallies: Vec::new(),
        };
        for p in v.field("phases")?.as_array()? {
            record.phases.push(p.as_str()?.to_owned());
        }
        if let Json::Object(fields) = v.field("tallies")? {
            for (k, val) in fields {
                record.tallies.push((k.clone(), val.as_number()? as u64));
            }
        }
        let claimed = v.field("digest")?.as_str()?.to_owned();
        let payload = to_string(&record.payload_json());
        let actual = fnv1a(FNV_OFFSET, payload.bytes()).to_string();
        if claimed != actual {
            return Err(JsonError::invalid(format!(
                "flight-record digest mismatch: artifact says {claimed}, payload hashes to {actual}"
            ))
            .into());
        }
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn sample() -> FlightRecord {
        let mut r = FlightRecord::new(42, 7, "quarantine", "3 offenses", 12345);
        r.events.push(Json::Object(vec![(
            "kind".to_owned(),
            Json::String("checkup".to_owned()),
        )]));
        r.timeline.push(Json::Object(vec![(
            "epoch".to_owned(),
            Json::Number(6.0),
        )]));
        r.push_tally("offenses", 3);
        r.push_tally("retries", 5);
        r
    }

    #[test]
    fn render_parse_round_trips_and_verifies() {
        let r = sample();
        let text = r.render();
        let back = FlightRecord::from_str(&text).unwrap();
        assert_eq!(back, r);
        // Rendering is deterministic: same record, same bytes.
        assert_eq!(back.render(), text);
        assert!(back.summary().contains("device 0042 epoch 7: quarantine"));
    }

    #[test]
    fn tampered_artifact_is_rejected() {
        let text = sample().render().replace("3 offenses", "2 offenses");
        let err = FlightRecord::from_str(&text).unwrap_err();
        assert!(err.to_string().contains("digest mismatch"), "got: {err}");
    }

    #[test]
    fn unknown_format_is_rejected() {
        let text = sample().render().replace(FLIGHT_FORMAT, "flight-v999");
        assert!(FlightRecord::from_str(&text).is_err());
    }

    #[test]
    fn write_lands_under_the_canonical_name() {
        let dir = std::env::temp_dir().join("healthmon_flight_write");
        std::fs::create_dir_all(&dir).unwrap();
        let path = sample().write(&dir).unwrap();
        assert!(path.ends_with("incident-0042-7.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        FlightRecord::from_str(&text).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
