//! Residual convolution block with an identity skip connection.

use super::{Conv2d, Layer, MatmulEngine, MatmulOrientation, Relu};
use healthmon_tensor::{SeededRng, Tensor};

/// A basic pre-classifier residual block: `y = relu(conv2(relu(conv1(x))) + x)`.
///
/// Both convolutions are `3×3`, stride 1, padding 1 over the same channel
/// count, so the block preserves the input shape `[N, C, H, W]` and the
/// skip connection is a pure identity — no projection shortcut. The block
/// is a *composite* layer: it owns two [`Conv2d`] children and exposes
/// their parameters under compound names (`conv1.weight`, `conv1.bias`,
/// `conv2.weight`, `conv2.bias`), so state dicts, fault injection, and
/// crossbar mapping see two ordinary conductance-mappable weight matrices
/// via [`Layer::matmuls`].
#[derive(Debug, Clone)]
pub struct ResidualConv2d {
    conv1: Conv2d,
    relu_mid: Relu,
    conv2: Conv2d,
    relu_out: Relu,
}

impl ResidualConv2d {
    /// Creates a residual block over `channels` feature maps.
    pub fn new(channels: usize, rng: &mut SeededRng) -> Self {
        ResidualConv2d {
            conv1: Conv2d::new(channels, channels, 3, 1, 1, rng),
            relu_mid: Relu::new(),
            conv2: Conv2d::new(channels, channels, 3, 1, 1, rng),
            relu_out: Relu::new(),
        }
    }
}

impl Layer for ResidualConv2d {
    fn name(&self) -> &'static str {
        "residual_conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        let a = self.conv1.forward(input);
        let b = self.relu_mid.forward(&a);
        let c = self.conv2.forward(&b);
        self.relu_out.forward(&c.add(input))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g_sum = self.relu_out.backward(grad_out);
        let g_mid = self.conv2.backward(&g_sum);
        let g_a = self.relu_mid.backward(&g_mid);
        // The skip contributes the post-activation gradient directly.
        self.conv1.backward(&g_a).add(&g_sum)
    }

    fn infer(&self, input: &Tensor, key_prefix: &str, engine: &dyn MatmulEngine) -> Tensor {
        let a = self.conv1.infer(input, &format!("{key_prefix}.conv1"), engine);
        let b = self.relu_mid.infer(&a, key_prefix, engine);
        let c = self.conv2.infer(&b, &format!("{key_prefix}.conv2"), engine);
        self.relu_out.infer(&c.add(input), key_prefix, engine)
    }

    fn matmuls(&self) -> Vec<(&'static str, MatmulOrientation)> {
        vec![
            ("conv1.weight", MatmulOrientation::WX),
            ("conv2.weight", MatmulOrientation::WX),
        ]
    }

    fn params(&self) -> Vec<&Tensor> {
        let mut p = self.conv1.params();
        p.extend(self.conv2.params());
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        let mut p = self.conv1.params_mut();
        p.extend(self.conv2.params_mut());
        p
    }

    fn param_names(&self) -> Vec<&'static str> {
        vec!["conv1.weight", "conv1.bias", "conv2.weight", "conv2.bias"]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        let mut p = self.conv1.params_and_grads();
        p.extend(self.conv2.params_and_grads());
        p
    }

    fn zero_grads(&mut self) {
        self.conv1.zero_grads();
        self.conv2.zero_grads();
    }

    fn set_training(&mut self, on: bool) {
        self.conv1.set_training(on);
        self.conv2.set_training(on);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use crate::layers::DigitalEngine;

    #[test]
    fn preserves_shape_and_skips_identity_at_zero_weights() {
        let mut rng = SeededRng::new(3);
        let mut block = ResidualConv2d::new(2, &mut rng);
        // Zero both convolutions: the block degenerates to relu(x).
        for p in block.params_mut() {
            p.map_inplace(|_| 0.0);
        }
        let x = Tensor::randn(&[2, 2, 4, 4], &mut rng);
        let y = block.forward(&x);
        assert_eq!(y.shape(), x.shape());
        assert_eq!(y, x.map(|v| v.max(0.0)));
    }

    #[test]
    fn input_gradients_check() {
        let mut rng = SeededRng::new(11);
        let mut block = ResidualConv2d::new(2, &mut rng);
        let x = Tensor::randn(&[2, 2, 4, 4], &mut rng).map(|v| v * 0.5);
        assert!(gradcheck::input_gradient_error(&mut block, &x) < 1e-2);
    }

    #[test]
    fn param_gradients_check() {
        let mut rng = SeededRng::new(12);
        let mut block = ResidualConv2d::new(2, &mut rng);
        // Keep every relu pre-activation strictly positive (small weights,
        // positive biases, positive inputs) so the finite-difference probe
        // never steps across a relu kink — the check is then exact and any
        // failure is a real plumbing bug, not quantization of the gate.
        for (i, p) in block.params_mut().into_iter().enumerate() {
            if i % 2 == 0 {
                p.map_inplace(|v| v * 0.1);
            } else {
                p.map_inplace(|_| 0.5);
            }
        }
        let x = Tensor::rand_uniform(&[2, 2, 4, 4], 0.1, 0.9, &mut rng);
        assert!(gradcheck::param_gradient_error(&mut block, &x) < 1e-2);
    }

    #[test]
    fn infer_matches_forward_with_digital_engine() {
        let mut rng = SeededRng::new(13);
        let mut block = ResidualConv2d::new(3, &mut rng);
        let x = Tensor::randn(&[2, 3, 5, 5], &mut rng);
        let trained = block.forward(&x);
        let inferred = block.infer(&x, "layer0", &DigitalEngine);
        assert_eq!(trained, inferred);
    }

    #[test]
    fn exposes_two_mappable_matmuls() {
        let mut rng = SeededRng::new(1);
        let block = ResidualConv2d::new(2, &mut rng);
        assert_eq!(
            block.matmuls(),
            vec![
                ("conv1.weight", MatmulOrientation::WX),
                ("conv2.weight", MatmulOrientation::WX)
            ]
        );
        assert_eq!(block.params().len(), 4);
        assert_eq!(block.param_names().len(), 4);
    }
}
