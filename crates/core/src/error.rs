//! The crate-wide error taxonomy: every recoverable failure of the
//! detection and monitoring machinery funnels into [`HealthmonError`].
//!
//! The containment philosophy is that a monitored accelerator must never
//! take the monitor down with it: non-finite activations, corrupted
//! checkpoints and panicking campaign closures all surface as values of
//! this type instead of propagating panics or silently-wrong states.

use healthmon_faults::CampaignPanic;
use healthmon_nn::NonFiniteActivation;
use healthmon_serdes::JsonError;
use std::error::Error;
use std::fmt;

/// A recoverable failure of the detection / monitoring machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthmonError {
    /// Serializing or deserializing an artifact (checkpoint, report)
    /// failed.
    Json(JsonError),
    /// A network produced a non-finite activation during a checked
    /// forward pass.
    NonFinite(NonFiniteActivation),
    /// A [`MonitorPolicy`](crate::MonitorPolicy) failed validation.
    InvalidPolicy(String),
    /// A pattern subset was requested outside `1..=len`.
    InvalidTruncation {
        /// The requested subset size.
        requested: usize,
        /// The number of patterns actually available.
        available: usize,
    },
    /// A campaign checkpoint does not match the sweep being resumed
    /// (different criteria, count, or an out-of-range record).
    CheckpointMismatch(String),
    /// A checkpoint file on disk is unreadable, truncated, or fails to
    /// parse — the artifact itself is damaged, as opposed to
    /// [`HealthmonError::CheckpointMismatch`] where a well-formed
    /// checkpoint disagrees with the resume inputs.
    CheckpointCorrupt {
        /// The file that failed to load.
        path: String,
        /// What went wrong (I/O error, parse error, digest mismatch).
        detail: String,
    },
    /// A fault-campaign evaluation closure panicked.
    Campaign(CampaignPanic),
}

impl fmt::Display for HealthmonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthmonError::Json(e) => write!(f, "serialization failed: {e}"),
            HealthmonError::NonFinite(e) => write!(f, "{e}"),
            HealthmonError::InvalidPolicy(message) => write!(f, "{message}"),
            HealthmonError::InvalidTruncation { requested, available } => write!(
                f,
                "cannot take a subset of {requested} patterns from a set of {available} \
                 (valid sizes are 1..={available})"
            ),
            HealthmonError::CheckpointMismatch(message) => {
                write!(f, "checkpoint mismatch: {message}")
            }
            HealthmonError::CheckpointCorrupt { path, detail } => {
                write!(f, "checkpoint `{path}` is corrupt: {detail}")
            }
            HealthmonError::Campaign(e) => write!(f, "{e}"),
        }
    }
}

impl Error for HealthmonError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HealthmonError::Json(e) => Some(e),
            HealthmonError::NonFinite(e) => Some(e),
            HealthmonError::Campaign(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JsonError> for HealthmonError {
    fn from(e: JsonError) -> Self {
        HealthmonError::Json(e)
    }
}

impl From<NonFiniteActivation> for HealthmonError {
    fn from(e: NonFiniteActivation) -> Self {
        HealthmonError::NonFinite(e)
    }
}

impl From<CampaignPanic> for HealthmonError {
    fn from(e: CampaignPanic) -> Self {
        HealthmonError::Campaign(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        let e = HealthmonError::InvalidTruncation { requested: 9, available: 4 };
        assert!(e.to_string().contains("subset of 9"));
        assert!(e.to_string().contains("1..=4"));
        let e = HealthmonError::CheckpointMismatch("criteria differ".into());
        assert!(e.to_string().contains("criteria differ"));
        let e = HealthmonError::CheckpointCorrupt {
            path: "shard-003.json".into(),
            detail: "unexpected end of input".into(),
        };
        assert!(e.to_string().contains("shard-003.json"));
        assert!(e.to_string().contains("corrupt"));
    }

    #[test]
    fn sources_chain() {
        let e: HealthmonError = JsonError::invalid("bad").into();
        assert!(e.source().is_some());
        let e = HealthmonError::InvalidPolicy("nope".into());
        assert!(e.source().is_none());
    }

    #[test]
    fn conversions_wrap() {
        let e: HealthmonError = NonFiniteActivation { layer: 2 }.into();
        assert!(matches!(e, HealthmonError::NonFinite(_)));
        let e: HealthmonError =
            CampaignPanic { index: 3, message: "boom".into() }.into();
        assert!(e.to_string().contains("fault model 3"));
    }
}
