//! Criterion micro-benchmarks for the numeric kernels underlying every
//! experiment: matmul, crossbar matvec vs ideal, forward/backward passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use healthmon_nn::models::lenet5;
use healthmon_reram::{Crossbar, CrossbarConfig, TiledMatrix};
use healthmon_tensor::{SeededRng, Tensor};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = SeededRng::new(1);
    for &n in &[32usize, 128, 256] {
        let a = Tensor::randn(&[n, n], &mut rng);
        let b = Tensor::randn(&[n, n], &mut rng);
        group.bench_with_input(BenchmarkId::new("square", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_crossbar_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar");
    let mut rng = SeededRng::new(2);
    let w = Tensor::randn(&[128, 128], &mut rng);
    let x = Tensor::randn(&[128], &mut rng).map(|v| v.clamp(-1.0, 1.0));

    let analog = Crossbar::program(&w, &CrossbarConfig::default(), &mut rng);
    group.bench_function("tile_matvec_8bit_converters", |b| {
        b.iter(|| black_box(analog.matvec(&x)));
    });

    let ideal = Crossbar::program(&w, &CrossbarConfig::ideal(), &mut rng);
    group.bench_function("tile_matvec_ideal", |b| {
        b.iter(|| black_box(ideal.matvec(&x)));
    });

    group.bench_function("digital_matvec_reference", |b| {
        let wt = w.transpose();
        b.iter(|| black_box(wt.matvec(&x)));
    });

    let big = Tensor::randn(&[512, 256], &mut rng);
    let bx = Tensor::randn(&[512], &mut rng);
    let tiled = TiledMatrix::program(&big, &CrossbarConfig::default(), &mut rng);
    group.bench_function("tiled_512x256_matvec", |b| {
        b.iter(|| black_box(tiled.matvec(&bx)));
    });
    group.finish();
}

fn bench_model_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("lenet5");
    group.sample_size(20);
    let mut rng = SeededRng::new(3);
    let mut net = lenet5(&mut rng);
    let batch = Tensor::rand_uniform(&[16, 1, 28, 28], 0.0, 1.0, &mut rng);
    group.bench_function("forward_batch16", |b| {
        b.iter(|| black_box(net.forward(&batch)));
    });
    group.bench_function("forward_backward_batch16", |b| {
        b.iter(|| {
            let out = net.forward(&batch);
            net.zero_grads();
            black_box(net.backward(&Tensor::ones(out.shape())))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_crossbar_matvec, bench_model_passes);
criterion_main!(benches);
