//! Property-based tests for the fault-injection engine.
//!
//! Run on the deterministic `healthmon-check` harness; a failure at case
//! `N` reproduces with `healthmon_check::run_case(N, ..)`.

use healthmon_check::{run_cases, Gen};
use healthmon_faults::{FaultCampaign, FaultModel};
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::Network;
use healthmon_tensor::SeededRng;

const CASES: usize = 24;

fn golden(seed: u64) -> Network {
    let mut rng = SeededRng::new(seed);
    tiny_mlp(6, 10, 4, &mut rng)
}

fn weights(net: &Network) -> Vec<f32> {
    let mut v = Vec::new();
    net.for_each_param(|k, t| {
        if k.ends_with("weight") {
            v.extend_from_slice(t.as_slice());
        }
    });
    v
}

#[test]
fn programming_variation_preserves_signs() {
    run_cases(CASES, |g: &mut Gen| {
        let seed = g.seed();
        let sigma = g.f32_in(0.0, 1.0);
        let mut net = golden(1);
        let before = weights(&net);
        FaultModel::ProgrammingVariation { sigma }.apply(&mut net, &mut SeededRng::new(seed));
        let after = weights(&net);
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.signum(), a.signum());
        }
    });
}

#[test]
fn injection_deterministic() {
    run_cases(CASES, |g| {
        let seed = g.seed();
        let sigma = g.f32_in(0.01, 0.8);
        let fault = FaultModel::ProgrammingVariation { sigma };
        let mut a = golden(2);
        let mut b = golden(2);
        fault.apply(&mut a, &mut SeededRng::new(seed));
        fault.apply(&mut b, &mut SeededRng::new(seed));
        assert_eq!(weights(&a), weights(&b));
    });
}

#[test]
fn soft_error_corruption_fraction_tracks_p() {
    run_cases(CASES, |g| {
        let seed = g.seed();
        let p = g.f64_in(0.05, 0.9);
        let mut net = golden(3);
        let before = weights(&net);
        FaultModel::RandomSoftError { probability: p }.apply(&mut net, &mut SeededRng::new(seed));
        let after = weights(&net);
        let changed = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        let frac = changed as f64 / before.len() as f64;
        // Binomial bounds (n = 100 weights): generous 4-sigma window.
        let tol = 4.0 * (p * (1.0 - p) / before.len() as f64).sqrt() + 0.02;
        assert!((frac - p).abs() < tol, "p={p}, observed {frac}");
    });
}

#[test]
fn stuck_at_fraction_bounded() {
    run_cases(CASES, |g| {
        let seed = g.seed();
        let sa = g.f64_in(0.0, 0.5);
        let mut net = golden(4);
        FaultModel::StuckAt { sa0: sa, sa1: 0.0 }.apply(&mut net, &mut SeededRng::new(seed));
        let after = weights(&net);
        let zeros = after.iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f64 / after.len() as f64;
        assert!(frac <= sa + 0.25, "sa0={sa}, zero fraction {frac}");
    });
}

#[test]
fn drift_never_increases_magnitudes() {
    run_cases(CASES, |g| {
        let seed = g.seed();
        let nu = g.f32_in(0.0, 1.0);
        let t = g.f32_in(0.0, 4.0);
        let mut net = golden(5);
        let before = weights(&net);
        FaultModel::Drift { nu, time: t }.apply(&mut net, &mut SeededRng::new(seed));
        let after = weights(&net);
        for (b, a) in before.iter().zip(&after) {
            assert!(a.abs() <= b.abs() + 1e-6);
        }
    });
}

#[test]
fn perturbation_grows_with_sigma() {
    run_cases(CASES, |g| {
        let seed = g.seed();
        let net = golden(6);
        let campaign = FaultCampaign::new(&net, seed);
        let distance = |sigma: f32| {
            let faulty = campaign.model(&FaultModel::ProgrammingVariation { sigma }, 0);
            weights(&net)
                .iter()
                .zip(weights(&faulty))
                .map(|(b, a)| (b - a).abs())
                .sum::<f32>()
        };
        let small = distance(0.05);
        let large = distance(0.8);
        assert!(large > small, "sigma=0.8 moved less ({large}) than 0.05 ({small})");
    });
}

#[test]
fn campaign_indices_distinct() {
    run_cases(CASES, |g| {
        let seed = g.seed();
        let net = golden(7);
        let campaign = FaultCampaign::new(&net, seed);
        let fault = FaultModel::ProgrammingVariation { sigma: 0.3 };
        let a = campaign.model(&fault, 0);
        let b = campaign.model(&fault, 1);
        assert_ne!(weights(&a), weights(&b));
    });
}

#[test]
fn compound_order_matters_but_is_deterministic() {
    run_cases(CASES, |g| {
        let seed = g.seed();
        let fault = FaultModel::Compound(vec![
            FaultModel::ProgrammingVariation { sigma: 0.2 },
            FaultModel::Drift { nu: 0.2, time: 1.0 },
        ]);
        let mut a = golden(8);
        let mut b = golden(8);
        fault.apply(&mut a, &mut SeededRng::new(seed));
        fault.apply(&mut b, &mut SeededRng::new(seed));
        assert_eq!(weights(&a), weights(&b));
    });
}
