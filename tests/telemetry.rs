//! Cross-crate telemetry integration tests.
//!
//! Three contracts are pinned here:
//!
//! 1. **Thread-count invariance** — every metric tagged `Stable` merges
//!    to bit-identical aggregates whether the work ran on 1, 2 or 7
//!    threads.
//! 2. **Round-trip fidelity** — a snapshot survives JSON-lines
//!    serialization through `healthmon-serdes` unchanged.
//! 3. **Pure observation** — enabling telemetry changes no detection
//!    output: campaign rates and lifetime reports are byte-identical
//!    with recording on and off.

use healthmon::{
    AgingModel, CrossbarConfig, Detector, LifetimeConfig, LifetimeRuntime, SdcCriterion,
    TestPatternSet,
};
use healthmon_faults::{par_map_models_with_threads, FaultModel};
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::Network;
use healthmon_tensor::{SeededRng, Tensor};
use healthmon_telemetry as tel;
use std::sync::{Mutex, MutexGuard};

/// Telemetry state is process-global; these tests serialize on this lock
/// and reset the registry while holding it.
static LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    tel::reset();
    guard
}

fn setup() -> (Network, Detector) {
    let mut rng = SeededRng::new(41);
    let net = tiny_mlp(8, 16, 4, &mut rng);
    let patterns =
        TestPatternSet::new("t", Tensor::rand_uniform(&[10, 8], 0.0, 1.0, &mut rng));
    let detector = Detector::new(&net, patterns);
    (net, detector)
}

/// The JSONL lines of every thread-count-invariant series, sorted.
fn stable_lines(snapshot: &tel::MetricsSnapshot) -> Vec<String> {
    let mut lines: Vec<String> = tel::render_jsonl(snapshot)
        .lines()
        .filter(|l| l.contains("\"stable\":true"))
        .map(str::to_owned)
        .collect();
    lines.sort();
    lines
}

/// One campaign pass over `count` fault models on an explicit thread
/// count, mirroring `Detector::detection_rates` internals.
fn run_campaign(net: &Network, detector: &Detector, threads: usize) -> Vec<Vec<bool>> {
    let fault = FaultModel::ProgrammingVariation { sigma: 0.3 };
    let criteria = [SdcCriterion::Sdc1, SdcCriterion::SdcA { threshold: 0.03 }];
    par_map_models_with_threads(net, &fault, 7, 24, threads, |_, model| {
        let responses = detector.responses(&*model);
        criteria
            .iter()
            .map(|c| c.detects(detector.golden(), &responses))
            .collect()
    })
}

#[test]
fn stable_aggregates_are_thread_count_invariant() {
    let _guard = exclusive();
    let (net, detector) = setup();
    let mut per_thread_count: Vec<(usize, Vec<String>, Vec<Vec<bool>>)> = Vec::new();
    for threads in [1usize, 2, 7] {
        tel::reset();
        tel::set_enabled(true);
        let verdicts = run_campaign(&net, &detector, threads);
        // Drive the GEMM/tile counters through explicit thread counts too.
        let mut rng = SeededRng::new(5);
        let a = Tensor::rand_uniform(&[96, 64], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[64, 48], -1.0, 1.0, &mut rng);
        let _ = a.matmul_with_threads(&b, threads);
        let snapshot = tel::snapshot();
        tel::set_enabled(false);
        per_thread_count.push((threads, stable_lines(&snapshot), verdicts));
    }
    let (_, baseline_lines, baseline_verdicts) = &per_thread_count[0];
    assert!(
        baseline_lines.iter().any(|l| l.contains("detect.responses")),
        "expected detector counters in {baseline_lines:#?}"
    );
    assert!(
        baseline_lines.iter().any(|l| l.contains("patterns.logits.batch_rows")),
        "expected the stable histogram in {baseline_lines:#?}"
    );
    assert!(
        baseline_lines.iter().any(|l| l.contains("gemm.calls")),
        "expected GEMM counters in {baseline_lines:#?}"
    );
    for (threads, lines, verdicts) in &per_thread_count[1..] {
        assert_eq!(
            lines, baseline_lines,
            "stable series diverged between 1 and {threads} threads"
        );
        assert_eq!(verdicts, baseline_verdicts, "verdicts diverged at {threads} threads");
    }
}

#[test]
fn snapshot_round_trips_through_serdes_jsonl() {
    let _guard = exclusive();
    tel::set_enabled(true);
    let (net, detector) = setup();
    let rates = detector.detection_rates(
        &net,
        &FaultModel::ProgrammingVariation { sigma: 0.3 },
        8,
        3,
        &[SdcCriterion::Sdc1, SdcCriterion::SdcA { threshold: 0.03 }],
    );
    assert_eq!(rates.len(), 2);
    tel::record_event("test.marker", "round-trip probe");
    let snapshot = tel::snapshot();
    tel::set_enabled(false);
    assert!(!snapshot.counters.is_empty());
    assert!(!snapshot.spans.is_empty(), "detect.campaign span expected");
    assert!(!snapshot.events.is_empty());

    let jsonl = tel::render_jsonl(&snapshot);
    let parsed = tel::parse_jsonl(&jsonl).expect("rendered JSONL must parse");
    assert_eq!(parsed, snapshot);
    assert_eq!(tel::render_jsonl(&parsed), jsonl, "re-render must be byte-identical");
}

#[test]
fn telemetry_is_purely_observational() {
    let _guard = exclusive();
    let fault = FaultModel::ProgrammingVariation { sigma: 0.4 };
    let criteria = [SdcCriterion::Sdc1, SdcCriterion::SdcA { threshold: 0.03 }];
    let lifetime_config = LifetimeConfig {
        seed: 11,
        epochs: 4,
        aging: AgingModel { drift_nu: 0.3, ..AgingModel::default() },
        crossbar: CrossbarConfig::ideal(),
        ..LifetimeConfig::default()
    };

    let run_all = || {
        let (net, detector) = setup();
        let rates: Vec<u32> = detector
            .detection_rates(&net, &fault, 12, 9, &criteria)
            .iter()
            .map(|r| r.to_bits())
            .collect();
        let mut rng = SeededRng::new(41);
        let golden = tiny_mlp(8, 16, 4, &mut rng);
        let patterns =
            TestPatternSet::new("t", Tensor::rand_uniform(&[10, 8], 0.0, 1.0, &mut rng));
        let mut runtime = LifetimeRuntime::new(&golden, patterns, lifetime_config, None);
        runtime.run(None);
        (rates, runtime.render_report(), runtime.checkpoint_json())
    };

    tel::set_enabled(false);
    let off = run_all();
    tel::reset();
    tel::set_enabled(true);
    let on = run_all();
    let recorded = tel::snapshot();
    tel::set_enabled(false);

    assert_eq!(off.0, on.0, "detection rates must not depend on telemetry");
    assert_eq!(off.1, on.1, "lifetime report must be byte-identical");
    assert_eq!(off.2, on.2, "lifetime checkpoint must be byte-identical");
    // And the enabled run did actually record the lifetime stream.
    assert!(
        recorded.counters.iter().any(|c| c.name == "lifetime.events.checkup" && c.value > 0),
        "expected lifetime event counters in {:#?}",
        recorded.counters
    );
    assert!(
        recorded
            .events
            .iter()
            .any(|e| e.name == "lifetime.event" && e.detail.contains("[deploy]")),
        "expected the deployed event in the ring buffer"
    );
}
