//! The owned JSON value model and its compact writer.

use crate::error::JsonError;
use std::fmt::Write as _;

/// An owned JSON value.
///
/// Objects are stored as ordered `(key, value)` pairs rather than a hash
/// map so rendering is deterministic: the same value always produces the
/// same bytes, which the campaign-checkpoint and artifact-cache code rely
/// on for reproducible diffs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => render_number(*n, out),
            Json::String(s) => render_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// The value as a number, or a type error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Type`] if the value is not a number.
    pub fn as_number(&self) -> Result<f64, JsonError> {
        match self {
            Json::Number(n) => Ok(*n),
            other => Err(JsonError::type_error("number", other)),
        }
    }

    /// The value as a string slice, or a type error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Type`] if the value is not a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::String(s) => Ok(s),
            other => Err(JsonError::type_error("string", other)),
        }
    }

    /// The value as a bool, or a type error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Type`] if the value is not a bool.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::type_error("bool", other)),
        }
    }

    /// The value as an array slice, or a type error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Type`] if the value is not an array.
    pub fn as_array(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(JsonError::type_error("array", other)),
        }
    }

    /// The value as object fields, or a type error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Type`] if the value is not an object.
    pub fn as_object(&self) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Object(fields) => Ok(fields),
            other => Err(JsonError::type_error("object", other)),
        }
    }

    /// Looks up a field of an object.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Type`] if the value is not an object and
    /// [`JsonError::MissingField`] if the key is absent.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        let fields = self.as_object()?;
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| JsonError::MissingField(key.to_owned()))
    }
}

/// JSON forbids non-finite numbers; the `f32`/`f64` codecs in `traits`
/// never pass them here, but a hand-built `Json::Number(NaN)` must still
/// render to *something* parseable, so it degrades to `null`.
fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 && !(n == 0.0 && n.is_sign_negative()) {
        // -0.0 falls through to the float path so its sign survives the
        // round trip.
        // Integral values print without a fraction (`3` not `3.0`),
        // matching what serde_json produced for integer fields.
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Number(3.0).render(), "3");
        assert_eq!(Json::Number(2.5).render(), "2.5");
        assert_eq!(Json::String("hi".into()).render(), "\"hi\"");
    }

    #[test]
    fn renders_containers_deterministically() {
        let v = Json::Object(vec![
            ("b".into(), Json::Number(1.0)),
            ("a".into(), Json::Array(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(v.render(), "{\"b\":1,\"a\":[null,false]}");
        assert_eq!(v.render(), v.clone().render());
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::String("a\"b\\c\nd".into()).render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::String("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_number_degrades_to_null() {
        assert_eq!(Json::Number(f64::NAN).render(), "null");
        assert_eq!(Json::Number(f64::INFINITY).render(), "null");
    }

    #[test]
    fn accessors_enforce_types() {
        assert!(Json::Null.as_number().is_err());
        assert_eq!(Json::Number(4.0).as_number().unwrap(), 4.0);
        assert_eq!(Json::String("x".into()).as_str().unwrap(), "x");
        assert!(Json::Bool(true).as_array().is_err());
        let obj = Json::Object(vec![("k".into(), Json::Number(1.0))]);
        assert_eq!(obj.field("k").unwrap().as_number().unwrap(), 1.0);
        assert!(matches!(obj.field("missing"), Err(JsonError::MissingField(_))));
    }
}
