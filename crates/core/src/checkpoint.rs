//! Resumable fault campaigns: a [`CampaignCheckpoint`] records which fault
//! models of a detection sweep have been evaluated and what each one's
//! per-criterion verdicts were, so an interrupted 100-model campaign can
//! resume exactly where it stopped.
//!
//! Because fault model `i` depends only on `(golden weights, seed, fault,
//! i)` — never on evaluation order or thread count — a resumed sweep is
//! bit-identical to an uninterrupted one. Checkpoints serialize through
//! `healthmon-serdes`, keeping the artifact format dependency-free.

use crate::error::HealthmonError;
use crate::metrics::SdcCriterion;
use healthmon_serdes::{FromJson, Json, JsonError, ToJson};

/// The saved state of a partially-evaluated detection campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    seed: u64,
    count: usize,
    /// Criterion labels, recorded so a resume with *different* criteria is
    /// rejected instead of silently mixing verdict columns.
    criteria: Vec<String>,
    /// Completed `(model index, per-criterion verdicts)` rows, sorted by
    /// index.
    rows: Vec<(usize, Vec<bool>)>,
}

impl CampaignCheckpoint {
    /// Starts an empty checkpoint for a sweep of `count` fault models
    /// under `seed`, evaluated against `criteria`.
    pub fn new(seed: u64, count: usize, criteria: &[SdcCriterion]) -> Self {
        CampaignCheckpoint {
            seed,
            count,
            criteria: criteria.iter().map(SdcCriterion::label).collect(),
            rows: Vec::new(),
        }
    }

    /// The campaign seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The total number of fault models in the sweep.
    pub fn count(&self) -> usize {
        self.count
    }

    /// How many fault models have been evaluated so far.
    pub fn completed(&self) -> usize {
        self.rows.len()
    }

    /// Whether every fault model has been evaluated.
    pub fn is_complete(&self) -> bool {
        self.rows.len() == self.count
    }

    /// The indices still to be evaluated, ascending.
    pub fn remaining(&self) -> Vec<usize> {
        let done: Vec<usize> = self.rows.iter().map(|(i, _)| *i).collect();
        (0..self.count).filter(|i| !done.contains(i)).collect()
    }

    /// Verifies that `criteria` are the ones this checkpoint was started
    /// with.
    ///
    /// # Errors
    ///
    /// [`HealthmonError::CheckpointMismatch`] on any difference.
    pub fn verify_criteria(&self, criteria: &[SdcCriterion]) -> Result<(), HealthmonError> {
        let labels: Vec<String> = criteria.iter().map(SdcCriterion::label).collect();
        if labels != self.criteria {
            return Err(HealthmonError::CheckpointMismatch(format!(
                "checkpoint was recorded for criteria {:?}, resume requested {:?}",
                self.criteria, labels
            )));
        }
        Ok(())
    }

    /// Records the verdicts for fault model `index`.
    ///
    /// # Errors
    ///
    /// [`HealthmonError::CheckpointMismatch`] if `index` is out of range
    /// or already recorded, or the verdict row has the wrong width.
    pub fn record(&mut self, index: usize, verdicts: Vec<bool>) -> Result<(), HealthmonError> {
        if index >= self.count {
            return Err(HealthmonError::CheckpointMismatch(format!(
                "model index {index} out of range for a {}-model sweep",
                self.count
            )));
        }
        if verdicts.len() != self.criteria.len() {
            return Err(HealthmonError::CheckpointMismatch(format!(
                "verdict row has {} entries, expected {} criteria",
                verdicts.len(),
                self.criteria.len()
            )));
        }
        match self.rows.binary_search_by_key(&index, |(i, _)| *i) {
            Ok(_) => Err(HealthmonError::CheckpointMismatch(format!(
                "model index {index} already recorded"
            ))),
            Err(pos) => {
                self.rows.insert(pos, (index, verdicts));
                Ok(())
            }
        }
    }

    /// Per-criterion detection rates over the *completed* rows, as a
    /// fraction of the full sweep size. Equal to the final rates once
    /// [`is_complete`](Self::is_complete) holds.
    pub fn rates(&self) -> Vec<f32> {
        if self.count == 0 {
            return vec![0.0; self.criteria.len()];
        }
        (0..self.criteria.len())
            .map(|ci| {
                self.rows.iter().filter(|(_, v)| v[ci]).count() as f32 / self.count as f32
            })
            .collect()
    }

    /// Serializes the checkpoint to a JSON string.
    pub fn to_json_string(&self) -> String {
        healthmon_serdes::to_string(self)
    }

    /// Deserializes a checkpoint from a JSON string.
    ///
    /// # Errors
    ///
    /// [`HealthmonError::Json`] if the text is not a valid checkpoint.
    pub fn from_json_str(text: &str) -> Result<Self, HealthmonError> {
        Ok(healthmon_serdes::from_str(text)?)
    }

    /// Writes the checkpoint to `path` atomically (temp + fsync +
    /// rename, see [`crate::store::write_atomic`]): a kill mid-save
    /// leaves the previous complete checkpoint, never a torn file.
    ///
    /// # Errors
    ///
    /// [`HealthmonError::CheckpointCorrupt`] carrying the path on any
    /// I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), HealthmonError> {
        let path = path.as_ref();
        crate::store::write_atomic(path, self.to_json_string().as_bytes()).map_err(|e| {
            HealthmonError::CheckpointCorrupt {
                path: path.display().to_string(),
                detail: e.to_string(),
            }
        })
    }

    /// Loads a checkpoint from `path`, reporting unreadable or
    /// unparseable files as [`HealthmonError::CheckpointCorrupt`] with
    /// the offending path.
    ///
    /// # Errors
    ///
    /// [`HealthmonError::CheckpointCorrupt`] when the file is missing,
    /// unreadable, truncated, or fails to parse.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, HealthmonError> {
        let path = path.as_ref();
        let text = crate::store::read_checkpoint(path)?;
        Self::from_json_str(&text).map_err(|e| crate::store::mark_corrupt(path, e))
    }
}

impl ToJson for CampaignCheckpoint {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            // Seeds are full 64-bit values; rendered as a decimal string
            // so they survive the f64 JSON number type exactly.
            ("seed".to_owned(), Json::String(self.seed.to_string())),
            ("count".to_owned(), self.count.to_json()),
            ("criteria".to_owned(), self.criteria.to_json()),
            ("rows".to_owned(), self.rows.to_json()),
        ])
    }
}

impl FromJson for CampaignCheckpoint {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let seed_field = value.field("seed")?;
        let seed = seed_field
            .as_str()?
            .parse::<u64>()
            .map_err(|_| JsonError::invalid("checkpoint seed is not a decimal u64"))?;
        let count = usize::from_json(value.field("count")?)?;
        let criteria = Vec::<String>::from_json(value.field("criteria")?)?;
        let rows = Vec::<(usize, Vec<bool>)>::from_json(value.field("rows")?)?;
        let mut last: Option<usize> = None;
        for (i, v) in &rows {
            if *i >= count {
                return Err(JsonError::invalid(format!(
                    "checkpoint row index {i} out of range for count {count}"
                )));
            }
            if v.len() != criteria.len() {
                return Err(JsonError::invalid(format!(
                    "checkpoint row {i} has {} verdicts, expected {}",
                    v.len(),
                    criteria.len()
                )));
            }
            if last.is_some_and(|p| p >= *i) {
                return Err(JsonError::invalid(
                    "checkpoint rows must be sorted by index without duplicates",
                ));
            }
            last = Some(*i);
        }
        Ok(CampaignCheckpoint { seed, count, criteria, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn criteria() -> Vec<SdcCriterion> {
        vec![SdcCriterion::Sdc1, SdcCriterion::SdcA { threshold: 0.03 }]
    }

    #[test]
    fn fresh_checkpoint_has_everything_remaining() {
        let cp = CampaignCheckpoint::new(7, 5, &criteria());
        assert_eq!(cp.remaining(), vec![0, 1, 2, 3, 4]);
        assert!(!cp.is_complete());
        assert_eq!(cp.rates(), vec![0.0, 0.0]);
    }

    #[test]
    fn recording_shrinks_the_remainder() {
        let mut cp = CampaignCheckpoint::new(7, 3, &criteria());
        cp.record(1, vec![true, false]).unwrap();
        assert_eq!(cp.remaining(), vec![0, 2]);
        cp.record(0, vec![true, true]).unwrap();
        cp.record(2, vec![false, false]).unwrap();
        assert!(cp.is_complete());
        assert_eq!(cp.rates(), vec![2.0 / 3.0, 1.0 / 3.0]);
    }

    #[test]
    fn record_rejects_bad_rows() {
        let mut cp = CampaignCheckpoint::new(7, 3, &criteria());
        assert!(cp.record(3, vec![true, true]).is_err());
        assert!(cp.record(0, vec![true]).is_err());
        cp.record(0, vec![true, true]).unwrap();
        assert!(cp.record(0, vec![true, true]).is_err());
    }

    #[test]
    fn verify_criteria_catches_a_swap() {
        let cp = CampaignCheckpoint::new(7, 3, &criteria());
        assert!(cp.verify_criteria(&criteria()).is_ok());
        let other = vec![SdcCriterion::Sdc1, SdcCriterion::SdcA { threshold: 0.05 }];
        assert!(cp.verify_criteria(&other).is_err());
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut cp = CampaignCheckpoint::new(u64::MAX - 3, 4, &criteria());
        cp.record(2, vec![true, false]).unwrap();
        cp.record(0, vec![false, false]).unwrap();
        let restored = CampaignCheckpoint::from_json_str(&cp.to_json_string()).unwrap();
        assert_eq!(restored, cp);
        // u64 seeds beyond 2^53 survive (stored as a decimal string).
        assert_eq!(restored.seed(), u64::MAX - 3);
    }

    #[test]
    fn save_and_load_round_trip_and_report_corruption() {
        let dir = std::env::temp_dir().join("healthmon_campaign_cp");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.json");
        let mut cp = CampaignCheckpoint::new(5, 3, &criteria());
        cp.record(1, vec![true, false]).unwrap();
        cp.save(&path).unwrap();
        assert_eq!(CampaignCheckpoint::load(&path).unwrap(), cp);
        // Truncate mid-file: load must report the damaged path, not a
        // context-free parse error.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        match CampaignCheckpoint::load(&path).unwrap_err() {
            HealthmonError::CheckpointCorrupt { path: p, .. } => {
                assert!(p.contains("campaign.json"));
            }
            other => panic!("expected CheckpointCorrupt, got {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_json_rejects_corruption() {
        let cp = CampaignCheckpoint::new(1, 2, &criteria());
        let good = cp.to_json_string();
        // Out-of-range row index.
        let bad = good.replace("\"rows\":[]", "\"rows\":[[9,[true,true]]]");
        assert!(CampaignCheckpoint::from_json_str(&bad).is_err());
        // Non-numeric seed.
        let bad = good.replace("\"seed\":\"1\"", "\"seed\":\"xyz\"");
        assert!(CampaignCheckpoint::from_json_str(&bad).is_err());
    }
}
