//! Crossbar array configuration.

/// Geometry and precision parameters of a ReRAM crossbar tile.
///
/// Defaults follow the ISAAC-class designs the paper cites: 128×128
/// arrays, 2-bit-per-cell conductance storage used in differential pairs,
/// 8-bit DACs on the word lines and 8-bit ADCs on the bit lines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarConfig {
    /// Word lines per tile (input dimension of one tile).
    pub rows: usize,
    /// Bit lines per tile (output dimension of one tile).
    pub cols: usize,
    /// Bits of conductance resolution per cell; a weight is stored as a
    /// differential pair of cells, so effective weight levels are
    /// `2^(bits+1) − 1`. The special value 0 selects *exact* cell storage:
    /// no conductance quantization at all, and the programming full-scale
    /// is rounded up to a power of two so the weight → conductance →
    /// weight round trip is bitwise lossless (see
    /// [`CrossbarConfig::exact`]).
    pub cell_bits: u32,
    /// Input DAC resolution in bits (0 disables input quantization).
    pub dac_bits: u32,
    /// Output ADC resolution in bits (0 disables output quantization).
    pub adc_bits: u32,
    /// Minimum programmable conductance (normalized units). Represents the
    /// high-resistance state; must be ≥ 0.
    pub g_min: f32,
    /// Maximum programmable conductance (normalized units). Represents the
    /// low-resistance state; must exceed `g_min`.
    pub g_max: f32,
    /// Lognormal σ of conductance write noise applied at programming time
    /// (0 for ideal writes).
    pub write_noise: f32,
}

impl CrossbarConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of range (zero geometry, inverted
    /// conductance window, negative noise).
    pub fn validate(&self) {
        assert!(self.rows > 0 && self.cols > 0, "crossbar geometry must be non-zero");
        // cell_bits == 0 is the exact-storage mode; any other value needs
        // at least one level pair.
        assert!(self.cell_bits <= 24, "cell resolution {} bits exceeds 24", self.cell_bits);
        assert!(
            self.g_min >= 0.0 && self.g_max > self.g_min,
            "conductance window [{}, {}] invalid",
            self.g_min,
            self.g_max
        );
        assert!(self.write_noise >= 0.0, "write noise must be non-negative");
    }

    /// Number of programmable conductance levels per cell (1 in the
    /// exact-storage mode, where the continuum is available).
    pub fn levels(&self) -> usize {
        1usize << self.cell_bits
    }

    /// Whether cells store conductances exactly (`cell_bits == 0`).
    pub fn exact_cells(&self) -> bool {
        self.cell_bits == 0
    }

    /// Whether a tile of this configuration can execute on the
    /// integer-domain fast path: DAC codes and differential conductance
    /// codes accumulated in `i32` instead of the `f32` reference loop.
    ///
    /// Requires a real DAC (`dac_bits ≥ 1`, so inputs land on a finite
    /// level grid) and discrete cells (`1 ≤ cell_bits ≤ 8`, so each
    /// differential pair reduces to an `i16` code), and bounds the
    /// worst-case accumulator `(2^dac − 1)·(2^cell − 1)·rows` to stay
    /// comfortably inside `i32` — configurations outside these limits
    /// (including [`CrossbarConfig::ideal`] and [`CrossbarConfig::exact`],
    /// which disable the DAC) execute on the bit-pinned `f32` path.
    pub fn integer_path_capable(&self) -> bool {
        (1..=16).contains(&self.dac_bits)
            && (1..=8).contains(&self.cell_bits)
            && ((1u64 << self.dac_bits) - 1) * ((1u64 << self.cell_bits) - 1) * self.rows as u64
                <= 1 << 30
    }

    /// An ideal configuration: no write noise and converters disabled —
    /// useful as a baseline in equivalence tests.
    pub fn ideal() -> Self {
        CrossbarConfig { write_noise: 0.0, dac_bits: 0, adc_bits: 0, cell_bits: 16, ..Self::default() }
    }

    /// The *exact* configuration: cell storage is lossless
    /// (`cell_bits == 0`, full-scale rounded to a power of two), converters
    /// are disabled, writes are noiseless, and the conductance window is
    /// the unit interval. A crossbar programmed with this configuration
    /// computes bit-identically to the digital reference — the baseline
    /// the backend-equivalence tests pin.
    pub fn exact() -> Self {
        CrossbarConfig {
            cell_bits: 0,
            dac_bits: 0,
            adc_bits: 0,
            write_noise: 0.0,
            g_min: 0.0,
            g_max: 1.0,
            ..Self::default()
        }
    }
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        CrossbarConfig {
            rows: 128,
            cols: 128,
            cell_bits: 4,
            dac_bits: 8,
            adc_bits: 8,
            g_min: 0.0,
            g_max: 1.0,
            write_noise: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        CrossbarConfig::default().validate();
        CrossbarConfig::ideal().validate();
    }

    #[test]
    fn exact_mode_is_valid() {
        let c = CrossbarConfig::exact();
        c.validate();
        assert!(c.exact_cells());
        assert!(!CrossbarConfig::default().exact_cells());
    }

    #[test]
    fn levels_from_bits() {
        let c = CrossbarConfig { cell_bits: 4, ..CrossbarConfig::default() };
        assert_eq!(c.levels(), 16);
        let c = CrossbarConfig { cell_bits: 1, ..CrossbarConfig::default() };
        assert_eq!(c.levels(), 2);
    }

    #[test]
    fn integer_path_gating() {
        assert!(CrossbarConfig::default().integer_path_capable());
        // DAC disabled → f32 path (and with it exact()/ideal()).
        assert!(!CrossbarConfig::ideal().integer_path_capable());
        assert!(!CrossbarConfig::exact().integer_path_capable());
        // Cells too fine for i16 codes.
        let c = CrossbarConfig { cell_bits: 16, dac_bits: 2, ..CrossbarConfig::default() };
        assert!(!c.integer_path_capable());
        // Accumulator headroom: 16-bit DAC × 8-bit cells × 128 rows
        // overflows the 2^30 bound.
        let c = CrossbarConfig { cell_bits: 8, dac_bits: 16, ..CrossbarConfig::default() };
        assert!(!c.integer_path_capable());
        let c = CrossbarConfig { cell_bits: 8, dac_bits: 8, ..CrossbarConfig::default() };
        assert!(c.integer_path_capable());
    }

    #[test]
    #[should_panic(expected = "geometry")]
    fn rejects_zero_rows() {
        CrossbarConfig { rows: 0, ..CrossbarConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "conductance window")]
    fn rejects_inverted_window() {
        CrossbarConfig { g_min: 1.0, g_max: 0.5, ..CrossbarConfig::default() }.validate();
    }
}
