//! Labelled dataset containers.

use healthmon_tensor::{SeededRng, Tensor};

/// A labelled image dataset: sample-major image tensor plus class labels.
///
/// Images are stored `[N, C, H, W]` with values in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Image tensor, `[N, C, H, W]`.
    pub images: Tensor,
    /// Class label per sample, each `< num_classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating label/sample agreement.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the sample count or any label
    /// is out of range.
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert!(images.ndim() >= 2, "images must be batched, got {:?}", images.shape());
        assert_eq!(
            labels.len(),
            images.shape()[0],
            "label count {} != sample count {}",
            labels.len(),
            images.shape()[0]
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "labels must be < {num_classes}"
        );
        Dataset { images, labels, num_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-sample shape (without the batch dimension).
    pub fn sample_shape(&self) -> &[usize] {
        &self.images.shape()[1..]
    }

    /// The sample at `index` as an owned tensor of [`Dataset::sample_shape`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn sample(&self, index: usize) -> Tensor {
        assert!(index < self.len(), "sample index {index} out of bounds for {}", self.len());
        let sample_len: usize = self.sample_shape().iter().product();
        let start = index * sample_len;
        let flat = &self.images.as_slice()[start..start + sample_len];
        Tensor::from_vec(flat.to_vec(), self.sample_shape())
            .expect("sample slice matches sample shape")
    }

    /// Indices of all samples with the given label.
    pub fn indices_of_class(&self, class: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| (l == class).then_some(i))
            .collect()
    }

    /// A new dataset containing only the samples at `indices` (in order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let sample_len: usize = self.sample_shape().iter().product();
        let mut shape = self.images.shape().to_vec();
        shape[0] = indices.len().max(1);
        let mut data = Vec::with_capacity(indices.len() * sample_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "subset index {i} out of bounds");
            let start = i * sample_len;
            data.extend_from_slice(&self.images.as_slice()[start..start + sample_len]);
            labels.push(self.labels[i]);
        }
        assert!(!indices.is_empty(), "subset of zero samples is not representable");
        let images = Tensor::from_vec(data, &shape).expect("subset preserves sample shape");
        Dataset { images, labels, num_classes: self.num_classes }
    }

    /// A random subset of `k` samples.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the dataset size.
    pub fn random_subset(&self, k: usize, rng: &mut SeededRng) -> Dataset {
        let idx = rng.sample_indices(self.len(), k);
        self.subset(&idx)
    }

    /// Fraction of samples carrying each label, indexed by class.
    pub fn class_distribution(&self) -> Vec<f32> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts.into_iter().map(|c| c as f32 / self.len().max(1) as f32).collect()
    }
}

/// A train/test split produced by a generator.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSplit {
    /// Training partition.
    pub train: Dataset,
    /// Held-out test partition.
    pub test: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let images = Tensor::from_vec((0..12).map(|v| v as f32 / 12.0).collect(), &[3, 2, 2]).unwrap();
        Dataset::new(images, vec![0, 1, 0], 2)
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.sample_shape(), &[2, 2]);
        assert_eq!(d.sample(1).as_slice(), &[4.0 / 12.0, 5.0 / 12.0, 6.0 / 12.0, 7.0 / 12.0]);
    }

    #[test]
    fn class_queries() {
        let d = toy();
        assert_eq!(d.indices_of_class(0), vec![0, 2]);
        assert_eq!(d.indices_of_class(1), vec![1]);
        let dist = d.class_distribution();
        assert!((dist[0] - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn subset_preserves_pairing() {
        let d = toy();
        let s = d.subset(&[2, 1]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels, vec![0, 1]);
        assert_eq!(s.sample(0), d.sample(2));
        assert_eq!(s.sample(1), d.sample(1));
    }

    #[test]
    fn random_subset_draws_distinct() {
        let d = toy();
        let mut rng = SeededRng::new(1);
        let s = d.random_subset(2, &mut rng);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn rejects_label_mismatch() {
        Dataset::new(Tensor::zeros(&[3, 2]), vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "labels must be")]
    fn rejects_out_of_range_label() {
        Dataset::new(Tensor::zeros(&[2, 2]), vec![0, 5], 2);
    }
}
