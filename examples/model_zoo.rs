//! The model zoo: every registered architecture through the same health
//! pipeline, no per-model code.
//!
//! Iterates the registry (`healthmon_nn::zoo`), builds each model from a
//! seed, deploys it onto exact (quantization-free, noise-free) crossbars,
//! and verifies the analog backend reproduces the digital logits
//! bit-for-bit before running a 10-pattern concurrent test against a
//! programming-variation device. This is the architecture-agnostic loop
//! the CLI subcommands use; adding a model to the registry adds a row
//! here with zero changes.
//!
//! Run with:
//! ```sh
//! cargo run --release -p healthmon --example model_zoo
//! ```

use healthmon::{BackendSpec, CrossbarConfig, Detector, InferenceBackend, SdcCriterion, TestPatternSet};
use healthmon_faults::{FaultCampaign, FaultModel};
use healthmon_nn::zoo;
use healthmon_reram::{deploy, AnalogBackend};
use healthmon_tensor::{SeededRng, Tensor};

fn main() {
    let exact = BackendSpec::analog(CrossbarConfig {
        rows: 4096,
        cols: 4096,
        ..CrossbarConfig::exact()
    });

    println!("model      | params  | mapped | tiles | util  | exact analog | pv:0.4 verdict");
    println!("-----------+---------+--------+-------+-------+--------------+---------------");
    for spec in zoo::ZOO {
        let mut rng = SeededRng::new(2020);
        let model = spec.build(&mut rng);

        // Random probe batch in the model's native input shape.
        let mut probe_shape = vec![6usize];
        probe_shape.extend_from_slice(spec.input_shape);
        let probes = Tensor::randn(&probe_shape, &mut rng);

        // Exact-crossbar deployment: utilization and bit-identity.
        let (_, report) = deploy(&model, &CrossbarConfig::ideal(), &mut rng.fork(1));
        let utilization = report.mappings.iter().map(|m| m.utilization).sum::<f32>()
            / report.mappings.len() as f32;

        let digital = model.infer(&probes);
        let backend = AnalogBackend::program(&model, &exact, &mut rng.fork(2));
        let analog = backend.infer(&probes);
        let bitwise = digital
            .as_slice()
            .iter()
            .zip(analog.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());

        // Concurrent test: 10 random patterns against a damaged device.
        let patterns = TestPatternSet::new(
            "zoo-probe",
            Tensor::randn(&{
                let mut s = vec![10usize];
                s.extend_from_slice(spec.input_shape);
                s
            }, &mut rng),
        );
        let detector = Detector::new(&model, patterns);
        let campaign = FaultCampaign::new(&model, 77);
        let faulty_dev = campaign.model(&FaultModel::ProgrammingVariation { sigma: 0.4 }, 0);
        let verdict = detector.is_faulty(&faulty_dev, SdcCriterion::SdcA { threshold: 1e-3 });

        println!(
            "{:<10} | {:>7} | {:>6} | {:>5} | {:>4.0}% | {:<12} | {}",
            spec.name,
            model.num_params(),
            report.mappings.len(),
            report.total_tiles(),
            utilization * 100.0,
            if bitwise { "bit-exact" } else { "DIVERGED" },
            if verdict { "detected" } else { "missed" }
        );
    }
}
