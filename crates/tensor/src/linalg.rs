//! Matrix multiplication kernels.
//!
//! Three variants cover everything backprop needs without materializing
//! transposes: `A·B`, `Aᵀ·B`, and `A·Bᵀ`. All use an `ikj` loop order so the
//! innermost loop streams both operands, and fan work out across threads by
//! row-block when the problem is large enough to amortize spawn cost.

use crate::Tensor;

/// Below this many multiply-accumulates, threading costs more than it saves.
const PAR_THRESHOLD: usize = 1 << 18;

fn thread_count(rows: usize, work: usize) -> usize {
    if work < PAR_THRESHOLD {
        return 1;
    }
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    hw.min(rows).max(1)
}

/// Sequential kernel for `C[r0..r1] = A[r0..r1] * B`, with A laid out `m×k`
/// and B `k×n`.
fn matmul_block(a: &[f32], b: &[f32], c: &mut [f32], r0: usize, r1: usize, k: usize, n: usize) {
    for i in r0..r1 {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[(i - r0) * n..(i - r0 + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ip * b_v;
            }
        }
    }
}

impl Tensor {
    /// Matrix product `self · rhs` for 2-D tensors (`m×k` times `k×n`).
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D, got {:?}", self.shape());
        assert_eq!(rhs.ndim(), 2, "matmul rhs must be 2-D, got {:?}", rhs.shape());
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
        let a = self.as_slice();
        let b = rhs.as_slice();
        let work = m * k * n;
        let threads = thread_count(m, work);
        let mut out = vec![0.0f32; m * n];
        if threads <= 1 {
            matmul_block(a, b, &mut out, 0, m, k, n);
        } else {
            let chunk = m.div_ceil(threads);
            std::thread::scope(|s| {
                for (t, out_chunk) in out.chunks_mut(chunk * n).enumerate() {
                    let r0 = t * chunk;
                    let r1 = (r0 + chunk).min(m);
                    s.spawn(move || matmul_block(a, b, out_chunk, r0, r1, k, n));
                }
            });
        }
        Tensor::from_vec(out, &[m, n]).expect("matmul output shape is consistent by construction")
    }

    /// Matrix product `selfᵀ · rhs` (`k×m`ᵀ times `k×n` → `m×n`) without
    /// materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the shared dimension differs.
    pub fn matmul_at(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_at lhs must be 2-D");
        assert_eq!(rhs.ndim(), 2, "matmul_at rhs must be 2-D");
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (rhs.shape()[0], rhs.shape()[1]);
        assert_eq!(k, k2, "matmul_at shared dimension mismatch: {k} vs {k2}");
        let a = self.as_slice();
        let b = rhs.as_slice();
        // C[i,j] = sum_p A[p,i] * B[p,j]: each output row i reads column i
        // of A, so rows are independent and parallelize cleanly.
        let kernel = |r0: usize, r1: usize, out_chunk: &mut [f32]| {
            for i in r0..r1 {
                let c_row = &mut out_chunk[(i - r0) * n..(i - r0 + 1) * n];
                for p in 0..k {
                    let a_pi = a[p * m + i];
                    if a_pi == 0.0 {
                        continue;
                    }
                    let b_row = &b[p * n..(p + 1) * n];
                    for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                        *c_v += a_pi * b_v;
                    }
                }
            }
        };
        let work = m * k * n;
        let threads = thread_count(m, work);
        let mut out = vec![0.0f32; m * n];
        if threads <= 1 {
            kernel(0, m, &mut out);
        } else {
            let chunk = m.div_ceil(threads);
            std::thread::scope(|s| {
                for (t, out_chunk) in out.chunks_mut(chunk * n).enumerate() {
                    let r0 = t * chunk;
                    let r1 = (r0 + chunk).min(m);
                    s.spawn(move || kernel(r0, r1, out_chunk));
                }
            });
        }
        Tensor::from_vec(out, &[m, n]).expect("matmul_at output shape is consistent")
    }

    /// Matrix product `self · rhsᵀ` (`m×k` times `n×k`ᵀ → `m×n`) without
    /// materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the shared dimension differs.
    pub fn matmul_bt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_bt lhs must be 2-D");
        assert_eq!(rhs.ndim(), 2, "matmul_bt rhs must be 2-D");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (rhs.shape()[0], rhs.shape()[1]);
        assert_eq!(k, k2, "matmul_bt shared dimension mismatch: {k} vs {k2}");
        let a = self.as_slice();
        let b = rhs.as_slice();
        let work = m * k * n;
        let threads = thread_count(m, work);
        let kernel = |r0: usize, r1: usize, out_chunk: &mut [f32]| {
            for i in r0..r1 {
                let a_row = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (av, bv) in a_row.iter().zip(b_row) {
                        acc += av * bv;
                    }
                    out_chunk[(i - r0) * n + j] = acc;
                }
            }
        };
        let mut out = vec![0.0f32; m * n];
        if threads <= 1 {
            kernel(0, m, &mut out);
        } else {
            let chunk = m.div_ceil(threads);
            std::thread::scope(|s| {
                for (t, out_chunk) in out.chunks_mut(chunk * n).enumerate() {
                    let r0 = t * chunk;
                    let r1 = (r0 + chunk).min(m);
                    s.spawn(move || kernel(r0, r1, out_chunk));
                }
            });
        }
        Tensor::from_vec(out, &[m, n]).expect("matmul_bt output shape is consistent")
    }

    /// Matrix–vector product `self · v` for a 2-D tensor and 1-D vector.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not 2-D, `v` is not 1-D, or dimensions mismatch.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matvec matrix must be 2-D");
        assert_eq!(v.ndim(), 1, "matvec vector must be 1-D");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        assert_eq!(k, v.len(), "matvec dimension mismatch: {k} vs {}", v.len());
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = vec![0.0f32; m];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &a[i * k..(i + 1) * k];
            *o = row.iter().zip(x).map(|(&a, &b)| a * b).sum();
        }
        Tensor::from_vec(out, &[m]).expect("matvec output shape is consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeededRng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *out.at_mut(&[i, j]) = acc;
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() <= tol, "mismatch: {x} vs {y}");
        }
    }

    #[test]
    fn matmul_hand_example() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = SeededRng::new(3);
        let a = Tensor::randn(&[4, 4], &mut rng);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert_close(&a.matmul(&eye), &a, 1e-6);
        assert_close(&eye.matmul(&a), &a, 1e-6);
    }

    #[test]
    fn matmul_matches_naive_random() {
        let mut rng = SeededRng::new(11);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (7, 4, 9), (16, 16, 16)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            assert_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-4);
        }
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        // Large enough to cross PAR_THRESHOLD (work = 96*96*96 ≈ 885k).
        let mut rng = SeededRng::new(13);
        let a = Tensor::randn(&[96, 96], &mut rng);
        let b = Tensor::randn(&[96, 96], &mut rng);
        assert_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-3);
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let mut rng = SeededRng::new(5);
        let a = Tensor::randn(&[6, 3], &mut rng);
        let b = Tensor::randn(&[6, 4], &mut rng);
        assert_close(&a.matmul_at(&b), &a.transpose().matmul(&b), 1e-4);
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let mut rng = SeededRng::new(6);
        let a = Tensor::randn(&[5, 3], &mut rng);
        let b = Tensor::randn(&[7, 3], &mut rng);
        assert_close(&a.matmul_bt(&b), &a.matmul(&b.transpose()), 1e-4);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = SeededRng::new(8);
        let a = Tensor::randn(&[4, 6], &mut rng);
        let v = Tensor::randn(&[6], &mut rng);
        let via_matmul = a.matmul(&v.reshape(&[6, 1]).unwrap());
        let direct = a.matvec(&v);
        for i in 0..4 {
            assert!((direct.as_slice()[i] - via_matmul.as_slice()[i]).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }
}
