//! SDC detection criteria.
//!
//! The paper adopts the SDC (silent data corruption) metric family of
//! Li et al. (SC'17) and adds two averaged-confidence criteria of its own.
//! Each criterion decides, from the responses of an ideal and a target
//! model on the same pattern set, whether the target is faulty.

use crate::confidence::{ConfidenceDistance, ResponseSet};

/// A detection criterion over (ideal, target) response pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SdcCriterion {
    /// **SDC-1**: faulty if any pattern's top-1 class differs.
    Sdc1,
    /// **SDC-5**: faulty if any pattern's top-5 class *set* differs.
    Sdc5,
    /// **SDC-T**: faulty if the mean top-ranked confidence distance
    /// exceeds `threshold` (paper uses 5% and 10%).
    SdcT {
        /// Detection threshold on the top-ranked confidence distance.
        threshold: f32,
    },
    /// **SDC-A**: faulty if the mean all-class confidence distance exceeds
    /// `threshold` (paper introduces 3% and 5%). This is the criterion
    /// O-TP is designed for — it does not rely on the top-ranked class.
    SdcA {
        /// Detection threshold on the all-class confidence distance.
        threshold: f32,
    },
}

impl SdcCriterion {
    /// The six criteria of the paper's Table III, in column order.
    pub fn paper_suite() -> [SdcCriterion; 6] {
        [
            SdcCriterion::Sdc1,
            SdcCriterion::Sdc5,
            SdcCriterion::SdcT { threshold: 0.05 },
            SdcCriterion::SdcT { threshold: 0.10 },
            SdcCriterion::SdcA { threshold: 0.03 },
            SdcCriterion::SdcA { threshold: 0.05 },
        ]
    }

    /// Display label matching the paper (`SDC-1`, `SDC-T5%`, ...).
    pub fn label(&self) -> String {
        match self {
            SdcCriterion::Sdc1 => "SDC-1".to_owned(),
            SdcCriterion::Sdc5 => "SDC-5".to_owned(),
            SdcCriterion::SdcT { threshold } => format!("SDC-T{}%", (threshold * 100.0).round()),
            SdcCriterion::SdcA { threshold } => format!("SDC-A{}%", (threshold * 100.0).round()),
        }
    }

    /// Decides whether `target` is faulty relative to `ideal`.
    ///
    /// # Panics
    ///
    /// Panics if the response sets cover different patterns/classes, or a
    /// top-5 criterion is evaluated with fewer than 5 classes.
    pub fn detects(&self, ideal: &ResponseSet, target: &ResponseSet) -> bool {
        assert_eq!(ideal.len(), target.len(), "response sets must cover the same patterns");
        match self {
            SdcCriterion::Sdc1 => {
                (0..ideal.len()).any(|p| ideal.top1(p) != target.top1(p))
            }
            SdcCriterion::Sdc5 => {
                assert!(ideal.classes() >= 5, "SDC-5 needs at least 5 classes");
                (0..ideal.len()).any(|p| ideal.topk_set(p, 5) != target.topk_set(p, 5))
            }
            SdcCriterion::SdcT { threshold } => {
                ConfidenceDistance::between(ideal, target).top_ranked > *threshold
            }
            SdcCriterion::SdcA { threshold } => {
                ConfidenceDistance::between(ideal, target).all_classes > *threshold
            }
        }
    }

    /// Whether the criterion depends on the top-ranked class. The paper
    /// omits SDC-1/5/T results for O-TP (Table III dashes) because O-TP's
    /// patterns are built to have *no* meaningful top class on the clean
    /// model.
    pub fn uses_top_class(&self) -> bool {
        matches!(self, SdcCriterion::Sdc1 | SdcCriterion::Sdc5 | SdcCriterion::SdcT { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_tensor::Tensor;

    fn set(rows: &[&[f32]]) -> ResponseSet {
        let tensors: Vec<Tensor> = rows.iter().map(|r| Tensor::from_slice(r)).collect();
        ResponseSet::from_logits(Tensor::stack_rows(&tensors))
    }

    fn ten(vals: [f32; 10]) -> Vec<f32> {
        vals.to_vec()
    }

    #[test]
    fn sdc1_detects_top_class_flip() {
        let ideal = set(&[&[2.0, 0.0, 1.0]]);
        let same = set(&[&[1.9, 0.1, 1.0]]);
        let flipped = set(&[&[0.0, 2.0, 1.0]]);
        assert!(!SdcCriterion::Sdc1.detects(&ideal, &same));
        assert!(SdcCriterion::Sdc1.detects(&ideal, &flipped));
    }

    #[test]
    fn sdc1_any_pattern_triggers() {
        let ideal = set(&[&[2.0, 0.0], &[0.0, 2.0]]);
        let one_flip = set(&[&[2.0, 0.0], &[2.0, 0.0]]);
        assert!(SdcCriterion::Sdc1.detects(&ideal, &one_flip));
    }

    #[test]
    fn sdc5_ignores_order_within_top5() {
        let a = ten([9.0, 8.0, 7.0, 6.0, 5.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        // Same membership, different internal order.
        let b = ten([5.0, 6.0, 7.0, 8.0, 9.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        // Membership changed: class 5 replaces class 0.
        let c = ten([0.0, 8.0, 7.0, 6.0, 5.0, 9.0, 0.0, 0.0, 0.0, 0.0]);
        let ideal = set(&[&a]);
        assert!(!SdcCriterion::Sdc5.detects(&ideal, &set(&[&b])));
        assert!(SdcCriterion::Sdc5.detects(&ideal, &set(&[&c])));
    }

    #[test]
    fn sdc_t_threshold_behaviour() {
        let ideal = set(&[&[3.0, 0.0]]);
        let slight = set(&[&[2.7, 0.0]]);
        let strong = set(&[&[0.5, 0.0]]);
        let crit = SdcCriterion::SdcT { threshold: 0.05 };
        assert!(!crit.detects(&ideal, &slight));
        assert!(crit.detects(&ideal, &strong));
    }

    #[test]
    fn sdc_a_threshold_behaviour() {
        let ideal = set(&[&[0.0, 0.0]]); // (0.5, 0.5)
        let slight = set(&[&[0.05, 0.0]]);
        let strong = set(&[&[2.0, 0.0]]);
        let crit = SdcCriterion::SdcA { threshold: 0.03 };
        assert!(!crit.detects(&ideal, &slight));
        assert!(crit.detects(&ideal, &strong));
    }

    #[test]
    fn identical_responses_never_detect() {
        let a = set(&[&ten([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0])]);
        for crit in SdcCriterion::paper_suite() {
            assert!(!crit.detects(&a, &a), "{} false positive", crit.label());
        }
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<String> =
            SdcCriterion::paper_suite().iter().map(|c| c.label()).collect();
        assert_eq!(labels, ["SDC-1", "SDC-5", "SDC-T5%", "SDC-T10%", "SDC-A3%", "SDC-A5%"]);
    }

    #[test]
    fn uses_top_class_classification() {
        assert!(SdcCriterion::Sdc1.uses_top_class());
        assert!(SdcCriterion::Sdc5.uses_top_class());
        assert!(SdcCriterion::SdcT { threshold: 0.05 }.uses_top_class());
        assert!(!SdcCriterion::SdcA { threshold: 0.03 }.uses_top_class());
    }
}
