//! The *autonomous* closed loop: **detect → diagnose → repair →
//! re-validate**, driven by [`healthmon::LifetimeRuntime`] instead of by
//! hand (see `repair_loop.rs` for the manual version of the same loop).
//!
//! A trained model is deployed onto simulated crossbars and aged for a
//! dozen epochs: conductances drift, soft errors flip weights, and stuck
//! cells arrive at random. The concurrent-test monitor runs a cheap
//! checkup every epoch; when the health state escalates past the trigger,
//! the runtime diagnoses the damaged layer and walks the repair ladder —
//! reprogram, spare columns, fault-aware retraining, graceful degradation
//! — re-validating after every attempt.
//!
//! Run with:
//! ```sh
//! cargo run --release -p healthmon --example lifetime
//! ```

use healthmon::{
    AgingModel, CtpGenerator, HealthState, LifetimeConfig, LifetimeRuntime, MonitorPolicy,
    TrainData,
};
use healthmon_data::{DatasetSpec, SynthDigits};
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::optim::Sgd;
use healthmon_nn::trainer::accuracy;
use healthmon_nn::{TrainConfig, Trainer};
use healthmon_tensor::SeededRng;

fn main() {
    // Train the golden model.
    let spec = DatasetSpec { train: 1500, test: 300, seed: 3, noise: 0.10 };
    let split = SynthDigits::new(spec).generate();
    let n_pixels = 28 * 28;
    let train_x = split.train.images.reshape(&[split.train.len(), n_pixels]).expect("flatten");
    let test_x = split.test.images.reshape(&[split.test.len(), n_pixels]).expect("flatten");
    let mut rng = SeededRng::new(1);
    let mut model = tiny_mlp(n_pixels, 64, 10, &mut rng);
    println!("training the golden model ...");
    let config = TrainConfig { epochs: 4, batch_size: 32, ..TrainConfig::default() };
    Trainer::new(&mut model, Sgd::new(0.1).momentum(0.9), config).fit(
        &train_x,
        &split.train.labels,
        None,
    );
    let golden_acc = accuracy(&mut model, &test_x, &split.test.labels, 64);
    println!("golden accuracy: {:.1}%\n", golden_acc * 100.0);

    // Concurrent-test patterns: C-TP corner data from the test pool.
    let pool = healthmon_data::Dataset::new(test_x.clone(), split.test.labels.clone(), 10);
    let patterns = CtpGenerator::new(12).select(&mut model, &pool);

    // A harsh lifetime: strong drift plus a steady trickle of stuck
    // cells, so the monitor escalates and repairs actually happen.
    let config = LifetimeConfig {
        seed: 2020,
        epochs: 12,
        aging: AgingModel {
            drift_nu: 0.20,
            drift_time: 1.0,
            soft_error_p: 1e-4,
            stuck_lambda: 2.0,
        },
        policy: MonitorPolicy { escalation_count: 1, ..MonitorPolicy::default() },
        trigger: HealthState::Watch,
        ..LifetimeConfig::default()
    };
    let train = TrainData { images: train_x.clone(), labels: split.train.labels.clone() };
    let mut lifetime = LifetimeRuntime::new(&model, patterns, config, Some(train));

    println!("running {} epochs of deployment ...\n", config.epochs);
    let final_state = lifetime.run(None);
    println!("{}", lifetime.render_report());

    // The loop is judged by what it preserves: end-of-life accuracy.
    let device_acc = accuracy(&mut lifetime.device().clone(), &test_x, &split.test.labels, 64);
    println!(
        "\nend of life: state {final_state:?}, accuracy {:.1}% (golden {:.1}%), \
         {} repair(s) spent, {} stuck cell(s) on the array",
        device_acc * 100.0,
        golden_acc * 100.0,
        lifetime.repairs_used(),
        lifetime.total_stuck(),
    );
}
