//! Factory functions for the evaluation models.
//!
//! * [`lenet5`] — the classic LeNet-5 topology for 28×28×1 digit images
//!   (LeCun et al., 1998), the model the paper trains on MNIST.
//! * [`convnet7`] — a 7-layer CNN (4 convolutional + 3 fully-connected
//!   layers) for 32×32×3 images, matching the paper's "ConvNet-7" for
//!   CIFAR10. The paper gives only the layer-count topology; channel widths
//!   here are chosen to train in reasonable time on CPU while keeping the
//!   4-conv + 3-fc structure.
//! * [`resnet8`], [`mlp4`], [`attention_net`] — the external-validity zoo:
//!   a residual CNN with identity skips, a pure 4-layer MLP, and a tiny
//!   single-head attention classifier. They exist so detectors and repair
//!   ladders are exercised across topologies rather than tuned to the two
//!   paper models; see [`crate::zoo`] for the registry that names them.

use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu, ResidualConv2d, SelfAttention};
use crate::Network;
use healthmon_tensor::SeededRng;

/// Number of classes in both evaluation problems.
pub const NUM_CLASSES: usize = 10;

/// Builds LeNet-5 for `[1, 28, 28]` inputs and 10 classes.
///
/// Topology: conv 6@5×5 (pad 2) → pool 2 → conv 16@5×5 → pool 2 →
/// fc 400→120 → fc 120→84 → fc 84→10, with ReLU activations.
///
/// # Example
///
/// ```
/// use healthmon_nn::models::lenet5;
/// use healthmon_tensor::{SeededRng, Tensor};
///
/// let mut rng = SeededRng::new(0);
/// let mut net = lenet5(&mut rng);
/// let logits = net.forward(&Tensor::zeros(&[1, 1, 28, 28]));
/// assert_eq!(logits.shape(), &[1, 10]);
/// ```
pub fn lenet5(rng: &mut SeededRng) -> Network {
    let mut net = Network::new(vec![1, 28, 28]);
    net.push(Conv2d::new(1, 6, 5, 1, 2, rng)); // 6 x 28 x 28
    net.push(Relu::new());
    net.push(MaxPool2d::new(2, 2)); // 6 x 14 x 14
    net.push(Conv2d::new(6, 16, 5, 1, 0, rng)); // 16 x 10 x 10
    net.push(Relu::new());
    net.push(MaxPool2d::new(2, 2)); // 16 x 5 x 5
    net.push(Flatten::new()); // 400
    net.push(Dense::new(400, 120, rng));
    net.push(Relu::new());
    net.push(Dense::new(120, 84, rng));
    net.push(Relu::new());
    net.push(Dense::new(84, NUM_CLASSES, rng));
    net
}

/// Builds ConvNet-7 (4 conv + 3 fc) for `[3, 32, 32]` inputs and 10
/// classes.
///
/// Topology: conv 16@3×3 → conv 16@3×3 → pool 2 → conv 32@3×3 →
/// conv 32@3×3 → pool 2 → fc 2048→128 → fc 128→64 → fc 64→10, with ReLU
/// activations.
pub fn convnet7(rng: &mut SeededRng) -> Network {
    let mut net = Network::new(vec![3, 32, 32]);
    net.push(Conv2d::new(3, 16, 3, 1, 1, rng)); // 16 x 32 x 32
    net.push(Relu::new());
    net.push(Conv2d::new(16, 16, 3, 1, 1, rng)); // 16 x 32 x 32
    net.push(Relu::new());
    net.push(MaxPool2d::new(2, 2)); // 16 x 16 x 16
    net.push(Conv2d::new(16, 32, 3, 1, 1, rng)); // 32 x 16 x 16
    net.push(Relu::new());
    net.push(Conv2d::new(32, 32, 3, 1, 1, rng)); // 32 x 16 x 16
    net.push(Relu::new());
    net.push(MaxPool2d::new(2, 2)); // 32 x 8 x 8
    net.push(Flatten::new()); // 2048
    net.push(Dense::new(2048, 128, rng));
    net.push(Relu::new());
    net.push(Dense::new(128, 64, rng));
    net.push(Relu::new());
    net.push(Dense::new(64, NUM_CLASSES, rng));
    net
}

/// Builds a deliberately tiny MLP for fast tests: `in → hidden → classes`
/// with one ReLU.
pub fn tiny_mlp(inputs: usize, hidden: usize, classes: usize, rng: &mut SeededRng) -> Network {
    let mut net = Network::new(vec![inputs]);
    net.push(Dense::new(inputs, hidden, rng));
    net.push(Relu::new());
    net.push(Dense::new(hidden, classes, rng));
    net
}

/// Builds ResNet-8, a residual CNN for `[3, 32, 32]` inputs and 10 classes.
///
/// Topology: conv 12@3×3 stem → pool 2 → residual block (12) → pool 2 →
/// residual block (12) → pool 2 → fc 192→64 → fc 64→10. Each
/// [`ResidualConv2d`] block carries two 3×3 convolutions plus an identity
/// skip, giving 8 weight-bearing layers in total and exercising composite
/// (multi-matmul) layers end to end.
pub fn resnet8(rng: &mut SeededRng) -> Network {
    let mut net = Network::new(vec![3, 32, 32]);
    net.push(Conv2d::new(3, 12, 3, 1, 1, rng)); // 12 x 32 x 32
    net.push(Relu::new());
    net.push(MaxPool2d::new(2, 2)); // 12 x 16 x 16
    net.push(ResidualConv2d::new(12, rng)); // 12 x 16 x 16
    net.push(MaxPool2d::new(2, 2)); // 12 x 8 x 8
    net.push(ResidualConv2d::new(12, rng)); // 12 x 8 x 8
    net.push(MaxPool2d::new(2, 2)); // 12 x 4 x 4
    net.push(Flatten::new()); // 192
    net.push(Dense::new(192, 64, rng));
    net.push(Relu::new());
    net.push(Dense::new(64, NUM_CLASSES, rng));
    net
}

/// Builds MLP-4, a pure fully-connected stack for flattened `[784]` digit
/// images and 10 classes: 784→256→128→64→10 with ReLU between layers.
///
/// No convolutions, no weight sharing — the all-[`MatmulOrientation::XW`]
/// counterpoint to the CNNs in the zoo.
///
/// [`MatmulOrientation::XW`]: crate::MatmulOrientation::XW
pub fn mlp4(rng: &mut SeededRng) -> Network {
    let mut net = Network::new(vec![784]);
    net.push(Dense::new(784, 256, rng));
    net.push(Relu::new());
    net.push(Dense::new(256, 128, rng));
    net.push(Relu::new());
    net.push(Dense::new(128, 64, rng));
    net.push(Relu::new());
    net.push(Dense::new(64, NUM_CLASSES, rng));
    net
}

/// Builds the attention classifier for `[28, 28]` digit inputs (28 tokens
/// of width 28) and 10 classes: a single-head [`SelfAttention`] block with
/// residual skip, flattened and classified by fc 784→64 → fc 64→10.
pub fn attention_net(rng: &mut SeededRng) -> Network {
    let mut net = Network::new(vec![28, 28]);
    net.push(SelfAttention::new(28, rng));
    net.push(Flatten::new()); // 784
    net.push(Dense::new(784, 64, rng));
    net.push(Relu::new());
    net.push(Dense::new(64, NUM_CLASSES, rng));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_tensor::Tensor;

    #[test]
    fn lenet5_shapes_and_size() {
        let mut rng = SeededRng::new(0);
        let mut net = lenet5(&mut rng);
        let logits = net.forward(&Tensor::zeros(&[2, 1, 28, 28]));
        assert_eq!(logits.shape(), &[2, 10]);
        // Classic LeNet-5 parameter count with this layout:
        // conv1 6*25+6=156, conv2 16*150+16=2416,
        // fc1 400*120+120=48120, fc2 120*84+84=10164, fc3 84*10+10=850
        assert_eq!(net.num_params(), 156 + 2416 + 48120 + 10164 + 850);
    }

    #[test]
    fn convnet7_shapes_and_structure() {
        let mut rng = SeededRng::new(0);
        let mut net = convnet7(&mut rng);
        let logits = net.forward(&Tensor::zeros(&[1, 3, 32, 32]));
        assert_eq!(logits.shape(), &[1, 10]);
        // 4 conv + 3 dense = 7 parameterized layers.
        let conv_count = net.layers().iter().filter(|l| l.name() == "conv2d").count();
        let dense_count = net.layers().iter().filter(|l| l.name() == "dense").count();
        assert_eq!(conv_count, 4);
        assert_eq!(dense_count, 3);
    }

    #[test]
    fn lenet5_backward_reaches_input() {
        let mut rng = SeededRng::new(1);
        let mut net = lenet5(&mut rng);
        let x = Tensor::randn(&[1, 1, 28, 28], &mut rng);
        let out = net.forward(&x);
        let g = net.backward(&Tensor::ones(out.shape()));
        assert_eq!(g.shape(), x.shape());
        assert!(g.norm_l2() > 0.0, "input gradient must be non-trivial");
    }

    #[test]
    fn models_deterministic_from_seed() {
        let mut a = SeededRng::new(5);
        let mut b = SeededRng::new(5);
        assert_eq!(lenet5(&mut a).state_dict(), lenet5(&mut b).state_dict());
    }

    #[test]
    fn tiny_mlp_shape() {
        let mut rng = SeededRng::new(2);
        let mut net = tiny_mlp(8, 16, 4, &mut rng);
        assert_eq!(net.forward(&Tensor::zeros(&[3, 8])).shape(), &[3, 4]);
    }
}
