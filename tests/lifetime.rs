//! End-to-end lifetime runtime: a trained model deployed on simulated
//! crossbars, aged until the monitor escalates, repaired autonomously,
//! and resumed bit-identically from a mid-run checkpoint.

use healthmon::{
    AgingModel, CtpGenerator, HealthState, LifetimeConfig, LifetimeEvent, LifetimeRuntime,
    MonitorPolicy, SdcCriterion, TrainData,
};
use healthmon_data::{Dataset, DatasetSpec, SynthDigits};
use healthmon_faults::FaultModel;
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::optim::Sgd;
use healthmon_nn::trainer::accuracy;
use healthmon_nn::{Network, TrainConfig, Trainer};
use healthmon_reram::CrossbarConfig;
use healthmon_tensor::SeededRng;
use std::sync::OnceLock;

struct Fixture {
    net: Network,
    train: Dataset,
    test: Dataset,
}

fn fixture() -> &'static Fixture {
    static CACHE: OnceLock<Fixture> = OnceLock::new();
    CACHE.get_or_init(|| {
        let spec = DatasetSpec { train: 700, test: 200, seed: 12, noise: 0.1 };
        let raw = SynthDigits::new(spec).generate();
        let n_pixels = 28 * 28;
        let flat = |d: &Dataset| {
            Dataset::new(
                d.images.reshape(&[d.len(), n_pixels]).expect("flatten"),
                d.labels.clone(),
                10,
            )
        };
        let (train, test) = (flat(&raw.train), flat(&raw.test));
        let mut rng = SeededRng::new(2);
        let mut net = tiny_mlp(n_pixels, 40, 10, &mut rng);
        let config = TrainConfig { epochs: 3, batch_size: 32, ..TrainConfig::default() };
        Trainer::new(&mut net, Sgd::new(0.1).momentum(0.9), config).fit(
            &train.images,
            &train.labels,
            None,
        );
        Fixture { net, train, test }
    })
}

fn harsh_config() -> LifetimeConfig {
    LifetimeConfig {
        seed: 2020,
        epochs: 8,
        aging: AgingModel {
            drift_nu: 0.20,
            drift_time: 1.0,
            soft_error_p: 1e-4,
            stuck_lambda: 1.5,
        },
        policy: MonitorPolicy { escalation_count: 1, ..MonitorPolicy::default() },
        ..LifetimeConfig::default()
    }
}

fn train_data(f: &Fixture) -> TrainData {
    TrainData { images: f.train.images.clone(), labels: f.train.labels.clone() }
}

#[test]
fn aging_escalates_and_the_runtime_heals_itself() {
    let f = fixture();
    let mut golden = f.net.clone();
    let patterns = CtpGenerator::new(12).select(&mut golden, &f.test);
    let mut lifetime =
        LifetimeRuntime::new(&f.net, patterns, harsh_config(), Some(train_data(f)));

    let state = lifetime.run(None);
    assert_eq!(state, HealthState::Healthy, "the loop should heal this lifetime");
    assert!(!lifetime.is_parked());
    assert!(lifetime.incident().is_none());

    // The monitor escalated at least once and a repair succeeded.
    let healed = lifetime
        .events()
        .iter()
        .filter(|e| matches!(e, LifetimeEvent::RepairAttempted { success: true, .. }))
        .count();
    assert!(healed >= 1, "expected at least one successful autonomous repair");
    let diagnosed = lifetime
        .events()
        .iter()
        .any(|e| matches!(e, LifetimeEvent::Diagnosed { .. }));
    assert!(diagnosed, "repair sessions must be preceded by a diagnosis");

    // The loop is judged by what it preserves: held-out accuracy of the
    // end-of-life device stays close to the golden model's.
    let golden_acc = accuracy(&mut f.net.clone(), &f.test.images, &f.test.labels, 64);
    let device_acc =
        accuracy(&mut lifetime.device().clone(), &f.test.images, &f.test.labels, 64);
    assert!(
        device_acc >= golden_acc - 0.05,
        "end-of-life accuracy {device_acc} fell too far below golden {golden_acc}"
    );

    // ... and the concurrent test itself: the monitor's (possibly
    // degraded) detector must still catch fresh faults about as well as
    // the full pre-aging detector does.
    let crit = SdcCriterion::SdcT { threshold: 0.05 };
    let fault = FaultModel::ProgrammingVariation { sigma: 0.5 };
    let before =
        lifetime.monitor().detector().detection_rate(&f.net, &fault, 12, 99, crit);
    assert!(
        before >= 0.5,
        "the surviving detector lost its detection capability: rate {before}"
    );
}

#[test]
fn budget_exhaustion_parks_critical_with_a_complete_incident() {
    let f = fixture();
    let mut golden = f.net.clone();
    let patterns = CtpGenerator::new(8).select(&mut golden, &f.test);
    // Coarse 2-bit cells leave a quantization floor no repair can cross
    // with thresholds this tight, and there is no training data, so the
    // tiny budget drains and the runtime parks.
    let config = LifetimeConfig {
        seed: 7,
        epochs: 6,
        aging: AgingModel {
            drift_nu: 0.0,
            drift_time: 0.0,
            soft_error_p: 0.0,
            stuck_lambda: 0.0,
        },
        crossbar: CrossbarConfig { cell_bits: 2, ..CrossbarConfig::ideal() },
        policy: MonitorPolicy {
            watch_threshold: 1e-7,
            critical_threshold: 1e-6,
            escalation_count: 1,
        },
        repair_budget: 2,
        ..LifetimeConfig::default()
    };
    let mut lifetime = LifetimeRuntime::new(&f.net, patterns, config, None);

    let state = lifetime.run(None);
    assert_eq!(state, HealthState::Critical);
    assert!(lifetime.is_parked() && lifetime.is_finished());
    let incident = lifetime.incident().expect("a parked runtime carries an incident report");
    assert_eq!(incident.final_state, HealthState::Critical);
    assert_eq!(incident.repairs_attempted, 2);
    assert!(incident.reason.contains("budget exhausted"), "reason: {}", incident.reason);
    assert!(incident.final_distance.all_classes.is_finite());
    assert!(!incident.recommended_action.is_empty());
    let report = lifetime.render_report();
    assert!(report.contains("parked: repair budget exhausted"));
    // A finished lifetime is inert: run() returns without stepping.
    assert_eq!(lifetime.run(None), HealthState::Critical);
}

#[test]
fn kill_and_resume_is_bit_identical() {
    let f = fixture();
    let mut golden = f.net.clone();
    let patterns = CtpGenerator::new(12).select(&mut golden, &f.test);
    let config = harsh_config();

    // The uninterrupted reference lifetime.
    let mut straight =
        LifetimeRuntime::new(&f.net, patterns.clone(), config, Some(train_data(f)));
    straight.run(None);

    // The same lifetime killed after three epochs and resumed from its
    // checkpoint.
    let mut first_half =
        LifetimeRuntime::new(&f.net, patterns.clone(), config, Some(train_data(f)));
    first_half.run(Some(3));
    assert!(!first_half.is_finished(), "the kill must land mid-lifetime");
    let checkpoint = first_half.checkpoint_json();
    drop(first_half);

    let mut resumed =
        LifetimeRuntime::resume(&f.net, patterns, config, Some(train_data(f)), &checkpoint)
            .expect("checkpoint written by the same inputs must resume");
    assert_eq!(resumed.epoch(), 3);
    resumed.run(None);

    // Bit-identical history, report and device weights.
    assert_eq!(straight.state(), resumed.state());
    assert_eq!(straight.events().len(), resumed.events().len());
    for (a, b) in straight.events().iter().zip(resumed.events().iter()) {
        assert_eq!(a.describe(), b.describe());
    }
    assert_eq!(straight.render_report(), resumed.render_report());
    assert_eq!(straight.checkpoint_json(), resumed.checkpoint_json());
    let (sd, rd) = (straight.device().state_dict(), resumed.device().state_dict());
    for ((ka, ta), (kb, tb)) in sd.iter().zip(rd.iter()) {
        assert_eq!(ka, kb);
        let (a_bits, b_bits): (Vec<u32>, Vec<u32>) = (
            ta.as_slice().iter().map(|v| v.to_bits()).collect(),
            tb.as_slice().iter().map(|v| v.to_bits()).collect(),
        );
        assert_eq!(a_bits, b_bits, "device weights diverged in {ka}");
    }
}
