//! Online soft-error tolerance: 2-D XOR checksum parity over crossbar
//! planes.
//!
//! Following the online-ECC schemes proposed for ReRAM crossbars, each
//! conductance plane is guarded by spare checksum columns: one XOR word
//! per physical row (the "checksum column" programmed alongside the
//! weights) and one per physical column (the periphery's running column
//! digest). A transient conductance flip perturbs exactly one row word
//! and one column word; matching the two syndromes locates the cell and
//! XOR-ing the row syndrome back into it restores the *exact* original
//! bit pattern — correction is bitwise, with no epsilon anywhere.
//!
//! The scheme is deliberately built over raw `f32` bit patterns rather
//! than arithmetic sums so that detection and correction are
//! deterministic and byte-identical at any `HEALTHMON_THREADS`, matching
//! the workspace determinism contract.
//!
//! Multi-flip behaviour: any number of flips in distinct rows *and*
//! distinct columns with distinct deltas is corrected; collisions (two
//! flips sharing a row or a column, or identical bit deltas in separate
//! rows) are *detected* but left for the regular checkup/repair path and
//! reported as uncorrectable.

use healthmon_telemetry as tel;

// Scrub outcomes are a pure function of the guarded data, so all parity
// telemetry is Stable: bit-identical at any HEALTHMON_THREADS.
static PARITY_SCRUBS: tel::Counter =
    tel::Counter::new("reram.parity.scrubs", tel::Stability::Stable);
static PARITY_CORRECTED: tel::Counter =
    tel::Counter::new("reram.parity.cells_corrected", tel::Stability::Stable);
static PARITY_UNCORRECTABLE: tel::Counter =
    tel::Counter::new("reram.parity.uncorrectable", tel::Stability::Stable);

/// Result of one parity scrub over a guarded plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScrubOutcome {
    /// Cells whose original bit pattern was restored exactly.
    pub corrected: usize,
    /// Lower-bound estimate of corrupted cells the parity detected but
    /// could not locate unambiguously (left for the checkup path).
    pub uncorrectable: usize,
}

impl ScrubOutcome {
    /// Accumulates another outcome into this one (tile aggregation).
    pub fn merge(&mut self, other: ScrubOutcome) {
        self.corrected += other.corrected;
        self.uncorrectable += other.uncorrectable;
    }

    /// Whether the scrub found anything at all (corrected or not).
    pub fn any(&self) -> bool {
        self.corrected > 0 || self.uncorrectable > 0
    }
}

/// XOR checksum state guarding one row-major `rows × cols` plane of
/// `f32` values (a conductance plane or a digital weight matrix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityCheck {
    rows: usize,
    cols: usize,
    /// XOR of the bit patterns across each row (the spare checksum
    /// column programmed alongside the weights).
    row_words: Vec<u32>,
    /// XOR of the bit patterns down each column (the periphery digest).
    col_words: Vec<u32>,
}

impl ParityCheck {
    /// Captures checksums over `data`, which must hold `rows * cols`
    /// row-major values.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn capture(rows: usize, cols: usize, data: &[f32]) -> Self {
        assert!(rows > 0 && cols > 0, "parity plane must be non-empty");
        assert_eq!(data.len(), rows * cols, "parity plane shape mismatch");
        let mut check = ParityCheck {
            rows,
            cols,
            row_words: vec![0; rows],
            col_words: vec![0; cols],
        };
        check.refresh(data);
        check
    }

    /// Guarded plane dimensions `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The per-row checksum words.
    pub fn row_words(&self) -> &[u32] {
        &self.row_words
    }

    /// The per-column checksum words.
    pub fn col_words(&self) -> &[u32] {
        &self.col_words
    }

    /// Rebuilds a check from stored words (checkpoint restore path).
    ///
    /// # Panics
    ///
    /// Panics if the word counts disagree with the dimensions.
    pub fn from_words(rows: usize, cols: usize, row_words: Vec<u32>, col_words: Vec<u32>) -> Self {
        assert!(rows > 0 && cols > 0, "parity plane must be non-empty");
        assert_eq!(row_words.len(), rows, "row checksum count mismatch");
        assert_eq!(col_words.len(), cols, "column checksum count mismatch");
        ParityCheck { rows, cols, row_words, col_words }
    }

    /// Re-baselines the checksums to the current plane contents — the
    /// scrubber's acknowledgement of a legitimate write or of slow,
    /// expected aging (drift) that the checkup path owns.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` disagrees with the guarded shape.
    pub fn refresh(&mut self, data: &[f32]) {
        assert_eq!(data.len(), self.rows * self.cols, "parity plane shape mismatch");
        self.row_words.iter_mut().for_each(|w| *w = 0);
        self.col_words.iter_mut().for_each(|w| *w = 0);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let bits = data[r * self.cols + c].to_bits();
                self.row_words[r] ^= bits;
                self.col_words[c] ^= bits;
            }
        }
    }

    /// Whether the plane currently matches the stored checksums.
    pub fn verify(&self, data: &[f32]) -> bool {
        let (row_syn, col_syn) = self.syndromes(data);
        row_syn.iter().all(|&s| s == 0) && col_syn.iter().all(|&s| s == 0)
    }

    /// Row and column syndromes: XOR of the stored checksum with the
    /// current plane digest (zero everywhere when clean).
    fn syndromes(&self, data: &[f32]) -> (Vec<u32>, Vec<u32>) {
        assert_eq!(data.len(), self.rows * self.cols, "parity plane shape mismatch");
        let mut row_syn = self.row_words.clone();
        let mut col_syn = self.col_words.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                let bits = data[r * self.cols + c].to_bits();
                row_syn[r] ^= bits;
                col_syn[c] ^= bits;
            }
        }
        (row_syn, col_syn)
    }

    /// Detects and corrects transient flips in `data` against the stored
    /// checksums.
    ///
    /// A cell at the unique intersection of one non-zero row syndrome and
    /// one equal column syndrome is restored bitwise (`bits ^ syndrome`);
    /// everything else that fails parity is reported as uncorrectable and
    /// left untouched for the regular checkup/repair path. The stored
    /// checksums themselves are never modified — the baseline stands
    /// until [`ParityCheck::refresh`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` disagrees with the guarded shape.
    pub fn scrub(&self, data: &mut [f32]) -> ScrubOutcome {
        let (row_syn, col_syn) = self.syndromes(data);
        let bad_rows: Vec<usize> = (0..self.rows).filter(|&r| row_syn[r] != 0).collect();
        let bad_cols: Vec<usize> = (0..self.cols).filter(|&c| col_syn[c] != 0).collect();
        PARITY_SCRUBS.inc();
        if bad_rows.is_empty() && bad_cols.is_empty() {
            return ScrubOutcome::default();
        }
        let mut col_used = vec![false; bad_cols.len()];
        let mut corrected = 0usize;
        let mut unmatched_rows = 0usize;
        for &r in &bad_rows {
            // The flip must live where the row and column deltas agree;
            // a unique agreement locates it exactly.
            let mut hit: Option<usize> = None;
            let mut ambiguous = false;
            for (i, &c) in bad_cols.iter().enumerate() {
                if !col_used[i] && col_syn[c] == row_syn[r] {
                    if hit.is_some() {
                        ambiguous = true;
                        break;
                    }
                    hit = Some(i);
                }
            }
            match hit {
                Some(i) if !ambiguous => {
                    let c = bad_cols[i];
                    let idx = r * self.cols + c;
                    data[idx] = f32::from_bits(data[idx].to_bits() ^ row_syn[r]);
                    col_used[i] = true;
                    corrected += 1;
                }
                _ => unmatched_rows += 1,
            }
        }
        let unmatched_cols = col_used.iter().filter(|&&u| !u).count();
        let outcome = ScrubOutcome {
            corrected,
            // Each surviving bad row and bad column holds at least one
            // corrupted cell; max() avoids double-counting a cell seen
            // from both axes.
            uncorrectable: unmatched_rows.max(unmatched_cols),
        };
        PARITY_CORRECTED.add(outcome.corrected as u64);
        PARITY_UNCORRECTABLE.add(outcome.uncorrectable as u64);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_tensor::{SeededRng, Tensor};

    fn plane(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
        let mut rng = SeededRng::new(seed);
        Tensor::randn(&[rows, cols], &mut rng).into_vec()
    }

    #[test]
    fn clean_plane_verifies_and_scrubs_to_nothing() {
        let data = plane(6, 5, 1);
        let check = ParityCheck::capture(6, 5, &data);
        assert!(check.verify(&data));
        let mut copy = data.clone();
        assert_eq!(check.scrub(&mut copy), ScrubOutcome::default());
        assert_eq!(copy, data);
    }

    #[test]
    fn single_flip_is_restored_bitwise() {
        let data = plane(8, 7, 2);
        let check = ParityCheck::capture(8, 7, &data);
        let mut hit = data.clone();
        hit[3 * 7 + 4] = -123.456;
        assert!(!check.verify(&hit));
        let outcome = check.scrub(&mut hit);
        assert_eq!(outcome, ScrubOutcome { corrected: 1, uncorrectable: 0 });
        for (a, b) in hit.iter().zip(&data) {
            assert_eq!(a.to_bits(), b.to_bits(), "restore must be bitwise exact");
        }
    }

    #[test]
    fn distinct_row_col_flips_all_corrected() {
        let data = plane(10, 9, 3);
        let check = ParityCheck::capture(10, 9, &data);
        let mut hit = data.clone();
        for &(r, c, v) in &[(0usize, 0usize, 4.5f32), (4, 6, -0.125), (9, 2, 1e-20)] {
            hit[r * 9 + c] = v;
        }
        let outcome = check.scrub(&mut hit);
        assert_eq!(outcome, ScrubOutcome { corrected: 3, uncorrectable: 0 });
        assert!(check.verify(&hit));
    }

    #[test]
    fn same_row_collision_is_detected_not_miscorrected() {
        let data = plane(6, 6, 4);
        let check = ParityCheck::capture(6, 6, &data);
        let mut hit = data.clone();
        hit[2 * 6 + 1] = 7.0;
        hit[2 * 6 + 5] = -7.0;
        let before = hit.clone();
        let outcome = check.scrub(&mut hit);
        assert_eq!(outcome.corrected, 0, "ambiguous flips must not be touched");
        assert!(outcome.uncorrectable >= 1);
        assert_eq!(hit, before, "uncorrectable cells must be left untouched");
    }

    #[test]
    fn identical_delta_in_two_rows_is_ambiguous() {
        let data = plane(5, 5, 5);
        let check = ParityCheck::capture(5, 5, &data);
        let mut hit = data.clone();
        // Same XOR delta applied at (1,2) and (3,4): four equal syndromes.
        let delta = 0x0040_0000u32;
        hit[5 + 2] = f32::from_bits(hit[5 + 2].to_bits() ^ delta);
        hit[3 * 5 + 4] = f32::from_bits(hit[3 * 5 + 4].to_bits() ^ delta);
        let before = hit.clone();
        let outcome = check.scrub(&mut hit);
        assert_eq!(outcome.corrected, 0);
        assert_eq!(outcome.uncorrectable, 2);
        assert_eq!(hit, before);
    }

    #[test]
    fn refresh_rebaselines_after_writes() {
        let mut data = plane(4, 4, 6);
        let mut check = ParityCheck::capture(4, 4, &data);
        data[5] = 0.75; // legitimate write
        assert!(!check.verify(&data));
        check.refresh(&data);
        assert!(check.verify(&data));
    }

    #[test]
    fn words_round_trip_through_from_words() {
        let data = plane(3, 8, 7);
        let check = ParityCheck::capture(3, 8, &data);
        let rebuilt = ParityCheck::from_words(
            3,
            8,
            check.row_words().to_vec(),
            check.col_words().to_vec(),
        );
        assert_eq!(check, rebuilt);
        assert!(rebuilt.verify(&data));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn rejects_wrong_plane_size() {
        ParityCheck::capture(2, 2, &[0.0; 5]);
    }
}
