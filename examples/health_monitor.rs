//! In-field health monitoring: the paper's deployment scenario.
//!
//! A ReRAM accelerator runs inference for weeks while its conductances
//! drift and occasional soft errors accumulate. A tiny O-TP pattern set
//! (one pattern per class) is executed periodically; the
//! [`healthmon::HealthMonitor`] state machine triages the confidence
//! distance into health states and repair actions — exactly the triage
//! the paper motivates (remapping is cheap, cloud retraining is
//! expensive, so knowing *how* faulty the device is matters).
//!
//! Run with:
//! ```sh
//! cargo run --release -p healthmon --example health_monitor
//! ```

use healthmon::{Detector, HealthMonitor, HealthState, MonitorPolicy, OtpGenerator};
use healthmon_data::{DatasetSpec, SynthDigits};
use healthmon_faults::{FaultCampaign, FaultModel};
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::optim::Sgd;
use healthmon_nn::{TrainConfig, Trainer};
use healthmon_tensor::SeededRng;

fn main() {
    // Train a compact model (flattened digits through an MLP keeps this
    // example fast; the flow is identical for CNNs).
    let spec = DatasetSpec { train: 1500, test: 300, seed: 3, noise: 0.10 };
    let split = SynthDigits::new(spec).generate();
    let n_pixels = 28 * 28;
    let flat_train = split.train.images.reshape(&[split.train.len(), n_pixels]).expect("flatten");
    let flat_test = split.test.images.reshape(&[split.test.len(), n_pixels]).expect("flatten");

    let mut rng = SeededRng::new(1);
    let mut model = tiny_mlp(n_pixels, 64, 10, &mut rng);
    println!("training the edge model ...");
    let config = TrainConfig { epochs: 4, batch_size: 32, ..TrainConfig::default() };
    let report = Trainer::new(&mut model, Sgd::new(0.1).momentum(0.9), config).fit(
        &flat_train,
        &split.train.labels,
        Some((&flat_test, &split.test.labels)),
    );
    println!("deployed model accuracy: {:.1}%", report.test_accuracy.expect("test") * 100.0);

    // Generate the O-TP monitoring set at the cloud: 10 patterns total.
    let reference =
        FaultCampaign::new(&model, 99).model(&FaultModel::ProgrammingVariation { sigma: 0.3 }, 0);
    let (patterns, outcomes) =
        OtpGenerator::new().generate(&model, &reference, &mut SeededRng::new(5));
    println!(
        "generated {} O-TP patterns ({} fully converged)\n",
        patterns.len(),
        outcomes.iter().filter(|o| o.converged).count()
    );
    let detector = Detector::new(&model, patterns);
    let policy = MonitorPolicy { watch_threshold: 0.02, critical_threshold: 0.06, escalation_count: 1 };
    let mut monitor = HealthMonitor::new(detector, policy);

    // Simulate 8 weeks in the field: drift accumulates weekly, plus a
    // burst of soft errors in week 6 (e.g. a thermal event).
    let mut accelerator = model.clone();
    let mut field_rng = SeededRng::new(7);
    println!("week | conf. distance | accuracy | status (action)");
    println!("-----+----------------+----------+--------------------------------------------");
    for week in 1..=8u32 {
        FaultModel::Drift { nu: 0.02, time: 1.0 }.apply(&mut accelerator, &mut field_rng);
        if week == 6 {
            FaultModel::RandomSoftError { probability: 0.01 }
                .apply(&mut accelerator, &mut field_rng);
        }
        let checkup = monitor.check(&accelerator);
        let acc = healthmon_nn::trainer::accuracy(
            &mut accelerator,
            &flat_test,
            &split.test.labels,
            64,
        );
        println!(
            "{week:>4} | {:>14.4} | {:>7.1}% | {:?} ({})",
            checkup.distance.all_classes,
            acc * 100.0,
            checkup.state,
            checkup.state.recommended_action(),
        );
        // The paper's repair loop: at CRITICAL the golden weights are
        // reprogrammed and the monitor is told about the repair.
        if checkup.state == HealthState::Critical {
            accelerator = model.clone();
            monitor.acknowledge_repair();
            println!("     |                |          | -> accelerator repaired (weights reprogrammed)");
        }
    }
    println!("\nmonitoring log kept {} checkups", monitor.history().len());
}
