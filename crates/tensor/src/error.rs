use std::error::Error;
use std::fmt;

/// Error type for fallible tensor construction and reshaping.
///
/// Most element-wise tensor operations in this crate panic on shape
/// mismatch (like indexing out of bounds, a shape mismatch is a programming
/// error, not a recoverable condition); the fallible constructors such as
/// [`crate::Tensor::from_vec`] return this error instead so callers building
/// tensors from external data can recover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of provided elements does not match the product of the
    /// requested shape dimensions.
    LengthMismatch {
        /// Number of elements the shape requires.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A reshape was requested whose element count differs from the tensor's.
    ReshapeMismatch {
        /// Source shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// A shape with zero dimensions was supplied where a non-scalar shape is
    /// required.
    EmptyShape,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "shape requires {expected} elements but {actual} were provided")
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(f, "cannot reshape tensor of shape {from:?} into {to:?}")
            }
            TensorError::EmptyShape => write!(f, "shape must have at least one dimension"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let err = TensorError::LengthMismatch { expected: 6, actual: 5 };
        assert_eq!(err.to_string(), "shape requires 6 elements but 5 were provided");
    }

    #[test]
    fn display_reshape_mismatch() {
        let err = TensorError::ReshapeMismatch { from: vec![2, 3], to: vec![4, 2] };
        assert!(err.to_string().contains("[2, 3]"));
        assert!(err.to_string().contains("[4, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
