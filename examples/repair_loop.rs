//! The full closed loop the paper motivates: **detect → triage →
//! repair → verify** — driven *by hand*, one decision at a time. The
//! autonomous counterpart, where [`healthmon::LifetimeRuntime`] makes
//! the same decisions over a multi-epoch aging simulation, is the
//! `lifetime` example (`examples/lifetime.rs`).
//!
//! A trained model is deployed; stuck-at defects accumulate on its first
//! (largest) crossbar-mapped layer. The concurrent-test detector grades
//! the damage, and the matching repair from the hierarchy is applied:
//! fault-aware row remapping for mild damage, fault-aware retraining for
//! severe damage. After each repair the detector verifies the fix.
//!
//! Run with:
//! ```sh
//! cargo run --release -p healthmon --example repair_loop
//! ```

use healthmon::{CtpGenerator, Detector, HealthState, MonitorPolicy};
use healthmon_data::{DatasetSpec, SynthDigits};
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::optim::Sgd;
use healthmon_nn::trainer::accuracy;
use healthmon_nn::{Network, TrainConfig, Trainer};
use healthmon_repair::{remap_rows, retrain_with_faults, DefectMap, FaultyRetrainConfig};
use healthmon_tensor::{SeededRng, Tensor};

const LAYER: &str = "layer0.weight";

fn first_layer_weights(net: &Network) -> Tensor {
    let mut out = None;
    net.for_each_param(|key, t| {
        if key == LAYER {
            out = Some(t.clone());
        }
    });
    out.expect("model has a first dense layer")
}

fn set_first_layer(net: &mut Network, weights: &Tensor) {
    net.for_each_param_mut(|key, t| {
        if key == LAYER {
            *t = weights.clone();
        }
    });
}

fn main() {
    // Train the golden model.
    let spec = DatasetSpec { train: 1500, test: 300, seed: 3, noise: 0.10 };
    let split = SynthDigits::new(spec).generate();
    let n_pixels = 28 * 28;
    let train_x = split.train.images.reshape(&[split.train.len(), n_pixels]).expect("flatten");
    let test_x = split.test.images.reshape(&[split.test.len(), n_pixels]).expect("flatten");
    let mut rng = SeededRng::new(1);
    let mut model = tiny_mlp(n_pixels, 64, 10, &mut rng);
    println!("training the golden model ...");
    let config = TrainConfig { epochs: 4, batch_size: 32, ..TrainConfig::default() };
    Trainer::new(&mut model, Sgd::new(0.1).momentum(0.9), config).fit(
        &train_x,
        &split.train.labels,
        None,
    );
    let golden_acc = accuracy(&mut model, &test_x, &split.test.labels, 64);
    println!("golden accuracy: {:.1}%\n", golden_acc * 100.0);

    // Concurrent-test detector (C-TP patterns) + triage policy.
    let test_pool = healthmon_data::Dataset::new(test_x.clone(), split.test.labels.clone(), 10);
    let patterns = CtpGenerator::new(20).select(&mut model, &test_pool);
    let detector = Detector::new(&model, patterns);
    let policy = MonitorPolicy::default();
    let golden_w0 = first_layer_weights(&model);

    for (label, defect_rate) in [("mild endurance damage", 0.002), ("severe endurance damage", 0.04)] {
        println!("== scenario: {label} ({:.1}% stuck cells) ==", defect_rate * 100.0);
        let mut defect_rng = SeededRng::new(17);
        let defects = DefectMap::sample_for_matrix(&golden_w0, defect_rate, &mut defect_rng);
        println!("array test found {} stuck cells on {LAYER}", defects.len());

        // The damaged accelerator.
        let mut device = model.clone();
        set_first_layer(&mut device, &defects.apply(&golden_w0));
        let d = detector.confidence_distance(&device).all_classes;
        let acc = accuracy(&mut device, &test_x, &split.test.labels, 64);
        let state = if d >= policy.critical_threshold {
            HealthState::Critical
        } else if d >= policy.watch_threshold {
            HealthState::Watch
        } else {
            HealthState::Healthy
        };
        println!(
            "detected: distance {d:.4}, accuracy {:.1}% -> {state:?} ({})",
            acc * 100.0,
            state.recommended_action()
        );

        // Apply the matching repair.
        match state {
            HealthState::Healthy => println!("no repair needed"),
            HealthState::Watch => {
                let repair = remap_rows(&golden_w0, &defects);
                set_first_layer(&mut device, &repair.repaired_weights);
                println!(
                    "remapped rows: weight damage {:.3} -> {:.3} ({:.0}% recovered)",
                    repair.unrepaired_error,
                    repair.repaired_error,
                    repair.recovery() * 100.0
                );
            }
            HealthState::Critical => {
                // Remap first (free), then retrain around what remains.
                let repair = remap_rows(&golden_w0, &defects);
                set_first_layer(&mut device, &repair.repaired_weights);
                println!(
                    "remap recovered {:.0}%; retraining around the remaining defects ...",
                    repair.recovery() * 100.0
                );
                let outcome = retrain_with_faults(
                    &mut device,
                    &[(LAYER.to_owned(), defects.clone())],
                    &train_x,
                    &split.train.labels,
                    FaultyRetrainConfig::default(),
                );
                println!(
                    "retraining loss {:.4} -> {:.4}",
                    outcome.initial_loss, outcome.final_loss
                );
            }
        }

        // Verify with the same concurrent test.
        let d_after = detector.confidence_distance(&device).all_classes;
        let acc_after = accuracy(&mut device, &test_x, &split.test.labels, 64);
        println!(
            "verified: distance {d:.4} -> {d_after:.4}, accuracy {:.1}% -> {:.1}%\n",
            acc * 100.0,
            acc_after * 100.0
        );
    }
}
