//! Property-based tests for tensor algebra invariants.

use healthmon_tensor::{SeededRng, Tensor};
use proptest::prelude::*;

fn tensor_strategy(max_len: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-100.0f32..100.0, 1..=max_len)
        .prop_map(|v| Tensor::from_slice(&v))
}

fn tensor_pair_strategy(max_len: usize) -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..=max_len).prop_flat_map(|n| {
        (
            prop::collection::vec(-100.0f32..100.0, n),
            prop::collection::vec(-100.0f32..100.0, n),
        )
            .prop_map(|(a, b)| (Tensor::from_slice(&a), Tensor::from_slice(&b)))
    })
}

proptest! {
    #[test]
    fn add_commutes((a, b) in tensor_pair_strategy(64)) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_zero_is_identity(a in tensor_strategy(64)) {
        let z = Tensor::zeros(a.shape());
        prop_assert_eq!(&a + &z, a.clone());
    }

    #[test]
    fn sub_self_is_zero(a in tensor_strategy(64)) {
        let d = &a - &a;
        prop_assert!(d.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scale_distributes_over_add((a, b) in tensor_pair_strategy(32), s in -10.0f32..10.0) {
        let lhs = (&a + &b).scale(s);
        let rhs = &a.scale(s) + &b.scale(s);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-2 * (1.0 + x.abs().max(y.abs())));
        }
    }

    #[test]
    fn dot_is_symmetric((a, b) in tensor_pair_strategy(64)) {
        let d1 = a.dot(&b);
        let d2 = b.dot(&a);
        prop_assert!((d1 - d2).abs() <= 1e-3 * (1.0 + d1.abs()));
    }

    #[test]
    fn l1_distance_triangle_inequality(
        (a, b) in tensor_pair_strategy(32),
    ) {
        let z = Tensor::zeros(a.shape());
        let direct = a.l1_distance(&b);
        let via_zero = a.l1_distance(&z) + z.l1_distance(&b);
        prop_assert!(direct <= via_zero + 1e-3 * (1.0 + via_zero.abs()));
    }

    #[test]
    fn softmax_is_probability_vector(a in tensor_strategy(32)) {
        let s = a.softmax();
        prop_assert!(s.as_slice().iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        prop_assert!((s.sum() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn softmax_shift_invariant(a in tensor_strategy(16), c in -50.0f32..50.0) {
        let s1 = a.softmax();
        let s2 = a.shift(c).softmax();
        for (x, y) in s1.as_slice().iter().zip(s2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_preserves_ranking(a in tensor_strategy(16)) {
        let s = a.softmax();
        prop_assert_eq!(a.argmax(), s.argmax());
    }

    #[test]
    fn topk_descending(a in tensor_strategy(32)) {
        let k = a.len().min(5);
        let top = a.topk(k);
        for w in top.values.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        prop_assert_eq!(top.indices.len(), k);
    }

    #[test]
    fn std_nonnegative_and_zero_for_constants(v in -100.0f32..100.0, n in 1usize..32) {
        let t = Tensor::full(&[n], v);
        // Mean rounding can leave a tiny residual; the std of a constant
        // tensor must still be negligible relative to the magnitude.
        prop_assert!(t.std() <= 1e-4 * (1.0 + v.abs()));
    }

    #[test]
    fn reshape_round_trips(a in tensor_strategy(64)) {
        let n = a.len();
        let r = a.reshape(&[n]).unwrap();
        prop_assert_eq!(r.as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_associativity(seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b = Tensor::randn(&[4, 5], &mut rng);
        let c = Tensor::randn(&[5, 2], &mut rng);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_distributes_over_add(seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b1 = Tensor::randn(&[4, 5], &mut rng);
        let b2 = Tensor::randn(&[4, 5], &mut rng);
        let lhs = a.matmul(&(&b1 + &b2));
        let rhs = &a.matmul(&b1) + &a.matmul(&b2);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_involution(seed in 0u64..1000, m in 1usize..8, n in 1usize..8) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, n], &mut rng);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn lognormal_always_positive(seed in 0u64..500, sigma in 0.0f32..1.0) {
        let mut rng = SeededRng::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.lognormal(0.0, sigma) > 0.0);
        }
    }

    #[test]
    fn seeded_rng_reproducible(seed in 0u64..10_000) {
        let mut a = SeededRng::new(seed);
        let mut b = SeededRng::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.unit(), b.unit());
        }
    }
}
