//! Quickstart: the full concurrent-test flow in one file.
//!
//! 1. Train a small CNN on the synthetic digit dataset.
//! 2. Record golden responses on a C-TP pattern set.
//! 3. Simulate an accelerator accumulating programming variation.
//! 4. Report the fault status from just 10 test patterns.
//!
//! Run with:
//! ```sh
//! cargo run --release -p healthmon --example quickstart
//! ```

use healthmon::{CtpGenerator, Detector, SdcCriterion};
use healthmon_data::{DatasetSpec, SynthDigits};
use healthmon_faults::{FaultCampaign, FaultModel};
use healthmon_nn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use healthmon_nn::optim::Sgd;
use healthmon_nn::{Network, TrainConfig, Trainer};
use healthmon_tensor::SeededRng;

fn main() {
    // --- 1. Data and model -------------------------------------------------
    let spec = DatasetSpec { train: 1200, test: 300, seed: 7, noise: 0.10 };
    let split = SynthDigits::new(spec).generate();
    let mut rng = SeededRng::new(42);
    let mut model = Network::new(vec![1, 28, 28]);
    model.push(Conv2d::new(1, 4, 5, 1, 2, &mut rng));
    model.push(Relu::new());
    model.push(MaxPool2d::new(2, 2));
    model.push(Flatten::new());
    model.push(Dense::new(4 * 14 * 14, 32, &mut rng));
    model.push(Relu::new());
    model.push(Dense::new(32, 10, &mut rng));

    println!("training a small CNN on SynthDigits ...");
    let config = TrainConfig { epochs: 3, batch_size: 32, ..TrainConfig::default() };
    let report = Trainer::new(&mut model, Sgd::new(0.05).momentum(0.9), config).fit(
        &split.train.images,
        &split.train.labels,
        Some((&split.test.images, &split.test.labels)),
    );
    let golden_acc = report.test_accuracy.expect("test set provided");
    println!("golden model accuracy: {:.1}%", golden_acc * 100.0);

    // --- 2. Generate test patterns and record golden responses -------------
    let patterns = CtpGenerator::new(10).select(&mut model, &split.test);
    println!("selected {} C-TP corner-data patterns", patterns.len());
    let detector = Detector::new(&model, patterns);

    // --- 3. Simulate error accumulation on the accelerator -----------------
    let campaign = FaultCampaign::new(&model, 2020);
    for sigma in [0.05f32, 0.15, 0.3, 0.5] {
        let mut accelerator =
            campaign.model(&FaultModel::ProgrammingVariation { sigma }, 0);

        // --- 4. Concurrent test: 10 inferences, one verdict ----------------
        let d = detector.confidence_distance(&accelerator);
        let faulty = detector.is_faulty(
            &accelerator,
            SdcCriterion::SdcA { threshold: 0.03 },
        );
        let acc = healthmon_nn::trainer::accuracy(
            &mut accelerator,
            &split.test.images,
            &split.test.labels,
            64,
        );
        println!(
            "sigma {sigma:.2}: true accuracy {:>5.1}%, confidence distance {:.4} -> {}",
            acc * 100.0,
            d.all_classes,
            if faulty { "FAULTY (schedule repair)" } else { "healthy" }
        );
    }
}
