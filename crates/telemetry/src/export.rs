//! Live export: multi-snapshot JSONL streams and a std-only HTTP
//! endpoint serving the Prometheus text exposition.
//!
//! A long fleet run wants more than one end-of-run dump. This module
//! adds two delivery paths on top of the [`crate::sink`] renderers:
//!
//! * **Snapshot streams** — a JSONL file holding several
//!   [`MetricsSnapshot`]s, each introduced by a `{"kind":"snapshot"}`
//!   marker line carrying a sequence number, the virtual fleet epoch,
//!   and a small deterministic metadata map (fleet state histogram).
//!   The fleet CLI rewrites the stream atomically every epoch, keeping
//!   only the most recent frames — a rotating flight log that
//!   `healthmon metrics` and `healthmon top` can inspect mid-run.
//! * **[`MetricsServer`]** — a background thread on `std::net` that
//!   answers `GET /metrics` with [`crate::render_prometheus`] over a
//!   fresh [`crate::snapshot`]. No HTTP library, no framework: the
//!   request head is read, the path matched, a `Content-Length` response
//!   written. Purely observational like the rest of the crate.

use crate::metrics::MetricsSnapshot;
use crate::sink::{parse_jsonl, render_jsonl, render_prometheus};
use healthmon_serdes::{parse, Json, JsonError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One snapshot in a rotating stream: marker metadata plus the full
/// metrics snapshot recorded at that moment.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotFrame {
    /// Monotonic frame number within the stream.
    pub seq: u64,
    /// Label of the producer (e.g. `fleet`).
    pub label: String,
    /// Virtual epoch the frame was captured at.
    pub epoch: u64,
    /// Deterministic metadata (name → value), sorted by name; the fleet
    /// publishes its state histogram and incident tallies here.
    pub meta: Vec<(String, f64)>,
    /// The metrics snapshot itself.
    pub snap: MetricsSnapshot,
}

impl SnapshotFrame {
    /// Returns a metadata value by name, if present.
    pub fn meta_value(&self, name: &str) -> Option<f64> {
        self.meta.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }
}

fn marker_line(frame: &SnapshotFrame) -> Json {
    let meta = frame
        .meta
        .iter()
        .map(|(k, v)| (k.clone(), Json::Number(*v)))
        .collect();
    Json::Object(vec![
        ("kind".into(), Json::String("snapshot".into())),
        ("name".into(), Json::String(frame.label.clone())),
        ("stable".into(), Json::Bool(false)),
        ("seq".into(), Json::Number(frame.seq as f64)),
        ("epoch".into(), Json::Number(frame.epoch as f64)),
        ("meta".into(), Json::Object(meta)),
    ])
}

/// Renders one frame: the snapshot marker line followed by the ordinary
/// [`render_jsonl`] lines of its snapshot.
pub fn render_frame(frame: &SnapshotFrame) -> String {
    let mut out = marker_line(frame).render();
    out.push('\n');
    out.push_str(&render_jsonl(&frame.snap));
    out
}

/// Parses a snapshot stream produced by concatenating [`render_frame`]
/// outputs. A file with no `{"kind":"snapshot"}` marker (a plain
/// single-snapshot dump from `--metrics`) parses as one frame with
/// default metadata, so callers can treat both shapes uniformly.
///
/// # Errors
///
/// Returns a [`JsonError`] if a marker line is malformed or a body line
/// fails [`parse_jsonl`].
pub fn parse_stream(text: &str) -> Result<Vec<SnapshotFrame>, JsonError> {
    let mut frames: Vec<SnapshotFrame> = Vec::new();
    let mut head: Option<SnapshotFrame> = None;
    let mut body = String::new();
    let flush = |head: &mut Option<SnapshotFrame>,
                     body: &mut String,
                     frames: &mut Vec<SnapshotFrame>|
     -> Result<(), JsonError> {
        if head.is_none() && body.trim().is_empty() {
            return Ok(());
        }
        let mut frame = head.take().unwrap_or_else(|| SnapshotFrame {
            seq: 0,
            label: "snapshot".into(),
            epoch: 0,
            meta: Vec::new(),
            snap: MetricsSnapshot::default(),
        });
        frame.snap = parse_jsonl(body)?;
        body.clear();
        frames.push(frame);
        Ok(())
    };
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // Cheap pre-filter before paying for a parse of every line.
        let is_marker = trimmed.contains("\"kind\":\"snapshot\"") && {
            let v = parse(trimmed)?;
            v.field("kind")?.as_str()? == "snapshot"
        };
        if is_marker {
            flush(&mut head, &mut body, &mut frames)?;
            let v = parse(trimmed)?;
            let mut meta = Vec::new();
            if let Ok(Json::Object(fields)) = v.field("meta") {
                for (k, val) in fields {
                    meta.push((k.clone(), val.as_number()?));
                }
            }
            head = Some(SnapshotFrame {
                seq: v.field("seq")?.as_number()? as u64,
                label: v.field("name")?.as_str()?.to_string(),
                epoch: v.field("epoch")?.as_number()? as u64,
                meta,
                snap: MetricsSnapshot::default(),
            });
        } else {
            body.push_str(line);
            body.push('\n');
        }
    }
    flush(&mut head, &mut body, &mut frames)?;
    Ok(frames)
}

/// A background HTTP server exposing the live telemetry registry in
/// Prometheus text format.
///
/// Listens on the bound address until dropped; each `GET /metrics` (or
/// `GET /`) takes a fresh [`crate::snapshot`] and renders it. Any other
/// path answers 404. The server never mutates telemetry state, so
/// serving cannot perturb the run being observed.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`; port 0 picks a free port)
    /// and starts the accept loop on a background thread.
    ///
    /// # Errors
    ///
    /// Any I/O error from binding the listener.
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("healthmon-metrics".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // One request per connection; a broken client
                        // costs one handler pass, never the accept loop.
                        let _ = handle_connection(stream);
                    }
                }
            })?;
        Ok(MetricsServer { addr: local, stop, handle: Some(handle) })
    }

    /// The address actually bound (resolves port 0 to the chosen port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn handle_connection(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    // Read the request head only; this endpoint has no request bodies.
    let mut buf = [0u8; 2048];
    let mut head = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let request = String::from_utf8_lossy(&head);
    let path = request
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, body) = if path == "/metrics" || path == "/" {
        ("200 OK", render_prometheus(&crate::snapshot()))
    } else {
        ("404 Not Found", String::from("not found\n"))
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Counter, Stability};
    use crate::testlock;

    fn frame(seq: u64, epoch: u64) -> SnapshotFrame {
        SnapshotFrame {
            seq,
            label: "fleet".into(),
            epoch,
            meta: vec![("healthy".into(), 3.0), ("watch".into(), 1.0)],
            snap: crate::snapshot(),
        }
    }

    #[test]
    fn stream_round_trips_frames() {
        let _g = testlock::exclusive();
        static C: Counter = Counter::new("export.items", Stability::Stable);
        C.add(7);
        let mut text = String::new();
        text.push_str(&render_frame(&frame(0, 1)));
        C.add(1);
        text.push_str(&render_frame(&frame(1, 2)));
        let frames = parse_stream(&text).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].seq, 0);
        assert_eq!(frames[1].epoch, 2);
        assert_eq!(frames[0].meta_value("healthy"), Some(3.0));
        assert_eq!(frames[0].snap.counters[0].value, 7);
        assert_eq!(frames[1].snap.counters[0].value, 8);
    }

    #[test]
    fn plain_single_snapshot_parses_as_one_frame() {
        let _g = testlock::exclusive();
        static C: Counter = Counter::new("export.plain", Stability::Stable);
        C.inc();
        let text = render_jsonl(&crate::snapshot());
        let frames = parse_stream(&text).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].label, "snapshot");
        assert_eq!(frames[0].snap.counters[0].name, "export.plain");
    }

    #[test]
    fn server_serves_prometheus_text() {
        let _g = testlock::exclusive();
        static C: Counter = Counter::new("export.http", Stability::Stable);
        C.add(5);
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"));
        assert!(response.contains("healthmon_export_http 5"));
        // Unknown paths 404 without killing the accept loop.
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 404"));
        drop(server);
    }
}
