//! Behavioural ReRAM crossbar accelerator simulator.
//!
//! The paper's error models are *weight-space images* of device-level
//! phenomena in a resistive crossbar (imprecise conductance programming,
//! state flips, stuck cells, drift). This crate models the device layer
//! those images come from:
//!
//! * [`CrossbarConfig`] — array geometry and converter resolutions.
//! * [`Crossbar`] — one tile: differential-pair conductance storage
//!   (`G⁺ − G⁻`), DAC input quantization, analog dot-product along bit
//!   lines, ADC output quantization, plus device-fault injection
//!   (stuck-at cells, lognormal write noise, drift).
//! * [`TiledMatrix`] — an arbitrary weight matrix partitioned over tiles,
//!   with crossbar-backed `matvec`/`matmul`.
//! * [`deploy`] — programs every conductance-mapped parameter of a
//!   [`healthmon_nn::Network`] through a crossbar write/read-back cycle,
//!   returning the network as the accelerator would actually compute it.
//!   Because the analog MAC is linear in the conductances, the deployed
//!   network's ordinary forward pass is computationally equivalent to
//!   running every matmul through [`TiledMatrix`] (the DAC/ADC effects can
//!   be studied separately at the op level); this equivalence is what the
//!   integration tests verify.
//!
//! # Example
//!
//! ```
//! use healthmon_reram::{Crossbar, CrossbarConfig};
//! use healthmon_tensor::{SeededRng, Tensor};
//!
//! let config = CrossbarConfig::default();
//! let mut rng = SeededRng::new(1);
//! let w = Tensor::randn(&[8, 8], &mut rng);
//! let xbar = Crossbar::program(&w, &config, &mut rng);
//! let x = Tensor::randn(&[8], &mut rng);
//! let y = xbar.matvec(&x);
//! assert_eq!(y.shape(), &[8]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod bitslice;
mod config;
mod crossbar;
mod deploy;
mod irdrop;
mod parity;
mod quant;
mod tiled;

pub use backend::{ActiveBackend, AnalogBackend, BackendKind, BackendSpec, BitSlicedBackend};
pub use bitslice::BitSlicedMatrix;
pub use config::CrossbarConfig;
pub use crossbar::{CellFault, Crossbar};
pub use deploy::{deploy, DeployReport, LayerMapping};
pub use irdrop::IrDropModel;
pub use parity::{ParityCheck, ScrubOutcome};
pub use quant::Quantizer;
pub use tiled::TiledMatrix;
