//! Integration of the repair hierarchy with detection: damaged models are
//! flagged, repairs restore health, and the detector verifies the fix.

use healthmon::{CtpGenerator, Detector, SdcCriterion};
use healthmon_data::{Dataset, DatasetSpec, SynthDigits};
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::optim::Sgd;
use healthmon_nn::trainer::accuracy;
use healthmon_nn::{Network, TrainConfig, Trainer};
use healthmon_repair::{
    remap_rows, repair_with_spares, retrain_with_faults, DefectMap, FaultyRetrainConfig,
};
use healthmon_tensor::{SeededRng, Tensor};
use std::sync::OnceLock;

const LAYER: &str = "layer0.weight";

struct Fixture {
    net: Network,
    train: Dataset,
    test: Dataset,
}

fn fixture() -> &'static Fixture {
    static CACHE: OnceLock<Fixture> = OnceLock::new();
    CACHE.get_or_init(|| {
        let spec = DatasetSpec { train: 800, test: 240, seed: 9, noise: 0.1 };
        let raw = SynthDigits::new(spec).generate();
        let n_pixels = 28 * 28;
        let flat = |d: &Dataset| {
            Dataset::new(
                d.images.reshape(&[d.len(), n_pixels]).expect("flatten"),
                d.labels.clone(),
                10,
            )
        };
        let (train, test) = (flat(&raw.train), flat(&raw.test));
        let mut rng = SeededRng::new(1);
        let mut net = tiny_mlp(n_pixels, 48, 10, &mut rng);
        let config = TrainConfig { epochs: 4, batch_size: 32, ..TrainConfig::default() };
        Trainer::new(&mut net, Sgd::new(0.1).momentum(0.9), config).fit(
            &train.images,
            &train.labels,
            None,
        );
        Fixture { net, train, test }
    })
}

fn layer_weights(net: &Network) -> Tensor {
    let mut out = None;
    net.for_each_param(|key, t| {
        if key == LAYER {
            out = Some(t.clone());
        }
    });
    out.expect("first layer present")
}

fn with_layer(net: &Network, weights: &Tensor) -> Network {
    let mut out = net.clone();
    out.for_each_param_mut(|key, t| {
        if key == LAYER {
            *t = weights.clone();
        }
    });
    out
}

#[test]
fn remap_repair_reduces_confidence_distance() {
    let f = fixture();
    let mut golden = f.net.clone();
    let patterns = CtpGenerator::new(15).select(&mut golden, &f.test);
    let detector = Detector::new(&golden, patterns);

    let w0 = layer_weights(&f.net);
    let defects = DefectMap::sample_for_matrix(&w0, 0.01, &mut SeededRng::new(3));
    let damaged = with_layer(&f.net, &defects.apply(&w0));
    let d_damaged = detector.confidence_distance(&damaged).all_classes;

    let repair = remap_rows(&w0, &defects);
    let repaired = with_layer(&f.net, &repair.repaired_weights);
    let d_repaired = detector.confidence_distance(&repaired).all_classes;
    assert!(
        d_repaired < d_damaged,
        "remap must reduce distance: {d_damaged} -> {d_repaired}"
    );
}

#[test]
fn retraining_restores_detector_health() {
    let f = fixture();
    let mut golden = f.net.clone();
    let patterns = CtpGenerator::new(15).select(&mut golden, &f.test);
    let detector = Detector::new(&golden, patterns);
    let crit = SdcCriterion::SdcT { threshold: 0.05 };

    let w0 = layer_weights(&f.net);
    let defects = DefectMap::sample_for_matrix(&w0, 0.05, &mut SeededRng::new(5));
    let mut damaged = with_layer(&f.net, &defects.apply(&w0));
    let damaged_acc = accuracy(&mut damaged, &f.test.images, &f.test.labels, 64);
    assert!(
        detector.is_faulty(&damaged, crit),
        "the damaged device should be flagged before repair"
    );

    retrain_with_faults(
        &mut damaged,
        &[(LAYER.to_owned(), defects)],
        &f.train.images,
        &f.train.labels,
        FaultyRetrainConfig::default(),
    );
    let repaired_acc = accuracy(&mut damaged, &f.test.images, &f.test.labels, 64);
    assert!(
        repaired_acc > damaged_acc,
        "retraining must recover accuracy: {damaged_acc} -> {repaired_acc}"
    );
    // NOTE: retraining moves healthy weights, so the detector's *golden*
    // responses no longer apply to the retrained model — deployment
    // re-records golden responses after a retrain. What must hold is that
    // accuracy is restored near the golden level.
    let golden_acc = accuracy(&mut f.net.clone(), &f.test.images, &f.test.labels, 64);
    assert!(golden_acc - repaired_acc < 0.1, "retrained model should be near golden accuracy");
}

#[test]
fn spare_columns_repair_worst_damage_first() {
    let f = fixture();
    let w0 = layer_weights(&f.net);
    let defects = DefectMap::sample_for_matrix(&w0, 0.02, &mut SeededRng::new(7));
    let none = repair_with_spares(&w0, &defects, 0);
    let some = repair_with_spares(&w0, &defects, 4);
    let all = repair_with_spares(&w0, &defects, w0.shape()[1]);
    assert!(some.repaired_error <= none.repaired_error);
    assert_eq!(all.repaired_error, 0.0);
}

#[test]
fn repair_hierarchy_cost_effectiveness_ordering() {
    // The paper's premise: remapping is the cheap fix, retraining the
    // thorough one. For moderate damage, retraining should recover at
    // least as much accuracy as remapping alone.
    let f = fixture();
    let w0 = layer_weights(&f.net);
    let defects = DefectMap::sample_for_matrix(&w0, 0.03, &mut SeededRng::new(11));

    let remap = remap_rows(&w0, &defects);
    let mut remapped = with_layer(&f.net, &remap.repaired_weights);
    let remap_acc = accuracy(&mut remapped, &f.test.images, &f.test.labels, 64);

    let mut retrained = with_layer(&f.net, &defects.apply(&w0));
    retrain_with_faults(
        &mut retrained,
        &[(LAYER.to_owned(), defects)],
        &f.train.images,
        &f.train.labels,
        FaultyRetrainConfig::default(),
    );
    let retrain_acc = accuracy(&mut retrained, &f.test.images, &f.test.labels, 64);
    assert!(
        retrain_acc >= remap_acc - 0.02,
        "retraining ({retrain_acc}) should not lose badly to remapping ({remap_acc})"
    );
}
