//! Loss functions.
//!
//! The paper's O-TP objective is a *weighted sum of two cross-entropies*
//! (one against a uniform soft label on the clean model, one against a
//! hard label on the reference fault model), so the cross-entropy here
//! accepts arbitrary probability-vector targets, not just class indices.

use healthmon_tensor::Tensor;

/// Loss value and gradient with respect to the logits.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient of the mean loss w.r.t. the logits, shape `[N, classes]`.
    pub grad: Tensor,
}

/// Softmax followed by cross-entropy, fused for numerical stability.
///
/// # Example
///
/// ```
/// use healthmon_nn::SoftmaxCrossEntropy;
/// use healthmon_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0], &[1, 3])?;
/// let out = SoftmaxCrossEntropy::with_labels(&logits, &[0]);
/// assert!(out.loss < 1.0); // confident and correct => small loss
/// # Ok::<(), healthmon_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Cross-entropy of `logits` (`[N, C]`) against integer class labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != N` or any label is out of range.
    pub fn with_labels(logits: &Tensor, labels: &[usize]) -> LossOutput {
        let classes = logits.shape()[1];
        let mut targets = Tensor::zeros(logits.shape());
        assert_eq!(labels.len(), logits.shape()[0], "label count must match batch size");
        for (row, &label) in labels.iter().enumerate() {
            assert!(label < classes, "label {label} out of range for {classes} classes");
            *targets.at_mut(&[row, label]) = 1.0;
        }
        Self::with_soft_targets(logits, &targets)
    }

    /// Cross-entropy of `logits` against probability-vector targets of the
    /// same shape (soft labels), as used by the O-TP objective.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or either tensor is not 2-D.
    pub fn with_soft_targets(logits: &Tensor, targets: &Tensor) -> LossOutput {
        assert_eq!(logits.ndim(), 2, "loss expects [N, classes] logits");
        assert_eq!(
            logits.shape(),
            targets.shape(),
            "loss target shape {:?} != logits shape {:?}",
            targets.shape(),
            logits.shape()
        );
        let n = logits.shape()[0];
        let mut loss = 0.0f32;
        let mut grad_rows = Vec::with_capacity(n);
        for row in 0..n {
            let z = logits.row(row);
            let t = targets.row(row);
            loss += z.cross_entropy_with(&t);
            // d/dz of -sum t_i log softmax(z)_i = softmax(z) * sum(t) - t.
            // For probability targets sum(t) = 1 giving the familiar p - t.
            let t_sum = t.sum();
            let p = z.softmax();
            grad_rows.push(&p.scale(t_sum) - &t);
        }
        let inv_n = 1.0 / n as f32;
        LossOutput {
            loss: loss * inv_n,
            grad: Tensor::stack_rows(&grad_rows).scale(inv_n),
        }
    }
}

/// Mean squared error, `mean((pred - target)^2)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanSquaredError;

impl MeanSquaredError {
    /// MSE of predictions against same-shape targets.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn compute(pred: &Tensor, target: &Tensor) -> LossOutput {
        assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
        let diff = pred - target;
        let n = pred.len() as f32;
        LossOutput {
            loss: diff.as_slice().iter().map(|&d| d * d).sum::<f32>() / n,
            grad: diff.scale(2.0 / n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_tensor::SeededRng;

    #[test]
    fn uniform_logits_loss_is_ln_c() {
        let logits = Tensor::zeros(&[2, 4]);
        let out = SoftmaxCrossEntropy::with_labels(&logits, &[0, 3]);
        assert!((out.loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn grad_is_softmax_minus_target() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let out = SoftmaxCrossEntropy::with_labels(&logits, &[2]);
        let p = logits.row(0).softmax();
        for (i, g) in out.grad.as_slice().iter().enumerate() {
            let want = p.as_slice()[i] - if i == 2 { 1.0 } else { 0.0 };
            assert!((g - want).abs() < 1e-6);
        }
    }

    #[test]
    fn soft_targets_uniform() {
        // O-TP's first term: uniform soft label. Perfectly uniform logits
        // give loss ln(C) and zero gradient.
        let logits = Tensor::zeros(&[1, 10]);
        let target = Tensor::full(&[1, 10], 0.1);
        let out = SoftmaxCrossEntropy::with_soft_targets(&logits, &target);
        assert!((out.loss - 10.0f32.ln()).abs() < 1e-5);
        assert!(out.grad.as_slice().iter().all(|&g| g.abs() < 1e-6));
    }

    #[test]
    fn loss_decreases_along_negative_gradient() {
        let mut rng = SeededRng::new(1);
        let logits = Tensor::randn(&[3, 5], &mut rng);
        let labels = [0usize, 2, 4];
        let out = SoftmaxCrossEntropy::with_labels(&logits, &labels);
        let stepped = &logits - &out.grad.scale(1.0);
        let out2 = SoftmaxCrossEntropy::with_labels(&stepped, &labels);
        assert!(out2.loss < out.loss, "{} !< {}", out2.loss, out.loss);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = SeededRng::new(2);
        let logits = Tensor::randn(&[2, 4], &mut rng);
        let labels = [1usize, 3];
        let out = SoftmaxCrossEntropy::with_labels(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let fp = SoftmaxCrossEntropy::with_labels(&lp, &labels).loss;
            let fm = SoftmaxCrossEntropy::with_labels(&lm, &labels).loss;
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = out.grad.as_slice()[i];
            assert!((numeric - analytic).abs() < 1e-3, "{numeric} vs {analytic}");
        }
    }

    #[test]
    fn mse_hand_example() {
        let p = Tensor::from_slice(&[1.0, 2.0]);
        let t = Tensor::from_slice(&[0.0, 0.0]);
        let out = MeanSquaredError::compute(&p, &t);
        assert!((out.loss - 2.5).abs() < 1e-6);
        assert_eq!(out.grad.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        SoftmaxCrossEntropy::with_labels(&Tensor::zeros(&[1, 3]), &[3]);
    }
}
