//! **Table I**: accuracy of the original LeNet-5 model and fault models
//! `f_w'(σ)` under programming variation, σ ∈ {0.05 … 0.5}.

use healthmon::report::{percent, TextTable};
use healthmon_bench::harness::{
    campaign_accuracy, emit, models_per_level, train_or_load, Benchmark, CAMPAIGN_SEED,
};
use healthmon_faults::FaultModel;

fn main() {
    let trained = train_or_load(Benchmark::Lenet5Digits);
    let count = models_per_level();
    let mut header = vec!["weight error (sigma)".to_owned(), "0 (original)".to_owned()];
    let mut row = vec!["LeNet-5 accuracy".to_owned(), percent(trained.test_accuracy)];
    for sigma in trained.benchmark.sigma_grid() {
        let acc = campaign_accuracy(
            &trained,
            &FaultModel::ProgrammingVariation { sigma },
            count,
            CAMPAIGN_SEED,
        );
        header.push(format!("{sigma:.2}"));
        row.push(percent(acc));
    }
    let mut table = TextTable::new(header);
    table.push_row(row);
    let content = format!(
        "Table I — LeNet-5 (SynthDigits) accuracy vs programming-variation sigma\n\
         ({count} fault models per sigma, campaign seed {CAMPAIGN_SEED})\n\n{}",
        table.render()
    );
    emit("table1", &content);
}
