//! Mitigation cost/benefit analysis: does fault-tolerance hardening pay
//! for itself?
//!
//! PR 6 adds two mitigation rungs below the reactive repair ladder —
//! drop-connect-hardened training ([`healthmon_nn::DropConnect`]) and
//! online soft-error scrubbing ([`LifetimeConfig::hardened`]). This
//! module quantifies what they buy, in two complementary views:
//!
//! * **Campaign arms** — for every `fault class × backend × model
//!   variant` cell, the concurrent-test detection rate (SDC-A) and the
//!   mean accuracy of the faulty models. A hardened model that *keeps*
//!   its accuracy under faults needs fewer repair interventions to stay
//!   above the service floor.
//! * **Lifetime arms** — two full [`LifetimeRuntime`] lifetimes under
//!   the *identical* aging stream (the stream is a pure function of
//!   [`LifetimeConfig::seed`]): the plain model on the plain runtime
//!   versus the hardened model on the scrubbing runtime. The derived
//!   summary reports accuracy retained, repair sessions avoided, and
//!   pattern budget saved.
//!
//! Everything is deterministic: the same inputs render byte-identical
//! tables and JSON at any `HEALTHMON_THREADS` setting.

use crate::detect::Detector;
use crate::metrics::SdcCriterion;
use crate::patterns::TestPatternSet;
use crate::report::{percent, TextTable};
use crate::runtime::{LifetimeConfig, LifetimeRuntime, TrainData};
use healthmon_faults::{FaultCampaign, FaultModel};
use healthmon_nn::trainer::accuracy;
use healthmon_nn::Network;
use healthmon_reram::BackendSpec;
use healthmon_serdes::{Json, ToJson};
use healthmon_telemetry as tel;

/// Batch size used for every accuracy evaluation in the analysis.
const EVAL_BATCH: usize = 64;

/// Inputs of a mitigation analysis: which fault classes and backends to
/// sweep in the campaign view, and the lifetime the two arms run.
#[derive(Debug, Clone)]
pub struct MitigationScenario {
    /// Campaign seed (fault model `i` comes from `fork(i)` of it).
    pub seed: u64,
    /// Faulty models per campaign cell.
    pub count: usize,
    /// SDC-A detection threshold.
    pub threshold: f32,
    /// Fault classes swept in the campaign view.
    pub faults: Vec<FaultModel>,
    /// Execution backends swept in the campaign view.
    pub backends: Vec<BackendSpec>,
    /// Lifetime both arms run. [`LifetimeConfig::hardened`] is
    /// overridden per arm (`false` for plain, `true` for hardened), and
    /// [`LifetimeConfig::backend`] is taken as configured.
    pub lifetime: LifetimeConfig,
}

impl MitigationScenario {
    /// Validates the scenario.
    ///
    /// # Panics
    ///
    /// Panics on an empty fault or backend sweep, a non-positive count,
    /// or an invalid nested lifetime configuration.
    pub fn validate(&self) {
        assert!(self.count > 0, "a campaign arm needs at least one faulty model");
        assert!(!self.faults.is_empty(), "the campaign sweep needs at least one fault class");
        assert!(!self.backends.is_empty(), "the campaign sweep needs at least one backend");
        self.lifetime.validate();
    }
}

/// One `fault class × backend × model variant` cell of the campaign view.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignArm {
    /// Human-readable fault description ([`FaultModel::describe`]).
    pub fault: String,
    /// Backend label (`digital` / `analog` / `bitsliced`).
    pub backend: String,
    /// `true` for the drop-connect-hardened model variant.
    pub hardened: bool,
    /// SDC-A detection rate over the campaign.
    pub detection_rate: f32,
    /// Model accuracy on the evaluation set with no fault injected.
    pub clean_accuracy: f32,
    /// Mean accuracy of the faulty models on the evaluation set
    /// (weight-space evaluation, identical for every backend row of the
    /// same fault × variant pair).
    pub faulty_accuracy: f32,
}

/// Outcome of one lifetime arm.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeArm {
    /// `true` for the hardened arm (drop-connect model + scrubbing
    /// runtime).
    pub hardened: bool,
    /// Final health state label.
    pub final_state: String,
    /// Whether the runtime parked in `Critical` with its repair budget
    /// exhausted.
    pub parked: bool,
    /// Repair sessions consumed over the lifetime.
    pub repairs_used: usize,
    /// Test patterns still active at end of life (graceful degradation
    /// halves the budget after failed repairs).
    pub patterns_active: usize,
    /// Accuracy of the end-of-life device readback on the evaluation
    /// set.
    pub end_accuracy: f32,
    /// Accuracy of the same model as deployed, before any aging.
    pub deployed_accuracy: f32,
    /// Transient flips corrected in-situ (zero for the plain arm).
    pub soft_corrected: usize,
    /// Transient flips detected but not isolatable (left for the repair
    /// ladder).
    pub soft_uncorrectable: usize,
}

impl LifetimeArm {
    /// Fraction of the deployed accuracy still delivered at end of life.
    pub fn accuracy_retained(&self) -> f32 {
        if self.deployed_accuracy <= 0.0 {
            return 0.0;
        }
        self.end_accuracy / self.deployed_accuracy
    }
}

/// The full mitigation cost/benefit report.
#[derive(Debug, Clone, PartialEq)]
pub struct MitigationReport {
    /// Campaign view: detection rate and accuracy under each fault
    /// class, per backend, for both model variants.
    pub campaign: Vec<CampaignArm>,
    /// Plain arm: plain model, scrubbing disabled.
    pub plain: LifetimeArm,
    /// Hardened arm: drop-connect model, scrubbing enabled, identical
    /// aging stream.
    pub hardened: LifetimeArm,
}

impl MitigationReport {
    /// Repair sessions the hardened arm avoided.
    pub fn repairs_avoided(&self) -> usize {
        self.plain.repairs_used.saturating_sub(self.hardened.repairs_used)
    }

    /// Test patterns the hardened arm kept that the plain arm lost to
    /// graceful degradation.
    pub fn patterns_saved(&self) -> usize {
        self.hardened.patterns_active.saturating_sub(self.plain.patterns_active)
    }

    /// End-of-life accuracy advantage of the hardened arm (fraction of
    /// the evaluation set, may be negative).
    pub fn accuracy_delta(&self) -> f32 {
        self.hardened.end_accuracy - self.plain.end_accuracy
    }

    /// Renders the report as aligned text tables plus a summary block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("mitigation campaign arms:\n");
        let mut table = TextTable::new(vec![
            "fault".into(),
            "backend".into(),
            "model".into(),
            "detection".into(),
            "clean acc".into(),
            "faulty acc".into(),
        ]);
        for arm in &self.campaign {
            table.push_row(vec![
                arm.fault.clone(),
                arm.backend.clone(),
                variant_label(arm.hardened).into(),
                format!("{:.4}", arm.detection_rate),
                percent(arm.clean_accuracy),
                percent(arm.faulty_accuracy),
            ]);
        }
        out.push_str(&table.render());
        out.push_str("mitigation lifetime arms:\n");
        let mut table = TextTable::new(vec![
            "arm".into(),
            "final state".into(),
            "repairs".into(),
            "patterns".into(),
            "end acc".into(),
            "retained".into(),
            "scrubbed".into(),
        ]);
        for arm in [&self.plain, &self.hardened] {
            table.push_row(vec![
                variant_label(arm.hardened).into(),
                arm.final_state.clone(),
                arm.repairs_used.to_string(),
                arm.patterns_active.to_string(),
                percent(arm.end_accuracy),
                percent(arm.accuracy_retained()),
                format!("{}+{}", arm.soft_corrected, arm.soft_uncorrectable),
            ]);
        }
        out.push_str(&table.render());
        out.push_str(&format!(
            "repairs avoided by hardening: {} of {}\n",
            self.repairs_avoided(),
            self.plain.repairs_used
        ));
        out.push_str(&format!("pattern budget saved: {}\n", self.patterns_saved()));
        out.push_str(&format!(
            "end-of-life accuracy: plain {} -> hardened {}\n",
            percent(self.plain.end_accuracy),
            percent(self.hardened.end_accuracy)
        ));
        out
    }
}

fn variant_label(hardened: bool) -> &'static str {
    if hardened { "hardened" } else { "plain" }
}

impl ToJson for CampaignArm {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("fault".to_owned(), Json::String(self.fault.clone())),
            ("backend".to_owned(), Json::String(self.backend.clone())),
            ("hardened".to_owned(), Json::Bool(self.hardened)),
            ("detection_rate".to_owned(), Json::Number(f64::from(self.detection_rate))),
            ("clean_accuracy".to_owned(), Json::Number(f64::from(self.clean_accuracy))),
            ("faulty_accuracy".to_owned(), Json::Number(f64::from(self.faulty_accuracy))),
        ])
    }
}

impl ToJson for LifetimeArm {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("hardened".to_owned(), Json::Bool(self.hardened)),
            ("final_state".to_owned(), Json::String(self.final_state.clone())),
            ("parked".to_owned(), Json::Bool(self.parked)),
            ("repairs_used".to_owned(), self.repairs_used.to_json()),
            ("patterns_active".to_owned(), self.patterns_active.to_json()),
            ("end_accuracy".to_owned(), Json::Number(f64::from(self.end_accuracy))),
            (
                "deployed_accuracy".to_owned(),
                Json::Number(f64::from(self.deployed_accuracy)),
            ),
            ("soft_corrected".to_owned(), self.soft_corrected.to_json()),
            ("soft_uncorrectable".to_owned(), self.soft_uncorrectable.to_json()),
        ])
    }
}

impl ToJson for MitigationReport {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("campaign".to_owned(), self.campaign.to_json()),
            ("plain".to_owned(), self.plain.to_json()),
            ("hardened".to_owned(), self.hardened.to_json()),
            ("repairs_avoided".to_owned(), self.repairs_avoided().to_json()),
            ("patterns_saved".to_owned(), self.patterns_saved().to_json()),
            ("accuracy_delta".to_owned(), Json::Number(f64::from(self.accuracy_delta()))),
        ])
    }
}

/// Runs the full mitigation analysis: campaign arms over every
/// `fault × backend × variant` cell, then the plain and hardened
/// lifetime arms under the identical aging stream.
///
/// `plain` and `hardened_model` must share an architecture; `patterns`
/// is the shared concurrent-test set (both lifetimes monitor with the
/// same budget so the pattern-savings column is comparable); `eval`
/// provides the labelled accuracy benchmark.
///
/// # Panics
///
/// Panics if the scenario fails [`MitigationScenario::validate`].
pub fn run_mitigation(
    plain: &Network,
    hardened_model: &Network,
    patterns: &TestPatternSet,
    eval: &TrainData,
    scenario: &MitigationScenario,
) -> MitigationReport {
    scenario.validate();
    let _analysis = tel::span("mitigation.analysis");

    let mut campaign = Vec::new();
    for (variant, hardened) in [(plain, false), (hardened_model, true)] {
        let clean_accuracy =
            accuracy(&mut variant.clone(), &eval.images, &eval.labels, EVAL_BATCH);
        let detector = Detector::new(variant, patterns.clone());
        for fault in &scenario.faults {
            let faulty_accuracy = mean_faulty_accuracy(variant, fault, eval, scenario);
            for spec in &scenario.backends {
                let rates = detector.detection_rates_with(
                    variant,
                    fault,
                    scenario.count,
                    scenario.seed,
                    &[SdcCriterion::SdcA { threshold: scenario.threshold }],
                    spec,
                );
                campaign.push(CampaignArm {
                    fault: fault.describe(),
                    backend: spec.kind.label().to_owned(),
                    hardened,
                    detection_rate: rates[0],
                    clean_accuracy,
                    faulty_accuracy,
                });
            }
        }
    }

    let plain_arm = run_lifetime_arm(plain, patterns, eval, scenario, false);
    let hardened_arm = run_lifetime_arm(hardened_model, patterns, eval, scenario, true);
    MitigationReport { campaign, plain: plain_arm, hardened: hardened_arm }
}

/// Mean evaluation-set accuracy over the campaign's faulty models
/// (weight-space: the fault streams match `FaultCampaign` exactly, so
/// the same models the detector judges are the ones scored here).
fn mean_faulty_accuracy(
    golden: &Network,
    fault: &FaultModel,
    eval: &TrainData,
    scenario: &MitigationScenario,
) -> f32 {
    let campaign = FaultCampaign::new(golden, scenario.seed);
    let total: f32 = campaign
        .models(fault, scenario.count)
        .map(|mut faulty| accuracy(&mut faulty, &eval.images, &eval.labels, EVAL_BATCH))
        .sum();
    total / scenario.count as f32
}

fn run_lifetime_arm(
    golden: &Network,
    patterns: &TestPatternSet,
    eval: &TrainData,
    scenario: &MitigationScenario,
    hardened: bool,
) -> LifetimeArm {
    let config = LifetimeConfig { hardened, ..scenario.lifetime };
    let deployed_accuracy =
        accuracy(&mut golden.clone(), &eval.images, &eval.labels, EVAL_BATCH);
    let mut runtime = LifetimeRuntime::new(golden, patterns.clone(), config, None);
    runtime.run(None);
    let end_accuracy =
        accuracy(&mut runtime.device_readback(), &eval.images, &eval.labels, EVAL_BATCH);
    LifetimeArm {
        hardened,
        final_state: runtime.state().label().to_owned(),
        parked: runtime.is_parked(),
        repairs_used: runtime.repairs_used(),
        patterns_active: runtime.active_patterns(),
        end_accuracy,
        deployed_accuracy,
        soft_corrected: runtime.soft_corrected(),
        soft_uncorrectable: runtime.soft_uncorrectable(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::MonitorPolicy;
    use crate::runtime::AgingModel;
    use healthmon_data::{DatasetSpec, SynthDigits};
    use healthmon_nn::models::tiny_mlp;
    use healthmon_nn::optim::Sgd;
    use healthmon_nn::{DropConnect, TrainConfig, Trainer};
    use healthmon_reram::CrossbarConfig;
    use healthmon_tensor::SeededRng;

    /// Trains a tiny plain/hardened model pair plus evaluation data and
    /// a shared pattern set. Pure function of its seeds.
    fn fixture() -> (Network, Network, TestPatternSet, TrainData) {
        let split = SynthDigits::new(DatasetSpec {
            train: 480,
            test: 320,
            seed: 5,
            ..Default::default()
        })
        .generate();
        let flat = |t: &healthmon_tensor::Tensor, n: usize| {
            t.reshape(&[n, 28 * 28]).expect("flatten preserves count")
        };
        let train_images = flat(&split.train.images, split.train.len());
        let test_images = flat(&split.test.images, split.test.len());

        let train = |dc: Option<DropConnect>| {
            let mut rng = SeededRng::new(3);
            let mut net = tiny_mlp(28 * 28, 24, 10, &mut rng);
            let config = TrainConfig {
                epochs: 8,
                batch_size: 32,
                verbose: false,
                drop_connect: dc,
                ..TrainConfig::default()
            };
            Trainer::new(&mut net, Sgd::new(0.05).momentum(0.9), config)
                .fit(&train_images, &split.train.labels, None);
            net
        };
        let plain = train(None);
        let hardened = train(Some(DropConnect::new(0.1).seeded(9)));
        let patterns = TestPatternSet::new("probe", test_images.clone()).truncated(8);
        let eval = TrainData { images: test_images, labels: split.test.labels.clone() };
        (plain, hardened, patterns, eval)
    }

    /// The probe-verified acceptance scenario: sparse transient flips
    /// the scrubbing runtime can fully correct, thresholds tight enough
    /// that the plain runtime burns its whole repair budget on them.
    fn scenario() -> MitigationScenario {
        MitigationScenario {
            seed: 2020,
            count: 4,
            threshold: 0.03,
            faults: vec![FaultModel::ProgrammingVariation { sigma: 0.4 }],
            backends: vec![BackendSpec::digital()],
            lifetime: LifetimeConfig {
                seed: 16,
                epochs: 6,
                aging: AgingModel {
                    drift_nu: 0.0,
                    drift_time: 1.0,
                    soft_error_p: 8e-5,
                    stuck_lambda: 0.0,
                },
                policy: MonitorPolicy {
                    watch_threshold: 1e-6,
                    critical_threshold: 1e-3,
                    escalation_count: 1,
                },
                crossbar: CrossbarConfig::exact(),
                repair_budget: 3,
                ..LifetimeConfig::default()
            },
        }
    }

    #[test]
    fn hardened_arm_strictly_beats_plain_ladder() {
        let (plain, hardened, patterns, eval) = fixture();
        let report = run_mitigation(&plain, &hardened, &patterns, &eval, &scenario());

        // The acceptance inequalities: under the identical aging stream
        // the hardened arm retains strictly more accuracy and consumes
        // strictly fewer repair sessions.
        assert!(
            report.hardened.repairs_used < report.plain.repairs_used,
            "hardened used {} repairs, plain {}",
            report.hardened.repairs_used,
            report.plain.repairs_used
        );
        assert!(
            report.hardened.end_accuracy > report.plain.end_accuracy,
            "hardened ended at {}, plain at {}",
            report.hardened.end_accuracy,
            report.plain.end_accuracy
        );
        assert!(
            report.hardened.accuracy_retained() >= report.plain.accuracy_retained(),
            "hardened retained {}, plain {}",
            report.hardened.accuracy_retained(),
            report.plain.accuracy_retained()
        );
        assert!(report.plain.parked, "plain ladder should exhaust its repair budget");
        assert!(!report.hardened.parked);
        assert!(report.hardened.soft_corrected > 0);
        assert_eq!(report.hardened.soft_uncorrectable, 0);
        assert!(report.repairs_avoided() > 0);
        assert!(report.accuracy_delta() > 0.0);
    }

    #[test]
    fn analysis_is_deterministic() {
        let (plain, hardened, patterns, eval) = fixture();
        let sc = scenario();
        let a = run_mitigation(&plain, &hardened, &patterns, &eval, &sc);
        let b = run_mitigation(&plain, &hardened, &patterns, &eval, &sc);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert_eq!(
            healthmon_serdes::to_string(&a),
            healthmon_serdes::to_string(&b)
        );
    }

    #[test]
    fn campaign_covers_the_full_cross_product() {
        let (plain, hardened, patterns, eval) = fixture();
        let mut sc = scenario();
        sc.faults = vec![
            FaultModel::ProgrammingVariation { sigma: 0.4 },
            FaultModel::RandomSoftError { probability: 0.05 },
        ];
        sc.backends = vec![
            BackendSpec::digital(),
            BackendSpec::analog(CrossbarConfig::exact()),
        ];
        let report = run_mitigation(&plain, &hardened, &patterns, &eval, &sc);
        // 2 variants × 2 faults × 2 backends.
        assert_eq!(report.campaign.len(), 8);
        for arm in &report.campaign {
            assert!((0.0..=1.0).contains(&arm.detection_rate));
            assert!((0.0..=1.0).contains(&arm.clean_accuracy));
            assert!((0.0..=1.0).contains(&arm.faulty_accuracy));
        }
        let hardened_rows = report.campaign.iter().filter(|a| a.hardened).count();
        assert_eq!(hardened_rows, 4);
    }

    #[test]
    fn render_and_json_carry_the_summary() {
        let (plain, hardened, patterns, eval) = fixture();
        let report = run_mitigation(&plain, &hardened, &patterns, &eval, &scenario());
        let text = report.render();
        assert!(text.contains("mitigation campaign arms:"));
        assert!(text.contains("mitigation lifetime arms:"));
        assert!(text.contains("repairs avoided by hardening:"));
        assert!(text.contains("pattern budget saved:"));
        let json = healthmon_serdes::to_string(&report);
        for key in ["campaign", "plain", "hardened", "repairs_avoided", "accuracy_delta"] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key} in {json}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one fault class")]
    fn rejects_empty_fault_sweep() {
        let mut sc = scenario();
        sc.faults.clear();
        sc.validate();
    }
}

