//! A single crossbar tile: differential conductance pairs, DAC/ADC
//! conversion, and device-level fault injection.

use crate::{CrossbarConfig, Quantizer};
use healthmon_tensor::{fastmath, SeededRng, Tensor};
use std::sync::OnceLock;

/// A permanent device fault affecting one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellFault {
    /// Cell frozen in the high-resistance state (conductance = `g_min`),
    /// i.e. stuck-at-zero in weight terms.
    StuckLow,
    /// Cell frozen in the low-resistance state (conductance = `g_max`),
    /// i.e. stuck-at-one.
    StuckHigh,
}

/// One programmed crossbar tile storing a weight matrix `[rows, cols]` as
/// differential conductance pairs.
///
/// The tile keeps the scaling needed to map analog bit-line currents back
/// into weight-domain dot products, so [`Crossbar::matvec`] is directly
/// comparable to an ideal `wᵀx`.
#[derive(Debug, Clone)]
pub struct Crossbar {
    config: CrossbarConfig,
    rows: usize,
    cols: usize,
    /// Positive-path conductances, `[rows, cols]`.
    g_pos: Tensor,
    /// Negative-path conductances, `[rows, cols]`.
    g_neg: Tensor,
    /// Weight-domain scale: `w = (g_pos − g_neg) * scale`.
    scale: f32,
    /// Largest |input| the DAC was calibrated for.
    input_range: f32,
    /// Lazily-computed differential conductance matrix `g_pos − g_neg`
    /// (unscaled), shared by every inference through the tile. Every
    /// conductance mutator replaces the cell with a fresh empty one, so a
    /// stale matrix can never be read after fault injection.
    diff_cache: OnceLock<Tensor>,
}

impl Crossbar {
    /// Programs a weight matrix (`[rows, cols]`, at most the tile
    /// geometry) into a fresh tile, applying cell quantization and the
    /// configured lognormal write noise.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is not 2-D, exceeds the tile geometry, or the
    /// config is invalid.
    pub fn program(weights: &Tensor, config: &CrossbarConfig, rng: &mut SeededRng) -> Self {
        config.validate();
        assert_eq!(weights.ndim(), 2, "crossbar stores a 2-D weight matrix");
        let (rows, cols) = (weights.shape()[0], weights.shape()[1]);
        assert!(
            rows <= config.rows && cols <= config.cols,
            "weights {rows}x{cols} exceed tile geometry {}x{}",
            config.rows,
            config.cols
        );
        let w_max = weights
            .as_slice()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()))
            .max(f32::MIN_POSITIVE);
        // w = (g+ − g−)·scale with g ∈ [g_min, g_max]; full-scale weight
        // uses the full conductance window.
        let window = config.g_max - config.g_min;
        let scale = w_max / window;
        let cell_q = Quantizer::new(config.g_min, config.g_max, config.cell_bits);
        let mut g_pos = Tensor::zeros(&[rows, cols]);
        let mut g_neg = Tensor::zeros(&[rows, cols]);
        for ((gp, gn), &w) in g_pos
            .as_mut_slice()
            .iter_mut()
            .zip(g_neg.as_mut_slice())
            .zip(weights.as_slice())
        {
            let magnitude = (w.abs() / w_max) * window; // ∈ [0, window]
            let (p, n) = if w >= 0.0 {
                (config.g_min + magnitude, config.g_min)
            } else {
                (config.g_min, config.g_min + magnitude)
            };
            *gp = cell_q.quantize(p);
            *gn = cell_q.quantize(n);
        }
        if config.write_noise > 0.0 {
            // Bulk write-noise pass: one block-sampled lognormal draw per
            // cell instead of two scalar draws inside the programming loop.
            let mut noise = vec![0.0f32; g_pos.len() + g_neg.len()];
            rng.fill_lognormal(&mut noise, 0.0, config.write_noise);
            for (g, &f) in g_pos
                .as_mut_slice()
                .iter_mut()
                .chain(g_neg.as_mut_slice())
                .zip(&noise)
            {
                *g = (*g * f).clamp(config.g_min, config.g_max);
            }
        }
        Crossbar {
            config: *config,
            rows,
            cols,
            g_pos,
            g_neg,
            scale,
            input_range: 1.0,
            diff_cache: OnceLock::new(),
        }
    }

    /// The differential conductance matrix `g_pos − g_neg`, computed on
    /// first use and cached until the next conductance mutation.
    fn diff(&self) -> &Tensor {
        self.diff_cache.get_or_init(|| self.g_pos.zip_map(&self.g_neg, |p, n| p - n))
    }

    /// Number of word lines in use.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bit lines in use.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Calibrates the DAC full-scale range to the largest |input| the tile
    /// will see (default 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `range` is not positive.
    pub fn set_input_range(&mut self, range: f32) {
        assert!(range > 0.0, "input range must be positive, got {range}");
        self.input_range = range;
    }

    /// Reads the effective weight matrix back from the conductances —
    /// what the analog computation actually uses.
    pub fn effective_weights(&self) -> Tensor {
        self.diff().scale(self.scale)
    }

    /// Analog matrix-vector product `wᵀ·x` realized on the tile:
    /// DAC-quantize the inputs, accumulate bit-line currents, ADC-quantize
    /// the outputs. Input is indexed by word line (`rows` long), output by
    /// bit line (`cols` long).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows()`.
    pub fn matvec(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 1, "matvec input must be 1-D");
        assert_eq!(
            input.len(),
            self.rows,
            "input length {} != word-line count {}",
            input.len(),
            self.rows
        );
        let batch = input
            .reshape(&[1, self.rows])
            .expect("1-D input reshapes to a single-row batch");
        self.matmul(&batch)
            .reshape(&[self.cols])
            .expect("single-row output reshapes to 1-D")
    }

    /// Batched analog inference: `N` input patterns (`[batch, rows]`)
    /// through the tile in one pass, returning `[batch, cols]`.
    ///
    /// The analog accumulate is a single GEMM against the cached
    /// differential conductance matrix instead of `batch` matvec sweeps;
    /// DAC and ADC quantization apply elementwise exactly as in
    /// [`Crossbar::matvec`], which is itself the `batch == 1` case of this
    /// method — so batched and per-row results are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not 2-D with `rows()` columns.
    pub fn matmul(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 2, "batched input must be [batch, rows]");
        assert_eq!(
            input.shape()[1],
            self.rows,
            "input width {} != word-line count {}",
            input.shape()[1],
            self.rows
        );
        // DAC: quantize voltages.
        let mut v = input.clone();
        if self.config.dac_bits > 0 {
            let q = Quantizer::new(-self.input_range, self.input_range, self.config.dac_bits);
            q.quantize_slice(v.as_mut_slice());
        }
        // Analog accumulate: I_bj = Σ_i v_bi (g+_ij − g−_ij).
        let mut out = v.matmul(self.diff());
        // Back to weight domain, then ADC.
        for o in out.as_mut_slice() {
            *o *= self.scale;
        }
        if self.config.adc_bits > 0 {
            // ADC full scale sized to the worst-case current of the tile.
            let full_scale = self.input_range
                * self.rows as f32
                * (self.config.g_max - self.config.g_min)
                * self.scale;
            let q = Quantizer::new(-full_scale, full_scale, self.config.adc_bits);
            q.quantize_slice(out.as_mut_slice());
        }
        out
    }

    /// Freezes a fraction of cells (chosen uniformly over both
    /// differential paths) in the given fault state.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn inject_stuck_cells(&mut self, fault: CellFault, fraction: f64, rng: &mut SeededRng) {
        assert!((0.0..=1.0).contains(&fraction), "fraction {fraction} outside [0, 1]");
        let target = match fault {
            CellFault::StuckLow => self.config.g_min,
            CellFault::StuckHigh => self.config.g_max,
        };
        for g in self
            .g_pos
            .as_mut_slice()
            .iter_mut()
            .chain(self.g_neg.as_mut_slice())
        {
            if rng.chance(fraction) {
                *g = target;
            }
        }
        self.diff_cache = OnceLock::new();
    }

    /// Applies lognormal conductance disturbance to every cell,
    /// `g' = g · e^θ` with `θ ~ N(0, σ²)`, clamped to the conductance
    /// window — the in-field counterpart of programming variation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn disturb(&mut self, sigma: f32, rng: &mut SeededRng) {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        let (lo, hi) = (self.config.g_min, self.config.g_max);
        let mut factors = vec![0.0f32; self.g_pos.len() + self.g_neg.len()];
        rng.fill_lognormal(&mut factors, 0.0, sigma);
        for (g, &f) in self
            .g_pos
            .as_mut_slice()
            .iter_mut()
            .chain(self.g_neg.as_mut_slice())
            .zip(&factors)
        {
            *g = (*g * f).clamp(lo, hi);
        }
        self.diff_cache = OnceLock::new();
    }

    /// Applies deterministic conductance drift toward the high-resistance
    /// state: `g' = g_min + (g − g_min)·e^(−ν·t)` per cell with
    /// `ν ~ |N(0, nu)|`.
    ///
    /// # Panics
    ///
    /// Panics if `nu` or `time` is negative.
    pub fn drift(&mut self, nu: f32, time: f32, rng: &mut SeededRng) {
        assert!(nu >= 0.0 && time >= 0.0, "drift parameters must be non-negative");
        let lo = self.config.g_min;
        let mut rates = vec![0.0f32; self.g_pos.len() + self.g_neg.len()];
        rng.fill_normal(&mut rates, 0.0, nu);
        for (g, &z) in self
            .g_pos
            .as_mut_slice()
            .iter_mut()
            .chain(self.g_neg.as_mut_slice())
            .zip(&rates)
        {
            *g = lo + (*g - lo) * fastmath::exp(-z.abs() * time);
        }
        self.diff_cache = OnceLock::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_config() -> CrossbarConfig {
        CrossbarConfig::ideal()
    }

    #[test]
    fn program_read_back_ideal() {
        let mut rng = SeededRng::new(1);
        let w = Tensor::randn(&[6, 4], &mut rng);
        let xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
        let back = xbar.effective_weights();
        for (a, b) in w.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-4, "read-back mismatch {a} vs {b}");
        }
    }

    #[test]
    fn matvec_matches_ideal_dot_product() {
        let mut rng = SeededRng::new(2);
        let w = Tensor::randn(&[8, 5], &mut rng);
        let xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
        let x = Tensor::randn(&[8], &mut rng).map(|v| v.clamp(-1.0, 1.0));
        let y = xbar.matvec(&x);
        // Ideal: y_j = Σ_i w_ij x_i = (Wᵀ x)_j
        let ideal = w.transpose().matvec(&x);
        for (a, b) in y.as_slice().iter().zip(ideal.as_slice()) {
            assert!((a - b).abs() < 1e-3, "matvec mismatch {a} vs {b}");
        }
    }

    #[test]
    fn quantization_bounds_error() {
        let mut rng = SeededRng::new(3);
        let w = Tensor::randn(&[8, 8], &mut rng);
        let config = CrossbarConfig { cell_bits: 4, dac_bits: 0, adc_bits: 0, write_noise: 0.0, ..CrossbarConfig::default() };
        let xbar = Crossbar::program(&w, &config, &mut rng);
        let back = xbar.effective_weights();
        let w_max = w.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let step = w_max / 15.0; // 4-bit magnitude levels
        for (a, b) in w.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= step / 2.0 + 1e-5, "quantization error too large: {a} vs {b}");
        }
    }

    #[test]
    fn coarser_cells_give_larger_error() {
        let mut rng = SeededRng::new(4);
        let w = Tensor::randn(&[16, 16], &mut rng);
        let err_for_bits = |bits: u32, rng: &mut SeededRng| {
            let config = CrossbarConfig { cell_bits: bits, dac_bits: 0, adc_bits: 0, ..CrossbarConfig::default() };
            let xbar = Crossbar::program(&w, &config, rng);
            w.l1_distance(&xbar.effective_weights())
        };
        let coarse = err_for_bits(2, &mut rng);
        let fine = err_for_bits(6, &mut rng);
        assert!(coarse > fine * 2.0, "coarse {coarse} vs fine {fine}");
    }

    #[test]
    fn write_noise_perturbs_weights() {
        let mut rng = SeededRng::new(5);
        let w = Tensor::randn(&[8, 8], &mut rng);
        let config = CrossbarConfig { write_noise: 0.2, cell_bits: 16, dac_bits: 0, adc_bits: 0, ..CrossbarConfig::default() };
        let xbar = Crossbar::program(&w, &config, &mut rng);
        let dist = w.l1_distance(&xbar.effective_weights());
        assert!(dist > 0.1, "write noise had no effect: {dist}");
    }

    #[test]
    fn stuck_high_saturates_cells() {
        let mut rng = SeededRng::new(6);
        let w = Tensor::full(&[4, 4], 0.5);
        let mut xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
        xbar.inject_stuck_cells(CellFault::StuckHigh, 1.0, &mut rng);
        // All cells at g_max: differential pairs cancel, weights -> 0.
        let back = xbar.effective_weights();
        assert!(back.as_slice().iter().all(|&v| v.abs() < 1e-5));
    }

    #[test]
    fn stuck_low_zeroes_positive_weights() {
        let mut rng = SeededRng::new(7);
        let w = Tensor::full(&[4, 4], 0.5);
        let mut xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
        xbar.inject_stuck_cells(CellFault::StuckLow, 1.0, &mut rng);
        let back = xbar.effective_weights();
        assert!(back.as_slice().iter().all(|&v| v.abs() < 1e-5));
    }

    #[test]
    fn drift_decays_toward_zero_weight() {
        let mut rng = SeededRng::new(8);
        let w = Tensor::randn(&[6, 6], &mut rng);
        let mut xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
        let before = xbar.effective_weights().norm_l1();
        xbar.drift(0.5, 2.0, &mut rng);
        let after = xbar.effective_weights().norm_l1();
        assert!(after < before, "drift should shrink weights: {before} -> {after}");
    }

    #[test]
    fn disturb_stays_in_window() {
        let mut rng = SeededRng::new(9);
        let w = Tensor::randn(&[6, 6], &mut rng);
        let mut xbar = Crossbar::program(&w, &CrossbarConfig::default(), &mut rng);
        xbar.disturb(0.5, &mut rng);
        for &g in xbar.g_pos.as_slice().iter().chain(xbar.g_neg.as_slice()) {
            assert!((0.0..=1.0).contains(&g), "conductance {g} escaped window");
        }
    }

    #[test]
    fn dac_quantization_changes_result() {
        let mut rng = SeededRng::new(10);
        let w = Tensor::randn(&[8, 4], &mut rng);
        let coarse_cfg = CrossbarConfig { dac_bits: 2, adc_bits: 0, cell_bits: 16, write_noise: 0.0, ..CrossbarConfig::default() };
        let xbar_c = Crossbar::program(&w, &coarse_cfg, &mut rng);
        let xbar_i = Crossbar::program(&w, &ideal_config(), &mut rng);
        let x = Tensor::randn(&[8], &mut rng).map(|v| (v * 0.3).clamp(-1.0, 1.0));
        let diff = xbar_c.matvec(&x).l1_distance(&xbar_i.matvec(&x));
        assert!(diff > 1e-4, "2-bit DAC should visibly distort the product");
    }

    #[test]
    fn batched_matmul_bit_identical_to_matvec_rows() {
        let mut rng = SeededRng::new(20);
        for config in [CrossbarConfig::default(), ideal_config()] {
            let w = Tensor::randn(&[12, 7], &mut rng);
            let xbar = Crossbar::program(&w, &config, &mut rng);
            let batch = Tensor::randn(&[5, 12], &mut rng).map(|v| v.clamp(-1.0, 1.0));
            let out = xbar.matmul(&batch);
            assert_eq!(out.shape(), &[5, 7]);
            for b in 0..5 {
                let row = batch.row(b);
                let single = xbar.matvec(&row);
                for (j, (x, y)) in out.row(b).as_slice().iter().zip(single.as_slice()).enumerate()
                {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "batch row {b} col {j}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn fault_injection_invalidates_conductance_cache() {
        let mut rng = SeededRng::new(21);
        let w = Tensor::full(&[4, 4], 0.5);
        let x = Tensor::full(&[1, 4], 1.0);
        for mutate in [
            (|x: &mut Crossbar, r: &mut SeededRng| {
                x.inject_stuck_cells(CellFault::StuckHigh, 1.0, r)
            }) as fn(&mut Crossbar, &mut SeededRng),
            |x, r| x.disturb(0.8, r),
            |x, r| x.drift(1.0, 5.0, r),
        ] {
            let mut xbar = Crossbar::program(&w, &ideal_config(), &mut rng);
            let before = xbar.matmul(&x); // populates the cache
            mutate(&mut xbar, &mut rng);
            let after = xbar.matmul(&x);
            assert!(
                before.l1_distance(&after) > 1e-3,
                "batched result unchanged after fault injection: cache went stale"
            );
            // The cached matrix must agree with a from-scratch read-back.
            let fresh = xbar.g_pos.zip_map(&xbar.g_neg, |p, n| p - n).scale(xbar.scale);
            assert_eq!(
                xbar.effective_weights().as_slice(),
                fresh.as_slice(),
                "cached differential matrix differs from recomputation"
            );
        }
    }

    #[test]
    #[should_panic(expected = "exceed tile geometry")]
    fn rejects_oversized_matrix() {
        let mut rng = SeededRng::new(11);
        let w = Tensor::zeros(&[200, 4]);
        Crossbar::program(&w, &CrossbarConfig::default(), &mut rng);
    }
}
