//! A tiny wall-clock timing harness for the `benches/` targets.
//!
//! Replaces the registry `criterion` dependency with the slice of it these
//! benchmarks used: named groups, per-case warmup + timed iterations, and
//! a median-of-samples report. No statistics engine, no HTML output — the
//! point is a stable relative ordering of the kernels under `--offline`
//! builds, not publication-grade confidence intervals.
//!
//! Enabled by the crate's default `timing` feature; the bench targets
//! declare `required-features = ["timing"]` so `--no-default-features`
//! builds skip them entirely.
//!
//! # Example
//!
//! ```
//! use healthmon_bench::timing::TimingHarness;
//!
//! let mut h = TimingHarness::new("demo").samples(5).iters_per_sample(10);
//! h.case("add", || std::hint::black_box(1u64 + 1));
//! ```

use std::hint::black_box;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Collects timing cases under a group name and prints one line per case.
#[derive(Debug)]
pub struct TimingHarness {
    group: String,
    samples: usize,
    iters: usize,
}

/// One recorded measurement, kept for the optional JSON report.
#[derive(Debug, Clone)]
struct Record {
    group: String,
    name: String,
    median_ns: u128,
    min_ns: u128,
    samples: usize,
    iters: usize,
}

fn records() -> &'static Mutex<Vec<Record>> {
    static RECORDS: OnceLock<Mutex<Vec<Record>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Whether the benches run in short "smoke" mode
/// (`HEALTHMON_BENCH_SMOKE=1`): samples are capped at 2 and calibration
/// budgets shrink, so a full bench binary finishes in seconds. CI uses
/// this to prove the benches run without panicking and to refresh
/// `BENCH_pr2.json`.
pub fn smoke_mode() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| {
        std::env::var("HEALTHMON_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false)
    })
}

/// Writes every measurement recorded so far as a JSON array to the path
/// named by `HEALTHMON_BENCH_JSON` (no-op when the variable is unset).
///
/// Each bench binary calls this at the end of `main`; `scripts/ci.sh
/// --bench-smoke` points the variable at a scratch file and assembles
/// `BENCH_pr2.json` from the per-binary reports.
pub fn write_json_report() {
    let Ok(path) = std::env::var("HEALTHMON_BENCH_JSON") else { return };
    let recs = records().lock().unwrap();
    let mut out = String::from("[\n");
    for (i, r) in recs.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"group\": \"{}\", \"name\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \
             \"samples\": {}, \"iters\": {}}}{}\n",
            r.group,
            r.name,
            r.median_ns,
            r.min_ns,
            r.samples,
            r.iters,
            if i + 1 < recs.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        healthmon_telemetry::log_warn!("warning: could not write bench report to {path}: {e}");
    }
}

/// One case's measurement: the median and min of the per-sample mean
/// iteration times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Median per-iteration time across samples.
    pub median: Duration,
    /// Fastest per-iteration time across samples.
    pub min: Duration,
}

impl TimingHarness {
    /// Creates a harness for a named benchmark group.
    pub fn new(group: impl Into<String>) -> Self {
        let samples = if smoke_mode() { 2 } else { 10 };
        TimingHarness { group: group.into(), samples, iters: 0 }
    }

    /// Number of timed samples per case (default 10; capped at 2 in
    /// [`smoke_mode`]).
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = if smoke_mode() { samples.clamp(1, 2) } else { samples.max(1) };
        self
    }

    /// Fixed iteration count per sample. The default (0) auto-calibrates
    /// so each sample runs for roughly 10 ms.
    pub fn iters_per_sample(mut self, iters: usize) -> Self {
        self.iters = iters;
        self
    }

    /// Times `f`, prints a `group/name: median ... min ...` line, and
    /// returns the measurement.
    pub fn case<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> Measurement {
        // Warmup and calibration: run until ~10 ms have elapsed to size
        // the per-sample iteration count (~1 ms in smoke mode).
        let iters = if self.iters > 0 {
            self.iters
        } else {
            let budget = Duration::from_millis(if smoke_mode() { 1 } else { 10 });
            let started = Instant::now();
            let mut warmup_iters = 0usize;
            while started.elapsed() < budget {
                black_box(f());
                warmup_iters += 1;
            }
            warmup_iters.max(1)
        };

        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let started = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                started.elapsed() / iters as u32
            })
            .collect();
        per_iter.sort_unstable();
        let m = Measurement { median: per_iter[per_iter.len() / 2], min: per_iter[0] };
        println!(
            "{}/{name}: median {:>12?}  min {:>12?}  ({} samples x {iters} iters)",
            self.group, m.median, m.min, self.samples
        );
        records().lock().unwrap().push(Record {
            group: self.group.clone(),
            name: name.to_owned(),
            median_ns: m.median.as_nanos(),
            min_ns: m.min.as_nanos(),
            samples: self.samples,
            iters,
        });
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut h = TimingHarness::new("test").samples(3).iters_per_sample(100);
        let m = h.case("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(m.min <= m.median);
        assert!(m.median > Duration::ZERO);
    }

    #[test]
    fn auto_calibration_produces_iters() {
        let mut h = TimingHarness::new("test").samples(2);
        // Cheap closure: calibration must still terminate quickly and
        // produce a sane measurement.
        let m = h.case("noop", || black_box(1u64));
        assert!(m.min <= m.median);
    }
}
