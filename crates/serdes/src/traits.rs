//! The [`ToJson`] / [`FromJson`] conversion traits and implementations for
//! the primitives and containers the workspace persists.

use crate::error::JsonError;
use crate::value::Json;

/// Conversion of a value into a [`Json`] tree.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion of a [`Json`] tree back into a value.
pub trait FromJson: Sized {
    /// Reconstructs a value from its JSON representation.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if the tree does not match the expected
    /// schema.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(value.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_bool()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::String(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::String(self.to_owned())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_str().map(str::to_owned)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        if self.is_finite() {
            Json::Number(*self)
        } else {
            Json::String(nonfinite_tag(*self < 0.0, self.is_nan()))
        }
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Number(n) => Ok(*n),
            Json::String(s) => parse_nonfinite(s).map(|v| v as f64),
            other => Err(JsonError::type_error("number", other)),
        }
    }
}

/// `f32` values survive a round trip exactly: finite values render in
/// shortest form (which re-parses to the identical `f32`), and non-finite
/// values — which fault-injected weights can legitimately contain — are
/// encoded as the strings `"NaN"`, `"inf"` and `"-inf"` since JSON has no
/// non-finite numbers.
impl ToJson for f32 {
    fn to_json(&self) -> Json {
        if self.is_finite() {
            Json::Number(*self as f64)
        } else {
            Json::String(nonfinite_tag(*self < 0.0, self.is_nan()))
        }
    }
}

impl FromJson for f32 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Number(n) => Ok(*n as f32),
            Json::String(s) => parse_nonfinite(s),
            other => Err(JsonError::type_error("number", other)),
        }
    }
}

fn nonfinite_tag(negative: bool, nan: bool) -> String {
    if nan {
        "NaN".to_owned()
    } else if negative {
        "-inf".to_owned()
    } else {
        "inf".to_owned()
    }
}

fn parse_nonfinite(s: &str) -> Result<f32, JsonError> {
    match s {
        "NaN" => Ok(f32::NAN),
        "inf" => Ok(f32::INFINITY),
        "-inf" => Ok(f32::NEG_INFINITY),
        other => Err(JsonError::invalid(format!("expected a number, found string `{other}`"))),
    }
}

macro_rules! impl_json_integer {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Number(*self as f64)
            }
        }

        impl FromJson for $ty {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                let n = value.as_number()?;
                if n.fract() != 0.0 || n < <$ty>::MIN as f64 || n > <$ty>::MAX as f64 {
                    return Err(JsonError::invalid(format!(
                        "{n} is not a valid {}",
                        stringify!($ty)
                    )));
                }
                Ok(n as $ty)
            }
        }
    )*};
}

impl_json_integer!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_array()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

/// Tuples encode as 2-element arrays (the layout `serde_json` used for the
/// `Vec<(String, Tensor)>` state dicts, kept for artifact compatibility).
impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let items = value.as_array()?;
        if items.len() != 2 {
            return Err(JsonError::invalid(format!(
                "expected a 2-element array, found {} elements",
                items.len()
            )));
        }
        Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
    }
}

#[cfg(test)]
mod tests {
    use crate::{from_str, to_string};

    #[test]
    fn primitive_round_trips() {
        assert!(from_str::<bool>(&to_string(&true)).unwrap());
        assert_eq!(from_str::<u64>(&to_string(&42u64)).unwrap(), 42);
        assert_eq!(from_str::<i32>(&to_string(&-7i32)).unwrap(), -7);
        assert_eq!(from_str::<String>(&to_string("hi")).unwrap(), "hi");
        assert_eq!(from_str::<f64>(&to_string(&2.5f64)).unwrap(), 2.5);
    }

    #[test]
    fn f32_shortest_form_round_trips_exactly() {
        // Values with awkward binary representations.
        for v in [0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 3.402_823_5e38, -1.175_494e-38] {
            let s = to_string(&v);
            assert_eq!(from_str::<f32>(&s).unwrap().to_bits(), v.to_bits(), "via `{s}`");
        }
    }

    #[test]
    fn f32_non_finite_round_trips() {
        assert!(from_str::<f32>(&to_string(&f32::NAN)).unwrap().is_nan());
        assert_eq!(from_str::<f32>(&to_string(&f32::INFINITY)).unwrap(), f32::INFINITY);
        assert_eq!(
            from_str::<f32>(&to_string(&f32::NEG_INFINITY)).unwrap(),
            f32::NEG_INFINITY
        );
    }

    #[test]
    fn integer_conversions_reject_fractions_and_overflow() {
        assert!(from_str::<u32>("2.5").is_err());
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<usize>("-1").is_err());
    }

    #[test]
    fn container_round_trips() {
        let v: Vec<(String, Vec<f32>)> =
            vec![("a".into(), vec![1.0, 2.0]), ("b".into(), vec![])];
        assert_eq!(from_str::<Vec<(String, Vec<f32>)>>(&to_string(&v)).unwrap(), v);
        let o: Option<u64> = None;
        assert_eq!(to_string(&o), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("3").unwrap(), Some(3));
    }

    #[test]
    fn tuple_requires_two_elements() {
        assert!(from_str::<(u32, u32)>("[1,2,3]").is_err());
        assert!(from_str::<(u32, u32)>("[1]").is_err());
    }
}
