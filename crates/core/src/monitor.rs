//! In-field health monitoring built on top of the [`Detector`]: the
//! paper's deployment story as a reusable state machine.
//!
//! The paper motivates concurrent test with a repair hierarchy: cheap
//! fixes (fault-aware remapping) for mild degradation, expensive fixes
//! (cloud retraining) for severe degradation. [`HealthMonitor`] turns a
//! stream of confidence-distance observations into triaged
//! [`HealthState`]s with hysteresis, and keeps the history a maintenance
//! log needs.

use crate::confidence::ConfidenceDistance;
use crate::detect::Detector;
use crate::error::HealthmonError;
use healthmon_nn::InferenceBackend;
use healthmon_serdes::{FromJson, Json, JsonError, ToJson};
use healthmon_telemetry as tel;

// Checkup verdicts follow the deterministic device/checkup sequence, so
// every monitor tally is Stable.
static MONITOR_CHECKS: tel::Counter =
    tel::Counter::new("monitor.checks", tel::Stability::Stable);
static MONITOR_HEALTHY: tel::Counter =
    tel::Counter::new("monitor.state.healthy", tel::Stability::Stable);
static MONITOR_WATCH: tel::Counter =
    tel::Counter::new("monitor.state.watch", tel::Stability::Stable);
static MONITOR_CRITICAL: tel::Counter =
    tel::Counter::new("monitor.state.critical", tel::Stability::Stable);

/// Triage verdict for a monitored accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Confidence distance below the watch threshold: no action.
    Healthy,
    /// Distance in the watch band: schedule cheap repair (e.g.
    /// fault-aware remapping) at the next maintenance window.
    Watch,
    /// Distance beyond the critical threshold: the model needs
    /// reprogramming or cloud retraining now.
    Critical,
}

impl HealthState {
    /// The repair action the paper's hierarchy associates with the state.
    pub fn recommended_action(self) -> &'static str {
        match self {
            HealthState::Healthy => "none",
            HealthState::Watch => "fault-aware remapping",
            HealthState::Critical => "weight reprogramming / cloud retraining",
        }
    }

    /// Stable lowercase label used by serialized artifacts and reports.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Watch => "watch",
            HealthState::Critical => "critical",
        }
    }
}

impl ToJson for HealthState {
    fn to_json(&self) -> Json {
        Json::String(self.label().to_owned())
    }
}

impl FromJson for HealthState {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str()? {
            "healthy" => Ok(HealthState::Healthy),
            "watch" => Ok(HealthState::Watch),
            "critical" => Ok(HealthState::Critical),
            other => Err(JsonError::invalid(format!("unknown health state `{other}`"))),
        }
    }
}

/// One entry of the monitoring log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Checkup {
    /// Monotone check index (0-based).
    pub index: usize,
    /// Observed confidence distance at this check.
    pub distance: ConfidenceDistance,
    /// State after applying thresholds and hysteresis.
    pub state: HealthState,
}

impl ToJson for Checkup {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("index".to_owned(), self.index.to_json()),
            ("distance".to_owned(), self.distance.to_json()),
            ("state".to_owned(), self.state.to_json()),
        ])
    }
}

impl FromJson for Checkup {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Checkup {
            index: usize::from_json(value.field("index")?)?,
            distance: ConfidenceDistance::from_json(value.field("distance")?)?,
            state: HealthState::from_json(value.field("state")?)?,
        })
    }
}

/// Thresholds and hysteresis for [`HealthMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorPolicy {
    /// All-class confidence distance at which the device enters `Watch`.
    pub watch_threshold: f32,
    /// All-class confidence distance at which the device is `Critical`.
    pub critical_threshold: f32,
    /// Consecutive observations required before *escalating* (hysteresis
    /// against one-off noise). De-escalation is immediate: a repaired or
    /// recovered device should read healthy right away.
    pub escalation_count: usize,
}

impl Default for MonitorPolicy {
    fn default() -> Self {
        MonitorPolicy { watch_threshold: 0.02, critical_threshold: 0.06, escalation_count: 1 }
    }
}

impl MonitorPolicy {
    /// Validates the policy.
    ///
    /// # Panics
    ///
    /// Panics if thresholds are non-positive, non-finite or inverted, or
    /// `escalation_count` is zero. Use [`MonitorPolicy::try_validate`]
    /// for a non-panicking check.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// Validates the policy, returning the violation instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// [`HealthmonError::InvalidPolicy`] if thresholds are non-positive,
    /// non-finite or inverted, or `escalation_count` is zero.
    pub fn try_validate(&self) -> Result<(), HealthmonError> {
        // `0.0 < NaN` is false, so non-finite thresholds fail here too.
        if !(0.0 < self.watch_threshold
            && self.watch_threshold < self.critical_threshold
            && self.critical_threshold.is_finite())
        {
            return Err(HealthmonError::InvalidPolicy(format!(
                "thresholds must satisfy 0 < watch ({}) < critical ({}) < inf",
                self.watch_threshold, self.critical_threshold
            )));
        }
        if self.escalation_count == 0 {
            return Err(HealthmonError::InvalidPolicy(
                "escalation count must be non-zero".to_owned(),
            ));
        }
        Ok(())
    }

    fn raw_state(&self, distance: f32) -> HealthState {
        // NaN fails every `>=` here, so without the explicit non-finite
        // clause a poisoned accelerator (non-finite confidence distance)
        // would fall through to `Healthy` — the worst possible misread of
        // a dead device.
        if !distance.is_finite() || distance >= self.critical_threshold {
            HealthState::Critical
        } else if distance >= self.watch_threshold {
            HealthState::Watch
        } else {
            HealthState::Healthy
        }
    }
}

/// A stateful health monitor wrapping a [`Detector`].
///
/// # Example
///
/// ```
/// use healthmon::{Detector, HealthMonitor, HealthState, MonitorPolicy, TestPatternSet};
/// use healthmon_nn::models::tiny_mlp;
/// use healthmon_tensor::{SeededRng, Tensor};
///
/// let mut rng = SeededRng::new(0);
/// let model = tiny_mlp(8, 16, 4, &mut rng);
/// let patterns = TestPatternSet::new("t", Tensor::rand_uniform(&[6, 8], 0.0, 1.0, &mut rng));
/// let detector = Detector::new(&model, patterns);
/// let mut monitor = HealthMonitor::new(detector, MonitorPolicy::default());
///
/// let accelerator = model.clone();
/// let checkup = monitor.check(&accelerator);
/// assert_eq!(checkup.state, HealthState::Healthy);
/// ```
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    detector: Detector,
    policy: MonitorPolicy,
    history: Vec<Checkup>,
    pending_state: HealthState,
    pending_count: usize,
    current: HealthState,
}

impl HealthMonitor {
    /// Creates a monitor with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid.
    pub fn new(detector: Detector, policy: MonitorPolicy) -> Self {
        policy.validate();
        HealthMonitor {
            detector,
            policy,
            history: Vec::new(),
            pending_state: HealthState::Healthy,
            pending_count: 0,
            current: HealthState::Healthy,
        }
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// The monitoring policy.
    pub fn policy(&self) -> &MonitorPolicy {
        &self.policy
    }

    /// The current (hysteresis-filtered) health state.
    pub fn state(&self) -> HealthState {
        self.current
    }

    /// The full check history, oldest first.
    pub fn history(&self) -> &[Checkup] {
        &self.history
    }

    /// Runs one concurrent-test checkup against the accelerator — a
    /// digital network or any live analog backend — and updates the state
    /// machine.
    pub fn check<B: InferenceBackend + ?Sized>(&mut self, accelerator: &B) -> Checkup {
        let _span = tel::span("monitor.check");
        let distance = self.detector.confidence_distance(accelerator);
        let observed = self.policy.raw_state(distance.all_classes);
        self.transition(observed, distance.is_poisoned());
        let checkup = Checkup { index: self.history.len(), distance, state: self.current };
        self.history.push(checkup);
        MONITOR_CHECKS.inc();
        match checkup.state {
            HealthState::Healthy => MONITOR_HEALTHY.inc(),
            HealthState::Watch => MONITOR_WATCH.inc(),
            HealthState::Critical => MONITOR_CRITICAL.inc(),
        }
        checkup
    }

    /// Applies one observation to the hysteresis state machine. Split out
    /// of [`HealthMonitor::check`] so the transition rules are directly
    /// unit-testable without crafting devices that hit exact distance
    /// bands.
    fn transition(&mut self, observed: HealthState, poisoned: bool) {
        // A poisoned (non-finite) distance is not one-off noise to be
        // smoothed away — the device emitted NaN/Inf. Containment demands
        // it bypass hysteresis and read `Critical` on the spot.
        if poisoned {
            self.current = HealthState::Critical;
            self.pending_state = HealthState::Critical;
            self.pending_count = 0;
        } else if observed <= self.current {
            // Escalations need `escalation_count` consecutive
            // confirmations; de-escalations apply immediately.
            self.current = observed;
            self.pending_count = 0;
        } else if observed == self.pending_state {
            self.pending_count += 1;
            if self.pending_count >= self.policy.escalation_count {
                self.current = observed;
                self.pending_count = 0;
            }
        } else {
            self.pending_state = observed;
            self.pending_count = 1;
            if self.pending_count >= self.policy.escalation_count {
                self.current = observed;
                self.pending_count = 0;
            }
        }
    }

    /// Notifies the monitor that the accelerator was repaired (weights
    /// reprogrammed): resets the state machine but keeps the log.
    pub fn acknowledge_repair(&mut self) {
        self.current = HealthState::Healthy;
        self.pending_state = HealthState::Healthy;
        self.pending_count = 0;
    }

    /// Replaces the wrapped detector, keeping the state machine and log.
    ///
    /// Used by graceful degradation: when a damaged accelerator cannot be
    /// fully repaired, the lifetime runtime shrinks the pattern budget
    /// ([`Detector::subset`](crate::Detector::subset)) and keeps serving
    /// at reduced assurance.
    pub fn set_detector(&mut self, detector: Detector) {
        self.detector = detector;
    }

    /// Captures the full mutable state of the monitor (state machine and
    /// log) for checkpointing. Restoring with
    /// [`HealthMonitor::from_snapshot`] under the same detector and policy
    /// reproduces the monitor bit-identically.
    pub fn snapshot(&self) -> MonitorSnapshot {
        MonitorSnapshot {
            current: self.current,
            pending_state: self.pending_state,
            pending_count: self.pending_count,
            history: self.history.clone(),
        }
    }

    /// Rebuilds a monitor from a checkpointed snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid.
    pub fn from_snapshot(detector: Detector, policy: MonitorPolicy, snapshot: MonitorSnapshot) -> Self {
        policy.validate();
        HealthMonitor {
            detector,
            policy,
            history: snapshot.history,
            pending_state: snapshot.pending_state,
            pending_count: snapshot.pending_count,
            current: snapshot.current,
        }
    }
}

/// The serializable mutable state of a [`HealthMonitor`], captured by
/// [`HealthMonitor::snapshot`] for lifetime-runtime checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorSnapshot {
    /// The hysteresis-filtered current state.
    pub current: HealthState,
    /// The state awaiting confirmation.
    pub pending_state: HealthState,
    /// Consecutive confirmations so far.
    pub pending_count: usize,
    /// Full checkup log, oldest first.
    pub history: Vec<Checkup>,
}

impl ToJson for MonitorSnapshot {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("current".to_owned(), self.current.to_json()),
            ("pending_state".to_owned(), self.pending_state.to_json()),
            ("pending_count".to_owned(), self.pending_count.to_json()),
            ("history".to_owned(), self.history.to_json()),
        ])
    }
}

impl FromJson for MonitorSnapshot {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(MonitorSnapshot {
            current: HealthState::from_json(value.field("current")?)?,
            pending_state: HealthState::from_json(value.field("pending_state")?)?,
            pending_count: usize::from_json(value.field("pending_count")?)?,
            history: Vec::from_json(value.field("history")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::TestPatternSet;
    use healthmon_faults::FaultModel;
    use healthmon_nn::models::tiny_mlp;
    use healthmon_nn::Network;
    use healthmon_tensor::{SeededRng, Tensor};

    fn setup(escalation: usize) -> (Network, HealthMonitor) {
        let mut rng = SeededRng::new(1);
        let net = tiny_mlp(8, 16, 4, &mut rng);
        let patterns =
            TestPatternSet::new("t", Tensor::rand_uniform(&[8, 8], 0.0, 1.0, &mut rng));
        let detector = Detector::new(&net, patterns);
        let policy = MonitorPolicy { escalation_count: escalation, ..MonitorPolicy::default() };
        (net, HealthMonitor::new(detector, policy))
    }

    #[test]
    fn healthy_device_stays_healthy() {
        let (net, mut monitor) = setup(1);
        let device = net.clone();
        for _ in 0..3 {
            assert_eq!(monitor.check(&device).state, HealthState::Healthy);
        }
        assert_eq!(monitor.history().len(), 3);
    }

    #[test]
    fn degraded_device_escalates() {
        let (net, mut monitor) = setup(1);
        let mut device = net.clone();
        FaultModel::RandomSoftError { probability: 0.5 }
            .apply(&mut device, &mut SeededRng::new(2));
        let checkup = monitor.check(&device);
        assert!(checkup.state >= HealthState::Watch, "state {:?}", checkup.state);
        assert!(checkup.distance.all_classes > 0.02);
    }

    #[test]
    fn hysteresis_requires_consecutive_confirmations() {
        let (net, mut monitor) = setup(2);
        let mut bad = net.clone();
        FaultModel::RandomSoftError { probability: 0.5 }.apply(&mut bad, &mut SeededRng::new(2));
        // First bad reading: still healthy (pending).
        assert_eq!(monitor.check(&bad).state, HealthState::Healthy);
        // Second consecutive: escalates.
        assert_ne!(monitor.check(&bad).state, HealthState::Healthy);
    }

    #[test]
    fn recovery_deescalates_immediately() {
        let (net, mut monitor) = setup(1);
        let mut bad = net.clone();
        FaultModel::RandomSoftError { probability: 0.5 }.apply(&mut bad, &mut SeededRng::new(2));
        monitor.check(&bad);
        assert_ne!(monitor.state(), HealthState::Healthy);
        let repaired = net.clone();
        assert_eq!(monitor.check(&repaired).state, HealthState::Healthy);
    }

    #[test]
    fn acknowledge_repair_resets_state() {
        let (net, mut monitor) = setup(1);
        let mut bad = net.clone();
        FaultModel::RandomSoftError { probability: 0.5 }.apply(&mut bad, &mut SeededRng::new(2));
        monitor.check(&bad);
        monitor.acknowledge_repair();
        assert_eq!(monitor.state(), HealthState::Healthy);
        // History preserved.
        assert_eq!(monitor.history().len(), 1);
    }

    #[test]
    fn states_order_by_severity() {
        assert!(HealthState::Healthy < HealthState::Watch);
        assert!(HealthState::Watch < HealthState::Critical);
    }

    #[test]
    fn recommended_actions() {
        assert_eq!(HealthState::Healthy.recommended_action(), "none");
        assert!(HealthState::Critical.recommended_action().contains("retraining"));
    }

    #[test]
    fn non_finite_distance_is_always_critical() {
        let policy = MonitorPolicy::default();
        assert_eq!(policy.raw_state(f32::NAN), HealthState::Critical);
        assert_eq!(policy.raw_state(f32::INFINITY), HealthState::Critical);
        assert_eq!(policy.raw_state(f32::NEG_INFINITY), HealthState::Critical);
        // Finite behaviour unchanged.
        assert_eq!(policy.raw_state(0.0), HealthState::Healthy);
        assert_eq!(policy.raw_state(1.0), HealthState::Critical);
    }

    #[test]
    fn try_validate_reports_violations() {
        assert!(MonitorPolicy::default().try_validate().is_ok());
        let inverted =
            MonitorPolicy { watch_threshold: 0.5, critical_threshold: 0.1, escalation_count: 1 };
        let err = inverted.try_validate().unwrap_err();
        assert!(err.to_string().contains("thresholds must satisfy"));
        let nan = MonitorPolicy { watch_threshold: f32::NAN, ..MonitorPolicy::default() };
        assert!(nan.try_validate().is_err());
        let unbounded =
            MonitorPolicy { critical_threshold: f32::INFINITY, ..MonitorPolicy::default() };
        assert!(unbounded.try_validate().is_err());
        let never = MonitorPolicy { escalation_count: 0, ..MonitorPolicy::default() };
        assert!(never.try_validate().unwrap_err().to_string().contains("non-zero"));
    }

    #[test]
    #[should_panic(expected = "thresholds must satisfy")]
    fn rejects_inverted_thresholds() {
        let (_, monitor) = setup(1);
        let detector = monitor.detector().clone();
        HealthMonitor::new(
            detector,
            MonitorPolicy { watch_threshold: 0.5, critical_threshold: 0.1, escalation_count: 1 },
        );
    }

    #[test]
    fn escalation_count_one_promotes_on_first_divergent_observation() {
        // Regression for the `else` arm of the transition: with
        // escalation_count == 1 a *new* pending state must promote
        // immediately (pending_count = 1 >= 1), not wait a second check.
        let (_, mut monitor) = setup(1);
        monitor.transition(HealthState::Watch, false);
        assert_eq!(monitor.state(), HealthState::Watch);
        assert_eq!(monitor.pending_count, 0, "promotion must clear the pending counter");
        // And straight to Critical from Watch, again in one observation.
        monitor.transition(HealthState::Critical, false);
        assert_eq!(monitor.state(), HealthState::Critical);
    }

    #[test]
    fn state_flip_mid_confirmation_resets_pending_count() {
        // Regression: with escalation_count == 3, two Watch observations
        // (pending 2/3) followed by a Critical one must RESTART the count
        // at 1 for Critical — a stale count would let the third divergent
        // observation escalate one check early.
        let (_, mut monitor) = setup(3);
        monitor.transition(HealthState::Watch, false);
        monitor.transition(HealthState::Watch, false);
        assert_eq!(monitor.state(), HealthState::Healthy);
        assert_eq!(monitor.pending_count, 2);

        monitor.transition(HealthState::Critical, false);
        assert_eq!(monitor.state(), HealthState::Healthy, "flip must not escalate yet");
        assert_eq!(monitor.pending_state, HealthState::Critical);
        assert_eq!(monitor.pending_count, 1, "flip must reset the confirmation count");

        // Two more Critical confirmations complete the new count of 3.
        monitor.transition(HealthState::Critical, false);
        assert_eq!(monitor.state(), HealthState::Healthy);
        monitor.transition(HealthState::Critical, false);
        assert_eq!(monitor.state(), HealthState::Critical);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let (net, mut monitor) = setup(2);
        let mut bad = net.clone();
        FaultModel::RandomSoftError { probability: 0.5 }.apply(&mut bad, &mut SeededRng::new(2));
        monitor.check(&bad);
        monitor.check(&bad);
        let snap = monitor.snapshot();
        let json = healthmon_serdes::to_string(&snap);
        let restored: MonitorSnapshot = healthmon_serdes::from_str(&json).unwrap();
        assert_eq!(restored, snap);

        let revived = HealthMonitor::from_snapshot(
            monitor.detector().clone(),
            *monitor.policy(),
            restored,
        );
        assert_eq!(revived.state(), monitor.state());
        assert_eq!(revived.history(), monitor.history());
        // The revived monitor continues exactly where the original is.
        let mut a = monitor;
        let mut b = revived;
        let device = net.clone();
        assert_eq!(a.check(&device), b.check(&device));
    }

    #[test]
    fn health_state_labels_round_trip() {
        for state in [HealthState::Healthy, HealthState::Watch, HealthState::Critical] {
            let json = healthmon_serdes::to_string(&state);
            let back: HealthState = healthmon_serdes::from_str(&json).unwrap();
            assert_eq!(back, state);
        }
        assert!(healthmon_serdes::from_str::<HealthState>("\"zombie\"").is_err());
    }
}
