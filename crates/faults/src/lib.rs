//! Deterministic fault injection for ReRAM-mapped neural network weights.
//!
//! The paper's evaluation perturbs a trained ("golden") model with two
//! error families and asks whether a small set of test patterns can detect
//! the perturbation:
//!
//! * **Programming variation** — `w' = w · e^θ`, `θ ~ N(0, σ²)`: the
//!   lognormal multiplicative error of imprecise conductance programming
//!   ([`FaultModel::ProgrammingVariation`]).
//! * **Random soft errors** — each weight corrupted independently with
//!   probability `p` ([`FaultModel::RandomSoftError`]), modelling run-time
//!   upsets of stored conductance states.
//!
//! Two further device-motivated models round out the library:
//! stuck-at-zero/one cells ([`FaultModel::StuckAt`]) from fabrication and
//! endurance failures, and monotone resistance drift
//! ([`FaultModel::Drift`]). Models compose via [`FaultModel::Compound`].
//!
//! Injection is **deterministic**: a [`FaultCampaign`] derives one RNG
//! stream per fault-model index from a campaign seed, so every experiment
//! in `EXPERIMENTS.md` can be replayed bit-for-bit.
//!
//! # Example
//!
//! ```
//! use healthmon_faults::{FaultCampaign, FaultModel};
//! use healthmon_nn::models::tiny_mlp;
//! use healthmon_tensor::SeededRng;
//!
//! let mut rng = SeededRng::new(0);
//! let golden = tiny_mlp(4, 8, 3, &mut rng);
//! let campaign = FaultCampaign::new(&golden, 99);
//! let faulty: Vec<_> = campaign
//!     .models(&FaultModel::ProgrammingVariation { sigma: 0.2 }, 5)
//!     .collect();
//! assert_eq!(faulty.len(), 5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arrival;
mod campaign;
mod model;

pub use arrival::{poisson_count, sample_cell_arrivals, CellArrival};
pub use campaign::{
    par_map_indices, par_map_indices_with_threads, par_map_models, par_map_models_with_threads,
    try_par_map_models, CampaignPanic, FaultCampaign,
};
pub use model::FaultModel;
