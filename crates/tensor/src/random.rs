//! Deterministic random source for the whole workspace.
//!
//! Every stochastic component — weight init, dataset synthesis, fault
//! injection, O-TP seeding — draws from a [`SeededRng`], so any experiment
//! is exactly reproducible from the seeds recorded in its report.
//!
//! The generator is an in-tree xoshiro256++ seeded through SplitMix64:
//! no registry dependency, identical streams on every platform, and fast
//! enough that fault-campaign cloning dominates, not sampling.

/// A seeded pseudo-random number generator with the samplers the ReRAM
/// error models need.
///
/// Core stream: xoshiro256++ (Blackman & Vigna), state expanded from a
/// 64-bit seed with SplitMix64. On top of the raw stream it provides
/// Box–Muller normal / lognormal sampling for the paper's error models.
///
/// # Example
///
/// ```
/// use healthmon_tensor::SeededRng;
///
/// let mut rng = SeededRng::new(1234);
/// let theta = rng.normal(0.0, 0.1);
/// assert!(theta.is_finite());
/// // lognormal multiplicative weight error, as in w' = w * e^theta
/// let factor = rng.lognormal(0.0, 0.1);
/// assert!(factor > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f32>,
}

/// Pairs of Box–Muller variates computed per block by the bulk samplers;
/// sized so the scratch buffers live comfortably in L1.
const BM_BLOCK: usize = 64;

/// One Box–Muller pair from two raw 64-bit draws, on the fast polynomial
/// transcendentals. `u1 ∈ (0, 1]` (so `ln` never sees zero) and
/// `u2 ∈ [0, 1)`.
#[inline(always)]
fn box_muller(u_a: u64, u_b: u64) -> (f32, f32) {
    let u1 = ((u_a >> 40) as f32 + 1.0) * (1.0 / (1u64 << 24) as f32);
    let u2 = (u_b >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
    let r = (-2.0 * crate::fastmath::ln(u1)).sqrt();
    let (s, c) = crate::fastmath::sincos_2pi(u2);
    (r * c, r * s)
}

/// One SplitMix64 step; used to expand seeds and mix fork streams.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion guarantees a non-zero xoshiro state for
        // every seed (the all-zero state is a fixed point of xoshiro).
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SeededRng { state, spare_normal: None }
    }

    /// Next raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Derives an independent child generator; used to give each fault
    /// model or worker its own stream while keeping the parent stream
    /// untouched by how much the child consumes.
    pub fn fork(&mut self, stream: u64) -> SeededRng {
        let base = self.next_u64();
        // SplitMix-style mixing of the stream id into the forked seed.
        let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SeededRng::new(z ^ (z >> 31))
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform bounds inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.unit()
    }

    /// Uniform sample in `[0, 1)`.
    pub fn unit(&mut self) -> f32 {
        // 24 high bits -> all f32 values in [0, 1) are equally likely and
        // exactly representable.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` sample in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift range reduction; bias is < n / 2^64,
        // negligible for every n this workspace uses.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli trial with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        self.unit_f64() < p
    }

    /// Normal sample with the given mean and standard deviation
    /// (Box–Muller; the spare variate is cached).
    ///
    /// # Panics
    ///
    /// Panics if `std_dev < 0`.
    pub fn normal(&mut self, mean: f32, std_dev: f32) -> f32 {
        assert!(std_dev >= 0.0, "negative standard deviation {std_dev}");
        let z = if let Some(z) = self.spare_normal.take() {
            z
        } else {
            // Box–Muller: two uniforms -> two independent standard normals.
            let u1: f32 = loop {
                let u = self.unit();
                if u > f32::MIN_POSITIVE {
                    break u;
                }
            };
            let u2: f32 = self.unit();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            self.spare_normal = Some(r * theta.sin());
            r * theta.cos()
        };
        mean + std_dev * z
    }

    /// Lognormal sample `e^N(mu, sigma^2)`, the multiplicative factor of the
    /// paper's programming-variation error model `w' = w * e^theta`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn lognormal(&mut self, mu: f32, sigma: f32) -> f32 {
        self.normal(mu, sigma).exp()
    }

    /// Fills `out` with independent `N(mean, std_dev²)` samples — the bulk
    /// counterpart of [`SeededRng::normal`] for the per-weight error
    /// models, where sampling cost dominates whole campaigns.
    ///
    /// Draws from the same underlying xoshiro stream (two raw draws per
    /// Box–Muller pair) but computes the transform with the vectorizable
    /// polynomial approximations in [`crate::fastmath`], so the values
    /// differ from repeated [`SeededRng::normal`] calls in the last few
    /// ulps and in draw order. The procedure is fully deterministic for a
    /// given seed and length; it neither reads nor writes the cached
    /// spare variate of the scalar sampler.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev < 0`.
    pub fn fill_normal(&mut self, out: &mut [f32], mean: f32, std_dev: f32) {
        assert!(std_dev >= 0.0, "negative standard deviation {std_dev}");
        const SCALE: f32 = 1.0 / (1u64 << 24) as f32;
        let mut u1 = [0f32; BM_BLOCK];
        let mut u2 = [0f32; BM_BLOCK];
        let mut chunks = out.chunks_exact_mut(2 * BM_BLOCK);
        for chunk in &mut chunks {
            // Raw draws first (a serial dependency chain, converted to f32
            // here so the block below is float-only), then the pure math,
            // which LLVM auto-vectorizes.
            for (a, b) in u1.iter_mut().zip(u2.iter_mut()) {
                *a = ((self.next_u64() >> 40) as f32 + 1.0) * SCALE;
                *b = (self.next_u64() >> 40) as f32 * SCALE;
            }
            let (lo, hi) = chunk.split_at_mut(BM_BLOCK);
            for i in 0..BM_BLOCK {
                let r = (-2.0 * crate::fastmath::ln(u1[i])).sqrt();
                let (s, c) = crate::fastmath::sincos_2pi(u2[i]);
                lo[i] = mean + std_dev * (r * c);
                hi[i] = mean + std_dev * (r * s);
            }
        }
        let rem = chunks.into_remainder();
        let mut i = 0;
        while i < rem.len() {
            let (z0, z1) = box_muller(self.next_u64(), self.next_u64());
            rem[i] = mean + std_dev * z0;
            if i + 1 < rem.len() {
                rem[i + 1] = mean + std_dev * z1;
            }
            i += 2;
        }
    }

    /// Fills `out` with independent lognormal samples `e^N(mu, sigma²)` —
    /// the bulk counterpart of [`SeededRng::lognormal`], with the same
    /// stream semantics as [`SeededRng::fill_normal`].
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    pub fn fill_lognormal(&mut self, out: &mut [f32], mu: f32, sigma: f32) {
        self.fill_normal(out, mu, sigma);
        for v in out.iter_mut() {
            *v = crate::fastmath::exp(*v);
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx
    }

    /// Samples `k` distinct indices from `0..n` (reservoir-free; shuffles a
    /// prefix).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
        let mut idx = self.permutation(n);
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SeededRng::new(99);
        let mut b = SeededRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4, "streams from different seeds should differ");
    }

    #[test]
    fn zero_seed_stream_is_healthy() {
        // SplitMix64 expansion must prevent the degenerate all-zero state.
        let mut rng = SeededRng::new(0);
        let draws: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&v| v != 0));
        let mut dedup = draws.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), draws.len(), "xoshiro output repeated immediately");
    }

    #[test]
    fn unit_covers_interval() {
        let mut rng = SeededRng::new(13);
        let mut lo = 1.0f32;
        let mut hi = 0.0f32;
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = SeededRng::new(17);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[rng.below(5)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((1800..2200).contains(&c), "bucket {i} count {c}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = SeededRng::new(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|&x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn lognormal_positive_and_median() {
        let mut rng = SeededRng::new(21);
        let n = 20_000;
        let mut samples: Vec<f32> = (0..n).map(|_| rng.lognormal(0.0, 0.3)).collect();
        assert!(samples.iter().all(|&v| v > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Median of lognormal(mu=0) is e^0 = 1.
        let median = samples[n / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn fill_normal_moments() {
        let mut rng = SeededRng::new(7);
        let mut samples = vec![0.0f32; 20_000];
        rng.fill_normal(&mut samples, 2.0, 3.0);
        let n = samples.len() as f32;
        let mean = samples.iter().sum::<f32>() / n;
        let var = samples.iter().map(|&x| (x - mean).powi(2)).sum::<f32>() / n;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn fill_normal_deterministic_and_handles_odd_lengths() {
        for len in [0usize, 1, 2, 3, 127, 128, 129, 300] {
            let mut a = vec![0.0f32; len];
            let mut b = vec![0.0f32; len];
            SeededRng::new(31).fill_normal(&mut a, 0.0, 1.0);
            SeededRng::new(31).fill_normal(&mut b, 0.0, 1.0);
            assert_eq!(a, b, "length {len} not deterministic");
            assert!(a.iter().all(|v| v.is_finite()), "non-finite sample at length {len}");
        }
    }

    #[test]
    fn fill_normal_zero_std_dev_is_constant() {
        let mut samples = vec![1.0f32; 300];
        SeededRng::new(3).fill_normal(&mut samples, 0.25, 0.0);
        assert!(samples.iter().all(|&v| v == 0.25));
    }

    #[test]
    fn fill_lognormal_positive_and_median() {
        let mut rng = SeededRng::new(21);
        let mut samples = vec![0.0f32; 20_000];
        rng.fill_lognormal(&mut samples, 0.0, 0.3);
        assert!(samples.iter().all(|&v| v > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn fill_lognormal_zero_sigma_is_exact_identity_factor() {
        // The fault models rely on sigma = 0 producing factor 1.0 exactly.
        let mut samples = vec![0.0f32; 130];
        SeededRng::new(9).fill_lognormal(&mut samples, 0.0, 0.0);
        assert!(samples.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn chance_frequency() {
        let mut rng = SeededRng::new(5);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn permutation_is_permutation() {
        let mut rng = SeededRng::new(3);
        let mut p = rng.permutation(50);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = SeededRng::new(4);
        let s = rng.sample_indices(100, 10);
        assert_eq!(s.len(), 10);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn fork_streams_are_independent_of_consumption() {
        let mut parent1 = SeededRng::new(42);
        let mut parent2 = SeededRng::new(42);
        let mut c1 = parent1.fork(0);
        let c2 = parent2.fork(0);
        // Consuming from one child must not change the other's stream.
        for _ in 0..10 {
            c1.unit();
        }
        let mut c1b = SeededRng::new(42).fork(0);
        for _ in 0..10 {
            c1b.unit();
        }
        assert_eq!(c1.unit(), c1b.unit());
        let _ = c2;
    }

    #[test]
    fn fork_distinct_streams_differ() {
        let mut parent = SeededRng::new(42);
        // fork() consumes parent state, so fork ids must come from one parent.
        let mut a = parent.fork(1);
        let mut parent = SeededRng::new(42);
        let mut b = parent.fork(2);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn chance_rejects_out_of_range() {
        SeededRng::new(0).chance(1.5);
    }
}
