//! A tiny software rasterizer used by the dataset generators.
//!
//! Operates on single-channel planes stored row-major as `&mut [f32]`
//! with values in `[0, 1]`; drawing is additive-saturating (`max`), so
//! overlapping strokes do not over-brighten.

/// A single-channel drawing surface of `width × height` pixels.
#[derive(Debug)]
pub(crate) struct Canvas<'a> {
    pub data: &'a mut [f32],
    pub width: usize,
    pub height: usize,
}

impl<'a> Canvas<'a> {
    pub fn new(data: &'a mut [f32], width: usize, height: usize) -> Self {
        assert_eq!(data.len(), width * height, "canvas buffer size mismatch");
        Canvas { data, width, height }
    }

    /// Deposits `v` at `(x, y)` with saturation (keeps the max).
    fn deposit(&mut self, x: isize, y: isize, v: f32) {
        if x < 0 || y < 0 || x >= self.width as isize || y >= self.height as isize {
            return;
        }
        let idx = y as usize * self.width + x as usize;
        self.data[idx] = self.data[idx].max(v.clamp(0.0, 1.0));
    }

    /// Draws an anti-aliased thick line from `(x0, y0)` to `(x1, y1)` in
    /// continuous pixel coordinates with the given stroke half-width and
    /// intensity.
    pub fn line(&mut self, x0: f32, y0: f32, x1: f32, y1: f32, half_width: f32, intensity: f32) {
        let (dx, dy) = (x1 - x0, y1 - y0);
        let len_sq = dx * dx + dy * dy;
        let pad = half_width.ceil() as isize + 1;
        let min_x = x0.min(x1).floor() as isize - pad;
        let max_x = x0.max(x1).ceil() as isize + pad;
        let min_y = y0.min(y1).floor() as isize - pad;
        let max_y = y0.max(y1).ceil() as isize + pad;
        for py in min_y..=max_y {
            for px in min_x..=max_x {
                let (fx, fy) = (px as f32 + 0.5, py as f32 + 0.5);
                // Distance from pixel center to the segment.
                let t = if len_sq > 0.0 {
                    (((fx - x0) * dx + (fy - y0) * dy) / len_sq).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let (cx, cy) = (x0 + t * dx, y0 + t * dy);
                let dist = ((fx - cx).powi(2) + (fy - cy).powi(2)).sqrt();
                // 1-pixel anti-aliasing falloff at the stroke edge.
                let alpha = (half_width + 0.5 - dist).clamp(0.0, 1.0);
                if alpha > 0.0 {
                    self.deposit(px, py, intensity * alpha);
                }
            }
        }
    }

    /// Draws a filled axis-aligned rectangle (continuous coordinates).
    pub fn fill_rect(&mut self, x0: f32, y0: f32, x1: f32, y1: f32, intensity: f32) {
        let (x0, x1) = (x0.min(x1), x0.max(x1));
        let (y0, y1) = (y0.min(y1), y0.max(y1));
        for py in y0.floor() as isize..=y1.ceil() as isize {
            for px in x0.floor() as isize..=x1.ceil() as isize {
                let (fx, fy) = (px as f32 + 0.5, py as f32 + 0.5);
                if fx >= x0 && fx <= x1 && fy >= y0 && fy <= y1 {
                    self.deposit(px, py, intensity);
                }
            }
        }
    }

    /// Draws a filled circle with a 1-pixel anti-aliased rim.
    pub fn fill_circle(&mut self, cx: f32, cy: f32, radius: f32, intensity: f32) {
        let pad = radius.ceil() as isize + 1;
        for py in cy as isize - pad..=cy as isize + pad {
            for px in cx as isize - pad..=cx as isize + pad {
                let (fx, fy) = (px as f32 + 0.5, py as f32 + 0.5);
                let dist = ((fx - cx).powi(2) + (fy - cy).powi(2)).sqrt();
                let alpha = (radius + 0.5 - dist).clamp(0.0, 1.0);
                if alpha > 0.0 {
                    self.deposit(px, py, intensity * alpha);
                }
            }
        }
    }

    /// Draws a circle outline of the given stroke half-width.
    pub fn ring(&mut self, cx: f32, cy: f32, radius: f32, half_width: f32, intensity: f32) {
        let pad = (radius + half_width).ceil() as isize + 1;
        for py in cy as isize - pad..=cy as isize + pad {
            for px in cx as isize - pad..=cx as isize + pad {
                let (fx, fy) = (px as f32 + 0.5, py as f32 + 0.5);
                let dist = ((fx - cx).powi(2) + (fy - cy).powi(2)).sqrt();
                let alpha = (half_width + 0.5 - (dist - radius).abs()).clamp(0.0, 1.0);
                if alpha > 0.0 {
                    self.deposit(px, py, intensity * alpha);
                }
            }
        }
    }

    /// Draws a filled triangle via half-plane tests.
    pub fn fill_triangle(
        &mut self,
        (ax, ay): (f32, f32),
        (bx, by): (f32, f32),
        (cx, cy): (f32, f32),
        intensity: f32,
    ) {
        let min_x = ax.min(bx).min(cx).floor() as isize;
        let max_x = ax.max(bx).max(cx).ceil() as isize;
        let min_y = ay.min(by).min(cy).floor() as isize;
        let max_y = ay.max(by).max(cy).ceil() as isize;
        let edge = |x0: f32, y0: f32, x1: f32, y1: f32, px: f32, py: f32| {
            (px - x0) * (y1 - y0) - (py - y0) * (x1 - x0)
        };
        for py in min_y..=max_y {
            for px in min_x..=max_x {
                let (fx, fy) = (px as f32 + 0.5, py as f32 + 0.5);
                let e0 = edge(ax, ay, bx, by, fx, fy);
                let e1 = edge(bx, by, cx, cy, fx, fy);
                let e2 = edge(cx, cy, ax, ay, fx, fy);
                let inside = (e0 >= 0.0 && e1 >= 0.0 && e2 >= 0.0)
                    || (e0 <= 0.0 && e1 <= 0.0 && e2 <= 0.0);
                if inside {
                    self.deposit(px, py, intensity);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canvas_sum(f: impl FnOnce(&mut Canvas<'_>)) -> (Vec<f32>, f32) {
        let mut buf = vec![0.0f32; 16 * 16];
        {
            let mut c = Canvas::new(&mut buf, 16, 16);
            f(&mut c);
        }
        let sum = buf.iter().sum();
        (buf, sum)
    }

    #[test]
    fn line_deposits_ink() {
        let (buf, sum) = canvas_sum(|c| c.line(2.0, 2.0, 14.0, 2.0, 1.0, 1.0));
        assert!(sum > 10.0, "line too faint: {sum}");
        // Ink concentrated near row 2.
        let row2: f32 = buf[2 * 16..3 * 16].iter().sum();
        assert!(row2 > sum * 0.3);
    }

    #[test]
    fn vertical_and_diagonal_lines() {
        let (_, v) = canvas_sum(|c| c.line(8.0, 1.0, 8.0, 15.0, 1.0, 1.0));
        let (_, d) = canvas_sum(|c| c.line(1.0, 1.0, 15.0, 15.0, 1.0, 1.0));
        assert!(v > 10.0 && d > 10.0);
    }

    #[test]
    fn circle_area_scales_with_radius() {
        let (_, small) = canvas_sum(|c| c.fill_circle(8.0, 8.0, 2.0, 1.0));
        let (_, large) = canvas_sum(|c| c.fill_circle(8.0, 8.0, 5.0, 1.0));
        assert!(large > small * 3.0, "small {small} large {large}");
    }

    #[test]
    fn ring_is_hollow() {
        let (buf, _) = canvas_sum(|c| c.ring(8.0, 8.0, 5.0, 1.0, 1.0));
        // Center empty, rim inked.
        assert_eq!(buf[8 * 16 + 8], 0.0);
        assert!(buf[8 * 16 + 13] > 0.3);
    }

    #[test]
    fn rect_inside_only() {
        let (buf, _) = canvas_sum(|c| c.fill_rect(4.0, 4.0, 8.0, 8.0, 0.9));
        assert!(buf[6 * 16 + 6] > 0.8);
        assert_eq!(buf[16 + 1], 0.0);
    }

    #[test]
    fn triangle_orientation_independent() {
        let (_, a) = canvas_sum(|c| c.fill_triangle((2.0, 2.0), (14.0, 2.0), (8.0, 14.0), 1.0));
        let (_, b) = canvas_sum(|c| c.fill_triangle((8.0, 14.0), (14.0, 2.0), (2.0, 2.0), 1.0));
        assert!((a - b).abs() < 1e-3);
        assert!(a > 20.0);
    }

    #[test]
    fn out_of_bounds_drawing_is_safe() {
        let (_, sum) = canvas_sum(|c| {
            c.line(-10.0, -10.0, 30.0, 30.0, 2.0, 1.0);
            c.fill_circle(-5.0, -5.0, 3.0, 1.0);
        });
        assert!(sum > 0.0); // Did not panic, clipped correctly.
    }

    #[test]
    fn values_saturate_at_one() {
        let (buf, _) = canvas_sum(|c| {
            for _ in 0..10 {
                c.fill_rect(4.0, 4.0, 8.0, 8.0, 1.0);
            }
        });
        assert!(buf.iter().all(|&v| v <= 1.0));
    }
}
