//! A from-scratch neural network framework for the `healthmon` workspace.
//!
//! This crate is the DNN substrate the paper's test-pattern methods run on:
//! layer-graph networks with full backpropagation to **both weights and
//! inputs** (O-TP pattern optimization and the FGSM/AET baseline need input
//! gradients), SGD/momentum/Adam optimizers, a small training harness, and
//! factory functions for the paper's two evaluation models —
//! [`models::lenet5`] (MNIST-class 28×28×1) and [`models::convnet7`]
//! (CIFAR10-class 32×32×3, 4 conv + 3 fully-connected layers).
//!
//! Tensors come from [`healthmon_tensor`]; there is no BLAS and no external
//! DL framework, so every number is reproducible from a seed.
//!
//! # Example
//!
//! ```
//! use healthmon_nn::{Network, layers::{Dense, Relu}};
//! use healthmon_tensor::{SeededRng, Tensor};
//!
//! let mut rng = SeededRng::new(0);
//! let mut net = Network::new(vec![4]);
//! net.push(Dense::new(4, 8, &mut rng));
//! net.push(Relu::new());
//! net.push(Dense::new(8, 3, &mut rng));
//!
//! let x = Tensor::randn(&[2, 4], &mut rng); // batch of 2
//! let logits = net.forward(&x);
//! assert_eq!(logits.shape(), &[2, 3]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod init;
pub mod layers;
pub mod loss;
pub mod models;
mod network;
pub mod optim;
pub mod trainer;
pub mod zoo;

pub use backend::{DigitalBackend, InferenceBackend};
pub use layers::{DigitalEngine, Layer, MatmulEngine, MatmulOrientation};
pub use loss::SoftmaxCrossEntropy;
pub use network::{LoadStateError, Network, NonFiniteActivation, ParamStats};
pub use trainer::{DropConnect, TrainConfig, TrainReport, Trainer};
pub use zoo::{DataFamily, ModelSpec, UnknownModel};
