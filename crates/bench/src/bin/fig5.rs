//! **Fig 5**: detection rate vs programming-variation σ on the
//! class-change criteria (SDC-1 and SDC-5) for AET and C-TP on both
//! benchmarks (O-TP is excluded, as in the paper — it does not assess the
//! top-ranked class).

use healthmon::report::series_line;
use healthmon::{Detector, SdcCriterion};
use healthmon_bench::harness::{
    emit, models_per_level, pattern_suite, train_or_load, Benchmark, CAMPAIGN_SEED,
};
use healthmon_faults::FaultModel;
use std::fmt::Write as _;

fn main() {
    let criteria = [SdcCriterion::Sdc1, SdcCriterion::Sdc5];
    let count = models_per_level();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 5 — detection rate vs sigma on SDC-1 / SDC-5 ({count} fault models per point)\n"
    );
    for benchmark in [Benchmark::Lenet5Digits, Benchmark::Convnet7Objects] {
        let mut trained = train_or_load(benchmark);
        let suite = pattern_suite(&mut trained);
        let _ = writeln!(out, "== {} ==", benchmark.label());
        for patterns in [&suite.aet, &suite.ctp] {
            let detector = Detector::new(&trained.model, patterns.clone());
            let mut series: Vec<Vec<(f32, f32)>> = vec![Vec::new(); criteria.len()];
            for sigma in benchmark.sigma_grid() {
                let rates = detector.detection_rates(
                    &trained.model,
                    &FaultModel::ProgrammingVariation { sigma },
                    count,
                    CAMPAIGN_SEED,
                    &criteria,
                );
                for (s, r) in series.iter_mut().zip(&rates) {
                    s.push((sigma, *r));
                }
            }
            for (crit, s) in criteria.iter().zip(&series) {
                let _ = writeln!(
                    out,
                    "{}",
                    series_line(&format!("{} {}", patterns.method(), crit.label()), s)
                );
            }
        }
        let _ = writeln!(out);
    }
    emit("fig5", &out);
}
