//! Crossbar-level deployment: what the analog arrays do to a trained
//! model.
//!
//! Trains a small digit classifier, deploys it onto simulated ReRAM
//! crossbars at several cell precisions and write-noise levels, and
//! reports the resulting accuracy — then injects stuck-at cells tile by
//! tile and shows a single crossbar `matvec` with DAC/ADC quantization.
//!
//! Run with:
//! ```sh
//! cargo run --release -p healthmon --example crossbar_inference
//! ```

use healthmon_data::{DatasetSpec, SynthDigits};
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::optim::Sgd;
use healthmon_nn::{TrainConfig, Trainer};
use healthmon_reram::{deploy, CellFault, Crossbar, CrossbarConfig, TiledMatrix};
use healthmon_tensor::{SeededRng, Tensor};

fn main() {
    let spec = DatasetSpec { train: 1500, test: 300, seed: 11, noise: 0.10 };
    let split = SynthDigits::new(spec).generate();
    let n_pixels = 28 * 28;
    let flat_train = split.train.images.reshape(&[split.train.len(), n_pixels]).expect("flatten");
    let flat_test = split.test.images.reshape(&[split.test.len(), n_pixels]).expect("flatten");

    let mut rng = SeededRng::new(1);
    let mut model = tiny_mlp(n_pixels, 48, 10, &mut rng);
    println!("training ...");
    let config = TrainConfig { epochs: 4, batch_size: 32, ..TrainConfig::default() };
    Trainer::new(&mut model, Sgd::new(0.1).momentum(0.9), config).fit(
        &flat_train,
        &split.train.labels,
        None,
    );
    let ideal_acc =
        healthmon_nn::trainer::accuracy(&mut model, &flat_test, &split.test.labels, 64);
    println!("ideal (digital) accuracy: {:.1}%\n", ideal_acc * 100.0);

    // --- Deployment sweep: cell precision and write noise ------------------
    println!("cell_bits | write_noise | tiles | mapping L1 error | accuracy");
    println!("----------+-------------+-------+------------------+---------");
    for (cell_bits, write_noise) in [(16u32, 0.0f32), (6, 0.0), (4, 0.0), (2, 0.0), (4, 0.05), (4, 0.15)] {
        let config = CrossbarConfig { cell_bits, write_noise, ..CrossbarConfig::default() };
        let mut deploy_rng = SeededRng::new(9);
        let (mut deployed, report) = deploy(&model, &config, &mut deploy_rng);
        let acc = healthmon_nn::trainer::accuracy(
            &mut deployed,
            &flat_test,
            &split.test.labels,
            64,
        );
        println!(
            "{cell_bits:>9} | {write_noise:>11.2} | {:>5} | {:>16.2} | {:>7.1}%",
            report.total_tiles(),
            report.total_error_l1(),
            acc * 100.0
        );
    }

    // --- Endurance failures: stuck cells on the deployed arrays ------------
    println!("\nstuck-at-zero cells vs accuracy (4-bit cells):");
    for fraction in [0.0f64, 0.01, 0.05, 0.1, 0.2] {
        let config = CrossbarConfig { cell_bits: 4, ..CrossbarConfig::default() };
        let mut deploy_rng = SeededRng::new(9);
        // Map the first dense layer manually so faults hit the tiles.
        let dict = model.state_dict();
        let (_, w0) = &dict[0];
        let mut tiled = TiledMatrix::program(w0, &config, &mut deploy_rng);
        tiled.inject_stuck_cells(CellFault::StuckLow, fraction, &mut deploy_rng);
        let realized = tiled.effective_weights();
        let mut faulty = model.clone();
        let mut replaced = false;
        faulty.for_each_param_mut(|key, t| {
            if key == "layer0.weight" && !replaced {
                *t = realized.clone();
                replaced = true;
            }
        });
        let acc = healthmon_nn::trainer::accuracy(
            &mut faulty,
            &flat_test,
            &split.test.labels,
            64,
        );
        println!("  {:>5.1}% stuck -> accuracy {:>5.1}%", fraction * 100.0, acc * 100.0);
    }

    // --- One analog dot product, converters included ------------------------
    println!("\nsingle-tile analog matvec (8-bit DAC/ADC vs ideal):");
    let mut xbar_rng = SeededRng::new(3);
    let w = Tensor::randn(&[8, 4], &mut xbar_rng);
    let analog = Crossbar::program(&w, &CrossbarConfig::default(), &mut xbar_rng);
    let digital = Crossbar::program(&w, &CrossbarConfig::ideal(), &mut xbar_rng);
    let x = Tensor::randn(&[8], &mut xbar_rng).map(|v| v.clamp(-1.0, 1.0));
    let ya = analog.matvec(&x);
    let yd = digital.matvec(&x);
    for j in 0..4 {
        println!(
            "  bit line {j}: analog {:+.4}  ideal {:+.4}  (|err| {:.4})",
            ya.as_slice()[j],
            yd.as_slice()[j],
            (ya.as_slice()[j] - yd.as_slice()[j]).abs()
        );
    }
}
