#!/usr/bin/env bash
# Hermetic CI: the whole pipeline must pass offline, proving the
# workspace builds from the standard library alone (no registry, no
# network, no vendored sources).
#
# Usage: scripts/ci.sh [--bench-smoke]
#   --bench-smoke  additionally run the bench binaries in short mode
#                  (HEALTHMON_BENCH_SMOKE=1) and refresh BENCH_pr2.json,
#                  BENCH_pr5.json (telemetry overhead A/B),
#                  BENCH_pr7.json (integer-path crossbar A/B) and
#                  BENCH_pr10.json (zoo-wide campaign cost).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SMOKE=0
if [[ "${1:-}" == "--bench-smoke" ]]; then
    BENCH_SMOKE=1
fi

# Assembles BENCH_pr2.json: the checked-in back-to-back baseline
# measurements (artifacts/bench_pr2_baseline_ab_*.json, taken at the
# pre-engine commit) next to the current run of the same benches.
assemble_bench_report() {
    local mode="$1" kernels="$2" testgen="$3"
    {
        echo '{'
        echo "\"mode\": \"${mode}\","
        echo '"baseline": {'
        echo '"kernels":'
        cat artifacts/bench_pr2_baseline_ab_kernels.json
        echo ', "testgen":'
        cat artifacts/bench_pr2_baseline_ab_testgen.json
        echo '},'
        echo '"current": {'
        echo '"kernels":'
        cat "$kernels"
        echo ', "testgen":'
        cat "$testgen"
        echo '}'
        echo '}'
    } > BENCH_pr2.json
}

echo "== offline release build =="
cargo build --release --offline --workspace

echo "== offline tests =="
cargo test -q --offline --workspace

echo "== quantized integer-path equivalence (HEALTHMON_THREADS=1/2/7) =="
# The i32 crossbar fast path must match the f32 reference semantics —
# bitwise with converters off, within one quantization step otherwise —
# at every thread count. A divergence here fails CI before any benchmark
# of the fast path is taken seriously.
for t in 1 2 7; do
    HEALTHMON_THREADS=$t cargo test -q --offline -p healthmon-reram \
        --test quantized_equivalence > /dev/null
done
echo "ok: integer path equivalent to the f32 reference under HEALTHMON_THREADS=1/2/7"

echo "== offline clippy (warnings are errors) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== offline docs (warnings are errors) =="
# --exclude healthmon-cli: its bin target shares the `healthmon` name with
# the core lib, which trips cargo's doc filename-collision warning.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace --exclude healthmon-cli > /dev/null
echo "ok: rustdoc is warning-clean"

echo "== lockfile is workspace-only =="
if grep -E '^source = ' Cargo.lock; then
    echo "ERROR: Cargo.lock references an external registry source" >&2
    exit 1
fi
echo "ok: every locked package is a workspace member"

echo "== lifetime smoke (checkpoint resume + thread-count determinism) =="
lt_dir="$(pwd)/target/lifetime-smoke"
rm -rf "$lt_dir"
mkdir -p "$lt_dir"
hm=./target/release/healthmon
"$hm" train --arch mlp --out "$lt_dir/model.json" --epochs 2 --train-size 300 --quiet true
lt_flags=(--arch mlp --model "$lt_dir/model.json" --epochs 6 --count 8 --drift 0.25 --stuck-lambda 0.5)
# Uninterrupted reference run, then the same lifetime killed after three
# epochs and resumed from its checkpoint: the reports must be identical
# down to the byte.
"$hm" lifetime "${lt_flags[@]}" --report "$lt_dir/full.txt" > /dev/null
"$hm" lifetime "${lt_flags[@]}" --checkpoint "$lt_dir/cp.json" --stop-after 3 > /dev/null
"$hm" lifetime "${lt_flags[@]}" --checkpoint "$lt_dir/cp.json" --report "$lt_dir/resumed.txt" > /dev/null
cmp "$lt_dir/full.txt" "$lt_dir/resumed.txt"
grep -q "repair #" "$lt_dir/full.txt"  # the smoke must exercise a repair session
echo "ok: resumed lifetime report is byte-identical to the uninterrupted run"
# The determinism contract holds at any thread count (DESIGN.md §6c):
# HEALTHMON_THREADS is latched per process, so vary it across runs.
for t in 1 2 7; do
    HEALTHMON_THREADS=$t "$hm" lifetime "${lt_flags[@]}" \
        --report "$lt_dir/threads_$t.txt" > /dev/null
done
cmp "$lt_dir/threads_1.txt" "$lt_dir/threads_2.txt"
cmp "$lt_dir/threads_1.txt" "$lt_dir/threads_7.txt"
echo "ok: lifetime report is byte-identical under HEALTHMON_THREADS=1/2/7"

echo "== backend matrix smoke (digital goldens + analog/bitsliced execution) =="
# The digital path must stay byte-identical forever: the text goldens in
# tests/golden/ were captured before the backend refactor, and the JSON
# inputs they were captured against are regenerated bit-exactly here
# (training/inject/generate are seed-deterministic).
cmp "$lt_dir/full.txt" tests/golden/backend_lifetime.txt
"$hm" inject --arch mlp --model "$lt_dir/model.json" --fault pv:0.5 \
    --out "$lt_dir/faulty.json" > /dev/null
"$hm" generate --arch mlp --model "$lt_dir/model.json" --method ctp --count 10 \
    --out "$lt_dir/patterns.json" > /dev/null
for t in 1 2 7; do
    rc=0
    HEALTHMON_THREADS=$t "$hm" check --arch mlp --model "$lt_dir/model.json" \
        --target "$lt_dir/faulty.json" --patterns "$lt_dir/patterns.json" \
        > "$lt_dir/check_$t.txt" || rc=$?
    [[ "$rc" == "2" ]]  # the pv:0.5 device must be flagged FAULTY
    cmp "$lt_dir/check_$t.txt" tests/golden/backend_check.txt
done
echo "ok: digital check/lifetime byte-identical to the seed goldens under HEALTHMON_THREADS=1/2/7"
# Every subcommand of the detect stack runs on every backend.
for b in digital analog bitsliced; do
    rc=0
    "$hm" check --arch mlp --model "$lt_dir/model.json" --target "$lt_dir/faulty.json" \
        --patterns "$lt_dir/patterns.json" --backend "$b" > "$lt_dir/check_$b.txt" || rc=$?
    [[ "$rc" == "2" ]]  # heavy damage must be flagged on every backend
    "$hm" campaign --arch mlp --model "$lt_dir/model.json" --patterns "$lt_dir/patterns.json" \
        --fault pv:0.4 --count 8 --backend "$b" > "$lt_dir/campaign_$b.txt"
    "$hm" lifetime --arch mlp --model "$lt_dir/model.json" --epochs 3 --count 8 \
        --drift 0.25 --stuck-lambda 0.5 --backend "$b" > "$lt_dir/lifetime_$b.txt"
    grep -q "final state:" "$lt_dir/lifetime_$b.txt"
done
# Campaign rates stay thread-invariant on live analog backends too: the
# per-model programming RNG is indexed by model, never by thread.
for b in digital analog; do
    for t in 1 2 7; do
        HEALTHMON_THREADS=$t "$hm" campaign --arch mlp --model "$lt_dir/model.json" \
            --patterns "$lt_dir/patterns.json" --fault pv:0.4 --count 8 --backend "$b" \
            > "$lt_dir/campaign_${b}_$t.txt"
    done
    cmp "$lt_dir/campaign_${b}_1.txt" "$lt_dir/campaign_${b}_2.txt"
    cmp "$lt_dir/campaign_${b}_1.txt" "$lt_dir/campaign_${b}_7.txt"
done
"$hm" deploy --arch mlp --model "$lt_dir/model.json" --backend analog > "$lt_dir/deploy.txt"
grep -q "logit divergence" "$lt_dir/deploy.txt"
# Analog lifetimes keep live conductance state and must refuse --checkpoint.
if "$hm" lifetime --arch mlp --model "$lt_dir/model.json" --epochs 2 --backend analog \
    --checkpoint "$lt_dir/bad.json" 2>/dev/null; then
    echo "ERROR: analog lifetime accepted --checkpoint" >&2
    exit 1
fi
echo "ok: backend matrix (check/campaign/deploy/lifetime x digital/analog/bitsliced) passed"

echo "== hardening smoke (drop-connect training + scrubbing lifetimes + mitigation table) =="
# Drop-connect training is seed-deterministic and thread-count-invariant:
# the same command must produce byte-identical hardened state dicts.
for t in 1 2 7; do
    HEALTHMON_THREADS=$t "$hm" train --arch mlp --out "$lt_dir/hardened_$t.json" \
        --epochs 2 --train-size 300 --quiet true --drop-connect 0.1 > /dev/null
done
cmp "$lt_dir/hardened_1.json" "$lt_dir/hardened_2.json"
cmp "$lt_dir/hardened_1.json" "$lt_dir/hardened_7.json"
# ... and must actually differ from plain training.
if cmp -s "$lt_dir/hardened_1.json" "$lt_dir/model.json"; then
    echo "ERROR: --drop-connect produced the plainly trained weights" >&2
    exit 1
fi
echo "ok: hardened training byte-identical under HEALTHMON_THREADS=1/2/7"
# Scrubbing lifetimes run on every backend, stay thread-invariant, and
# report their scrub tally.
for b in digital analog bitsliced; do
    for t in 1 2 7; do
        rc=0
        HEALTHMON_THREADS=$t "$hm" lifetime --arch mlp --model "$lt_dir/hardened_1.json" \
            --epochs 4 --count 8 --drift 0.0 --soft 0.0001 --stuck-lambda 0.0 \
            --backend "$b" --hardened true > "$lt_dir/lifetime_hard_${b}_$t.txt" || rc=$?
        [[ "$rc" == "0" || "$rc" == "2" ]]  # healthy or parked, never a usage error
    done
    cmp "$lt_dir/lifetime_hard_${b}_1.txt" "$lt_dir/lifetime_hard_${b}_2.txt"
    cmp "$lt_dir/lifetime_hard_${b}_1.txt" "$lt_dir/lifetime_hard_${b}_7.txt"
    grep -q "soft errors scrubbed:" "$lt_dir/lifetime_hard_${b}_1.txt"
done
echo "ok: hardened lifetime (digital/analog/bitsliced) byte-identical under HEALTHMON_THREADS=1/2/7"
# The mitigation cost/benefit table: deterministic text and JSON artifact
# on every backend.
for b in digital analog bitsliced; do
    for t in 1 2 7; do
        HEALTHMON_THREADS=$t "$hm" campaign --arch mlp --model "$lt_dir/model.json" \
            --hardened true --hardened-model "$lt_dir/hardened_1.json" \
            --patterns "$lt_dir/patterns.json" --fault soft:0.01 --count 4 \
            --backend "$b" --json "$lt_dir/mitigation_${b}_$t.json" \
            > "$lt_dir/mitigation_${b}_$t.txt"
    done
    cmp "$lt_dir/mitigation_${b}_1.txt" "$lt_dir/mitigation_${b}_2.txt"
    cmp "$lt_dir/mitigation_${b}_1.txt" "$lt_dir/mitigation_${b}_7.txt"
    cmp "$lt_dir/mitigation_${b}_1.json" "$lt_dir/mitigation_${b}_2.json"
    cmp "$lt_dir/mitigation_${b}_1.json" "$lt_dir/mitigation_${b}_7.json"
    grep -q "repairs avoided by hardening:" "$lt_dir/mitigation_${b}_1.txt"
done
mkdir -p artifacts
cp "$lt_dir/mitigation_digital_1.json" artifacts/mitigation_smoke.json
echo "ok: mitigation table (text + JSON) byte-identical under HEALTHMON_THREADS=1/2/7;"
echo "    artifact written to artifacts/mitigation_smoke.json"

echo "== telemetry smoke (pure observation + thread-invariant stable series) =="
# Telemetry is purely observational: with --trace on, every primary output
# (stdout report, exit code) must stay byte-identical to the telemetry-off
# runs captured by the backend matrix above. The human telemetry report
# goes to stderr, the machine-readable snapshot to --metrics.
for b in digital analog bitsliced; do
    rc=0
    "$hm" check --arch mlp --model "$lt_dir/model.json" --target "$lt_dir/faulty.json" \
        --patterns "$lt_dir/patterns.json" --backend "$b" \
        --trace true --metrics "$lt_dir/check_tel_$b.jsonl" \
        > "$lt_dir/check_tel_$b.txt" 2> "$lt_dir/check_tel_$b.err" || rc=$?
    [[ "$rc" == "2" ]]  # verdict unchanged by tracing
    cmp "$lt_dir/check_tel_$b.txt" "$lt_dir/check_$b.txt"
    grep -q "== healthmon telemetry ==" "$lt_dir/check_tel_$b.err"
    # The emitted JSONL must parse back through healthmon-serdes.
    "$hm" metrics --file "$lt_dir/check_tel_$b.jsonl" | grep -q "counters"
    "$hm" lifetime --arch mlp --model "$lt_dir/model.json" --epochs 3 --count 8 \
        --drift 0.25 --stuck-lambda 0.5 --backend "$b" \
        --trace true --metrics "$lt_dir/lifetime_tel_$b.jsonl" \
        > "$lt_dir/lifetime_tel_$b.txt" 2> /dev/null
    cmp "$lt_dir/lifetime_tel_$b.txt" "$lt_dir/lifetime_$b.txt"
    "$hm" metrics --file "$lt_dir/lifetime_tel_$b.jsonl" --format prometheus > /dev/null
done
# HEALTHMON_TRACE enables recording without any flag.
HEALTHMON_TRACE=1 "$hm" check --arch mlp --model "$lt_dir/model.json" \
    --target "$lt_dir/faulty.json" --patterns "$lt_dir/patterns.json" \
    > /dev/null 2> "$lt_dir/check_env.err" || true
grep -q "== healthmon telemetry ==" "$lt_dir/check_env.err"
# Stable series merge to bit-identical aggregates at any thread count;
# `metrics --stable-only` strips the wall-clock-bearing remainder.
for t in 1 2 7; do
    HEALTHMON_THREADS=$t "$hm" campaign --arch mlp --model "$lt_dir/model.json" \
        --patterns "$lt_dir/patterns.json" --fault pv:0.4 --count 8 \
        --metrics "$lt_dir/campaign_tel_$t.jsonl" > /dev/null 2> /dev/null
    "$hm" metrics --file "$lt_dir/campaign_tel_$t.jsonl" --stable-only true \
        --format jsonl > "$lt_dir/campaign_stable_$t.jsonl"
done
cmp "$lt_dir/campaign_stable_1.jsonl" "$lt_dir/campaign_stable_2.jsonl"
cmp "$lt_dir/campaign_stable_1.jsonl" "$lt_dir/campaign_stable_7.jsonl"
echo "ok: telemetry left every primary output byte-identical; stable series"
echo "    byte-identical under HEALTHMON_THREADS=1/2/7"

echo "== model-zoo smoke (registry x digital/analog/bitsliced, HEALTHMON_THREADS=1/2/7) =="
zoo_dir="$(pwd)/target/zoo-smoke"
rm -rf "$zoo_dir"
mkdir -p "$zoo_dir"
# The registry table is deterministic and lists every model.
"$hm" models > "$zoo_dir/models.txt"
for arch in lenet5 convnet7 mlp resnet8 mlp4 attention; do
    grep -q "^$arch " "$zoo_dir/models.txt"
done
# Unknown architectures fail fast and list the whole registry.
if "$hm" train --arch resnet9 --out "$zoo_dir/no.json" 2> "$zoo_dir/unknown.err"; then
    echo "ERROR: unknown --arch was accepted" >&2
    exit 1
fi
grep -q "known models:" "$zoo_dir/unknown.err"
# Every zoo model trains, generates C-TP patterns, and completes a
# detection campaign on all three backends, byte-identical under
# HEALTHMON_THREADS=1/2/7.
for arch in lenet5 convnet7 mlp resnet8 mlp4 attention; do
    "$hm" train --arch "$arch" --out "$zoo_dir/$arch.json" \
        --epochs 1 --train-size 120 --quiet true > /dev/null
    "$hm" generate --arch "$arch" --model "$zoo_dir/$arch.json" --method ctp \
        --count 8 --out "$zoo_dir/${arch}_patterns.json" > /dev/null
    for b in digital analog bitsliced; do
        for t in 1 2 7; do
            HEALTHMON_THREADS=$t "$hm" campaign --arch "$arch" \
                --model "$zoo_dir/$arch.json" \
                --patterns "$zoo_dir/${arch}_patterns.json" \
                --fault pv:0.4 --count 4 --backend "$b" \
                > "$zoo_dir/campaign_${arch}_${b}_$t.txt"
        done
        cmp "$zoo_dir/campaign_${arch}_${b}_1.txt" "$zoo_dir/campaign_${arch}_${b}_2.txt"
        cmp "$zoo_dir/campaign_${arch}_${b}_1.txt" "$zoo_dir/campaign_${arch}_${b}_7.txt"
    done
done
# The three architectures new in the zoo complete a lifetime end-to-end.
for arch in resnet8 mlp4 attention; do
    rc=0
    "$hm" lifetime --arch "$arch" --model "$zoo_dir/$arch.json" --epochs 3 \
        --count 6 --drift 0.25 --stuck-lambda 0.5 \
        > "$zoo_dir/lifetime_$arch.txt" || rc=$?
    [[ "$rc" == "0" || "$rc" == "2" ]]  # healthy or parked, never a usage error
    grep -q "final state:" "$zoo_dir/lifetime_$arch.txt"
done
# Seed-model regression goldens: the digital campaign outputs for lenet5
# and convnet7 below were captured from the pre-registry build — routing
# the seed architectures through the model zoo must not move a byte.
for arch in lenet5 convnet7; do
    cmp "$zoo_dir/campaign_${arch}_digital_1.txt" "tests/golden/zoo_campaign_$arch.txt"
done
echo "ok: every zoo model trained and campaigned on digital/analog/bitsliced,"
echo "    byte-identical under HEALTHMON_THREADS=1/2/7; seed models match the"
echo "    pre-registry goldens"

echo "== fleet smoke (chaos supervision + kill-9 crash recovery) =="
fleet_dir=target/fleet-smoke
rm -rf "$fleet_dir"
mkdir -p "$fleet_dir"
# A chaos-free fleet is byte-identical at any thread count.
for t in 1 2 7; do
    HEALTHMON_THREADS=$t "$hm" fleet --devices 24 --epochs 4 --seed 11 \
        > "$fleet_dir/clean_$t.txt"
done
cmp "$fleet_dir/clean_1.txt" "$fleet_dir/clean_2.txt"
cmp "$fleet_dir/clean_1.txt" "$fleet_dir/clean_7.txt"
echo "ok: clean fleet byte-identical under HEALTHMON_THREADS=1/2/7"
# 200 devices under chaos (panics, stalls, poisoned distances, checkpoint
# truncation): the run must complete with exit 0/2 — never a process
# abort — quarantine the repeat offenders, and stay deterministic.
chaos_spec="panic:0.35,stall:0.2,stallms:600,poison:0.05,trunc:0.2,seed:13"
rc=0
"$hm" fleet --devices 200 --epochs 4 --seed 17 --quarantine 2 \
    --chaos "$chaos_spec" --checkpoint-dir "$fleet_dir/chaos_cp" \
    > "$fleet_dir/chaos_1.txt" 2> /dev/null || rc=$?
[[ "$rc" == "0" || "$rc" == "2" ]]
rc2=0
HEALTHMON_THREADS=3 "$hm" fleet --devices 200 --epochs 4 --seed 17 --quarantine 2 \
    --chaos "$chaos_spec" --checkpoint-dir "$fleet_dir/chaos_cp2" \
    > "$fleet_dir/chaos_3.txt" 2> /dev/null || rc2=$?
[[ "$rc" == "$rc2" ]]
cmp "$fleet_dir/chaos_1.txt" "$fleet_dir/chaos_3.txt"
# At these rates offenders must exist and be quarantined, not crash the
# fleet.
grep -q "quarantined devices: [1-9]" "$fleet_dir/chaos_1.txt"
grep -q "checkup-panic" "$fleet_dir/chaos_1.txt"
echo "ok: 200-device chaos fleet completed with zero aborts, quarantined offenders,"
echo "    and stayed byte-identical under thread variance"
# Flight recorder + live observability: the same chaos fleet with the
# recorder and snapshot stream armed must (a) leave stdout byte-identical
# to the unobserved run, (b) dump at least one digest-guarded postmortem,
# and (c) produce byte-identical artifacts across reruns and thread
# counts (the artifacts embed only device-local, epoch-keyed state).
rc0=0
"$hm" fleet --devices 200 --epochs 4 --seed 17 --quarantine 2 \
    --chaos "$chaos_spec" > "$fleet_dir/chaos_plain.txt" 2> /dev/null || rc0=$?
for t in 1 2 7; do
    rcf=0
    HEALTHMON_THREADS=$t "$hm" fleet --devices 200 --epochs 4 --seed 17 --quarantine 2 \
        --chaos "$chaos_spec" --flight-dir "$fleet_dir/flight_$t" \
        --snapshot-log "$fleet_dir/stream_$t.jsonl" \
        > "$fleet_dir/chaos_obs_$t.txt" 2> /dev/null || rcf=$?
    [[ "$rcf" == "$rc0" ]]
    cmp "$fleet_dir/chaos_obs_$t.txt" "$fleet_dir/chaos_plain.txt"
done
diff -r "$fleet_dir/flight_1" "$fleet_dir/flight_2"
diff -r "$fleet_dir/flight_1" "$fleet_dir/flight_7"
n_flight=$(ls "$fleet_dir/flight_1" | wc -l)
[[ "$n_flight" -ge 1 ]]
# Every artifact must digest-verify and parse through `healthmon flight`.
for f in "$fleet_dir/flight_1"/incident-*.json; do
    "$hm" flight --file "$f" > /dev/null
done
# The rotating snapshot stream parses through metrics/top. (Grep files,
# not pipes: `grep -q` closing the pipe early would SIGPIPE the CLI.)
"$hm" metrics --file "$fleet_dir/stream_1.jsonl" --last 2 > "$fleet_dir/metrics_last2.txt"
grep -q "epoch" "$fleet_dir/metrics_last2.txt"
"$hm" top --file "$fleet_dir/stream_1.jsonl" > "$fleet_dir/top.txt"
grep -q "healthmon top" "$fleet_dir/top.txt"
echo "ok: flight recorder dumped $n_flight digest-verified postmortems, byte-identical"
echo "    across reruns and HEALTHMON_THREADS=1/2/7, with stdout untouched"
# Kill-9 crash recovery: SIGKILL the process mid-run, then resume from
# the surviving shards. The interrupted run checkpoints after every
# --stop-after slice, so the kill costs at most the in-flight epoch; the
# resumed run must converge to the uninterrupted report byte-for-byte.
"$hm" fleet --devices 24 --epochs 6 --seed 19 > "$fleet_dir/straight.txt"
"$hm" fleet --devices 24 --epochs 6 --seed 19 \
    --checkpoint-dir "$fleet_dir/kill_cp" --stop-after 2 > /dev/null
( "$hm" fleet --devices 24 --epochs 6 --seed 19 \
      --checkpoint-dir "$fleet_dir/kill_cp" > /dev/null 2>&1 & killer_pid=$!
  sleep 0.05; kill -9 "$killer_pid" 2> /dev/null; wait "$killer_pid" 2> /dev/null ) || true
# Whatever state the kill left (epoch-2 shards, or later complete ones —
# atomic writes guarantee no torn files), the resume must finish cleanly.
"$hm" fleet --devices 24 --epochs 6 --seed 19 \
    --checkpoint-dir "$fleet_dir/kill_cp" > "$fleet_dir/resumed.txt" 2> /dev/null
cmp "$fleet_dir/resumed.txt" "$fleet_dir/straight.txt"
echo "ok: kill-9 mid-run, resume byte-identical to the uninterrupted fleet"
# Torn-shard containment: truncate one shard, the resume must report it
# and keep going instead of failing wholesale.
"$hm" fleet --devices 24 --epochs 6 --seed 23 \
    --checkpoint-dir "$fleet_dir/torn_cp" --stop-after 3 > /dev/null
head -c 100 "$fleet_dir/torn_cp/shard-001.json" > "$fleet_dir/torn_cp/shard-001.json.t" \
    && mv "$fleet_dir/torn_cp/shard-001.json.t" "$fleet_dir/torn_cp/shard-001.json"
"$hm" fleet --devices 24 --epochs 6 --seed 23 \
    --checkpoint-dir "$fleet_dir/torn_cp" > "$fleet_dir/torn.txt" 2> /dev/null
grep -q "damaged shards: 1" "$fleet_dir/torn.txt"
echo "ok: torn shard reported and contained; healthy shards resumed"

if [[ "$BENCH_SMOKE" == "1" ]]; then
    echo "== bench smoke (short mode, refreshes BENCH_pr2.json) =="
    # Absolute path: cargo runs bench binaries from the package directory.
    report_dir="$(pwd)/target/bench-report"
    mkdir -p "$report_dir"
    HEALTHMON_BENCH_SMOKE=1 HEALTHMON_BENCH_JSON="$report_dir/kernels.json" \
        cargo bench --offline --bench kernels > /dev/null
    HEALTHMON_BENCH_SMOKE=1 HEALTHMON_BENCH_JSON="$report_dir/testgen.json" \
        cargo bench --offline --bench testgen > /dev/null
    assemble_bench_report smoke "$report_dir/kernels.json" "$report_dir/testgen.json"
    echo "ok: both bench binaries ran without panicking; BENCH_pr2.json written"
    echo "    (smoke-mode numbers: 2 samples, short calibration — for perf"
    echo "     claims use a full 'cargo bench' run as in artifacts/)"
    HEALTHMON_BENCH_SMOKE=1 HEALTHMON_BENCH_JSON="$report_dir/telemetry_ab.json" \
        cargo bench --offline --bench telemetry_ab > /dev/null
    {
        echo '{'
        echo '"mode": "smoke",'
        echo '"telemetry_ab":'
        cat "$report_dir/telemetry_ab.json"
        echo '}'
    } > BENCH_pr5.json
    echo "ok: telemetry A/B bench ran; BENCH_pr5.json written"
    # BENCH_pr7.json: the integer-path A/B — the checked-in pre-change
    # baselines (artifacts/bench_pr7_baseline_ab_*.json, captured with the
    # same bench cases on the f32-only crossbar path) next to the current
    # run of the same kernels/testgen binaries.
    {
        echo '{'
        echo '"mode": "smoke",'
        echo '"baseline": {'
        echo '"kernels":'
        cat artifacts/bench_pr7_baseline_ab_kernels.json
        echo ', "testgen":'
        cat artifacts/bench_pr7_baseline_ab_testgen.json
        echo '},'
        echo '"current": {'
        echo '"kernels":'
        cat "$report_dir/kernels.json"
        echo ', "testgen":'
        cat "$report_dir/testgen.json"
        echo '}'
        echo '}'
    } > BENCH_pr7.json
    echo "ok: BENCH_pr7.json written (integer-path A/B vs pre-change baseline)"
    # BENCH_pr8.json: fleet load-generator throughput, clean vs chaos.
    "$hm" fleet --devices 200 --epochs 4 --seed 29 --bench true \
        > "$report_dir/fleet_clean.txt"
    "$hm" fleet --devices 200 --epochs 4 --seed 29 --bench true \
        --chaos "panic:0.2,stall:0.1,stallms:300,seed:31" \
        > "$report_dir/fleet_chaos.txt" 2> /dev/null || true
    clean_rate=$(grep -o 'throughput: [0-9.]*' "$report_dir/fleet_clean.txt" | cut -d' ' -f2)
    chaos_rate=$(grep -o 'throughput: [0-9.]*' "$report_dir/fleet_chaos.txt" | cut -d' ' -f2)
    {
        echo '{'
        echo '"mode": "smoke",'
        echo '"fleet": {'
        echo "\"devices\": 200, \"epochs\": 4,"
        echo "\"clean_device_epochs_per_sec\": ${clean_rate:-0},"
        echo "\"chaos_device_epochs_per_sec\": ${chaos_rate:-0}"
        echo '}'
        echo '}'
    } > BENCH_pr8.json
    echo "ok: fleet load generator ran; BENCH_pr8.json written"
    # BENCH_pr10.json: per-architecture campaign cost across the whole
    # model zoo (the per-checkup cost a fleet device pays, per model).
    HEALTHMON_BENCH_SMOKE=1 HEALTHMON_BENCH_JSON="$report_dir/zoo_campaign.json" \
        cargo bench --offline --bench zoo_campaign > /dev/null
    {
        echo '{'
        echo '"mode": "smoke",'
        echo '"zoo_campaign":'
        cat "$report_dir/zoo_campaign.json"
        echo '}'
    } > BENCH_pr10.json
    echo "ok: zoo campaign bench ran; BENCH_pr10.json written"
fi

echo "CI passed."
