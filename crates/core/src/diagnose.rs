//! Fault localization: which layer of a degraded accelerator is hurting
//! the concurrent-test responses, and which of its cells look stuck.
//!
//! The paper's detector answers *whether* a deployed accelerator is
//! faulty; a repair needs to know *where*. [`diagnose`] answers that with
//! two probes, both reusing the detector's pattern set:
//!
//! 1. **Containment probe** — an
//!    [`InferenceBackend::infer_checked`] replay of the patterns. A
//!    device whose weights went non-finite is localized outright to the
//!    first poisoned layer.
//! 2. **Substitution ranking** — for every conductance-mapped parameter,
//!    a hybrid network (golden weights everywhere except that one layer,
//!    which takes the device's weights) is scored by golden-response
//!    distance. The layer whose substitution moves the responses furthest
//!    carries the most damage.
//!
//! [`estimate_stuck_cells`] complements the ranking with a march-readback
//! style defect estimate: cells whose device value deviates from the
//! reference by more than a tolerance are flagged as stuck at their read
//! value.

use crate::confidence::ConfidenceDistance;
use crate::detect::Detector;
use healthmon_nn::{InferenceBackend, Network};
use healthmon_repair::{DefectMap, StuckCell};
use healthmon_tensor::Tensor;
use healthmon_telemetry as tel;

// One localization pass probes one substitution per mapped layer; both
// counts follow the device's layer structure deterministically (Stable).
static DIAGNOSE_RUNS: tel::Counter =
    tel::Counter::new("diagnose.runs", tel::Stability::Stable);
static DIAGNOSE_PROBES: tel::Counter =
    tel::Counter::new("diagnose.probes", tel::Stability::Stable);

/// One layer's entry in a [`Diagnosis`] ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDiagnosis {
    /// State-dict key of the suspect parameter (e.g. `layer0.weight`).
    pub key: String,
    /// Golden-response distance of the substitution probe: how far the
    /// responses move when *only* this layer takes the device's weights.
    pub distance: ConfidenceDistance,
}

/// The outcome of a localization pass over a degraded device.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// Suspect layers, most damaging first. Poisoned (non-finite)
    /// substitutions rank above every finite one.
    pub ranking: Vec<LayerDiagnosis>,
    /// The first layer index whose activations were non-finite when the
    /// device replayed the pattern set, if any (`usize::MAX` when the
    /// input itself was non-finite — impossible for stored patterns).
    pub poisoned_layer: Option<usize>,
}

impl Diagnosis {
    /// The most suspect layer, if any parameter was rankable.
    pub fn prime_suspect(&self) -> Option<&LayerDiagnosis> {
        self.ranking.first()
    }

    /// Keys of every layer whose substitution distance exceeds
    /// `threshold` — the set a repair pass should touch.
    pub fn suspects_above(&self, threshold: f32) -> Vec<&str> {
        self.ranking
            .iter()
            .filter(|l| l.distance.is_poisoned() || l.distance.all_classes > threshold)
            .map(|l| l.key.as_str())
            .collect()
    }
}

/// Localizes the damage of `device` relative to `golden` using
/// `detector`'s pattern set.
///
/// The device may be a digital [`Network`] or any live analog backend:
/// the containment probe replays the patterns through the backend itself
/// (so analog non-finite poisoning is caught where it happens), and the
/// substitution ranking operates on the backend's effective-weight
/// read-back ([`InferenceBackend::readback`]).
///
/// Both probes are deterministic pure functions of the three inputs, so a
/// diagnosis replayed from a checkpoint is bit-identical.
///
/// # Panics
///
/// Panics if `device` was not derived from `golden` (mismatched parameter
/// keys or shapes).
pub fn diagnose<B: InferenceBackend + ?Sized>(
    detector: &Detector,
    golden: &Network,
    device: &B,
) -> Diagnosis {
    DIAGNOSE_RUNS.inc();
    let _span = tel::span("diagnose");
    // Containment probe: does the device even produce finite activations?
    let poisoned_layer = device
        .infer_checked(detector.patterns().images())
        .err()
        .map(|e| e.layer);

    // Substitution ranking over conductance-mapped parameters.
    let device_dict = device.readback().state_dict();
    let mut ranking = Vec::new();
    for (key, device_tensor) in &device_dict {
        if !key.ends_with("weight") {
            continue;
        }
        let mut probe = golden.clone();
        let mut replaced = false;
        probe.for_each_param_mut(|k, t| {
            if k == key {
                assert_eq!(
                    t.shape(),
                    device_tensor.shape(),
                    "device parameter `{key}` does not match the golden model"
                );
                *t = device_tensor.clone();
                replaced = true;
            }
        });
        assert!(replaced, "device parameter `{key}` missing from the golden model");
        DIAGNOSE_PROBES.inc();
        let distance = detector.confidence_distance(&probe);
        ranking.push(LayerDiagnosis { key: key.clone(), distance });
    }
    // Most damaging first; poisoned distances are +inf so total_cmp ranks
    // them on top. Ties break on the key for determinism.
    ranking.sort_by(|a, b| {
        b.distance
            .all_classes
            .total_cmp(&a.distance.all_classes)
            .then_with(|| a.key.cmp(&b.key))
    });
    Diagnosis { ranking, poisoned_layer }
}

/// March-readback style defect estimation: compares a device parameter
/// against its reference and flags every cell deviating by more than
/// `tolerance` as stuck at the device's read value.
///
/// This is a heuristic — smooth drift also moves weights — but it is what
/// an in-field readback can actually observe, and it feeds the same
/// [`DefectMap`] interface the repair hierarchy consumes.
///
/// # Panics
///
/// Panics if the tensors are not 2-D with identical shapes, or
/// `tolerance` is negative or non-finite.
pub fn estimate_stuck_cells(reference: &Tensor, device: &Tensor, tolerance: f32) -> DefectMap {
    assert!(
        tolerance.is_finite() && tolerance >= 0.0,
        "tolerance must be finite and non-negative, got {tolerance}"
    );
    assert_eq!(reference.ndim(), 2, "defect estimation operates on 2-D matrices");
    assert_eq!(reference.shape(), device.shape(), "reference and device shapes differ");
    let (rows, cols) = (reference.shape()[0], reference.shape()[1]);
    let mut cells = Vec::new();
    for row in 0..rows {
        for col in 0..cols {
            let r = reference.at(&[row, col]);
            let d = device.at(&[row, col]);
            if !d.is_finite() || (r - d).abs() > tolerance {
                cells.push(StuckCell { row, col, value: if d.is_finite() { d } else { 0.0 } });
            }
        }
    }
    DefectMap::new(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::TestPatternSet;
    use healthmon_nn::models::tiny_mlp;
    use healthmon_tensor::SeededRng;

    fn setup() -> (Network, Detector) {
        let mut rng = SeededRng::new(3);
        let net = tiny_mlp(8, 16, 4, &mut rng);
        let patterns =
            TestPatternSet::new("t", Tensor::rand_uniform(&[10, 8], 0.0, 1.0, &mut rng));
        let detector = Detector::new(&net, patterns);
        (net, detector)
    }

    fn damage_layer(net: &mut Network, key: &str, scale: f32) {
        net.for_each_param_mut(|k, t| {
            if k == key {
                t.map_inplace(|v| v * scale);
            }
        });
    }

    #[test]
    fn healthy_device_ranks_everything_near_zero() {
        let (net, detector) = setup();
        let d = diagnose(&detector, &net, &net.clone());
        assert!(d.poisoned_layer.is_none());
        assert_eq!(d.ranking.len(), 2);
        for layer in &d.ranking {
            assert_eq!(layer.distance.all_classes, 0.0, "{} should be clean", layer.key);
        }
        assert!(d.suspects_above(0.01).is_empty());
    }

    #[test]
    fn damaged_layer_ranks_first() {
        let (net, detector) = setup();
        for key in ["layer0.weight", "layer2.weight"] {
            let mut device = net.clone();
            damage_layer(&mut device, key, -2.0);
            let d = diagnose(&detector, &net, &device);
            assert_eq!(
                d.prime_suspect().unwrap().key,
                key,
                "damaged {key} must top the ranking"
            );
            assert!(d.prime_suspect().unwrap().distance.all_classes > 0.0);
        }
    }

    #[test]
    fn poisoned_device_is_localized() {
        let (net, detector) = setup();
        let mut device = net.clone();
        device.for_each_param_mut(|k, t| {
            if k == "layer2.weight" {
                t.as_mut_slice()[0] = f32::NAN;
            }
        });
        let d = diagnose(&detector, &net, &device);
        assert!(d.poisoned_layer.is_some());
        let suspect = d.prime_suspect().unwrap();
        assert_eq!(suspect.key, "layer2.weight");
        assert!(suspect.distance.is_poisoned());
        assert_eq!(d.suspects_above(f32::MAX), vec!["layer2.weight"]);
    }

    #[test]
    fn diagnosis_is_deterministic() {
        let (net, detector) = setup();
        let mut device = net.clone();
        damage_layer(&mut device, "layer0.weight", 0.2);
        let a = diagnose(&detector, &net, &device);
        let b = diagnose(&detector, &net, &device);
        assert_eq!(a, b);
    }

    #[test]
    fn stuck_cell_estimation_finds_planted_defects() {
        let mut rng = SeededRng::new(5);
        let reference = Tensor::randn(&[6, 5], &mut rng);
        let mut device = reference.clone();
        *device.at_mut(&[1, 2]) = 0.0;
        *device.at_mut(&[4, 0]) = 9.0;
        *device.at_mut(&[5, 4]) = f32::NAN;
        let map = estimate_stuck_cells(&reference, &device, 3.0);
        // Only cells deviating by > 3.0 (or non-finite) are flagged.
        assert!(map.cells().iter().any(|c| c.row == 4 && c.col == 0 && c.value == 9.0));
        assert!(map.cells().iter().any(|c| c.row == 5 && c.col == 4 && c.value == 0.0));
        // Exact match below tolerance: identical tensors flag nothing.
        assert!(estimate_stuck_cells(&reference, &reference, 0.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "shapes differ")]
    fn estimation_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[2, 3]);
        estimate_stuck_cells(&a, &b, 0.1);
    }
}
