//! Fixed-capacity time series with deterministic downsample-on-overflow,
//! and the per-device [`HealthTimeline`] built on top of them.
//!
//! The fleet supervisor tracks hundreds of devices over unbounded
//! lifetimes, so per-device history must be bounded. A [`Series`] keeps
//! at most `capacity` points; when a push would exceed that, it halves
//! the retained set by dropping every point whose sequence number is not
//! a multiple of the doubled stride, then keeps accepting only every
//! stride-th point. The resulting contents are a *pure function of the
//! offered sequence* — independent of batching, timing, or which OS
//! thread pushed — so two devices fed the same epochs hold byte-identical
//! timelines at any `HEALTHMON_THREADS` setting.
//!
//! Timelines are indexed by the **virtual epoch clock** (the runtime's
//! deterministic epoch counter), never by wall time: wall-clock stamps
//! would differ between runs and break the flight-recorder byte-compare
//! guarantee (see `healthmon::fleet`).

use healthmon_serdes::{Json, JsonError};

/// Default capacity for per-device health timelines: enough to cover a
/// long lifetime at full resolution and centuries at downsampled strides.
pub const TIMELINE_CAPACITY: usize = 256;

/// A bounded sequence of `(sequence, value)` points that downsamples
/// itself deterministically instead of growing without bound.
///
/// Push `N` values and the series retains at most `capacity` of them:
/// the points whose 0-based offer index is a multiple of the current
/// stride (always a power of two). See the module docs for why the
/// result is independent of scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct Series<T> {
    capacity: usize,
    stride: u64,
    offered: u64,
    points: Vec<(u64, T)>,
}

impl<T: Clone> Series<T> {
    /// Creates an empty series bounded to `capacity` points.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` (a one-point series cannot downsample).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "series capacity must be at least 2");
        Series { capacity, stride: 1, offered: 0, points: Vec::new() }
    }

    /// Offers the next value in the sequence. Retained only when the
    /// offer index lands on the current stride; triggers a downsample
    /// (drop every other retained point, double the stride) when the
    /// series is exactly at capacity.
    pub fn push(&mut self, value: T) {
        let seq = self.offered;
        self.offered += 1;
        if !seq.is_multiple_of(self.stride) {
            return;
        }
        if self.points.len() == self.capacity {
            let doubled = self.stride * 2;
            self.points.retain(|&(s, _)| s.is_multiple_of(doubled));
            self.stride = doubled;
            if !seq.is_multiple_of(self.stride) {
                return;
            }
        }
        self.points.push((seq, value));
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no point has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total number of values offered (retained or not).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Current keep stride (a power of two; 1 until the first overflow).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The fixed capacity this series was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Retained `(offer_index, value)` points, oldest first.
    pub fn points(&self) -> &[(u64, T)] {
        &self.points
    }

    /// The most recent `n` retained points, oldest first.
    pub fn window(&self, n: usize) -> &[(u64, T)] {
        let start = self.points.len().saturating_sub(n);
        &self.points[start..]
    }
}

/// Merges several series into one bounded series, ordering points by
/// `(offer_index, source position)`. Deterministic for a fixed `sources`
/// order — callers pass sources in a canonical order (e.g. ascending
/// device id) to get a scheduling-independent fleet-wide view.
pub fn merge<T: Clone>(capacity: usize, sources: &[&Series<T>]) -> Series<T> {
    let mut all: Vec<(u64, usize, &T)> = Vec::new();
    for (si, s) in sources.iter().enumerate() {
        for (seq, v) in s.points() {
            all.push((*seq, si, v));
        }
    }
    all.sort_by_key(|&(seq, si, _)| (seq, si));
    let mut out = Series::new(capacity);
    for (_, _, v) in all {
        out.push(v.clone());
    }
    out
}

/// One health observation on the virtual epoch clock.
///
/// Every field is derived from deterministic per-device state (never
/// from wall time or global telemetry), so a point — and therefore a
/// whole timeline — is bit-identical across reruns and thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// Virtual epoch the observation was taken at.
    pub epoch: u64,
    /// Health state label at the end of the epoch (e.g. `healthy`).
    pub state: String,
    /// Monitor accuracy estimate at the end of the epoch.
    pub accuracy: f64,
    /// Detection score: the checkup's confidence-distance statistic.
    pub score: f64,
    /// Cumulative repair sessions completed so far.
    pub repairs: u64,
    /// Cumulative soft errors scrubbed so far.
    pub scrubs: u64,
    /// Cumulative supervisor retries absorbed so far (fleet runs only).
    pub retries: u64,
}

impl TimelinePoint {
    /// Renders the point as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("epoch".into(), Json::Number(self.epoch as f64)),
            ("state".into(), Json::String(self.state.clone())),
            ("accuracy".into(), Json::Number(self.accuracy)),
            ("score".into(), Json::Number(self.score)),
            ("repairs".into(), Json::Number(self.repairs as f64)),
            ("scrubs".into(), Json::Number(self.scrubs as f64)),
            ("retries".into(), Json::Number(self.retries as f64)),
        ])
    }

    /// Parses a point from the JSON produced by [`TimelinePoint::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when a field is missing or mistyped.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(TimelinePoint {
            epoch: v.field("epoch")?.as_number()? as u64,
            state: v.field("state")?.as_str()?.to_string(),
            accuracy: v.field("accuracy")?.as_number()?,
            score: v.field("score")?.as_number()?,
            repairs: v.field("repairs")?.as_number()? as u64,
            scrubs: v.field("scrubs")?.as_number()? as u64,
            retries: v.field("retries")?.as_number()? as u64,
        })
    }
}

/// A per-device health history: one [`TimelinePoint`] per completed
/// epoch, bounded by deterministic downsampling.
///
/// Owned by exactly one device runtime and recorded under the virtual
/// epoch clock, so its contents never depend on scheduling. Not part of
/// any checkpoint format — a resumed runtime restarts its timeline from
/// the resume epoch (history before the crash lives in the flight
/// recorder's artifacts, not the checkpoint).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthTimeline {
    series: Series<TimelinePoint>,
}

impl Default for HealthTimeline {
    fn default() -> Self {
        HealthTimeline::new(TIMELINE_CAPACITY)
    }
}

impl HealthTimeline {
    /// Creates an empty timeline bounded to `capacity` points.
    pub fn new(capacity: usize) -> Self {
        HealthTimeline { series: Series::new(capacity) }
    }

    /// Records the observation for the next epoch in sequence.
    pub fn record(&mut self, point: TimelinePoint) {
        self.series.push(point);
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no point has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Total number of epochs observed (retained or downsampled away).
    pub fn observed(&self) -> u64 {
        self.series.offered()
    }

    /// The underlying bounded series.
    pub fn series(&self) -> &Series<TimelinePoint> {
        &self.series
    }

    /// Retained points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &TimelinePoint> {
        self.series.points().iter().map(|(_, p)| p)
    }

    /// The most recent `n` retained points as JSON, oldest first — the
    /// shape embedded in flight-recorder artifacts.
    pub fn window_json(&self, n: usize) -> Json {
        Json::Array(self.series.window(n).iter().map(|(_, p)| p.to_json()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_keeps_everything_under_capacity() {
        let mut s = Series::new(8);
        for v in 0..8u64 {
            s.push(v);
        }
        assert_eq!(s.len(), 8);
        assert_eq!(s.stride(), 1);
        let kept: Vec<u64> = s.points().iter().map(|&(seq, v)| {
            assert_eq!(seq, v);
            v
        }).collect();
        assert_eq!(kept, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn overflow_at_exact_capacity_boundary_halves_once() {
        let mut s = Series::new(8);
        for v in 0..8u64 {
            s.push(v);
        }
        // The 9th push finds the series exactly at capacity: it must
        // compact to the even-sequence half *then* accept the new point
        // (seq 8 is a stride-2 multiple).
        s.push(8);
        assert_eq!(s.stride(), 2);
        let seqs: Vec<u64> = s.points().iter().map(|&(seq, _)| seq).collect();
        assert_eq!(seqs, vec![0, 2, 4, 6, 8]);
        // seq 9 is off-stride and must be dropped without changing state.
        s.push(9);
        assert_eq!(s.points().len(), 5);
        assert_eq!(s.offered(), 10);
    }

    #[test]
    fn repeated_overflow_doubles_the_stride() {
        let mut s = Series::new(4);
        for v in 0..64u64 {
            s.push(v);
        }
        // Strides double 1 -> 2 -> 4 -> 8 -> 16 as the sequence grows;
        // the retained set is always the stride multiples that fit.
        assert_eq!(s.stride(), 16);
        let seqs: Vec<u64> = s.points().iter().map(|&(seq, _)| seq).collect();
        assert_eq!(seqs, vec![0, 16, 32, 48]);
        assert_eq!(s.offered(), 64);
    }

    #[test]
    fn contents_are_a_pure_function_of_the_offered_sequence() {
        // Feeding the same values in one burst or in odd-sized chunks
        // (as different schedulers would) yields identical series.
        let mut a = Series::new(6);
        let mut b = Series::new(6);
        for v in 0..100u64 {
            a.push(v);
        }
        for chunk in (0..100u64).collect::<Vec<_>>().chunks(7) {
            for &v in chunk {
                b.push(v);
            }
        }
        assert_eq!(a, b);
    }

    #[test]
    fn merge_is_deterministic_for_a_fixed_source_order() {
        let mut a = Series::new(8);
        let mut b = Series::new(8);
        for v in 0..5u64 {
            a.push(v * 10);
            b.push(v * 10 + 1);
        }
        let m1 = merge(16, &[&a, &b]);
        let m2 = merge(16, &[&a, &b]);
        assert_eq!(m1, m2);
        // Points interleave by (seq, source index): a0 b0 a1 b1 ...
        let vals: Vec<u64> = m1.points().iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![0, 1, 10, 11, 20, 21, 30, 31, 40, 41]);
        // Merging into a smaller capacity downsamples the merged order.
        let small = merge(8, &[&a, &b]);
        let vals: Vec<u64> = small.points().iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn timeline_round_trips_points_through_json() {
        let mut t = HealthTimeline::new(16);
        for e in 0..4u64 {
            t.record(TimelinePoint {
                epoch: e,
                state: "healthy".into(),
                accuracy: 0.875,
                score: 0.25,
                repairs: e,
                scrubs: 0,
                retries: 1,
            });
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.observed(), 4);
        let json = t.window_json(2);
        let arr = json.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        let back = TimelinePoint::from_json(&arr[0]).unwrap();
        assert_eq!(back.epoch, 2);
        assert_eq!(back.state, "healthy");
        assert_eq!(back.retries, 1);
    }
}
