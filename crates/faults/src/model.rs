//! The fault model taxonomy and its weight-space semantics.

use healthmon_nn::Network;
use healthmon_serdes::{FromJson, Json, JsonError, ToJson};
use healthmon_tensor::{fastmath, SeededRng, Tensor};
use healthmon_telemetry as tel;

// Fault application counts are functions of (model, seed, index) only —
// RNG streams are per-index, never per-thread — so they are Stable.
static PV_APPLIED: tel::Counter = tel::Counter::new("faults.pv.applied", tel::Stability::Stable);
static SOFT_ERROR_FLIPS: tel::Counter =
    tel::Counter::new("faults.soft_error.flips", tel::Stability::Stable);
static STUCK_AT_CELLS: tel::Counter =
    tel::Counter::new("faults.stuck_at.cells", tel::Stability::Stable);
static DRIFT_APPLIED: tel::Counter =
    tel::Counter::new("faults.drift.applied", tel::Stability::Stable);

/// A device-error model applied to a network's ReRAM-mapped weights.
///
/// All models act on parameters whose state-dict key ends in `weight`
/// (conductance-mapped values); biases are implemented in CMOS periphery
/// on the accelerators the paper targets and are left untouched.
///
/// Each variant is deterministic given the injection RNG, serializable,
/// and composable through [`FaultModel::Compound`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultModel {
    /// Programming variation: `w' = w · e^θ` with `θ ~ N(0, σ²)` — the
    /// lognormal multiplicative error of imprecise conductance writes
    /// (paper §II-B / §IV-A).
    ProgrammingVariation {
        /// Noise intensity σ of the underlying normal.
        sigma: f32,
    },
    /// Random soft error: each weight is independently corrupted with
    /// probability `p`. A corrupted weight is replaced by a uniform draw
    /// over `[-m, m]` where `m` is the max |w| of its tensor — the
    /// weight-space image of a conductance state flipping to an arbitrary
    /// level (paper §IV-A).
    RandomSoftError {
        /// Per-weight corruption probability.
        probability: f64,
    },
    /// Stuck-at faults: a fraction `sa0` of cells freeze in the
    /// high-resistance state (weight → 0) and a fraction `sa1` in the
    /// low-resistance state (weight → ±max|w| of the tensor, keeping the
    /// sign of the original value).
    StuckAt {
        /// Fraction of cells stuck at zero conductance.
        sa0: f64,
        /// Fraction of cells stuck at full conductance.
        sa1: f64,
    },
    /// Resistance drift: monotone conductance decay over time,
    /// `w' = w · e^(−ν·t)` with per-cell `ν ~ |N(0, nu)|`. `time` is in
    /// arbitrary units; `t = 0` is the identity.
    Drift {
        /// Scale of the per-cell drift-rate distribution.
        nu: f32,
        /// Elapsed time in arbitrary units.
        time: f32,
    },
    /// Sequential composition: applies each member in order with
    /// independent RNG streams (e.g. programming variation at deployment
    /// followed by drift in the field).
    Compound(
        /// Members applied first-to-last.
        Vec<FaultModel>,
    ),
}

impl FaultModel {
    /// Applies the fault model to `net` in place, drawing randomness from
    /// `rng`.
    ///
    /// # Panics
    ///
    /// Panics if a parameter of the model is out of range (negative σ,
    /// probability outside `[0, 1]`, `sa0 + sa1 > 1`, or negative drift
    /// parameters).
    pub fn apply(&self, net: &mut Network, rng: &mut SeededRng) {
        self.validate();
        match self {
            FaultModel::ProgrammingVariation { sigma } => {
                // One bulk draw per tensor: the block sampler is several
                // times faster than a per-weight `lognormal()` call, and
                // this loop is the dominant cost of a fault campaign.
                let mut factors = Vec::new();
                for_each_weight(net, |t| {
                    factors.resize(t.len(), 0.0);
                    rng.fill_lognormal(&mut factors, 0.0, *sigma);
                    for (w, &f) in t.as_mut_slice().iter_mut().zip(&factors) {
                        *w *= f;
                    }
                });
                PV_APPLIED.inc();
            }
            FaultModel::RandomSoftError { probability } => {
                let mut flips = 0u64;
                for_each_weight(net, |t| {
                    let m = max_abs(t);
                    if m == 0.0 {
                        return;
                    }
                    for w in t.as_mut_slice() {
                        if rng.chance(*probability) {
                            *w = rng.uniform(-m, m);
                            flips += 1;
                        }
                    }
                });
                SOFT_ERROR_FLIPS.add(flips);
            }
            FaultModel::StuckAt { sa0, sa1 } => {
                let mut stuck = 0u64;
                for_each_weight(net, |t| {
                    let m = max_abs(t);
                    for w in t.as_mut_slice() {
                        let u = rng.unit() as f64;
                        if u < *sa0 {
                            *w = 0.0;
                            stuck += 1;
                        } else if u < sa0 + sa1 {
                            *w = if *w >= 0.0 { m } else { -m };
                            stuck += 1;
                        }
                    }
                });
                STUCK_AT_CELLS.add(stuck);
            }
            FaultModel::Drift { nu, time } => {
                let mut rates = Vec::new();
                for_each_weight(net, |t| {
                    rates.resize(t.len(), 0.0);
                    rng.fill_normal(&mut rates, 0.0, *nu);
                    for (w, &z) in t.as_mut_slice().iter_mut().zip(&rates) {
                        *w *= fastmath::exp(-z.abs() * time);
                    }
                });
                DRIFT_APPLIED.inc();
            }
            FaultModel::Compound(members) => {
                for (i, member) in members.iter().enumerate() {
                    let mut stream = rng.fork(i as u64);
                    member.apply(net, &mut stream);
                }
            }
        }
    }

    /// A short human-readable descriptor, e.g. `pv(sigma=0.20)`.
    pub fn describe(&self) -> String {
        match self {
            FaultModel::ProgrammingVariation { sigma } => format!("pv(sigma={sigma:.2})"),
            FaultModel::RandomSoftError { probability } => format!("soft(p={probability})"),
            FaultModel::StuckAt { sa0, sa1 } => format!("stuck(sa0={sa0},sa1={sa1})"),
            FaultModel::Drift { nu, time } => format!("drift(nu={nu},t={time})"),
            FaultModel::Compound(members) => {
                let inner: Vec<String> = members.iter().map(|m| m.describe()).collect();
                format!("compound[{}]", inner.join("+"))
            }
        }
    }

    fn validate(&self) {
        match self {
            FaultModel::ProgrammingVariation { sigma } => {
                assert!(*sigma >= 0.0, "sigma must be non-negative, got {sigma}");
            }
            FaultModel::RandomSoftError { probability } => {
                assert!(
                    (0.0..=1.0).contains(probability),
                    "probability {probability} outside [0, 1]"
                );
            }
            FaultModel::StuckAt { sa0, sa1 } => {
                assert!(*sa0 >= 0.0 && *sa1 >= 0.0 && sa0 + sa1 <= 1.0,
                    "stuck-at fractions must be non-negative and sum to at most 1, got sa0={sa0}, sa1={sa1}");
            }
            FaultModel::Drift { nu, time } => {
                assert!(*nu >= 0.0 && *time >= 0.0, "drift parameters must be non-negative");
            }
            FaultModel::Compound(_) => {}
        }
    }
}

// Externally-tagged encoding, matching what the previous serde derive
// produced: `{"ProgrammingVariation":{"sigma":0.2}}`,
// `{"Compound":[...]}` — so recorded campaign configs keep loading.
impl ToJson for FaultModel {
    fn to_json(&self) -> Json {
        let (tag, body) = match self {
            FaultModel::ProgrammingVariation { sigma } => (
                "ProgrammingVariation",
                Json::Object(vec![("sigma".to_owned(), sigma.to_json())]),
            ),
            FaultModel::RandomSoftError { probability } => (
                "RandomSoftError",
                Json::Object(vec![("probability".to_owned(), probability.to_json())]),
            ),
            FaultModel::StuckAt { sa0, sa1 } => (
                "StuckAt",
                Json::Object(vec![
                    ("sa0".to_owned(), sa0.to_json()),
                    ("sa1".to_owned(), sa1.to_json()),
                ]),
            ),
            FaultModel::Drift { nu, time } => (
                "Drift",
                Json::Object(vec![
                    ("nu".to_owned(), nu.to_json()),
                    ("time".to_owned(), time.to_json()),
                ]),
            ),
            FaultModel::Compound(members) => ("Compound", members.to_json()),
        };
        Json::Object(vec![(tag.to_owned(), body)])
    }
}

impl FromJson for FaultModel {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let Json::Object(fields) = value else {
            return Err(JsonError::type_error("fault model object", value));
        };
        let [(tag, body)] = fields.as_slice() else {
            return Err(JsonError::invalid(format!(
                "fault model must have exactly one variant tag, got {} fields",
                fields.len()
            )));
        };
        match tag.as_str() {
            "ProgrammingVariation" => Ok(FaultModel::ProgrammingVariation {
                sigma: f32::from_json(body.field("sigma")?)?,
            }),
            "RandomSoftError" => Ok(FaultModel::RandomSoftError {
                probability: f64::from_json(body.field("probability")?)?,
            }),
            "StuckAt" => Ok(FaultModel::StuckAt {
                sa0: f64::from_json(body.field("sa0")?)?,
                sa1: f64::from_json(body.field("sa1")?)?,
            }),
            "Drift" => Ok(FaultModel::Drift {
                nu: f32::from_json(body.field("nu")?)?,
                time: f32::from_json(body.field("time")?)?,
            }),
            "Compound" => Ok(FaultModel::Compound(Vec::from_json(body)?)),
            other => Err(JsonError::invalid(format!("unknown fault model variant `{other}`"))),
        }
    }
}

/// Applies `f` to every conductance-mapped parameter tensor (keys ending
/// in `weight`).
fn for_each_weight(net: &mut Network, mut f: impl FnMut(&mut Tensor)) {
    net.for_each_param_mut(|key, t| {
        if key.ends_with("weight") {
            f(t);
        }
    });
}

fn max_abs(t: &Tensor) -> f32 {
    t.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_nn::models::tiny_mlp;

    fn golden() -> Network {
        let mut rng = SeededRng::new(7);
        tiny_mlp(6, 12, 4, &mut rng)
    }

    fn weight_vec(net: &Network) -> Vec<f32> {
        let mut v = Vec::new();
        net.for_each_param(|k, t| {
            if k.ends_with("weight") {
                v.extend_from_slice(t.as_slice());
            }
        });
        v
    }

    fn bias_vec(net: &Network) -> Vec<f32> {
        let mut v = Vec::new();
        net.for_each_param(|k, t| {
            if k.ends_with("bias") {
                v.extend_from_slice(t.as_slice());
            }
        });
        v
    }

    #[test]
    fn programming_variation_is_multiplicative_and_sign_preserving() {
        let mut net = golden();
        let before = weight_vec(&net);
        FaultModel::ProgrammingVariation { sigma: 0.3 }.apply(&mut net, &mut SeededRng::new(1));
        let after = weight_vec(&net);
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.signum(), a.signum(), "lognormal factor must preserve sign");
            if *b != 0.0 {
                let factor = a / b;
                assert!(factor > 0.0 && factor < 10.0, "implausible factor {factor}");
            }
        }
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut net = golden();
        let before = weight_vec(&net);
        FaultModel::ProgrammingVariation { sigma: 0.0 }.apply(&mut net, &mut SeededRng::new(1));
        assert_eq!(before, weight_vec(&net));
    }

    #[test]
    fn biases_untouched_by_all_models() {
        for model in [
            FaultModel::ProgrammingVariation { sigma: 0.5 },
            FaultModel::RandomSoftError { probability: 0.5 },
            FaultModel::StuckAt { sa0: 0.3, sa1: 0.3 },
            FaultModel::Drift { nu: 0.5, time: 2.0 },
        ] {
            let mut net = golden();
            // Make biases non-zero first so "untouched" is meaningful.
            net.for_each_param_mut(|k, t| {
                if k.ends_with("bias") {
                    t.map_inplace(|_| 0.25);
                }
            });
            let before = bias_vec(&net);
            model.apply(&mut net, &mut SeededRng::new(2));
            assert_eq!(before, bias_vec(&net), "{} touched biases", model.describe());
        }
    }

    #[test]
    fn soft_error_corrupts_roughly_p_fraction() {
        let mut net = golden();
        let before = weight_vec(&net);
        FaultModel::RandomSoftError { probability: 0.2 }.apply(&mut net, &mut SeededRng::new(3));
        let after = weight_vec(&net);
        let changed = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        let frac = changed as f64 / before.len() as f64;
        assert!((0.1..0.3).contains(&frac), "corrupted fraction {frac}");
    }

    #[test]
    fn soft_error_zero_probability_is_identity() {
        let mut net = golden();
        let before = weight_vec(&net);
        FaultModel::RandomSoftError { probability: 0.0 }.apply(&mut net, &mut SeededRng::new(3));
        assert_eq!(before, weight_vec(&net));
    }

    #[test]
    fn stuck_at_produces_extremes() {
        let mut net = golden();
        FaultModel::StuckAt { sa0: 0.5, sa1: 0.5 }.apply(&mut net, &mut SeededRng::new(4));
        // With sa0+sa1 = 1 every weight is either 0 or ±max.
        net.for_each_param(|k, t| {
            if k.ends_with("weight") {
                let m = t.as_slice().iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
                for &w in t.as_slice() {
                    assert!(w == 0.0 || w.abs() == m, "weight {w} neither stuck-at-0 nor ±{m}");
                }
            }
        });
    }

    #[test]
    fn drift_shrinks_magnitudes_monotonically() {
        let mut net = golden();
        let before: f32 = weight_vec(&net).iter().map(|v| v.abs()).sum();
        FaultModel::Drift { nu: 0.3, time: 1.0 }.apply(&mut net, &mut SeededRng::new(5));
        let mid: f32 = weight_vec(&net).iter().map(|v| v.abs()).sum();
        FaultModel::Drift { nu: 0.3, time: 1.0 }.apply(&mut net, &mut SeededRng::new(6));
        let after: f32 = weight_vec(&net).iter().map(|v| v.abs()).sum();
        assert!(mid < before && after < mid, "drift must decay: {before} -> {mid} -> {after}");
    }

    #[test]
    fn drift_zero_time_is_identity() {
        let mut net = golden();
        let before = weight_vec(&net);
        FaultModel::Drift { nu: 0.3, time: 0.0 }.apply(&mut net, &mut SeededRng::new(5));
        assert_eq!(before, weight_vec(&net));
    }

    #[test]
    fn compound_applies_all_members() {
        let mut net = golden();
        let before = weight_vec(&net);
        FaultModel::Compound(vec![
            FaultModel::ProgrammingVariation { sigma: 0.1 },
            FaultModel::StuckAt { sa0: 0.1, sa1: 0.0 },
        ])
        .apply(&mut net, &mut SeededRng::new(7));
        let after = weight_vec(&net);
        assert_ne!(before, after);
        // Stuck-at-zero member must have produced some exact zeros.
        assert!(after.iter().filter(|&&v| v == 0.0).count() > before.iter().filter(|&&v| v == 0.0).count());
    }

    #[test]
    fn application_is_deterministic() {
        let model = FaultModel::ProgrammingVariation { sigma: 0.25 };
        let mut a = golden();
        let mut b = golden();
        model.apply(&mut a, &mut SeededRng::new(11));
        model.apply(&mut b, &mut SeededRng::new(11));
        assert_eq!(weight_vec(&a), weight_vec(&b));
    }

    #[test]
    fn serde_round_trip() {
        let model = FaultModel::Compound(vec![
            FaultModel::ProgrammingVariation { sigma: 0.2 },
            FaultModel::RandomSoftError { probability: 0.01 },
        ]);
        let json = healthmon_serdes::to_string(&model);
        let back: FaultModel = healthmon_serdes::from_str(&json).unwrap();
        assert_eq!(model, back);
    }

    #[test]
    fn legacy_serde_tagging_loads() {
        // Exactly the externally-tagged layout the old serde derive wrote.
        let json = "{\"Compound\":[{\"ProgrammingVariation\":{\"sigma\":0.2}},\
                     {\"StuckAt\":{\"sa0\":0.1,\"sa1\":0.05}}]}";
        let model: FaultModel = healthmon_serdes::from_str(json).unwrap();
        assert_eq!(
            model,
            FaultModel::Compound(vec![
                FaultModel::ProgrammingVariation { sigma: 0.2 },
                FaultModel::StuckAt { sa0: 0.1, sa1: 0.05 },
            ])
        );
        assert!(healthmon_serdes::from_str::<FaultModel>("{\"NoSuchFault\":{}}").is_err());
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(
            FaultModel::ProgrammingVariation { sigma: 0.2 }.describe(),
            "pv(sigma=0.20)"
        );
        assert!(FaultModel::Compound(vec![FaultModel::Drift { nu: 0.1, time: 1.0 }])
            .describe()
            .contains("drift"));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_bad_probability() {
        FaultModel::RandomSoftError { probability: 1.5 }
            .apply(&mut golden(), &mut SeededRng::new(0));
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn rejects_bad_stuck_fractions() {
        FaultModel::StuckAt { sa0: 0.7, sa1: 0.7 }.apply(&mut golden(), &mut SeededRng::new(0));
    }
}
