//! Benchmarks of the test-generation and detection pipeline: the costs a
//! deployment actually pays (pattern generation is one-time at the cloud;
//! detection runs concurrently on-device).
//!
//! Runs on the in-tree [`healthmon_bench::timing`] harness
//! (`cargo bench --bench testgen`).

use healthmon::{AetGenerator, CtpGenerator, Detector, OtpGenerator, SdcCriterion, TestPatternSet};
use healthmon_bench::timing::TimingHarness;
use healthmon_data::{Dataset, DatasetSpec, SynthDigits};
use healthmon_faults::{FaultCampaign, FaultModel};
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::Network;
use healthmon_reram::{BackendSpec, CrossbarConfig};
use healthmon_tensor::{SeededRng, Tensor};
use std::hint::black_box;

fn fixture() -> (Network, Dataset) {
    let spec = DatasetSpec { train: 1, test: 300, seed: 5, noise: 0.1 };
    let raw = SynthDigits::new(spec).generate();
    let n_pixels = 28 * 28;
    let test = Dataset::new(
        raw.test.images.reshape(&[raw.test.len(), n_pixels]).expect("flatten"),
        raw.test.labels.clone(),
        10,
    );
    let mut rng = SeededRng::new(1);
    let net = tiny_mlp(n_pixels, 48, 10, &mut rng);
    (net, test)
}

fn bench_generators() {
    let (net, pool) = fixture();
    let mut group = TimingHarness::new("generation").samples(5);

    let mut ctp_net = net.clone();
    group.case("ctp_select_50_of_300", || {
        black_box(CtpGenerator::new(50).select(&mut ctp_net, &pool))
    });

    let mut aet_net = net.clone();
    group.case("aet_fgsm_50", || {
        let mut rng = SeededRng::new(2);
        black_box(AetGenerator::new(50, 0.15).generate(&mut aet_net, &pool, &mut rng))
    });

    let reference =
        FaultCampaign::new(&net, 7).model(&FaultModel::ProgrammingVariation { sigma: 0.3 }, 0);
    for iters in [50usize, 200] {
        group.case(&format!("otp_10_patterns/{iters}"), || {
            let mut rng = SeededRng::new(3);
            black_box(
                OtpGenerator::new()
                    .max_iters(iters)
                    .generate(&net, &reference, &mut rng),
            )
        });
    }
}

fn bench_detection() {
    let (net, _) = fixture();
    let mut group = TimingHarness::new("detection");
    let mut rng = SeededRng::new(4);
    let golden = net.clone();

    for &patterns in &[10usize, 50] {
        let set = TestPatternSet::new(
            "bench",
            Tensor::rand_uniform(&[patterns, 28 * 28], 0.0, 1.0, &mut rng),
        );
        let detector = Detector::new(&golden, set);
        let mut faulty = net.clone();
        FaultModel::ProgrammingVariation { sigma: 0.3 }
            .apply(&mut faulty, &mut SeededRng::new(5));
        group.case(&format!("concurrent_test_single_device/{patterns}"), || {
            black_box(detector.is_faulty(&faulty, SdcCriterion::SdcA { threshold: 0.03 }))
        });
    }
}

fn bench_fault_injection() {
    let (net, _) = fixture();
    let mut group = TimingHarness::new("fault_injection");
    for (name, fault) in [
        ("programming_variation", FaultModel::ProgrammingVariation { sigma: 0.2 }),
        ("soft_error_1pct", FaultModel::RandomSoftError { probability: 0.01 }),
        ("stuck_at", FaultModel::StuckAt { sa0: 0.05, sa1: 0.05 }),
        ("drift", FaultModel::Drift { nu: 0.1, time: 1.0 }),
    ] {
        group.case(name, || {
            let mut copy = net.clone();
            fault.apply(&mut copy, &mut SeededRng::new(6));
            black_box(copy)
        });
    }
}

/// Fig. 7-style statistical campaign: the cost profile a sweep actually
/// pays — N fault models derived from one golden network, each evaluated
/// on the full pattern set. This is the headline number the execution
/// engine (persistent pool, blocked GEMM, per-worker scratch networks)
/// is built to improve.
fn bench_campaign() {
    let (net, _) = fixture();
    let mut group = TimingHarness::new("campaign").samples(5);
    let mut rng = SeededRng::new(8);
    let golden = net.clone();
    let set = TestPatternSet::new(
        "campaign",
        Tensor::rand_uniform(&[20, 28 * 28], 0.0, 1.0, &mut rng),
    );
    let detector = Detector::new(&golden, set);
    let fault = FaultModel::ProgrammingVariation { sigma: 0.3 };
    group.case("detection_rate_40_models", || {
        black_box(detector.detection_rate(&net, &fault, 40, 11, SdcCriterion::SdcA {
            threshold: 0.03,
        }))
    });
    group.case("campaign_distances_40_models", || {
        black_box(detector.campaign_distances(&net, &fault, 40, 11))
    });
    // The analog counterpart of the headline number: the same 40 fault
    // models programmed onto live crossbar state (default 128×128 tiles,
    // 8-bit converters) before their responses are measured. This is the
    // per-checkup cost the integer-domain crossbar path is built to keep
    // within reach of the digital campaign above.
    let analog = BackendSpec::analog(CrossbarConfig::default());
    group.case("detection_rate_40_models_analog", || {
        black_box(detector.detection_rates_with(
            &net,
            &fault,
            40,
            11,
            &[SdcCriterion::SdcA { threshold: 0.03 }],
            &analog,
        ))
    });
}

fn main() {
    bench_generators();
    bench_detection();
    bench_fault_injection();
    bench_campaign();
    healthmon_bench::timing::write_json_report();
}
