//! Crash-safe artifact persistence: atomic file replacement and
//! corruption-aware checkpoint loading.
//!
//! Every checkpoint writer in the workspace (lifetime checkpoints,
//! campaign checkpoints, fleet shards) routes through [`write_atomic`]:
//! the payload is written to a sibling temp file, fsynced, and renamed
//! over the destination, so a kill at any instant leaves either the old
//! complete file or the new complete file — never a torn half-write. The
//! reader side pairs with it: [`read_checkpoint`] maps I/O failures to a
//! structured [`HealthmonError::CheckpointCorrupt`] carrying the
//! offending path, and [`mark_corrupt`] rewraps parse-level JSON errors
//! the same way, so a damaged artifact is reported as *damaged at this
//! path* instead of surfacing as a context-free parse error.

use crate::error::HealthmonError;
use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

/// Atomically replaces `path` with `contents`: temp file in the same
/// directory + fsync + rename, then a best-effort directory fsync so the
/// rename itself is durable. After a crash the destination holds either
/// the previous complete contents or the new complete contents.
///
/// # Errors
///
/// Any I/O error from creating, writing, syncing, or renaming the temp
/// file. The temp file is removed on failure when possible.
pub fn write_atomic(path: impl AsRef<Path>, contents: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(contents)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
        return result;
    }
    // Durability of the rename needs the directory entry flushed too;
    // platforms that cannot fsync a directory just skip this.
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Reads a checkpoint file to a string, mapping any I/O failure to
/// [`HealthmonError::CheckpointCorrupt`] with the offending path.
///
/// # Errors
///
/// [`HealthmonError::CheckpointCorrupt`] when the file is missing or
/// unreadable.
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<String, HealthmonError> {
    let path = path.as_ref();
    fs::read_to_string(path).map_err(|e| HealthmonError::CheckpointCorrupt {
        path: path.display().to_string(),
        detail: e.to_string(),
    })
}

/// Rewraps parse-level failures of a checkpoint load as
/// [`HealthmonError::CheckpointCorrupt`] at `path`. Semantic mismatches
/// ([`HealthmonError::CheckpointMismatch`]) pass through untouched: a
/// well-formed checkpoint for different inputs is not a damaged file.
pub fn mark_corrupt(path: impl AsRef<Path>, e: HealthmonError) -> HealthmonError {
    match e {
        HealthmonError::Json(parse) => HealthmonError::CheckpointCorrupt {
            path: path.as_ref().display().to_string(),
            detail: parse.to_string(),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("healthmon_store_{name}"));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_round_trips() {
        let dir = temp_dir("round_trip");
        let path = dir.join("artifact.json");
        write_atomic(&path, b"{\"v\":1}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        // Overwrite replaces the whole file, never appends.
        write_atomic(&path, b"{}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{}");
        // No temp file left behind.
        assert!(!dir.join("artifact.json.tmp").exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_into_missing_directory_fails_cleanly() {
        let dir = temp_dir("missing").join("no_such_subdir");
        assert!(write_atomic(dir.join("x.json"), b"x").is_err());
    }

    #[test]
    fn read_checkpoint_reports_the_path() {
        let err = read_checkpoint("/definitely/not/a/real/checkpoint.json").unwrap_err();
        match err {
            HealthmonError::CheckpointCorrupt { path, .. } => {
                assert!(path.contains("checkpoint.json"));
            }
            other => panic!("expected CheckpointCorrupt, got {other}"),
        }
    }

    #[test]
    fn mark_corrupt_rewraps_parse_errors_only() {
        let parse: HealthmonError = healthmon_serdes::JsonError::invalid("bad token").into();
        match mark_corrupt("cp.json", parse) {
            HealthmonError::CheckpointCorrupt { path, detail } => {
                assert_eq!(path, "cp.json");
                assert!(detail.contains("bad token"));
            }
            other => panic!("expected CheckpointCorrupt, got {other}"),
        }
        let mismatch = HealthmonError::CheckpointMismatch("different seed".into());
        assert!(matches!(
            mark_corrupt("cp.json", mismatch),
            HealthmonError::CheckpointMismatch(_)
        ));
    }
}
