//! The metrics registry: counters, gauges, and log-bucketed histograms.
//!
//! Metrics are declared as `static` items with `const` constructors and
//! lazily register themselves in a process-global registry on first
//! touch. Counters are sharded across cache-line-padded atomic cells
//! (thread-local shard selection) so concurrent recording through the
//! worker pool never contends; shards merge by summation at snapshot
//! time, which is commutative, so aggregate counts are bit-identical at
//! any thread count when the underlying work items are deterministic.
//!
//! Every metric carries a [`Stability`] tag. `Stable` metrics count
//! deterministic work items and must be thread-count-invariant;
//! `Volatile` metrics measure scheduling or wall-clock effects and are
//! excluded from invariance comparisons (see `scripts/ci.sh`).

use crate::enabled;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Whether a metric's aggregate value is thread-count-invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stability {
    /// Counts deterministic work items: bit-identical at any
    /// `HEALTHMON_THREADS`, included in CI invariance byte-compares.
    Stable,
    /// Measures scheduling or timing (queue waits, chunk placement,
    /// span durations): legitimately varies run to run.
    Volatile,
}

impl Stability {
    fn is_stable(self) -> bool {
        matches!(self, Stability::Stable)
    }
}

/// Number of counter shards; threads hash onto shards round-robin.
const N_SHARDS: usize = 16;

/// One cache line per shard so concurrent increments don't false-share.
#[repr(align(64))]
#[derive(Debug)]
struct Shard(AtomicU64);

#[allow(clippy::declare_interior_mutable_const)] // array-repeat seed, never read as a const
const ZERO_SHARD: Shard = Shard(AtomicU64::new(0));

/// Round-robin shard assignment: each thread picks a slot once.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % N_SHARDS;
}

#[inline]
fn my_slot() -> usize {
    SLOT.with(|s| *s)
}

/// A monotonically increasing sum, sharded per thread.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    stability: Stability,
    registered: AtomicBool,
    shards: [Shard; N_SHARDS],
}

impl Counter {
    /// Creates a counter; usable in `static` items.
    pub const fn new(name: &'static str, stability: Stability) -> Self {
        Counter {
            name,
            stability,
            registered: AtomicBool::new(false),
            shards: [ZERO_SHARD; N_SHARDS],
        }
    }

    /// Adds `n` to the counter. No-op while telemetry is disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.ensure_registered();
        self.shards[my_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter. No-op while telemetry is disabled.
    #[inline]
    pub fn inc(&'static self) {
        self.add(1);
    }

    /// The merged value across all shards.
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().lock().unwrap().push(MetricRef::Counter(self));
        }
    }

    fn clear(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
        self.registered.store(false, Ordering::Relaxed);
    }
}

/// A last/extremum-valued measurement (stored as `f64` bits).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    stability: Stability,
    registered: AtomicBool,
    bits: AtomicU64,
}

/// Quiet-NaN sentinel marking a gauge that has never been set; any first
/// observation replaces it unconditionally, making `set_min`/`set_max`
/// commutative without an artificial 0.0 floor.
const UNSET_BITS: u64 = 0x7FF8_0000_0000_0000;

impl Gauge {
    /// Creates a gauge; usable in `static` items. Reads NaN until set.
    pub const fn new(name: &'static str, stability: Stability) -> Self {
        Gauge {
            name,
            stability,
            registered: AtomicBool::new(false),
            bits: AtomicU64::new(UNSET_BITS),
        }
    }

    /// Sets the gauge to `v`. No-op while telemetry is disabled.
    #[inline]
    pub fn set(&'static self, v: f64) {
        if !enabled() {
            return;
        }
        self.ensure_registered();
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is greater than the current value.
    /// Commutative, so the result is thread-count-invariant when the set
    /// of observed values is. No-op while telemetry is disabled.
    #[inline]
    pub fn set_max(&'static self, v: f64) {
        self.set_extremum(v, |cur, new| new > cur);
    }

    /// Lowers the gauge to `v` if `v` is less than the current value.
    /// The first observation always wins (the unset sentinel is NaN, not
    /// a 0.0 floor). No-op while telemetry is disabled.
    #[inline]
    pub fn set_min(&'static self, v: f64) {
        self.set_extremum(v, |cur, new| new < cur);
    }

    fn set_extremum(&'static self, v: f64, better: impl Fn(f64, f64) -> bool) {
        if !enabled() {
            return;
        }
        self.ensure_registered();
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let curf = f64::from_bits(cur);
            if !(curf.is_nan() || better(curf, v)) {
                return;
            }
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current gauge value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().lock().unwrap().push(MetricRef::Gauge(self));
        }
    }

    fn clear(&self) {
        self.bits.store(UNSET_BITS, Ordering::Relaxed);
        self.registered.store(false, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: one per power of two of a `u64`, plus a
/// dedicated zero bucket at index 0.
const N_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (typically nanoseconds or
/// element counts). Bucket `i` (for `i >= 1`) holds samples in
/// `[2^(i-1), 2^i)`; bucket 0 holds exact zeros.
pub struct Histogram {
    name: &'static str,
    stability: Stability,
    registered: AtomicBool,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("name", &self.name)
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[allow(clippy::declare_interior_mutable_const)] // array-repeat seed, never read as a const
const ZERO_CELL: AtomicU64 = AtomicU64::new(0);

impl Histogram {
    /// Creates a histogram; usable in `static` items.
    pub const fn new(name: &'static str, stability: Stability) -> Self {
        Histogram {
            name,
            stability,
            registered: AtomicBool::new(false),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO_CELL; N_BUCKETS],
        }
    }

    /// Records one sample. No-op while telemetry is disabled.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.ensure_registered();
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`.
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().lock().unwrap().push(MetricRef::Histogram(self));
        }
    }

    fn clear(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.registered.store(false, Ordering::Relaxed);
    }
}

/// The global registry of every metric touched since the last reset.
enum MetricRef {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

fn registry() -> &'static Mutex<Vec<MetricRef>> {
    static REGISTRY: Mutex<Vec<MetricRef>> = Mutex::new(Vec::new());
    &REGISTRY
}

/// Zeroes every registered metric and empties the registry, so the next
/// touch re-registers from scratch (a fresh process and a reset process
/// produce identical snapshots). Crate-internal; use [`crate::reset`].
pub(crate) fn reset_registry() {
    let mut reg = registry().lock().unwrap();
    for m in reg.drain(..) {
        match m {
            MetricRef::Counter(c) => c.clear(),
            MetricRef::Gauge(g) => g.clear(),
            MetricRef::Histogram(h) => h.clear(),
        }
    }
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name (dot-separated, e.g. `gemm.calls`).
    pub name: String,
    /// Merged value across all shards.
    pub value: u64,
    /// Whether the value is thread-count-invariant.
    pub stable: bool,
}

/// Point-in-time value of one gauge.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Current value.
    pub value: f64,
    /// Whether the value is thread-count-invariant.
    pub stable: bool,
}

/// Point-in-time state of one histogram. Only non-empty buckets are
/// kept, as `(bucket_index, count)` pairs in ascending index order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// `(bucket_index, count)` for non-empty buckets; bucket `i >= 1`
    /// covers `[2^(i-1), 2^i)`, bucket 0 is exact zeros.
    pub buckets: Vec<(u32, u64)>,
    /// Whether the distribution is thread-count-invariant.
    pub stable: bool,
}

impl HistogramSnapshot {
    /// Inclusive upper bound of a bucket, for display and exposition.
    pub fn bucket_upper(index: u32) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Inclusive lower bound of a bucket: 0 for the zero bucket, else
    /// `2^(index-1)`.
    pub fn bucket_lower(index: u32) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1).min(63)
        }
    }

    /// Deterministic nearest-rank quantile estimate from the log2
    /// buckets.
    ///
    /// The sample at 1-based rank `ceil(q * count)` is located in its
    /// bucket and its value estimated by linear interpolation across the
    /// bucket's `[2^(i-1), 2^i)` span, assuming ranks spread evenly
    /// within a bucket. All arithmetic is exact integer math (`u128`
    /// intermediate), so the estimate is bit-identical across platforms
    /// and thread counts whenever the bucket counts are. Returns 0 for
    /// an empty histogram; `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            if seen + n >= rank {
                let lower = Self::bucket_lower(i);
                let width = Self::bucket_upper(i) - lower;
                let k = rank - seen - 1; // 0-based position within the bucket
                let step = (width as u128 * k as u128) / n as u128;
                return lower + step as u64;
            }
            seen += n;
        }
        // Unreachable when count == sum of bucket counts; fall back to
        // the top of the highest occupied bucket.
        self.buckets.last().map(|&(i, _)| Self::bucket_upper(i)).unwrap_or(0)
    }
}

/// A deterministic snapshot of everything recorded since the last reset:
/// metrics sorted by name, span stats sorted by path, events in
/// recording order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All registered counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All registered gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All registered histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Merged span statistics, sorted by path.
    pub spans: Vec<crate::span::SpanSnapshot>,
    /// Ring-buffer events, oldest first.
    pub events: Vec<crate::span::EventSnapshot>,
}

/// Captures a [`MetricsSnapshot`] of the current registry, span stats,
/// and event ring buffer.
pub fn snapshot() -> MetricsSnapshot {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    {
        let reg = registry().lock().unwrap();
        for m in reg.iter() {
            match m {
                MetricRef::Counter(c) => counters.push(CounterSnapshot {
                    name: c.name.to_string(),
                    value: c.value(),
                    stable: c.stability.is_stable(),
                }),
                MetricRef::Gauge(g) => gauges.push(GaugeSnapshot {
                    name: g.name.to_string(),
                    value: g.value(),
                    stable: g.stability.is_stable(),
                }),
                MetricRef::Histogram(h) => {
                    let mut buckets = Vec::new();
                    for (i, b) in h.buckets.iter().enumerate() {
                        let n = b.load(Ordering::Relaxed);
                        if n > 0 {
                            buckets.push((i as u32, n));
                        }
                    }
                    histograms.push(HistogramSnapshot {
                        name: h.name.to_string(),
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        buckets,
                        stable: h.stability.is_stable(),
                    });
                }
            }
        }
    }
    counters.sort_by(|a, b| a.name.cmp(&b.name));
    gauges.sort_by(|a, b| a.name.cmp(&b.name));
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    let (spans, events) = crate::span::collect();
    MetricsSnapshot { counters, gauges, histograms, spans, events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlock;

    #[test]
    fn counter_merges_across_threads() {
        let _g = testlock::exclusive();
        static C: Counter = Counter::new("metrics.threads", Stability::Stable);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        C.inc();
                    }
                });
            }
        });
        assert_eq!(C.value(), 4000);
        let snap = snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].value, 4000);
        assert!(snap.counters[0].stable);
    }

    #[test]
    fn gauge_extrema_are_commutative() {
        let _g = testlock::exclusive();
        static HI: Gauge = Gauge::new("metrics.hi", Stability::Stable);
        static LO: Gauge = Gauge::new("metrics.lo", Stability::Stable);
        for v in [3.0, -1.0, 7.5, 2.0] {
            HI.set_max(v);
            LO.set_min(v);
        }
        assert_eq!(HI.value(), 7.5);
        assert_eq!(LO.value(), -1.0); // NaN sentinel: first observation replaces it
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let _g = testlock::exclusive();
        static H: Histogram = Histogram::new("metrics.hist", Stability::Volatile);
        for v in [0, 1, 2, 3, 4, 1024] {
            H.record(v);
        }
        let snap = snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1034);
        // 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 4 -> bucket 3; 1024 -> bucket 11.
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (2, 2), (3, 1), (11, 1)]);
        assert!(!h.stable);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let _g = testlock::exclusive();
        static B: Counter = Counter::new("metrics.sort.b", Stability::Stable);
        static A: Counter = Counter::new("metrics.sort.a", Stability::Stable);
        B.inc();
        A.inc();
        let snap = snapshot();
        let names: Vec<_> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["metrics.sort.a", "metrics.sort.b"]);
    }

    #[test]
    fn bucket_upper_bounds() {
        assert_eq!(HistogramSnapshot::bucket_upper(0), 0);
        assert_eq!(HistogramSnapshot::bucket_upper(1), 1);
        assert_eq!(HistogramSnapshot::bucket_upper(4), 15);
        assert_eq!(HistogramSnapshot::bucket_upper(64), u64::MAX);
        assert_eq!(HistogramSnapshot::bucket_lower(0), 0);
        assert_eq!(HistogramSnapshot::bucket_lower(1), 1);
        assert_eq!(HistogramSnapshot::bucket_lower(4), 8);
        assert_eq!(HistogramSnapshot::bucket_lower(64), 1u64 << 63);
    }

    fn hist(count: u64, buckets: Vec<(u32, u64)>) -> HistogramSnapshot {
        HistogramSnapshot { name: "q".into(), count, sum: 0, buckets, stable: false }
    }

    #[test]
    fn quantile_is_exact_on_single_value_buckets() {
        // Zeros and ones occupy single-value buckets, so every quantile
        // inside them is exact, not interpolated.
        let h = hist(4, vec![(0, 2), (1, 2)]);
        assert_eq!(h.quantile(0.25), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.75), 1);
        assert_eq!(h.quantile(1.0), 1);
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        // Four samples in bucket 11 ([1024, 2047]): ranks spread evenly
        // across the 1023-wide span at k/n steps.
        let h = hist(4, vec![(11, 4)]);
        assert_eq!(h.quantile(0.25), 1024);
        assert_eq!(h.quantile(0.5), 1024 + 1023 / 4);
        assert_eq!(h.quantile(1.0), 1024 + (1023 * 3) / 4);
    }

    #[test]
    fn quantile_walks_cumulative_counts() {
        let h = hist(100, vec![(1, 50), (5, 45), (11, 5)]);
        assert_eq!(h.quantile(0.5), 1);
        // p95 is the 95th sample: rank 95 is the last of bucket 5.
        assert_eq!(HistogramSnapshot::bucket_lower(5), 16);
        assert_eq!(h.quantile(0.95), 16 + (15 * 44) / 45);
        // p99 lands in bucket 11.
        assert_eq!(h.quantile(0.99), 1024 + (1023 * 3) / 5);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        assert_eq!(hist(0, vec![]).quantile(0.99), 0);
    }
}
