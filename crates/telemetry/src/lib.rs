//! **healthmon-telemetry** — zero-dependency structured tracing, metrics,
//! and span profiling for the healthmon stack.
//!
//! The concurrent-test flow makes silent internal decisions (conductance
//! cache invalidations, ADC clipping, repair-ladder escalations) that are
//! invisible from the final verdicts. This crate is the measurement
//! substrate: every hot or decision-making path in the workspace reports
//! into a process-global registry that can be dumped as JSON lines,
//! Prometheus-style text exposition, or a human-readable end-of-run
//! report.
//!
//! # Design contract
//!
//! * **Purely observational.** Telemetry never touches RNG streams,
//!   float math, or control flow. Detection outputs, checkpoints, and
//!   digests are byte-identical whether telemetry is on or off; CI
//!   proves it (`scripts/ci.sh`, telemetry smoke).
//! * **Near-zero cost when disabled.** Every recording entry point is
//!   gated on a single relaxed atomic load ([`enabled`]); when it reads
//!   `false` nothing is computed, allocated, or locked. Call sites that
//!   would have to *derive* a value (e.g. count clipped DAC inputs)
//!   pre-gate on [`enabled`] so the derivation itself is skipped.
//! * **Thread-count invariance.** Counters are sharded per thread
//!   (cache-line-padded shards, merged by summation at snapshot time),
//!   so metrics counting deterministic work items are bit-identical
//!   under any `HEALTHMON_THREADS`. Metrics that measure *scheduling*
//!   (queue waits, chunk placement, timings) are tagged
//!   [`Stability::Volatile`] and excluded from invariance comparisons.
//!
//! # Example
//!
//! ```
//! use healthmon_telemetry as tel;
//!
//! static CALLS: tel::Counter = tel::Counter::new("example.calls", tel::Stability::Stable);
//!
//! tel::set_enabled(true);
//! {
//!     let _span = tel::span("example");
//!     CALLS.inc();
//! }
//! let snap = tel::snapshot();
//! assert_eq!(snap.counters[0].value, 1);
//! assert_eq!(snap.spans[0].calls, 1);
//! tel::reset();
//! tel::set_enabled(false);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod export;
pub mod log;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod timeseries;

pub use export::{parse_stream, render_frame, MetricsServer, SnapshotFrame};
pub use log::{set_verbosity, verbosity, Level};
pub use metrics::{
    snapshot, Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot,
    MetricsSnapshot, Stability,
};
pub use sink::{parse_jsonl, render_jsonl, render_prometheus, render_report};
pub use span::{record_event, span, EventSnapshot, Span, SpanSnapshot};
pub use timeseries::{HealthTimeline, Series, TimelinePoint, TIMELINE_CAPACITY};

use std::sync::atomic::{AtomicBool, Ordering};

/// Master switch. All recording paths check this first; default off.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Returns whether telemetry recording is enabled.
///
/// A single relaxed load — cheap enough for hot paths. Call sites that
/// must compute a value before recording it should gate the computation
/// on this.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
    if on {
        span::epoch(); // pin the time origin at enable, not at first span
    }
}

/// Enables telemetry if the `HEALTHMON_TRACE` environment variable is set
/// to anything other than `0`, `false`, or the empty string. Returns the
/// resulting enabled state.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("HEALTHMON_TRACE") {
        if !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false") {
            set_enabled(true);
        }
    }
    enabled()
}

/// Clears all recorded state: metric values, registrations, span stats,
/// and the event ring buffer. The enabled flag is left unchanged.
///
/// Intended for test harnesses and A/B benches that run several
/// measurement windows in one process. Not safe to call concurrently
/// with active recording — callers own that exclusion.
pub fn reset() {
    metrics::reset_registry();
    span::reset_spans();
}

#[cfg(test)]
pub(crate) mod testlock {
    //! Telemetry state is process-global; unit tests serialize on this.
    use std::sync::{Mutex, MutexGuard, OnceLock};

    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();

    /// Takes the global test lock, resets telemetry, and enables it.
    pub fn exclusive() -> MutexGuard<'static, ()> {
        let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        crate::reset();
        crate::set_enabled(true);
        guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_records_nothing() {
        let _g = testlock::exclusive();
        set_enabled(false);
        static C: Counter = Counter::new("lib.disabled", Stability::Stable);
        C.add(5);
        let _s = span("lib.disabled.span");
        drop(_s);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
        set_enabled(true);
    }

    #[test]
    fn env_init_parses_truthy_values() {
        let _g = testlock::exclusive();
        set_enabled(false);
        // No env var set in the test environment: stays disabled.
        std::env::remove_var("HEALTHMON_TRACE");
        assert!(!init_from_env());
        std::env::set_var("HEALTHMON_TRACE", "0");
        assert!(!init_from_env());
        std::env::set_var("HEALTHMON_TRACE", "1");
        assert!(init_from_env());
        std::env::remove_var("HEALTHMON_TRACE");
        set_enabled(false);
    }

    #[test]
    fn reset_clears_registrations() {
        let _g = testlock::exclusive();
        static C: Counter = Counter::new("lib.reset", Stability::Stable);
        C.add(3);
        assert_eq!(snapshot().counters.len(), 1);
        reset();
        assert!(snapshot().counters.is_empty());
        // Re-touch re-registers with a fresh value.
        C.add(2);
        let snap = snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].value, 2);
    }
}
