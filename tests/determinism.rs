//! Whole-pipeline reproducibility: every stage of the flow must be
//! bit-identical given the same seeds, because the experiment index in
//! EXPERIMENTS.md promises replayability.

use healthmon::{AetGenerator, CtpGenerator, Detector, OtpGenerator};
use healthmon_data::{DataSplit, Dataset, DatasetSpec, SynthDigits, SynthObjects};
use healthmon_faults::{FaultCampaign, FaultModel};
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::optim::Sgd;
use healthmon_nn::{Network, TrainConfig, Trainer};
use healthmon_tensor::SeededRng;

fn pipeline() -> (Network, Dataset, Vec<f32>) {
    let spec = DatasetSpec { train: 300, test: 100, seed: 5, noise: 0.1 };
    let raw = SynthDigits::new(spec).generate();
    let n_pixels = 28 * 28;
    let train = Dataset::new(
        raw.train.images.reshape(&[raw.train.len(), n_pixels]).expect("flatten"),
        raw.train.labels.clone(),
        10,
    );
    let test = Dataset::new(
        raw.test.images.reshape(&[raw.test.len(), n_pixels]).expect("flatten"),
        raw.test.labels.clone(),
        10,
    );
    let mut rng = SeededRng::new(1);
    let mut net = tiny_mlp(n_pixels, 24, 10, &mut rng);
    let config = TrainConfig { epochs: 2, batch_size: 32, ..TrainConfig::default() };
    Trainer::new(&mut net, Sgd::new(0.1), config).fit(&train.images, &train.labels, None);

    // Full detection pass.
    let patterns = CtpGenerator::new(10).select(&mut net, &test);
    let detector = Detector::new(&net, patterns);
    let distances: Vec<f32> = detector
        .campaign_distances(&net, &FaultModel::ProgrammingVariation { sigma: 0.3 }, 6, 42)
        .iter()
        .map(|d| d.all_classes)
        .collect();
    (net, test, distances)
}

#[test]
fn full_pipeline_is_reproducible() {
    let (net_a, _, dist_a) = pipeline();
    let (net_b, _, dist_b) = pipeline();
    assert_eq!(net_a.state_dict(), net_b.state_dict());
    assert_eq!(dist_a, dist_b);
}

#[test]
fn datasets_reproducible_across_generators() {
    let spec = DatasetSpec { train: 50, test: 20, seed: 123, noise: 0.1 };
    assert_eq!(SynthDigits::new(spec).generate(), SynthDigits::new(spec).generate());
    assert_eq!(SynthObjects::new(spec).generate(), SynthObjects::new(spec).generate());
}

#[test]
fn dataset_seed_changes_content() {
    let a = SynthDigits::new(DatasetSpec { train: 30, test: 10, seed: 1, noise: 0.1 }).generate();
    let b = SynthDigits::new(DatasetSpec { train: 30, test: 10, seed: 2, noise: 0.1 }).generate();
    assert_ne!(a.train.images, b.train.images);
}

#[test]
fn pattern_generators_reproducible() {
    let (net, test, _) = pipeline();
    let mut net_mut = net.clone();
    let c1 = CtpGenerator::new(8).select(&mut net_mut, &test);
    let c2 = CtpGenerator::new(8).select(&mut net_mut, &test);
    assert_eq!(c1, c2);

    let a1 = AetGenerator::new(8, 0.1).generate(&mut net_mut, &test, &mut SeededRng::new(9));
    let a2 = AetGenerator::new(8, 0.1).generate(&mut net_mut, &test, &mut SeededRng::new(9));
    assert_eq!(a1, a2);

    let reference =
        FaultCampaign::new(&net, 7).model(&FaultModel::ProgrammingVariation { sigma: 0.3 }, 0);
    let (o1, out1) = OtpGenerator::new().max_iters(50).generate(&net, &reference, &mut SeededRng::new(9));
    let (o2, out2) = OtpGenerator::new().max_iters(50).generate(&net, &reference, &mut SeededRng::new(9));
    assert_eq!(o1, o2);
    assert_eq!(out1, out2);
}

#[test]
fn campaign_models_independent_of_evaluation_order() {
    let (net, _, _) = pipeline();
    let fault = FaultModel::RandomSoftError { probability: 0.05 };
    let campaign = FaultCampaign::new(&net, 31);
    // Build index 4 directly vs after building others.
    let direct = campaign.model(&fault, 4);
    let _ = campaign.model(&fault, 0);
    let _ = campaign.model(&fault, 2);
    let again = campaign.model(&fault, 4);
    assert_eq!(direct.state_dict(), again.state_dict());
}

#[test]
fn split_has_no_train_test_leakage_by_construction() {
    let split: DataSplit =
        SynthDigits::new(DatasetSpec { train: 40, test: 40, seed: 6, noise: 0.1 }).generate();
    // Same shapes, but disjoint RNG streams must give different pixels.
    assert_ne!(split.train.images, split.test.images);
}
