//! Flatten layer: collapses feature maps into vectors at the conv→dense
//! boundary.

use super::{Layer, MatmulEngine};
use healthmon_tensor::Tensor;

/// Flattens `[N, C, H, W]` (or any rank ≥ 2) into `[N, C·H·W]`, preserving
/// the batch dimension.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert!(input.ndim() >= 2, "flatten expects a batched input, got {:?}", input.shape());
        self.cached_shape = Some(input.shape().to_vec());
        let n = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        input.reshape(&[n, rest]).expect("flatten preserves element count")
    }

    fn infer(&self, input: &Tensor, _key_prefix: &str, _engine: &dyn MatmulEngine) -> Tensor {
        assert!(input.ndim() >= 2, "flatten expects a batched input, got {:?}", input.shape());
        let n = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        input.reshape(&[n, rest]).expect("flatten preserves element count")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.cached_shape.as_ref().expect("flatten backward before forward");
        grad_out.reshape(shape).expect("flatten backward restores forward shape")
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut l = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 2, 2]).unwrap();
        let y = l.forward(&x);
        assert_eq!(y.shape(), &[2, 12]);
        let g = l.backward(&y);
        assert_eq!(g.shape(), &[2, 3, 2, 2]);
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn keeps_2d_unchanged() {
        let mut l = Flatten::new();
        let x = Tensor::zeros(&[4, 7]);
        assert_eq!(l.forward(&x).shape(), &[4, 7]);
    }
}
