//! **Fig 3**: top-ranked and all-class confidence distance of AET, C-TP
//! and O-TP versus programming-variation σ, on both benchmarks.

use healthmon::report::series_line;
use healthmon::Detector;
use healthmon_bench::harness::{
    emit, models_per_level, pattern_suite, train_or_load, Benchmark, CAMPAIGN_SEED,
};
use healthmon_faults::FaultModel;
use std::fmt::Write as _;

fn main() {
    let mut out = String::new();
    let count = models_per_level();
    let _ = writeln!(
        out,
        "Fig 3 — mean confidence distance vs sigma ({count} fault models per point)\n"
    );
    for benchmark in [Benchmark::Lenet5Digits, Benchmark::Convnet7Objects] {
        let mut trained = train_or_load(benchmark);
        let suite = pattern_suite(&mut trained);
        let _ = writeln!(out, "== {} ==", benchmark.label());
        for patterns in suite.methods() {
            let detector = Detector::new(&trained.model, patterns.clone());
            let mut top_series = Vec::new();
            let mut all_series = Vec::new();
            for sigma in benchmark.sigma_grid() {
                let distances = detector.campaign_distances(
                    &trained.model,
                    &FaultModel::ProgrammingVariation { sigma },
                    count,
                    CAMPAIGN_SEED,
                );
                let n = distances.len() as f32;
                top_series.push((sigma, distances.iter().map(|d| d.top_ranked).sum::<f32>() / n));
                all_series.push((sigma, distances.iter().map(|d| d.all_classes).sum::<f32>() / n));
            }
            let _ = writeln!(
                out,
                "{}",
                series_line(&format!("{} top-ranked distance", patterns.method()), &top_series)
            );
            let _ = writeln!(
                out,
                "{}",
                series_line(&format!("{} all-class distance", patterns.method()), &all_series)
            );
        }
        let _ = writeln!(out);
    }
    emit("fig3", &out);
}
