//! C-TP: corner-data test pattern selection (paper §III-A).

use crate::TestPatternSet;
use healthmon_data::Dataset;
use healthmon_nn::trainer::gather_batch;
use healthmon_nn::Network;
use healthmon_tensor::Tensor;

/// Selects "corner data" from an existing dataset as test patterns.
///
/// The selection rule is the paper's: rank every candidate by the
/// standard deviation of its output **logits** on the clean model,
/// `std(Z(X))`, and keep the `count` smallest. A sample with near-uniform
/// logits sits close to *all* decision surfaces simultaneously, so any
/// weight error is likely to move its prediction — without the
/// `O(n²)` pairwise-class construction a naive corner-data search needs.
///
/// # Example
///
/// ```
/// use healthmon::CtpGenerator;
/// use healthmon_data::{DatasetSpec, SynthDigits};
/// use healthmon_nn::models::lenet5;
/// use healthmon_tensor::SeededRng;
///
/// let mut rng = SeededRng::new(0);
/// let mut model = lenet5(&mut rng);
/// let pool = SynthDigits::new(DatasetSpec { train: 1, test: 30, seed: 1, ..Default::default() })
///     .generate()
///     .test;
/// let patterns = CtpGenerator::new(10).select(&mut model, &pool);
/// assert_eq!(patterns.len(), 10);
/// assert_eq!(patterns.method(), "C-TP");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CtpGenerator {
    count: usize,
    batch_size: usize,
}

impl CtpGenerator {
    /// Creates a generator that keeps the `count` lowest-logit-std
    /// candidates. The paper uses `count = 50` (≥ the class count to
    /// compensate for residual decision bias in real data).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn new(count: usize) -> Self {
        assert!(count > 0, "pattern count must be non-zero");
        CtpGenerator { count, batch_size: 64 }
    }

    /// Number of patterns this generator selects.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Ranks every sample of `pool` by logit standard deviation on `net`,
    /// ascending. Exposed so callers can inspect the corner-ness margin
    /// or implement custom cuts.
    ///
    /// Returns `(sample_index, logit_std)` pairs sorted ascending by std.
    pub fn logit_std_ranking(&self, net: &mut Network, pool: &Dataset) -> Vec<(usize, f32)> {
        net.set_training(false);
        let n = pool.len();
        let mut ranked: Vec<(usize, f32)> = Vec::with_capacity(n);
        let mut start = 0usize;
        while start < n {
            let end = (start + self.batch_size).min(n);
            let idx: Vec<usize> = (start..end).collect();
            let batch = gather_batch(&pool.images, &idx);
            let logits = net.forward(&batch);
            for (row, &i) in idx.iter().enumerate() {
                ranked.push((i, logits.row(row).std()));
            }
            start = end;
        }
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked
    }

    /// Selects the C-TP pattern set from `pool` using `net` as the clean
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if the pool has fewer than `count` samples or sample shapes
    /// do not match the network input.
    pub fn select(&self, net: &mut Network, pool: &Dataset) -> TestPatternSet {
        assert!(
            pool.len() >= self.count,
            "pool has {} samples but {} were requested",
            pool.len(),
            self.count
        );
        let ranking = self.logit_std_ranking(net, pool);
        let chosen: Vec<Tensor> = ranking[..self.count]
            .iter()
            .map(|&(i, _)| pool.sample(i))
            .collect();
        TestPatternSet::from_samples("C-TP", &chosen)
    }

    /// Like [`CtpGenerator::select`] but flattens each sample to 1-D
    /// first, for networks with vector inputs (e.g. MLPs over image
    /// pools).
    ///
    /// # Panics
    ///
    /// Panics if the pool has fewer than `count` samples.
    pub fn select_flattened(&self, net: &mut Network, pool: &Dataset) -> TestPatternSet {
        let sample_len: usize = pool.sample_shape().iter().product();
        let flat_images = pool
            .images
            .reshape(&[pool.len(), sample_len])
            .expect("flatten preserves element count");
        let flat_pool = Dataset::new(flat_images, pool.labels.clone(), pool.num_classes);
        self.select(net, &flat_pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_nn::layers::Dense;
    use healthmon_nn::models::tiny_mlp;
    use healthmon_tensor::SeededRng;

    /// A pool where sample 0 is engineered to have uniform logits and the
    /// rest are strongly classified.
    fn rigged_pool_and_net() -> (Network, Dataset) {
        let mut rng = SeededRng::new(1);
        let mut net = Network::new(vec![3]);
        let mut dense = Dense::new(3, 3, &mut rng);
        {
            use healthmon_nn::Layer;
            // Identity weights: logits = input.
            dense.params_mut()[0]
                .as_mut_slice()
                .copy_from_slice(&[1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
            dense.params_mut()[1].as_mut_slice().copy_from_slice(&[0.0; 3]);
        }
        net.push(dense);
        let images = Tensor::from_vec(
            vec![
                0.5, 0.5, 0.5, // uniform logits -> corner data
                9.0, 0.0, 0.0, // confident class 0
                0.0, 9.0, 0.0, // confident class 1
                0.1, 0.2, 0.3, // mildly spread
            ],
            &[4, 3],
        )
        .unwrap();
        (net, Dataset::new(images, vec![0, 0, 1, 2], 3))
    }

    #[test]
    fn ranking_orders_by_logit_std() {
        let (mut net, pool) = rigged_pool_and_net();
        let ranking = CtpGenerator::new(1).logit_std_ranking(&mut net, &pool);
        assert_eq!(ranking[0].0, 0, "uniform-logit sample must rank first");
        assert_eq!(ranking[0].1, 0.0);
        // Confident samples rank last.
        let last_two: Vec<usize> = ranking[2..].iter().map(|&(i, _)| i).collect();
        assert!(last_two.contains(&1) && last_two.contains(&2));
    }

    #[test]
    fn select_takes_lowest_std() {
        let (mut net, pool) = rigged_pool_and_net();
        let set = CtpGenerator::new(2).select(&mut net, &pool);
        assert_eq!(set.len(), 2);
        assert_eq!(set.pattern(0), pool.sample(0));
        assert_eq!(set.pattern(1), pool.sample(3));
    }

    #[test]
    fn selected_patterns_have_lower_std_than_pool_average() {
        let mut rng = SeededRng::new(2);
        let mut net = tiny_mlp(8, 16, 4, &mut rng);
        let images = Tensor::randn(&[40, 8], &mut rng);
        let pool = Dataset::new(images, vec![0; 40], 4);
        let gen = CtpGenerator::new(5);
        let ranking = gen.logit_std_ranking(&mut net, &pool);
        let mean_all: f32 = ranking.iter().map(|&(_, s)| s).sum::<f32>() / 40.0;
        let mean_sel: f32 = ranking[..5].iter().map(|&(_, s)| s).sum::<f32>() / 5.0;
        assert!(mean_sel < mean_all);
    }

    #[test]
    fn batching_does_not_change_selection() {
        let mut rng = SeededRng::new(3);
        let mut net = tiny_mlp(6, 12, 3, &mut rng);
        let images = Tensor::randn(&[100, 6], &mut rng);
        let pool = Dataset::new(images, vec![0; 100], 3);
        let small = CtpGenerator { count: 7, batch_size: 3 };
        let large = CtpGenerator { count: 7, batch_size: 64 };
        assert_eq!(
            small.select(&mut net, &pool).images(),
            large.select(&mut net, &pool).images()
        );
    }

    #[test]
    #[should_panic(expected = "pool has")]
    fn rejects_undersized_pool() {
        let (mut net, pool) = rigged_pool_and_net();
        CtpGenerator::new(10).select(&mut net, &pool);
    }
}
