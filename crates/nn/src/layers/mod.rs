//! Network layers.
//!
//! Each layer implements [`Layer`]: a `forward` pass that caches whatever
//! the matching `backward` pass needs, and `backward` both accumulates
//! parameter gradients *and* returns the gradient with respect to the
//! layer input. Input gradients flow all the way back to the image, which
//! is what O-TP pattern optimization and FGSM adversarial generation
//! require.

mod activation;
mod attention;
mod batchnorm;
mod conv;
mod dense;
mod dropout;
mod flatten;
mod pool;
mod residual;

pub use activation::{Relu, Sigmoid, Tanh};
pub use attention::SelfAttention;
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::{AvgPool2d, MaxPool2d};
pub use residual::ResidualConv2d;

use healthmon_tensor::Tensor;
use std::fmt;

/// Which side of the matmul a layer's weight matrix sits on.
///
/// Execution backends need this to know how a layer's weight matrix meets
/// its activations: a [`Dense`] computes `y = x · W` ([`MatmulOrientation::XW`],
/// activations on the left), while a [`Conv2d`] computes `y = W · col(x)`
/// ([`MatmulOrientation::WX`], weights on the left). A crossbar that
/// programs the weight matrix once must transpose one of the two cases to
/// drive its rows with activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulOrientation {
    /// Activations × weights (`y = x · W`), as in [`Dense`].
    XW,
    /// Weights × activations (`y = W · col(x)`), as in [`Conv2d`].
    WX,
}

/// Executes the weight-matrix multiplications of an inference pass.
///
/// [`crate::Network::infer_with`] threads an engine through every layer's
/// [`Layer::infer`]; weight-bearing layers route their matmul through it
/// (identified by the state-dict `key` of the weight, e.g.
/// `"layer0.weight"`) while biases, activations, pooling and reshapes stay
/// digital. [`DigitalEngine`] reproduces the plain [`Layer::forward`]
/// arithmetic bit-for-bit; analog engines substitute conductance-mapped
/// crossbar matmuls for the same contraction.
pub trait MatmulEngine {
    /// Computes `x · w` for an [`MatmulOrientation::XW`] layer
    /// (`x: [N, in]`, `w: [in, out]`).
    fn matmul_xw(&self, key: &str, x: &Tensor, w: &Tensor) -> Tensor;

    /// Computes `w · x` for an [`MatmulOrientation::WX`] layer
    /// (`w: [F, K]`, `x: [K, cols]`).
    fn matmul_wx(&self, key: &str, w: &Tensor, x: &Tensor) -> Tensor;
}

/// The reference [`MatmulEngine`]: plain digital [`Tensor::matmul`].
///
/// Bit-identical to the layers' own `forward` arithmetic at any thread
/// count — it calls the very same GEMM the training path uses.
#[derive(Debug, Clone, Copy, Default)]
pub struct DigitalEngine;

impl MatmulEngine for DigitalEngine {
    fn matmul_xw(&self, _key: &str, x: &Tensor, w: &Tensor) -> Tensor {
        x.matmul(w)
    }

    fn matmul_wx(&self, _key: &str, w: &Tensor, x: &Tensor) -> Tensor {
        w.matmul(x)
    }
}

/// A differentiable network layer.
///
/// Layers are stateful: `forward` caches activations, `backward` consumes
/// them. A `forward` must precede each `backward` with the same batch.
///
/// The trait is object-safe; networks store `Box<dyn Layer>` so
/// heterogeneous stacks (conv → pool → dense) compose freely.
pub trait Layer: fmt::Debug + Send + Sync {
    /// Short human-readable layer kind, e.g. `"dense"` or `"conv2d"`.
    fn name(&self) -> &'static str;

    /// Computes the layer output for a batch, caching anything `backward`
    /// will need.
    ///
    /// # Panics
    ///
    /// Implementations panic if the input shape is incompatible with the
    /// layer configuration.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Propagates `grad_out` (gradient of the loss w.r.t. this layer's
    /// output) backwards: accumulates parameter gradients and returns the
    /// gradient w.r.t. the layer input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before `forward`, or if `grad_out`
    /// does not match the cached forward shape.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Inference-mode forward pass through `&self`: no activation caching,
    /// no training-only behaviour (dropout passes through, batch-norm uses
    /// running statistics), with every weight matmul routed through
    /// `engine` under the key `{key_prefix}.weight`.
    ///
    /// With [`DigitalEngine`] the result is bit-identical to
    /// [`Layer::forward`] in evaluation mode.
    ///
    /// # Panics
    ///
    /// Implementations panic if the input shape is incompatible with the
    /// layer configuration.
    fn infer(&self, input: &Tensor, key_prefix: &str, engine: &dyn MatmulEngine) -> Tensor;

    /// How this layer's weight matrix meets its activations, or `None` for
    /// layers without a conductance-mappable weight matmul.
    fn matmul_orientation(&self) -> Option<MatmulOrientation> {
        None
    }

    /// Every conductance-mappable weight matmul this layer performs, as
    /// `(param name, orientation)` pairs. The param name is relative to the
    /// layer (e.g. `"weight"`, or `"conv1.weight"` for composite layers)
    /// and must match an entry of [`Layer::param_names`]; crossbar backends
    /// program one mapped matrix per pair under the state-dict key
    /// `layer{i}.{name}`.
    ///
    /// The default derives a single `"weight"` entry from
    /// [`Layer::matmul_orientation`], so existing one-weight layers need no
    /// override; multi-matmul layers (residual blocks, attention) override
    /// this directly.
    fn matmuls(&self) -> Vec<(&'static str, MatmulOrientation)> {
        self.matmul_orientation().map(|o| vec![("weight", o)]).unwrap_or_default()
    }

    /// Immutable views of the layer's trainable parameter tensors, in a
    /// stable order. Empty for parameter-free layers.
    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutable views of the trainable parameters, same order as
    /// [`Layer::params`]. Fault injectors use this to perturb weights.
    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// Stable names for the parameters, same order as [`Layer::params`]
    /// (e.g. `["weight", "bias"]`). Used to build state-dict keys.
    fn param_names(&self) -> Vec<&'static str> {
        Vec::new()
    }

    /// Mutable (parameter, gradient) pairs, same order as
    /// [`Layer::params`]. Optimizers consume this.
    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    /// Resets all accumulated parameter gradients to zero.
    fn zero_grads(&mut self) {}

    /// Switches training-only behaviour (e.g. dropout) on or off.
    /// Inference-only layers ignore this.
    fn set_training(&mut self, _on: bool) {}

    /// Clones the layer into a box. Needed because `Clone` is not
    /// object-safe; fault campaigns clone whole networks per fault model.
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by layer tests.

    use super::Layer;
    use healthmon_tensor::Tensor;

    /// Max relative error between analytic and numeric input gradients.
    pub fn input_gradient_error(layer: &mut dyn Layer, input: &Tensor) -> f32 {
        // Scalar loss L = sum(forward(x)) so dL/dy = ones.
        let out = layer.forward(input);
        let grad_out = Tensor::ones(out.shape());
        let analytic = layer.backward(&grad_out);

        let eps = 1e-2f32;
        let mut max_err = 0.0f32;
        for i in 0..input.len() {
            let mut xp = input.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = input.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp = layer.forward(&xp).sum();
            let fm = layer.forward(&xm).sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            max_err = max_err.max((a - numeric).abs() / denom);
        }
        max_err
    }

    /// Max relative error between analytic and numeric parameter gradients.
    pub fn param_gradient_error(layer: &mut dyn Layer, input: &Tensor) -> f32 {
        let out = layer.forward(input);
        let grad_out = Tensor::ones(out.shape());
        layer.zero_grads();
        layer.backward(&grad_out);
        let analytic: Vec<Tensor> = layer
            .params_and_grads()
            .into_iter()
            .map(|(_, g)| g.clone())
            .collect();

        let eps = 1e-2f32;
        let mut max_err = 0.0f32;
        for (p, analytic_p) in analytic.iter().enumerate() {
            for i in 0..analytic_p.len() {
                let orig = layer.params()[p].as_slice()[i];
                layer.params_mut()[p].as_mut_slice()[i] = orig + eps;
                let fp = layer.forward(input).sum();
                layer.params_mut()[p].as_mut_slice()[i] = orig - eps;
                let fm = layer.forward(input).sum();
                layer.params_mut()[p].as_mut_slice()[i] = orig;
                let numeric = (fp - fm) / (2.0 * eps);
                let a = analytic_p.as_slice()[i];
                let denom = 1.0f32.max(a.abs()).max(numeric.abs());
                max_err = max_err.max((a - numeric).abs() / denom);
            }
        }
        max_err
    }
}
