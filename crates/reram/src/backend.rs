//! Live analog inference backends: route every matmul of a network
//! through conductance-mapped crossbar state.
//!
//! [`healthmon_nn::InferenceBackend`] is the seam the detection stack
//! executes through; this module provides the crossbar implementations.
//! Unlike [`crate::deploy`] — which reads effective weights back into a
//! digital network once — these backends keep the conductance state
//! *live*: faults injected mid-lifetime ([`AnalogBackend::drift`],
//! [`AnalogBackend::stick_cell`], ...) immediately change what the next
//! forward pass computes, including DAC/ADC quantization and multi-tile
//! partial-sum effects the read-back model cannot express.
//!
//! On integer-path-capable tile configurations (the default; see
//! [`CrossbarConfig::integer_path_capable`]) the analog backends execute
//! on the quantized `i32` hot path: activations become DAC codes once per
//! layer call, conductances are cached as differential integer codes, and
//! the ADC applies at tile boundaries. Conductance mutators (`drift`,
//! `stick_cell`, `scrub`, ...) invalidate the cached codes exactly like
//! the `f32` differential cache, so liveness is preserved.

use crate::{
    BitSlicedMatrix, CellFault, CrossbarConfig, DeployReport, IrDropModel, LayerMapping,
    ScrubOutcome, TiledMatrix,
};
use healthmon_nn::{
    InferenceBackend, MatmulEngine, MatmulOrientation, Network, NonFiniteActivation,
};
use healthmon_tensor::{SeededRng, Tensor};
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::str::FromStr;

/// Which execution substrate runs the matmuls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Bit-identical digital reference (plain tensor GEMM).
    Digital,
    /// Differential-pair crossbars via [`TiledMatrix`].
    Analog,
    /// ISAAC-style bit-sliced crossbars via [`BitSlicedMatrix`].
    BitSliced,
}

impl BackendKind {
    /// Stable lower-case identifier (also the CLI flag value).
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Digital => "digital",
            BackendKind::Analog => "analog",
            BackendKind::BitSliced => "bitsliced",
        }
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "digital" => Ok(BackendKind::Digital),
            "analog" => Ok(BackendKind::Analog),
            "bitsliced" => Ok(BackendKind::BitSliced),
            other => Err(format!(
                "unknown backend `{other}` (expected digital, analog or bitsliced)"
            )),
        }
    }
}

/// A complete, copyable description of an execution backend — enough to
/// re-instantiate it deterministically from a network and a seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendSpec {
    /// Substrate selector.
    pub kind: BackendKind,
    /// Crossbar tile parameters (ignored by the digital backend).
    pub crossbar: CrossbarConfig,
    /// Total magnitude bits per weight for the bit-sliced backend
    /// (sliced into `crossbar.cell_bits`-wide digits; ignored otherwise).
    pub weight_bits: u32,
    /// Wire resistance of the first-order IR-drop model applied once after
    /// programming; 0 disables IR drop.
    pub ir_drop: f32,
}

impl BackendSpec {
    /// The digital reference backend.
    pub fn digital() -> Self {
        BackendSpec {
            kind: BackendKind::Digital,
            crossbar: CrossbarConfig::default(),
            weight_bits: 8,
            ir_drop: 0.0,
        }
    }

    /// An analog crossbar backend with the given tile configuration.
    pub fn analog(crossbar: CrossbarConfig) -> Self {
        BackendSpec { kind: BackendKind::Analog, crossbar, weight_bits: 8, ir_drop: 0.0 }
    }

    /// A bit-sliced backend storing `weight_bits` magnitude bits per
    /// weight in `crossbar.cell_bits`-wide digit slices.
    pub fn bitsliced(crossbar: CrossbarConfig, weight_bits: u32) -> Self {
        BackendSpec { kind: BackendKind::BitSliced, crossbar, weight_bits, ir_drop: 0.0 }
    }

    /// Validates the specification.
    ///
    /// # Panics
    ///
    /// Panics if the crossbar config is invalid, the IR-drop resistance is
    /// negative or non-finite, or (bit-sliced only) `weight_bits` is not a
    /// positive multiple of `crossbar.cell_bits` within 16 bits.
    pub fn validate(&self) {
        if self.kind == BackendKind::Digital {
            return;
        }
        self.crossbar.validate();
        assert!(
            self.ir_drop >= 0.0 && self.ir_drop.is_finite(),
            "IR-drop resistance {} must be finite and non-negative",
            self.ir_drop
        );
        if self.kind == BackendKind::BitSliced {
            let cell = self.crossbar.cell_bits;
            assert!(
                cell >= 1
                    && self.weight_bits >= cell
                    && self.weight_bits.is_multiple_of(cell)
                    && self.weight_bits <= 16,
                "bit-sliced backend needs weight bits ({}) to be a positive multiple of cell bits ({cell}) within 16",
                self.weight_bits
            );
        }
    }

    /// Instantiates the backend over `net`.
    ///
    /// The digital backend *borrows* the network (zero-copy, bit-identical
    /// to calling [`Network::infer`] directly); analog backends program a
    /// fresh conductance image from `rng`.
    pub fn instantiate<'a>(&self, net: &'a Network, rng: &mut SeededRng) -> ActiveBackend<'a> {
        match self.kind {
            BackendKind::Digital => ActiveBackend::Digital(net),
            BackendKind::Analog => ActiveBackend::Analog(AnalogBackend::program(net, self, rng)),
            BackendKind::BitSliced => {
                ActiveBackend::BitSliced(BitSlicedBackend::program(net, self, rng))
            }
        }
    }
}

impl Default for BackendSpec {
    fn default() -> Self {
        Self::digital()
    }
}

/// The crossbar state of one conductance-mapped parameter.
#[derive(Debug, Clone)]
enum MappedMatrix {
    Tiled(TiledMatrix),
    Sliced(BitSlicedMatrix),
}

impl MappedMatrix {
    fn program(oriented: &Tensor, spec: &BackendSpec, rng: &mut SeededRng) -> Self {
        match spec.kind {
            BackendKind::Digital => unreachable!("digital backend maps no parameters"),
            BackendKind::Analog => {
                MappedMatrix::Tiled(TiledMatrix::program(oriented, &spec.crossbar, rng))
            }
            BackendKind::BitSliced => MappedMatrix::Sliced(BitSlicedMatrix::program(
                oriented,
                spec.weight_bits,
                spec.crossbar.cell_bits,
                &spec.crossbar,
                rng,
            )),
        }
    }

    fn matmul(&self, input: &Tensor) -> Tensor {
        match self {
            MappedMatrix::Tiled(t) => t.matmul(input),
            MappedMatrix::Sliced(s) => s.matmul(input),
        }
    }

    fn effective_weights(&self) -> Tensor {
        match self {
            MappedMatrix::Tiled(t) => t.effective_weights(),
            MappedMatrix::Sliced(s) => s.effective_weights(),
        }
    }

    fn shape(&self) -> (usize, usize) {
        match self {
            MappedMatrix::Tiled(t) => t.shape(),
            MappedMatrix::Sliced(s) => s.shape(),
        }
    }

    fn tile_count(&self) -> usize {
        match self {
            MappedMatrix::Tiled(t) => t.tile_count(),
            MappedMatrix::Sliced(s) => s.tile_count(),
        }
    }

    fn inject_stuck_cells(&mut self, fault: CellFault, fraction: f64, rng: &mut SeededRng) {
        match self {
            MappedMatrix::Tiled(t) => t.inject_stuck_cells(fault, fraction, rng),
            MappedMatrix::Sliced(s) => s.inject_stuck_cells(fault, fraction, rng),
        }
    }

    fn disturb(&mut self, sigma: f32, rng: &mut SeededRng) {
        match self {
            MappedMatrix::Tiled(t) => t.disturb(sigma, rng),
            MappedMatrix::Sliced(s) => s.disturb(sigma, rng),
        }
    }

    fn flip_cells(&mut self, probability: f64, rng: &mut SeededRng) -> usize {
        match self {
            MappedMatrix::Tiled(t) => t.flip_cells(probability, rng),
            MappedMatrix::Sliced(s) => s.flip_cells(probability, rng),
        }
    }

    fn enable_parity(&mut self) {
        match self {
            MappedMatrix::Tiled(t) => t.enable_parity(),
            MappedMatrix::Sliced(s) => s.enable_parity(),
        }
    }

    fn refresh_parity(&mut self) {
        match self {
            MappedMatrix::Tiled(t) => t.refresh_parity(),
            MappedMatrix::Sliced(s) => s.refresh_parity(),
        }
    }

    fn scrub_parity(&mut self) -> ScrubOutcome {
        match self {
            MappedMatrix::Tiled(t) => t.scrub_parity(),
            MappedMatrix::Sliced(s) => s.scrub_parity(),
        }
    }

    fn drift(&mut self, nu: f32, time: f32, rng: &mut SeededRng) {
        match self {
            MappedMatrix::Tiled(t) => t.drift(nu, time, rng),
            MappedMatrix::Sliced(s) => s.drift(nu, time, rng),
        }
    }

    fn apply_ir_drop(&mut self, model: &IrDropModel) {
        match self {
            MappedMatrix::Tiled(t) => t.apply_ir_drop(model),
            MappedMatrix::Sliced(s) => s.apply_ir_drop(model),
        }
    }

    fn stick_cell(&mut self, row: usize, col: usize, weight: f32) {
        match self {
            MappedMatrix::Tiled(t) => t.stick_cell(row, col, weight),
            MappedMatrix::Sliced(s) => s.stick_cell(row, col, weight),
        }
    }

    /// Worst-case weight-domain output magnitude the (recombined) ADC
    /// chain is sized for. For multi-row-block tilings this sums the
    /// first tile's full scale over the row blocks — an upper bound on any
    /// single output column.
    fn adc_full_scale(&self) -> f32 {
        match self {
            MappedMatrix::Tiled(t) => {
                t.tiles()[0].adc_full_scale() * t.tile_grid().0 as f32
            }
            MappedMatrix::Sliced(s) => s
                .slices()
                .iter()
                .zip(s.slice_scales())
                .map(|(t, &sc)| t.tiles()[0].adc_full_scale() * t.tile_grid().0 as f32 * sc)
                .sum(),
        }
    }

    fn utilization(&self, config: &CrossbarConfig) -> f32 {
        let (m, n) = self.shape();
        let copies = match self {
            MappedMatrix::Tiled(_) => 1,
            MappedMatrix::Sliced(s) => s.num_slices(),
        };
        (m * n * copies) as f32 / (self.tile_count() * config.rows * config.cols) as f32
    }
}

/// One conductance-mapped layer: its crossbar state plus the orientation
/// needed to translate between the digital weight layout and the
/// programmed matrix (conv weights `[F, C·K·K]` are programmed transposed
/// so the crossbar contraction runs over the `C·K·K` word lines).
#[derive(Debug, Clone)]
struct MappedLayer {
    matrix: MappedMatrix,
    orientation: MatmulOrientation,
}

impl MappedLayer {
    /// Maps digital weight coordinates to programmed-matrix coordinates.
    fn physical(&self, row: usize, col: usize) -> (usize, usize) {
        match self.orientation {
            MatmulOrientation::XW => (row, col),
            MatmulOrientation::WX => (col, row),
        }
    }

    /// Orients a digital weight tensor into the programmed layout.
    fn orient(&self, digital: &Tensor) -> Tensor {
        match self.orientation {
            MatmulOrientation::XW => digital.clone(),
            MatmulOrientation::WX => digital.transpose(),
        }
    }

    /// Reads the effective weights back in the digital layout.
    fn readback_digital(&self) -> Tensor {
        let eff = self.matrix.effective_weights();
        match self.orientation {
            MatmulOrientation::XW => eff,
            MatmulOrientation::WX => eff.transpose(),
        }
    }
}

/// Shared implementation of the analog backends: the digital network (for
/// structure, biases, and non-matmul layers) plus live crossbar state for
/// every conductance-mapped weight, routed into inference through
/// [`MatmulEngine`].
#[derive(Debug, Clone)]
struct MappedNetwork<'a> {
    /// Borrowed at program time (campaign workloads program thousands of
    /// short-lived backends and must not deep-copy every net); cloned
    /// lazily only if a layer rewrite has to update the digital weights.
    net: Cow<'a, Network>,
    spec: BackendSpec,
    layers: BTreeMap<String, MappedLayer>,
    /// Whether online parity tolerance is enabled (sticky: layer
    /// rewrites re-enable it on the fresh crossbar state).
    parity: bool,
}

impl<'a> MappedNetwork<'a> {
    fn program(net: &'a Network, spec: &BackendSpec, rng: &mut SeededRng) -> Self {
        spec.validate();
        assert!(spec.kind != BackendKind::Digital, "digital backend needs no mapping");
        let mut orientations = BTreeMap::new();
        for (i, layer) in net.layers().iter().enumerate() {
            // Composite layers (residual blocks, attention) expose several
            // mappable matmuls under compound param names; one-weight
            // layers report their single `"weight"` entry via the default.
            for (name, o) in layer.matmuls() {
                orientations.insert(format!("layer{i}.{name}"), o);
            }
        }
        let mut layers = BTreeMap::new();
        net.for_each_param(|key, tensor| {
            let Some(&orientation) = orientations.get(key) else { return };
            // XW weights are already in the programmed layout — map them
            // in place; only WX needs a transposed copy.
            let matrix = match orientation {
                MatmulOrientation::XW => MappedMatrix::program(tensor, spec, rng),
                MatmulOrientation::WX => MappedMatrix::program(&tensor.transpose(), spec, rng),
            };
            layers.insert(key.to_owned(), MappedLayer { matrix, orientation });
        });
        let mut mapped =
            MappedNetwork { net: Cow::Borrowed(net), spec: *spec, layers, parity: false };
        if spec.ir_drop > 0.0 {
            let model = IrDropModel::new(spec.ir_drop);
            for layer in mapped.layers.values_mut() {
                layer.matrix.apply_ir_drop(&model);
            }
        }
        mapped
    }

    fn inject_stuck_cells(&mut self, fault: CellFault, fraction: f64, rng: &mut SeededRng) {
        for layer in self.layers.values_mut() {
            layer.matrix.inject_stuck_cells(fault, fraction, rng);
        }
    }

    fn disturb(&mut self, sigma: f32, rng: &mut SeededRng) {
        for layer in self.layers.values_mut() {
            layer.matrix.disturb(sigma, rng);
        }
    }

    fn flip_cells(&mut self, probability: f64, rng: &mut SeededRng) -> usize {
        let mut flipped = 0usize;
        for layer in self.layers.values_mut() {
            flipped += layer.matrix.flip_cells(probability, rng);
        }
        flipped
    }

    fn enable_parity(&mut self) {
        self.parity = true;
        for layer in self.layers.values_mut() {
            layer.matrix.enable_parity();
        }
    }

    fn refresh_parity(&mut self) {
        for layer in self.layers.values_mut() {
            layer.matrix.refresh_parity();
        }
    }

    fn scrub_parity(&mut self) -> ScrubOutcome {
        let mut outcome = ScrubOutcome::default();
        for layer in self.layers.values_mut() {
            outcome.merge(layer.matrix.scrub_parity());
        }
        outcome
    }

    fn drift(&mut self, nu: f32, time: f32, rng: &mut SeededRng) {
        for layer in self.layers.values_mut() {
            layer.matrix.drift(nu, time, rng);
        }
    }

    fn stick_cell(&mut self, key: &str, row: usize, col: usize, weight: f32) {
        let layer = self
            .layers
            .get_mut(key)
            .unwrap_or_else(|| panic!("`{key}` is not a conductance-mapped parameter"));
        let (pr, pc) = layer.physical(row, col);
        layer.matrix.stick_cell(pr, pc, weight);
    }

    fn write_layer(&mut self, key: &str, weights: &Tensor, rng: &mut SeededRng) {
        let spec = self.spec;
        let layer = self
            .layers
            .get_mut(key)
            .unwrap_or_else(|| panic!("`{key}` is not a conductance-mapped parameter"));
        let oriented = layer.orient(weights);
        layer.matrix = MappedMatrix::program(&oriented, &spec, rng);
        if spec.ir_drop > 0.0 {
            layer.matrix.apply_ir_drop(&IrDropModel::new(spec.ir_drop));
        }
        if self.parity {
            layer.matrix.enable_parity();
        }
        self.net.to_mut().for_each_param_mut(|k, tensor| {
            if k == key {
                *tensor = weights.clone();
            }
        });
    }

    /// Deep-copies a borrowed source network into the backend, severing
    /// the lifetime tie (no-op if a rewrite already forced ownership).
    fn into_owned(self) -> MappedNetwork<'static> {
        MappedNetwork {
            net: Cow::Owned(self.net.into_owned()),
            spec: self.spec,
            layers: self.layers,
            parity: self.parity,
        }
    }

    fn readback(&self) -> Network {
        let mut net = self.net.as_ref().clone();
        net.for_each_param_mut(|key, tensor| {
            if let Some(layer) = self.layers.get(key) {
                *tensor = layer.readback_digital();
            }
        });
        net
    }

    fn deploy_report(&self, probe: &Tensor) -> DeployReport {
        let digital = self.net.infer(probe);
        let recorder = RecordingEngine { inner: self, peaks: RefCell::new(BTreeMap::new()) };
        let analog = self.net.infer_with(probe, &recorder);
        let batch = probe.shape()[0].max(1) as f32;
        let divergence = digital.l1_distance(&analog) / batch;
        let peaks = recorder.peaks.into_inner();
        let mut mappings = Vec::new();
        self.net.for_each_param(|key, tensor| {
            let Some(layer) = self.layers.get(key) else { return };
            let realized = layer.readback_digital();
            let full_scale = layer.matrix.adc_full_scale();
            mappings.push(LayerMapping {
                key: key.to_owned(),
                shape: (tensor.shape()[0], tensor.shape()[1]),
                tiles: layer.matrix.tile_count(),
                mapping_error_l1: tensor.l1_distance(&realized),
                utilization: layer.matrix.utilization(&self.spec.crossbar),
                adc_range_used: peaks
                    .get(key)
                    .map(|&p| if full_scale > 0.0 { p / full_scale } else { 0.0 })
                    .unwrap_or(0.0),
            });
        });
        DeployReport { mappings, logit_divergence: Some(divergence) }
    }
}

impl MatmulEngine for MappedNetwork<'_> {
    fn matmul_xw(&self, key: &str, x: &Tensor, w: &Tensor) -> Tensor {
        match self.layers.get(key) {
            Some(layer) => layer.matrix.matmul(x),
            None => x.matmul(w),
        }
    }

    fn matmul_wx(&self, key: &str, w: &Tensor, x: &Tensor) -> Tensor {
        match self.layers.get(key) {
            // W·X = (Xᵀ·Wᵀ)ᵀ with Wᵀ programmed on the tiles.
            Some(layer) => layer.matrix.matmul(&x.transpose()).transpose(),
            None => w.matmul(x),
        }
    }
}

impl InferenceBackend for MappedNetwork<'_> {
    fn infer(&self, input: &Tensor) -> Tensor {
        self.net.infer_with(input, self)
    }

    fn infer_checked(&self, input: &Tensor) -> Result<Tensor, NonFiniteActivation> {
        self.net.infer_checked_with(input, self)
    }

    fn backend_name(&self) -> &'static str {
        self.spec.kind.label()
    }

    fn readback(&self) -> Network {
        MappedNetwork::readback(self)
    }
}

/// A [`MatmulEngine`] that delegates to crossbar state while recording the
/// peak output magnitude per mapped layer — used by
/// [`AnalogBackend::deploy_report`] to estimate ADC range utilization.
struct RecordingEngine<'a> {
    inner: &'a MappedNetwork<'a>,
    peaks: RefCell<BTreeMap<String, f32>>,
}

impl RecordingEngine<'_> {
    fn record(&self, key: &str, out: &Tensor) {
        if self.inner.layers.contains_key(key) {
            let peak = out.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let mut peaks = self.peaks.borrow_mut();
            let entry = peaks.entry(key.to_owned()).or_insert(0.0);
            *entry = entry.max(peak);
        }
    }
}

impl MatmulEngine for RecordingEngine<'_> {
    fn matmul_xw(&self, key: &str, x: &Tensor, w: &Tensor) -> Tensor {
        let out = self.inner.matmul_xw(key, x, w);
        self.record(key, &out);
        out
    }

    fn matmul_wx(&self, key: &str, w: &Tensor, x: &Tensor) -> Tensor {
        let out = self.inner.matmul_wx(key, w, x);
        self.record(key, &out);
        out
    }
}

macro_rules! delegate_backend {
    ($name:ident) => {
        impl<'a> $name<'a> {
            /// Programs every conductance-mapped weight of `net` onto
            /// crossbar state per `spec`.
            ///
            /// # Panics
            ///
            /// Panics if `spec` is invalid or its kind disagrees with this
            /// backend type.
            pub fn program(net: &'a Network, spec: &BackendSpec, rng: &mut SeededRng) -> Self {
                assert_eq!(spec.kind, Self::KIND, "spec kind disagrees with backend type");
                $name(MappedNetwork::program(net, spec, rng))
            }

            /// Severs the borrow of the source network by deep-copying it
            /// into the backend — for callers that store the backend
            /// beyond the network's lifetime (e.g. a deployed device).
            pub fn into_owned(self) -> $name<'static> {
                $name(self.0.into_owned())
            }

            /// The digital network the backend was programmed from
            /// (structure, biases, and the pre-mapping weights).
            pub fn network(&self) -> &Network {
                &self.0.net
            }

            /// The specification this backend was programmed with.
            pub fn spec(&self) -> &BackendSpec {
                &self.0.spec
            }

            /// Freezes a fraction of cells across every mapped layer.
            ///
            /// # Panics
            ///
            /// Panics if `fraction` is not in `[0, 1]`.
            pub fn inject_stuck_cells(
                &mut self,
                fault: CellFault,
                fraction: f64,
                rng: &mut SeededRng,
            ) {
                self.0.inject_stuck_cells(fault, fraction, rng);
            }

            /// Applies lognormal conductance disturbance to every mapped
            /// layer.
            pub fn disturb(&mut self, sigma: f32, rng: &mut SeededRng) {
                self.0.disturb(sigma, rng);
            }

            /// Applies conductance drift to every mapped layer.
            pub fn drift(&mut self, nu: f32, time: f32, rng: &mut SeededRng) {
                self.0.drift(nu, time, rng);
            }

            /// Flips cells with the given probability across every mapped
            /// layer (key order, one continuous RNG stream) — sparse
            /// transient soft errors, the device-level image of the
            /// digital `RandomSoftError` fault. Returns the flipped cell
            /// count.
            ///
            /// # Panics
            ///
            /// Panics if `probability` is not in `[0, 1]`.
            pub fn flip_cells(&mut self, probability: f64, rng: &mut SeededRng) -> usize {
                self.0.flip_cells(probability, rng)
            }

            /// Enables online soft-error tolerance: every tile captures
            /// XOR parity checksums over its conductance planes, and
            /// layer rewrites keep parity enabled on the fresh state.
            pub fn enable_parity(&mut self) {
                self.0.enable_parity();
            }

            /// Re-baselines every tile's parity checksums to the current
            /// conductances (acknowledging writes or expected aging).
            pub fn refresh_parity(&mut self) {
                self.0.refresh_parity();
            }

            /// Scrubs every tile in-situ against its parity checksums,
            /// restoring correctable transient flips bitwise. Returns the
            /// merged outcome (empty when parity was never enabled).
            pub fn scrub_parity(&mut self) -> ScrubOutcome {
                self.0.scrub_parity()
            }

            /// Freezes one weight (digital coordinates within the named
            /// parameter) at the given value.
            ///
            /// # Panics
            ///
            /// Panics if `key` is not conductance-mapped or the
            /// coordinates are out of bounds.
            pub fn stick_cell(&mut self, key: &str, row: usize, col: usize, weight: f32) {
                self.0.stick_cell(key, row, col, weight);
            }

            /// Reprograms one mapped parameter with new digital weights
            /// (repair/reprogramming path); IR drop is re-applied if the
            /// spec enables it.
            ///
            /// # Panics
            ///
            /// Panics if `key` is not conductance-mapped.
            pub fn write_layer(&mut self, key: &str, weights: &Tensor, rng: &mut SeededRng) {
                self.0.write_layer(key, weights, rng);
            }

            /// Profiles the backend against its digital reference on a
            /// probe batch: per-layer tile counts, area utilization, ADC
            /// range usage, mapping error, and digital-vs-analog logit
            /// divergence.
            pub fn deploy_report(&self, probe: &Tensor) -> DeployReport {
                self.0.deploy_report(probe)
            }
        }

        impl InferenceBackend for $name<'_> {
            fn infer(&self, input: &Tensor) -> Tensor {
                self.0.infer(input)
            }

            fn infer_checked(&self, input: &Tensor) -> Result<Tensor, NonFiniteActivation> {
                self.0.infer_checked(input)
            }

            fn backend_name(&self) -> &'static str {
                self.0.backend_name()
            }

            fn readback(&self) -> Network {
                self.0.readback()
            }
        }
    };
}

/// Live analog crossbar backend: every conductance-mapped weight runs as a
/// [`TiledMatrix`] with DAC/ADC conversion on each matmul.
#[derive(Debug, Clone)]
pub struct AnalogBackend<'a>(MappedNetwork<'a>);

impl AnalogBackend<'_> {
    const KIND: BackendKind = BackendKind::Analog;
}

delegate_backend!(AnalogBackend);

/// Live bit-sliced crossbar backend: every conductance-mapped weight runs
/// as a [`BitSlicedMatrix`] with shift-add recombination on each matmul.
#[derive(Debug, Clone)]
pub struct BitSlicedBackend<'a>(MappedNetwork<'a>);

impl BitSlicedBackend<'_> {
    const KIND: BackendKind = BackendKind::BitSliced;
}

delegate_backend!(BitSlicedBackend);

/// A backend instantiated from a [`BackendSpec`]: the digital variant
/// borrows the network (bit-identical, zero-copy); analog variants own
/// programmed crossbar state.
#[derive(Debug)]
pub enum ActiveBackend<'a> {
    /// Borrowed digital reference.
    Digital(&'a Network),
    /// Analog crossbar state borrowing the programmed net.
    Analog(AnalogBackend<'a>),
    /// Bit-sliced crossbar state borrowing the programmed net.
    BitSliced(BitSlicedBackend<'a>),
}

impl InferenceBackend for ActiveBackend<'_> {
    fn infer(&self, input: &Tensor) -> Tensor {
        match self {
            ActiveBackend::Digital(net) => net.infer(input),
            ActiveBackend::Analog(b) => b.infer(input),
            ActiveBackend::BitSliced(b) => b.infer(input),
        }
    }

    fn infer_checked(&self, input: &Tensor) -> Result<Tensor, NonFiniteActivation> {
        match self {
            ActiveBackend::Digital(net) => net.infer_checked(input),
            ActiveBackend::Analog(b) => b.infer_checked(input),
            ActiveBackend::BitSliced(b) => b.infer_checked(input),
        }
    }

    fn backend_name(&self) -> &'static str {
        match self {
            ActiveBackend::Digital(_) => "digital",
            ActiveBackend::Analog(b) => b.backend_name(),
            ActiveBackend::BitSliced(b) => b.backend_name(),
        }
    }

    fn readback(&self) -> Network {
        match self {
            ActiveBackend::Digital(net) => (*net).clone(),
            ActiveBackend::Analog(b) => InferenceBackend::readback(b),
            ActiveBackend::BitSliced(b) => InferenceBackend::readback(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_nn::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
    use healthmon_nn::models::tiny_mlp;

    /// A small conv net exercising the transposed (WX) programming path.
    fn tiny_cnn(rng: &mut SeededRng) -> Network {
        let mut net = Network::new(vec![1, 8, 8]);
        net.push(Conv2d::new(1, 4, 3, 1, 1, rng));
        net.push(Relu::new());
        net.push(MaxPool2d::new(2, 2));
        net.push(Flatten::new());
        net.push(Dense::new(4 * 4 * 4, 5, rng));
        net
    }

    fn exact_spec() -> BackendSpec {
        BackendSpec::analog(CrossbarConfig { rows: 4096, cols: 4096, ..CrossbarConfig::exact() })
    }

    #[test]
    fn kind_parses_and_labels() {
        for kind in [BackendKind::Digital, BackendKind::Analog, BackendKind::BitSliced] {
            assert_eq!(kind.label().parse::<BackendKind>().unwrap(), kind);
        }
        assert!("quantum".parse::<BackendKind>().is_err());
    }

    #[test]
    fn exact_analog_is_bitwise_digital_on_mlp() {
        let mut rng = SeededRng::new(1);
        let net = tiny_mlp(12, 16, 5, &mut rng);
        let backend = AnalogBackend::program(&net, &exact_spec(), &mut rng);
        let x = Tensor::randn(&[4, 12], &mut rng);
        assert_eq!(backend.infer(&x), net.infer(&x));
        assert_eq!(backend.infer_checked(&x).unwrap(), net.infer(&x));
    }

    #[test]
    fn exact_analog_is_bitwise_digital_on_cnn() {
        let mut rng = SeededRng::new(2);
        let net = tiny_cnn(&mut rng);
        let backend = AnalogBackend::program(&net, &exact_spec(), &mut rng);
        let x = Tensor::randn(&[2, 1, 8, 8], &mut rng);
        assert_eq!(backend.infer(&x), net.infer(&x), "conv path must be bitwise digital");
    }

    #[test]
    fn exact_readback_matches_weights() {
        let mut rng = SeededRng::new(3);
        let net = tiny_mlp(6, 8, 3, &mut rng);
        let backend = AnalogBackend::program(&net, &exact_spec(), &mut rng);
        let back = InferenceBackend::readback(&backend);
        let mut pairs = Vec::new();
        net.for_each_param(|k, t| pairs.push((k.to_owned(), t.clone())));
        back.for_each_param(|k, t| {
            let (_, orig) = pairs.iter().find(|(pk, _)| pk == k).unwrap();
            if k.ends_with("weight") {
                for (a, b) in orig.as_slice().iter().zip(t.as_slice()) {
                    assert!((a - b).abs() < 1e-7, "{k}: {a} vs {b}");
                }
            } else {
                assert_eq!(orig, t, "{k} (not mapped) must be untouched");
            }
        });
    }

    #[test]
    fn bitsliced_backend_approximates_digital() {
        let mut rng = SeededRng::new(4);
        let net = tiny_mlp(10, 14, 4, &mut rng);
        let spec = BackendSpec::bitsliced(
            CrossbarConfig { cell_bits: 4, dac_bits: 0, adc_bits: 0, ..CrossbarConfig::default() },
            16,
        );
        let backend = BitSlicedBackend::program(&net, &spec, &mut rng);
        assert_eq!(backend.backend_name(), "bitsliced");
        let x = Tensor::randn(&[3, 10], &mut rng).map(|v| v.clamp(-1.0, 1.0));
        let analog = backend.infer(&x);
        let digital = net.infer(&x);
        let rel = analog.l1_distance(&digital) / digital.norm_l1().max(1e-6);
        assert!(rel < 0.05, "16-bit sliced weights diverge too much: {rel}");
    }

    #[test]
    fn live_faults_change_inference() {
        let mut rng = SeededRng::new(5);
        let net = tiny_mlp(8, 10, 4, &mut rng);
        let mut backend = AnalogBackend::program(&net, &exact_spec(), &mut rng);
        let x = Tensor::randn(&[2, 8], &mut rng);
        let clean = backend.infer(&x);
        backend.inject_stuck_cells(CellFault::StuckHigh, 0.3, &mut rng);
        let faulty = backend.infer(&x);
        assert!(clean.l1_distance(&faulty) > 1e-3, "stuck cells must perturb live inference");
        // And the read-back reflects the faults.
        let back = InferenceBackend::readback(&backend);
        assert!(net.infer(&x).l1_distance(&back.infer(&x)) > 1e-3);
    }

    #[test]
    fn stick_cell_respects_orientation() {
        let mut rng = SeededRng::new(6);
        let net = tiny_cnn(&mut rng);
        let mut backend = AnalogBackend::program(&net, &exact_spec(), &mut rng);
        // layer0 is a conv: weight [F, C·K·K], programmed transposed.
        backend.stick_cell("layer0.weight", 1, 3, 0.5);
        let back = InferenceBackend::readback(&backend);
        back.for_each_param(|k, t| {
            if k == "layer0.weight" {
                assert!((t.at(&[1, 3]) - 0.5).abs() < 1e-6, "got {}", t.at(&[1, 3]));
            }
        });
    }

    #[test]
    fn write_layer_reprograms() {
        let mut rng = SeededRng::new(7);
        let net = tiny_mlp(6, 8, 3, &mut rng);
        let mut backend = AnalogBackend::program(&net, &exact_spec(), &mut rng);
        backend.inject_stuck_cells(CellFault::StuckHigh, 1.0, &mut rng);
        let mut fresh = None;
        net.for_each_param(|k, t| {
            if k == "layer0.weight" {
                fresh = Some(t.clone());
            }
        });
        backend.write_layer("layer0.weight", &fresh.unwrap(), &mut rng);
        let back = InferenceBackend::readback(&backend);
        back.for_each_param(|k, t| {
            if k == "layer0.weight" {
                let mut orig = None;
                net.for_each_param(|k2, t2| {
                    if k2 == k {
                        orig = Some(t2.clone());
                    }
                });
                assert!(orig.unwrap().l1_distance(t) < 1e-6, "rewrite did not restore weights");
            }
        });
    }

    #[test]
    fn deploy_report_profiles_layers() {
        let mut rng = SeededRng::new(8);
        let net = tiny_mlp(8, 12, 4, &mut rng);
        let spec = BackendSpec::analog(CrossbarConfig::default());
        let backend = AnalogBackend::program(&net, &spec, &mut rng);
        let probe = Tensor::randn(&[5, 8], &mut rng).map(|v| v.clamp(-1.0, 1.0));
        let report = backend.deploy_report(&probe);
        assert_eq!(report.mappings.len(), 2);
        let divergence = report.logit_divergence.expect("profiled report has divergence");
        assert!(divergence.is_finite() && divergence >= 0.0);
        for m in &report.mappings {
            assert!(m.utilization > 0.0 && m.utilization <= 1.0, "utilization {}", m.utilization);
            assert!(
                m.adc_range_used > 0.0 && m.adc_range_used <= 1.0,
                "adc range {}",
                m.adc_range_used
            );
            assert!(m.tiles >= 1);
        }
    }

    #[test]
    fn instantiate_digital_borrows() {
        let mut rng = SeededRng::new(9);
        let net = tiny_mlp(5, 6, 3, &mut rng);
        let x = Tensor::randn(&[2, 5], &mut rng);
        let spec = BackendSpec::digital();
        let active = spec.instantiate(&net, &mut rng);
        assert_eq!(active.backend_name(), "digital");
        assert_eq!(active.infer(&x), net.infer(&x));
        let analog = exact_spec().instantiate(&net, &mut rng);
        assert_eq!(analog.backend_name(), "analog");
        assert_eq!(analog.infer(&x), net.infer(&x));
    }

    #[test]
    #[should_panic(expected = "positive multiple of cell bits")]
    fn bitsliced_spec_rejects_bad_bits() {
        BackendSpec::bitsliced(CrossbarConfig { cell_bits: 3, ..CrossbarConfig::default() }, 8)
            .validate();
    }
}
