//! Fully-connected (dense) layer.

use super::{Layer, MatmulEngine, MatmulOrientation};
use crate::init::Init;
use healthmon_tensor::{SeededRng, Tensor};

/// A fully-connected layer: `y = x · W + b`.
///
/// Input shape `[N, in_features]`, output `[N, out_features]`; weights are
/// stored `[in_features, out_features]` so the forward pass is a single
/// matmul.
///
/// # Example
///
/// ```
/// use healthmon_nn::layers::{Dense, Layer};
/// use healthmon_tensor::{SeededRng, Tensor};
///
/// let mut rng = SeededRng::new(0);
/// let mut layer = Dense::new(3, 2, &mut rng);
/// let y = layer.forward(&Tensor::zeros(&[4, 3]));
/// assert_eq!(y.shape(), &[4, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-normal weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut SeededRng) -> Self {
        Self::with_init(in_features, out_features, Init::HeNormal, rng)
    }

    /// Creates a dense layer with an explicit weight initialization scheme.
    pub fn with_init(
        in_features: usize,
        out_features: usize,
        init: Init,
        rng: &mut SeededRng,
    ) -> Self {
        Dense {
            in_features,
            out_features,
            weight: init.sample(&[in_features, out_features], in_features, out_features, rng),
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[in_features, out_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight matrix (`[in_features, out_features]`).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 2, "dense expects [N, features] input, got {:?}", input.shape());
        assert_eq!(
            input.shape()[1],
            self.in_features,
            "dense expects {} input features, got {}",
            self.in_features,
            input.shape()[1]
        );
        self.cached_input = Some(input.clone());
        let mut out = input.matmul(&self.weight);
        let n = out.shape()[0];
        let f = self.out_features;
        let bias = self.bias.as_slice();
        let data = out.as_mut_slice();
        for row in 0..n {
            for (j, &b) in bias.iter().enumerate() {
                data[row * f + j] += b;
            }
        }
        out
    }

    fn infer(&self, input: &Tensor, key_prefix: &str, engine: &dyn MatmulEngine) -> Tensor {
        assert_eq!(input.ndim(), 2, "dense expects [N, features] input, got {:?}", input.shape());
        assert_eq!(
            input.shape()[1],
            self.in_features,
            "dense expects {} input features, got {}",
            self.in_features,
            input.shape()[1]
        );
        let mut out = engine.matmul_xw(&format!("{key_prefix}.weight"), input, &self.weight);
        let n = out.shape()[0];
        let f = self.out_features;
        let bias = self.bias.as_slice();
        let data = out.as_mut_slice();
        for row in 0..n {
            for (j, &b) in bias.iter().enumerate() {
                data[row * f + j] += b;
            }
        }
        out
    }

    fn matmul_orientation(&self) -> Option<MatmulOrientation> {
        Some(MatmulOrientation::XW)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("dense backward called before forward");
        assert_eq!(grad_out.shape(), &[input.shape()[0], self.out_features]);
        // dW = X^T G, db = column sums of G, dX = G W^T
        self.grad_weight += &input.matmul_at(grad_out);
        let n = grad_out.shape()[0];
        let f = self.out_features;
        let g = grad_out.as_slice();
        let gb = self.grad_bias.as_mut_slice();
        for row in 0..n {
            for (j, gb_j) in gb.iter_mut().enumerate() {
                *gb_j += g[row * f + j];
            }
        }
        grad_out.matmul_bt(&self.weight)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn param_names(&self) -> Vec<&'static str> {
        vec!["weight", "bias"]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.weight, &mut self.grad_weight),
            (&mut self.bias, &mut self.grad_bias),
        ]
    }

    fn zero_grads(&mut self) {
        self.grad_weight.map_inplace(|_| 0.0);
        self.grad_bias.map_inplace(|_| 0.0);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn forward_matches_manual() {
        let mut rng = SeededRng::new(0);
        let mut layer = Dense::new(2, 2, &mut rng);
        // Overwrite with known weights.
        layer.weight = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        layer.bias = Tensor::from_slice(&[0.5, -0.5]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = layer.forward(&x);
        // [1,1]·[[1,2],[3,4]] + [0.5,-0.5] = [4.5, 5.5]
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn input_gradient_check() {
        let mut rng = SeededRng::new(1);
        let mut layer = Dense::new(5, 4, &mut rng);
        let x = Tensor::randn(&[3, 5], &mut rng);
        let err = gradcheck::input_gradient_error(&mut layer, &x);
        assert!(err < 1e-2, "input gradient error {err}");
    }

    #[test]
    fn param_gradient_check() {
        let mut rng = SeededRng::new(2);
        let mut layer = Dense::new(4, 3, &mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let err = gradcheck::param_gradient_error(&mut layer, &x);
        assert!(err < 1e-2, "param gradient error {err}");
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = SeededRng::new(3);
        let mut layer = Dense::new(2, 2, &mut rng);
        let x = Tensor::randn(&[1, 2], &mut rng);
        let g = Tensor::ones(&[1, 2]);
        layer.forward(&x);
        layer.backward(&g);
        let g1 = layer.params_and_grads()[0].1.clone();
        layer.forward(&x);
        layer.backward(&g);
        let g2 = layer.params_and_grads()[0].1.clone();
        for (a, b) in g1.as_slice().iter().zip(g2.as_slice()) {
            assert!((2.0 * a - b).abs() < 1e-5, "grads should accumulate: {a} vs {b}");
        }
        layer.zero_grads();
        assert!(layer.params_and_grads()[0].1.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "input features")]
    fn rejects_wrong_feature_count() {
        let mut rng = SeededRng::new(4);
        let mut layer = Dense::new(3, 2, &mut rng);
        layer.forward(&Tensor::zeros(&[1, 4]));
    }
}
