//! Fault-containment integration: a poisoned accelerator must never take
//! the monitor down with it — or, worse, read as healthy — and an
//! interrupted detection campaign must resume bit-identically.

use healthmon::{
    CampaignCheckpoint, Detector, HealthMonitor, HealthState, HealthmonError, MonitorPolicy,
    SdcCriterion, TestPatternSet,
};
use healthmon_faults::FaultModel;
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::Network;
use healthmon_tensor::{SeededRng, Tensor};

fn fixture() -> (Network, Detector) {
    let mut rng = SeededRng::new(1);
    let net = tiny_mlp(8, 16, 4, &mut rng);
    let patterns = TestPatternSet::new("t", Tensor::rand_uniform(&[10, 8], 0.0, 1.0, &mut rng));
    let detector = Detector::new(&net, patterns);
    (net, detector)
}

/// Overwrites one weight of the named layer with `value`.
fn poison_weight(net: &mut Network, key_fragment: &str, value: f32) {
    let mut hit = false;
    net.for_each_param_mut(|key, tensor| {
        if key.contains(key_fragment) && !hit {
            tensor.as_mut_slice()[0] = value;
            hit = true;
        }
    });
    assert!(hit, "no parameter matching `{key_fragment}`");
}

/// Regression for the NaN-poisoning bug: `NaN >= threshold` is false for
/// every threshold, so before the non-finite guard a dead device scored
/// `Healthy`. It must escalate straight to `Critical`.
#[test]
fn nan_logits_drive_the_monitor_to_critical() {
    let (net, detector) = fixture();
    let mut monitor = HealthMonitor::new(detector, MonitorPolicy::default());
    let mut device = net.clone();
    poison_weight(&mut device, "layer2.bias", f32::NAN);

    let checkup = monitor.check(&device);
    assert!(checkup.distance.is_poisoned(), "distance {:?}", checkup.distance);
    assert_eq!(checkup.state, HealthState::Critical);
    assert_eq!(monitor.state(), HealthState::Critical);
}

/// Infinities poison the softmax just like NaN and must escalate too.
#[test]
fn infinite_weights_also_escalate() {
    let (net, detector) = fixture();
    let mut monitor = HealthMonitor::new(detector, MonitorPolicy::default());
    let mut device = net.clone();
    poison_weight(&mut device, "layer2.bias", f32::INFINITY);
    assert_eq!(monitor.check(&device).state, HealthState::Critical);
}

/// Hysteresis smooths one-off noise, but a non-finite reading is
/// unambiguous device death and bypasses it: the very first poisoned
/// checkup reads `Critical`, even under a strict escalation count.
#[test]
fn poisoned_readings_bypass_hysteresis() {
    let (net, detector) = fixture();
    let policy = MonitorPolicy { escalation_count: 3, ..MonitorPolicy::default() };
    let mut monitor = HealthMonitor::new(detector, policy);
    let mut device = net.clone();
    poison_weight(&mut device, "layer2.bias", f32::NAN);
    assert_eq!(monitor.check(&device).state, HealthState::Critical);
    // A subsequently repaired device still de-escalates immediately.
    let repaired = net.clone();
    assert_eq!(monitor.check(&repaired).state, HealthState::Healthy);
}

/// `forward_checked` localizes the first poisoned layer instead of
/// letting NaN propagate silently to the output.
#[test]
fn forward_checked_localizes_the_poisoned_layer() {
    let (net, _) = fixture();
    let mut device = net.clone();
    poison_weight(&mut device, "layer2.bias", f32::NAN);
    let x = Tensor::ones(&[1, 8]);
    let err = device.forward_checked(&x).unwrap_err();
    assert_eq!(err.layer, 2);
    let wrapped: HealthmonError = err.into();
    assert!(wrapped.to_string().contains("layer 2"));
}

/// The acceptance scenario: a 100-model campaign interrupted mid-sweep —
/// with the checkpoint serialized to JSON and reloaded, as a killed and
/// restarted process would do — finishes with rates bit-identical to an
/// uninterrupted run.
#[test]
fn interrupted_100_model_campaign_resumes_bit_identically() {
    let (net, detector) = fixture();
    let fault = FaultModel::ProgrammingVariation { sigma: 0.25 };
    let criteria =
        [SdcCriterion::Sdc1, SdcCriterion::SdcA { threshold: 0.03 }, SdcCriterion::SdcT {
            threshold: 0.05,
        }];
    let seed = 42u64;
    let count = 100usize;

    let one_shot = detector.detection_rates(&net, &fault, count, seed, &criteria);

    // Uninterrupted resumable run — the reference checkpoint.
    let mut reference = CampaignCheckpoint::new(seed, count, &criteria);
    let reference_rates = detector
        .detection_rates_resumable(&net, &fault, &criteria, &mut reference, None)
        .unwrap()
        .unwrap();

    // Interrupted run: stop after 37 models, "crash", reload from JSON,
    // finish.
    let mut cp = CampaignCheckpoint::new(seed, count, &criteria);
    let partial = detector
        .detection_rates_resumable(&net, &fault, &criteria, &mut cp, Some(37))
        .unwrap();
    assert!(partial.is_none(), "37/100 models must not complete the sweep");
    assert_eq!(cp.completed(), 37);

    let saved = cp.to_json_string();
    let mut resumed = CampaignCheckpoint::from_json_str(&saved).unwrap();
    assert_eq!(resumed.completed(), 37);
    let resumed_rates = detector
        .detection_rates_resumable(&net, &fault, &criteria, &mut resumed, None)
        .unwrap()
        .unwrap();

    // Bit-identical: same rates and the same per-model verdict rows.
    assert_eq!(
        resumed_rates.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
        one_shot.iter().map(|r| r.to_bits()).collect::<Vec<_>>()
    );
    assert_eq!(resumed_rates, reference_rates);
    assert_eq!(resumed, reference);
    assert_eq!(resumed.to_json_string(), reference.to_json_string());
}

/// A checkpoint from a different criteria set is rejected up front, not
/// silently merged.
#[test]
fn resume_with_wrong_criteria_is_rejected() {
    let (net, detector) = fixture();
    let fault = FaultModel::ProgrammingVariation { sigma: 0.25 };
    let mut cp = CampaignCheckpoint::new(3, 10, &[SdcCriterion::Sdc1]);
    let err = detector
        .detection_rates_resumable(
            &net,
            &fault,
            &[SdcCriterion::SdcA { threshold: 0.03 }],
            &mut cp,
            None,
        )
        .unwrap_err();
    assert!(matches!(err, HealthmonError::CheckpointMismatch(_)));
    // The checkpoint itself is untouched by the failed resume.
    assert_eq!(cp.completed(), 0);
}
