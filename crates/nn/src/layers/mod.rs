//! Network layers.
//!
//! Each layer implements [`Layer`]: a `forward` pass that caches whatever
//! the matching `backward` pass needs, and `backward` both accumulates
//! parameter gradients *and* returns the gradient with respect to the
//! layer input. Input gradients flow all the way back to the image, which
//! is what O-TP pattern optimization and FGSM adversarial generation
//! require.

mod activation;
mod batchnorm;
mod conv;
mod dense;
mod dropout;
mod flatten;
mod pool;

pub use activation::{Relu, Sigmoid, Tanh};
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::{AvgPool2d, MaxPool2d};

use healthmon_tensor::Tensor;
use std::fmt;

/// A differentiable network layer.
///
/// Layers are stateful: `forward` caches activations, `backward` consumes
/// them. A `forward` must precede each `backward` with the same batch.
///
/// The trait is object-safe; networks store `Box<dyn Layer>` so
/// heterogeneous stacks (conv → pool → dense) compose freely.
pub trait Layer: fmt::Debug + Send + Sync {
    /// Short human-readable layer kind, e.g. `"dense"` or `"conv2d"`.
    fn name(&self) -> &'static str;

    /// Computes the layer output for a batch, caching anything `backward`
    /// will need.
    ///
    /// # Panics
    ///
    /// Implementations panic if the input shape is incompatible with the
    /// layer configuration.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Propagates `grad_out` (gradient of the loss w.r.t. this layer's
    /// output) backwards: accumulates parameter gradients and returns the
    /// gradient w.r.t. the layer input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called before `forward`, or if `grad_out`
    /// does not match the cached forward shape.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Immutable views of the layer's trainable parameter tensors, in a
    /// stable order. Empty for parameter-free layers.
    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutable views of the trainable parameters, same order as
    /// [`Layer::params`]. Fault injectors use this to perturb weights.
    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// Stable names for the parameters, same order as [`Layer::params`]
    /// (e.g. `["weight", "bias"]`). Used to build state-dict keys.
    fn param_names(&self) -> Vec<&'static str> {
        Vec::new()
    }

    /// Mutable (parameter, gradient) pairs, same order as
    /// [`Layer::params`]. Optimizers consume this.
    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        Vec::new()
    }

    /// Resets all accumulated parameter gradients to zero.
    fn zero_grads(&mut self) {}

    /// Switches training-only behaviour (e.g. dropout) on or off.
    /// Inference-only layers ignore this.
    fn set_training(&mut self, _on: bool) {}

    /// Clones the layer into a box. Needed because `Clone` is not
    /// object-safe; fault campaigns clone whole networks per fault model.
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by layer tests.

    use super::Layer;
    use healthmon_tensor::Tensor;

    /// Max relative error between analytic and numeric input gradients.
    pub fn input_gradient_error(layer: &mut dyn Layer, input: &Tensor) -> f32 {
        // Scalar loss L = sum(forward(x)) so dL/dy = ones.
        let out = layer.forward(input);
        let grad_out = Tensor::ones(out.shape());
        let analytic = layer.backward(&grad_out);

        let eps = 1e-2f32;
        let mut max_err = 0.0f32;
        for i in 0..input.len() {
            let mut xp = input.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = input.clone();
            xm.as_mut_slice()[i] -= eps;
            let fp = layer.forward(&xp).sum();
            let fm = layer.forward(&xm).sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            max_err = max_err.max((a - numeric).abs() / denom);
        }
        max_err
    }

    /// Max relative error between analytic and numeric parameter gradients.
    pub fn param_gradient_error(layer: &mut dyn Layer, input: &Tensor) -> f32 {
        let out = layer.forward(input);
        let grad_out = Tensor::ones(out.shape());
        layer.zero_grads();
        layer.backward(&grad_out);
        let analytic: Vec<Tensor> = layer
            .params_and_grads()
            .into_iter()
            .map(|(_, g)| g.clone())
            .collect();

        let eps = 1e-2f32;
        let mut max_err = 0.0f32;
        for (p, analytic_p) in analytic.iter().enumerate() {
            for i in 0..analytic_p.len() {
                let orig = layer.params()[p].as_slice()[i];
                layer.params_mut()[p].as_mut_slice()[i] = orig + eps;
                let fp = layer.forward(input).sum();
                layer.params_mut()[p].as_mut_slice()[i] = orig - eps;
                let fm = layer.forward(input).sum();
                layer.params_mut()[p].as_mut_slice()[i] = orig;
                let numeric = (fp - fm) / (2.0 * eps);
                let a = analytic_p.as_slice()[i];
                let denom = 1.0f32.max(a.abs()).max(numeric.abs());
                max_err = max_err.max((a - numeric).abs() / denom);
            }
        }
        max_err
    }
}
