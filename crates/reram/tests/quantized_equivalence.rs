//! Equivalence properties of the integer-domain quantized execution path.
//!
//! The integer path (DAC codes × differential conductance codes
//! accumulated in `i32`) must be indistinguishable from the `f32`
//! reference semantics: bitwise identical when the converters are off
//! (`dac_bits == 0 && adc_bits == 0`, where the `f32` path runs by
//! construction) and within one quantization step otherwise.
//!
//! `scripts/ci.sh` runs this suite at `HEALTHMON_THREADS=1`, `2` and `7`;
//! every assertion here is thread-count invariant, and the batched test
//! drives enough work through the tiles to engage the threaded integer
//! kernel.

use healthmon_nn::models::tiny_mlp;
use healthmon_nn::InferenceBackend;
use healthmon_reram::{BackendSpec, CellFault, Crossbar, CrossbarConfig, Quantizer, TiledMatrix};
use healthmon_tensor::{SeededRng, Tensor};
use healthmon_telemetry as tel;

/// The `f32` reference semantics of one crossbar tile, built from public
/// API only: DAC-quantize the activations, multiply by the effective
/// weights the conductances store, ADC-quantize the bit-line sums.
fn f32_reference(crossbar: &Crossbar, x: &Tensor) -> Tensor {
    let config = crossbar.config();
    let mut v = x.clone();
    if config.dac_bits > 0 {
        Quantizer::new(-1.0, 1.0, config.dac_bits).quantize_slice(v.as_mut_slice());
    }
    let mut out = v.matmul(&crossbar.effective_weights());
    if config.adc_bits > 0 {
        let fs = crossbar.adc_full_scale();
        Quantizer::new(-fs, fs, config.adc_bits).quantize_slice(out.as_mut_slice());
    }
    out
}

#[test]
fn converter_free_configs_are_bitwise_f32() {
    // With the DAC disabled the integer path is gated off, and the f32
    // path must reproduce the plain GEMM against the effective weights
    // bit for bit — including quantized-cell storage (cell_bits = 4).
    let mut rng = SeededRng::new(11);
    for cell_bits in [0u32, 4] {
        let config = CrossbarConfig {
            rows: 64,
            cols: 48,
            cell_bits,
            dac_bits: 0,
            adc_bits: 0,
            ..CrossbarConfig::exact()
        };
        let w = Tensor::randn(&[64, 48], &mut rng);
        let crossbar = Crossbar::program(&w, &config, &mut rng);
        let x = Tensor::randn(&[5, 64], &mut rng);
        assert_eq!(crossbar.matmul(&x), f32_reference(&crossbar, &x), "cell_bits={cell_bits}");
    }
}

#[test]
fn quantized_path_matches_f32_reference_within_step() {
    // Integer-path configs across the (cell, dac, adc) space. The i32
    // accumulation is exact, so the only divergence from the f32
    // reference is rounding at the boundary math — bounded by one ADC
    // step (a borderline sum may snap to the adjacent level) plus a small
    // GEMM-rounding epsilon.
    let mut rng = SeededRng::new(12);
    for (cell_bits, dac_bits, adc_bits) in [(4u32, 8u32, 8u32), (2, 4, 0), (8, 8, 8), (1, 8, 4), (4, 8, 0)]
    {
        let config = CrossbarConfig {
            rows: 64,
            cols: 48,
            cell_bits,
            dac_bits,
            adc_bits,
            ..CrossbarConfig::default()
        };
        assert!(config.integer_path_capable(), "case must exercise the integer path");
        let w = Tensor::randn(&[64, 48], &mut rng).map(|v| v * 0.3);
        let crossbar = Crossbar::program(&w, &config, &mut rng);
        let x = Tensor::randn(&[5, 64], &mut rng).map(|v| v.clamp(-1.0, 1.0));
        let got = crossbar.matmul(&x);
        let reference = f32_reference(&crossbar, &x);
        let adc_step = if adc_bits > 0 {
            2.0 * crossbar.adc_full_scale() / ((1u32 << adc_bits) - 1) as f32
        } else {
            0.0
        };
        let tol = adc_step + 1e-3;
        for (i, (a, b)) in got.as_slice().iter().zip(reference.as_slice()).enumerate() {
            assert!(
                (a - b).abs() <= tol,
                "cell={cell_bits} dac={dac_bits} adc={adc_bits} elem {i}: {a} vs {b} (tol {tol})"
            );
        }
    }
}

#[test]
fn backends_agree_with_digital_within_quantization_tolerance() {
    // All three backends on the same network: digital is the bit-pinned
    // reference; the quantized analog and bit-sliced substrates (integer
    // path live on every tile) stay within coarse quantization error.
    // Small inputs keep every layer's activations inside the DAC range
    // (the backends do not calibrate per-layer input ranges), so with the
    // ADC off the remaining divergence is pure DAC/cell quantization —
    // small, and the integer path stays live (capability does not depend
    // on adc_bits).
    let mut rng = SeededRng::new(13);
    let net = tiny_mlp(24, 20, 6, &mut rng);
    let x = Tensor::randn(&[4, 24], &mut rng).map(|v| 0.2 * v.clamp(-1.0, 1.0));
    let digital = net.infer(&x);

    let spec = BackendSpec::digital();
    assert_eq!(spec.instantiate(&net, &mut rng).infer(&x), digital);

    // 8-bit cells: the weight step is ~0.4% of full scale, so the
    // quantized substrates must track digital closely.
    let fine = CrossbarConfig { cell_bits: 8, adc_bits: 0, ..CrossbarConfig::default() };
    assert!(fine.integer_path_capable());
    for spec in [BackendSpec::analog(fine), BackendSpec::bitsliced(fine, 8)] {
        let backend = spec.instantiate(&net, &mut rng);
        let logits = backend.infer(&x);
        let rel = logits.l1_distance(&digital) / digital.norm_l1().max(1e-6);
        assert!(rel < 0.05, "{} diverges from digital: {rel}", backend.backend_name());
    }

    // Default 4-bit cells: the differential weight step is ~7% of the
    // per-layer weight full scale, so the bound is accordingly looser.
    let coarse = CrossbarConfig { adc_bits: 0, ..CrossbarConfig::default() };
    let backend = BackendSpec::analog(coarse).instantiate(&net, &mut rng);
    let rel = backend.infer(&x).l1_distance(&digital) / digital.norm_l1().max(1e-6);
    assert!(rel < 0.15, "4-bit-cell analog diverges from digital: {rel}");

    // With the 8-bit ADC on, its step is sized for the worst-case
    // bit-line sum, which is coarse relative to these small logits; the
    // outputs must still be finite and within the same order of
    // magnitude (matching the f32 reference semantics pinned per-tile by
    // `quantized_path_matches_f32_reference_within_step`).
    let full = BackendSpec::analog(CrossbarConfig::default()).instantiate(&net, &mut rng);
    let logits = full.infer(&x);
    assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    let rel = logits.l1_distance(&digital) / digital.norm_l1().max(1e-6);
    assert!(rel < 1.0, "default analog config diverges from digital: {rel}");
}

#[test]
fn batched_integer_path_bit_identical_to_per_row() {
    // A batch large enough to engage the threaded integer kernel inside
    // each tile (batch · rows · cols > the parallel threshold) must still
    // be bit-identical to one-row-at-a-time execution, at any
    // HEALTHMON_THREADS setting.
    let mut rng = SeededRng::new(14);
    let w = Tensor::randn(&[260, 140], &mut rng);
    let tiled = TiledMatrix::program(&w, &CrossbarConfig::default(), &mut rng);
    assert_eq!(tiled.tile_grid(), (3, 2));
    let x = Tensor::randn(&[40, 260], &mut rng).map(|v| v.clamp(-1.0, 1.0));
    let batch = tiled.matmul(&x);
    for b in 0..40 {
        assert_eq!(batch.row(b), tiled.matvec(&x.row(b)), "batch row {b}");
    }
}

#[test]
fn live_stuck_cells_invalidate_dac_code_cache() {
    // Regression: the cached DAC-code execution state must be rebuilt
    // after live fault injection — a stale integer cache would keep
    // computing with pre-fault conductances. Checked both behaviorally
    // and through the `reram.dac.cache.invalidations` counter (other
    // concurrent tests may add cache traffic, so the counter assertion is
    // a >= delta).
    let mut rng = SeededRng::new(15);
    let w = Tensor::randn(&[32, 24], &mut rng).map(|v| v * 0.3 + 0.4);
    let config = CrossbarConfig { rows: 32, cols: 24, ..CrossbarConfig::default() };
    let mut crossbar = Crossbar::program(&w, &config, &mut rng);
    assert!(config.integer_path_capable());

    let x = Tensor::randn(&[32], &mut rng).map(|v| v.clamp(-1.0, 1.0));
    tel::set_enabled(true);
    let clean = crossbar.matvec(&x); // builds the integer cache
    let before = invalidation_count();
    crossbar.inject_stuck_cells(CellFault::StuckLow, 1.0, &mut rng);
    let after = invalidation_count();
    let faulty = crossbar.matvec(&x);
    tel::set_enabled(false);

    assert!(after > before, "injection must invalidate the DAC-code cache");
    assert!(
        clean.l1_distance(&faulty) > 1e-3,
        "stuck cells must change the integer-path output"
    );
}

fn invalidation_count() -> u64 {
    tel::snapshot()
        .counters
        .iter()
        .find(|c| c.name == "reram.dac.cache.invalidations")
        .map_or(0, |c| c.value)
}
