//! O-TP: optimization-based test pattern generation (paper §III-B,
//! Algorithm 1).

use crate::TestPatternSet;
use healthmon_data::{INPUT_MAX, INPUT_MIN};
use healthmon_nn::loss::SoftmaxCrossEntropy;
use healthmon_nn::Network;
use healthmon_tensor::{SeededRng, Tensor};

/// Generates "white noise" test patterns from scratch by gradient descent
/// on the paper's joint objective:
///
/// ```text
/// argmin_X −( α·Σ lᵢ·log f_w(X)  +  (1−α)·Σ l'ᵢ·log f_w'(X) )
/// ```
///
/// where `l` is the uniform soft label (the *clean* model `f_w` should be
/// maximally confused by the pattern, so it carries no bias toward any
/// weights) and `l'` is a one-hot hard label on a *reference fault model*
/// `f_w'` (so that when real errors accumulate, the response snaps toward
/// a confident class, producing a large confidence distance).
///
/// One pattern is generated per class (`k = 1` in the paper's notation;
/// `per_class` raises `k`), so a 10-class problem needs only 10 patterns.
///
/// Optimization stops per-pattern when `std(f_w(X)) < ε₁` **and**
/// `‖f_w'(X) − T‖₁ < ε₂` (Algorithm 1 line 16), or globally at
/// `max_iters`.
#[derive(Debug, Clone, Copy)]
pub struct OtpGenerator {
    per_class: usize,
    alpha: f32,
    eps1: f32,
    eps2: f32,
    learning_rate: f32,
    max_iters: usize,
}

/// Convergence record for one generated pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OtpOutcome {
    /// Target class of the hard label.
    pub class: usize,
    /// Iterations executed before this pattern met both constraints (or
    /// `max_iters` if it never did).
    pub iterations: usize,
    /// Whether both ε-constraints were met.
    pub converged: bool,
    /// Final `std(f_w(X))` (constraint 1, target < ε₁).
    pub final_std: f32,
    /// Final `‖f_w'(X) − T‖₁` (constraint 2, target < ε₂).
    pub final_l1: f32,
}

impl Default for OtpGenerator {
    /// Paper defaults: `k = 1`, `α = 0.5`, `ε₁ = ε₂ = 1e-3`.
    fn default() -> Self {
        OtpGenerator {
            per_class: 1,
            alpha: 0.5,
            eps1: 1e-3,
            eps2: 1e-3,
            learning_rate: 0.05,
            max_iters: 600,
        }
    }
}

impl OtpGenerator {
    /// Creates a generator with the paper's defaults (`α = 0.5`,
    /// `ε₁ = ε₂ = 1e-3`, one pattern per class).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of patterns per class (`k`; paper finds `k = 1`
    /// suffices).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn per_class(mut self, k: usize) -> Self {
        assert!(k > 0, "per-class pattern count must be non-zero");
        self.per_class = k;
        self
    }

    /// Sets the loss-balance coefficient `α ∈ (0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1)`.
    pub fn alpha(mut self, alpha: f32) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha {alpha} must be in (0, 1)");
        self.alpha = alpha;
        self
    }

    /// Sets the constraint thresholds `ε₁` (clean-model output std) and
    /// `ε₂` (fault-model L1 distance to the hard label).
    ///
    /// # Panics
    ///
    /// Panics if either is not in `(0, 1)`.
    pub fn tolerances(mut self, eps1: f32, eps2: f32) -> Self {
        assert!(eps1 > 0.0 && eps1 < 1.0 && eps2 > 0.0 && eps2 < 1.0,
            "tolerances must be in (0, 1), got {eps1}, {eps2}");
        self.eps1 = eps1;
        self.eps2 = eps2;
        self
    }

    /// Sets the gradient-descent step size.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn learning_rate(mut self, lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        self.learning_rate = lr;
        self
    }

    /// Sets the iteration cap.
    ///
    /// # Panics
    ///
    /// Panics if `iters` is zero.
    pub fn max_iters(mut self, iters: usize) -> Self {
        assert!(iters > 0, "iteration cap must be non-zero");
        self.max_iters = iters;
        self
    }

    /// Runs Algorithm 1: optimizes `per_class × classes` patterns jointly
    /// (as one batch) against the clean model `clean` and the reference
    /// fault model `reference_fault`.
    ///
    /// Returns the pattern set and a per-pattern convergence record.
    ///
    /// # Panics
    ///
    /// Panics if the two networks have different input shapes or class
    /// counts.
    pub fn generate(
        &self,
        clean: &Network,
        reference_fault: &Network,
        rng: &mut SeededRng,
    ) -> (TestPatternSet, Vec<OtpOutcome>) {
        let mut clean = clean.clone();
        let mut faulty = reference_fault.clone();
        clean.set_training(false);
        faulty.set_training(false);
        assert_eq!(
            clean.input_shape(),
            faulty.input_shape(),
            "clean and fault models must share an input shape"
        );

        // Probe class count from a zero input.
        let probe = Tensor::zeros(clean.input_shape());
        let classes = clean.forward_single(&probe).len();
        assert_eq!(
            classes,
            faulty.forward_single(&probe).len(),
            "clean and fault models must share a class count"
        );

        let n = classes * self.per_class;
        let mut batch_shape = vec![n];
        batch_shape.extend_from_slice(clean.input_shape());
        // X^TP ~ U(0, 1): "input image with random noise" (Alg. 1 line 3).
        let mut x = Tensor::rand_uniform(&batch_shape, INPUT_MIN, INPUT_MAX, rng);

        // Soft labels: uniform confidence rows (line 8).
        let soft = Tensor::full(&[n, classes], 1.0 / classes as f32);
        // Hard labels: one-hot per pattern, classes cycling (line 9).
        let mut hard = Tensor::zeros(&[n, classes]);
        for p in 0..n {
            *hard.at_mut(&[p, p % classes]) = 1.0;
        }

        let mut iterations = vec![self.max_iters; n];
        let mut converged = vec![false; n];
        let mut final_std = vec![f32::INFINITY; n];
        let mut final_l1 = vec![f32::INFINITY; n];

        // Adam moments on the input (Algorithm 1 says "solved with
        // algorithms such as stochastic gradient descent"; adaptive steps
        // reach the ε-constraints in far fewer iterations than plain GD).
        let mut m = Tensor::zeros(x.shape());
        let mut v = Tensor::zeros(x.shape());
        let (beta1, beta2, adam_eps) = (0.9f32, 0.999f32, 1e-8f32);

        for iter in 0..self.max_iters {
            // Forward both models, measure the constraints.
            let logits_clean = clean.forward(&x);
            let logits_fault = faulty.forward(&x);
            let probs_clean = logits_clean.softmax_rows();
            let probs_fault = logits_fault.softmax_rows();
            let mut all_done = true;
            for p in 0..n {
                final_std[p] = probs_clean.row(p).std();
                final_l1[p] = probs_fault.row(p).l1_distance(&hard.row(p));
                let done = final_std[p] < self.eps1 && final_l1[p] < self.eps2;
                if done && !converged[p] {
                    converged[p] = true;
                    iterations[p] = iter;
                }
                all_done &= done;
            }
            if all_done {
                break;
            }

            // Joint gradient: α·∇CE(f_w, soft) + (1−α)·∇CE(f_w', hard).
            let loss_clean = SoftmaxCrossEntropy::with_soft_targets(&logits_clean, &soft);
            let loss_fault = SoftmaxCrossEntropy::with_soft_targets(&logits_fault, &hard);
            clean.zero_grads();
            faulty.zero_grads();
            let g_clean = clean.backward(&loss_clean.grad);
            let g_fault = faulty.backward(&loss_fault.grad);
            let grad = g_clean
                .scale(self.alpha)
                .add(&g_fault.scale(1.0 - self.alpha))
                .scale(n as f32); // undo batch-mean scaling
            let bc1 = 1.0 - beta1.powi(iter as i32 + 1);
            let bc2 = 1.0 - beta2.powi(iter as i32 + 1);
            for ((xv, &g), (mv, vv)) in x
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice())
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice()))
            {
                *mv = beta1 * *mv + (1.0 - beta1) * g;
                *vv = beta2 * *vv + (1.0 - beta2) * g * g;
                *xv -= self.learning_rate * (*mv / bc1) / ((*vv / bc2).sqrt() + adam_eps);
            }
            x.clamp_inplace(INPUT_MIN, INPUT_MAX); // line 14: clip to bounds
        }

        let outcomes = (0..n)
            .map(|p| OtpOutcome {
                class: p % classes,
                iterations: iterations[p],
                converged: converged[p],
                final_std: final_std[p],
                final_l1: final_l1[p],
            })
            .collect();
        (TestPatternSet::new("O-TP", x), outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_faults::FaultModel;
    use healthmon_nn::models::tiny_mlp;

    fn setup() -> (Network, Network) {
        let mut rng = SeededRng::new(1);
        let clean = tiny_mlp(12, 24, 4, &mut rng);
        let mut faulty = clean.clone();
        FaultModel::ProgrammingVariation { sigma: 0.3 }
            .apply(&mut faulty, &mut SeededRng::new(2));
        (clean, faulty)
    }

    #[test]
    fn generates_one_pattern_per_class() {
        let (clean, faulty) = setup();
        let gen = OtpGenerator::new().max_iters(50);
        let (set, outcomes) = gen.generate(&clean, &faulty, &mut SeededRng::new(3));
        assert_eq!(set.len(), 4);
        assert_eq!(set.method(), "O-TP");
        let classes: Vec<usize> = outcomes.iter().map(|o| o.class).collect();
        assert_eq!(classes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn per_class_multiplies_count() {
        let (clean, faulty) = setup();
        let gen = OtpGenerator::new().per_class(3).max_iters(20);
        let (set, _) = gen.generate(&clean, &faulty, &mut SeededRng::new(3));
        assert_eq!(set.len(), 12);
    }

    #[test]
    fn optimization_reduces_clean_model_logit_spread() {
        // The two objective terms only decouple when the reference fault
        // model differs substantially from the clean model (for identical
        // models the optimum is p = α·u + (1−α)·e_i, which has large
        // std by construction) — so use a heavy reference fault here.
        let mut rng = SeededRng::new(1);
        let clean = tiny_mlp(12, 24, 4, &mut rng);
        let mut faulty = clean.clone();
        FaultModel::RandomSoftError { probability: 0.6 }
            .apply(&mut faulty, &mut SeededRng::new(2));
        let mut clean_mut = clean.clone();
        // Baseline: spread of random noise inputs.
        let mut noise_rng = SeededRng::new(4);
        let noise = Tensor::rand_uniform(&[4, 12], 0.0, 1.0, &mut noise_rng);
        let base_std: f32 = {
            let probs = clean_mut.forward(&noise).softmax_rows();
            (0..4).map(|p| probs.row(p).std()).sum::<f32>() / 4.0
        };
        let gen = OtpGenerator::new().max_iters(400).learning_rate(0.05);
        let (set, outcomes) = gen.generate(&clean, &faulty, &mut SeededRng::new(4));
        let opt_std: f32 = {
            let probs = clean_mut.forward(set.images()).softmax_rows();
            (0..4).map(|p| probs.row(p).std()).sum::<f32>() / 4.0
        };
        assert!(
            opt_std < base_std * 0.6,
            "optimization should flatten clean responses: {base_std} -> {opt_std}"
        );
        // Constraint metrics must have improved over a random start.
        assert!(outcomes.iter().all(|o| o.final_std < 0.15));
    }

    #[test]
    fn optimization_biases_fault_model_toward_target_class() {
        let (clean, faulty) = setup();
        let gen = OtpGenerator::new().max_iters(400).learning_rate(0.1);
        let (set, _) = gen.generate(&clean, &faulty, &mut SeededRng::new(5));
        let mut faulty_mut = faulty.clone();
        let probs = faulty_mut.forward(set.images()).softmax_rows();
        // Each pattern's target class should have above-uniform confidence
        // on the reference fault model.
        let mut wins = 0;
        for p in 0..4 {
            if probs.at(&[p, p % 4]) > 1.0 / 4.0 {
                wins += 1;
            }
        }
        assert!(wins >= 3, "only {wins}/4 patterns pulled toward their hard label");
    }

    #[test]
    fn patterns_stay_in_image_range() {
        let (clean, faulty) = setup();
        let gen = OtpGenerator::new().max_iters(100).learning_rate(0.5);
        let (set, _) = gen.generate(&clean, &faulty, &mut SeededRng::new(6));
        assert!(set.images().min() >= INPUT_MIN);
        assert!(set.images().max() <= INPUT_MAX);
    }

    #[test]
    fn deterministic_from_seed() {
        let (clean, faulty) = setup();
        let gen = OtpGenerator::new().max_iters(30);
        let (a, _) = gen.generate(&clean, &faulty, &mut SeededRng::new(7));
        let (b, _) = gen.generate(&clean, &faulty, &mut SeededRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn does_not_mutate_inputs() {
        let (clean, faulty) = setup();
        let c0 = clean.state_dict();
        let f0 = faulty.state_dict();
        OtpGenerator::new().max_iters(10).generate(&clean, &faulty, &mut SeededRng::new(8));
        assert_eq!(clean.state_dict(), c0);
        assert_eq!(faulty.state_dict(), f0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_alpha_one() {
        OtpGenerator::new().alpha(1.0);
    }
}
