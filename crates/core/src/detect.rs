//! The concurrent-test detector: golden responses, fault decisions, and
//! campaign-level detection rates.

use crate::checkpoint::CampaignCheckpoint;
use crate::confidence::{ConfidenceDistance, ResponseSet};
use crate::error::HealthmonError;
use crate::metrics::SdcCriterion;
use crate::patterns::TestPatternSet;
use healthmon_faults::{par_map_indices, par_map_models, FaultModel};
use healthmon_nn::{InferenceBackend, Network};
use healthmon_reram::{BackendKind, BackendSpec};
use healthmon_tensor::SeededRng;
use healthmon_telemetry as tel;

// Every campaign work item is a pure function of (golden weights, seed,
// fault, index), so all detector tallies are Stable: aggregates are
// bit-identical at any HEALTHMON_THREADS setting.
static RESPONSES_EVALUATED: tel::Counter =
    tel::Counter::new("detect.responses", tel::Stability::Stable);
static VERDICTS_FAULTY: tel::Counter =
    tel::Counter::new("detect.verdict.faulty", tel::Stability::Stable);
static VERDICTS_HEALTHY: tel::Counter =
    tel::Counter::new("detect.verdict.healthy", tel::Stability::Stable);
static CRIT_SDC1_CHECKED: tel::Counter =
    tel::Counter::new("detect.criterion.sdc1.checked", tel::Stability::Stable);
static CRIT_SDC1_DETECTED: tel::Counter =
    tel::Counter::new("detect.criterion.sdc1.detected", tel::Stability::Stable);
static CRIT_SDC5_CHECKED: tel::Counter =
    tel::Counter::new("detect.criterion.sdc5.checked", tel::Stability::Stable);
static CRIT_SDC5_DETECTED: tel::Counter =
    tel::Counter::new("detect.criterion.sdc5.detected", tel::Stability::Stable);
static CRIT_SDCT_CHECKED: tel::Counter =
    tel::Counter::new("detect.criterion.sdct.checked", tel::Stability::Stable);
static CRIT_SDCT_DETECTED: tel::Counter =
    tel::Counter::new("detect.criterion.sdct.detected", tel::Stability::Stable);
static CRIT_SDCA_CHECKED: tel::Counter =
    tel::Counter::new("detect.criterion.sdca.checked", tel::Stability::Stable);
static CRIT_SDCA_DETECTED: tel::Counter =
    tel::Counter::new("detect.criterion.sdca.detected", tel::Stability::Stable);
// One per fault model instantiated onto a live backend in
// `detection_rates_with`: the unit of work whose cost the integer-domain
// crossbar path amortizes (each program is followed by a full pattern-set
// sweep against the freshly built tile caches).
static BACKEND_PROGRAMS: tel::Counter =
    tel::Counter::new("detect.backend.programs", tel::Stability::Stable);

/// The `(checked, detected)` progress counters for a criterion kind.
fn criterion_counters(c: &SdcCriterion) -> (&'static tel::Counter, &'static tel::Counter) {
    match c {
        SdcCriterion::Sdc1 => (&CRIT_SDC1_CHECKED, &CRIT_SDC1_DETECTED),
        SdcCriterion::Sdc5 => (&CRIT_SDC5_CHECKED, &CRIT_SDC5_DETECTED),
        SdcCriterion::SdcT { .. } => (&CRIT_SDCT_CHECKED, &CRIT_SDCT_DETECTED),
        SdcCriterion::SdcA { .. } => (&CRIT_SDCA_CHECKED, &CRIT_SDCA_DETECTED),
    }
}

/// Records per-criterion detection progress after a campaign's verdict
/// merge. Runs post-merge on the calling thread, so tallies are
/// independent of how the sweep was scheduled.
fn tally_verdicts(criteria: &[SdcCriterion], verdicts: &[Vec<bool>]) {
    if !tel::enabled() {
        return;
    }
    for (ci, criterion) in criteria.iter().enumerate() {
        let (checked, detected) = criterion_counters(criterion);
        checked.add(verdicts.len() as u64);
        detected.add(verdicts.iter().filter(|v| v[ci]).count() as u64);
    }
}

/// Domain separator for the per-fault-model backend programming streams
/// of [`Detector::detection_rates_with`]: keeps conductance-programming
/// randomness statistically independent of the fault-injection streams
/// derived from the campaign seed itself.
const BACKEND_SALT: u64 = 0xBAC0_0DAC_2020_0004;

/// A concurrent-test detector: a pattern set plus the golden model's
/// responses to it.
///
/// In deployment the golden responses are computed once (at the cloud, on
/// a known-good model) and shipped with the patterns; the accelerator
/// periodically runs the patterns and compares. Here the same object also
/// drives the statistical campaigns of the paper's evaluation.
#[derive(Debug, Clone)]
pub struct Detector {
    patterns: TestPatternSet,
    golden: ResponseSet,
}

impl Detector {
    /// Builds a detector by recording `golden_net`'s responses on
    /// `patterns`.
    ///
    /// The golden responses are always digital: the reference the paper
    /// compares against is the known-good model evaluated exactly, while
    /// the *target* side of every comparison may run on any
    /// [`InferenceBackend`].
    ///
    /// # Panics
    ///
    /// Panics if pattern shapes do not match the network input.
    pub fn new(golden_net: &Network, patterns: TestPatternSet) -> Self {
        let golden = ResponseSet::from_logits(patterns.logits(golden_net));
        Detector { patterns, golden }
    }

    /// The pattern set.
    pub fn patterns(&self) -> &TestPatternSet {
        &self.patterns
    }

    /// The golden responses.
    pub fn golden(&self) -> &ResponseSet {
        &self.golden
    }

    /// A detector over only the first `k` patterns (and the matching
    /// golden responses) — used by the efficiency analysis.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the pattern count.
    pub fn truncated(&self, k: usize) -> Detector {
        Detector { patterns: self.patterns.truncated(k), golden: self.golden.truncated(k) }
    }

    /// Non-panicking [`Detector::truncated`]: a detector over the first
    /// `k` patterns, or a descriptive error when `k` is out of range.
    ///
    /// # Errors
    ///
    /// [`HealthmonError::InvalidTruncation`] if `k` is zero or exceeds
    /// the pattern count.
    pub fn subset(&self, k: usize) -> Result<Detector, HealthmonError> {
        let available = self.patterns.len();
        if k == 0 || k > available {
            return Err(HealthmonError::InvalidTruncation { requested: k, available });
        }
        Ok(self.truncated(k))
    }

    /// Evaluates a target backend's responses on the pattern set. The
    /// target can be a plain digital [`Network`] or any live analog
    /// backend (`AnalogBackend`, `BitSlicedBackend`, ...).
    pub fn responses<B: InferenceBackend + ?Sized>(&self, target: &B) -> ResponseSet {
        RESPONSES_EVALUATED.inc();
        ResponseSet::from_logits(self.patterns.logits(target))
    }

    /// Confidence distance of a target backend from the golden responses.
    pub fn confidence_distance<B: InferenceBackend + ?Sized>(
        &self,
        target: &B,
    ) -> ConfidenceDistance {
        ConfidenceDistance::between(&self.golden, &self.responses(target))
    }

    /// Whether `criterion` flags the target backend as faulty.
    pub fn is_faulty<B: InferenceBackend + ?Sized>(
        &self,
        target: &B,
        criterion: SdcCriterion,
    ) -> bool {
        let faulty = criterion.detects(&self.golden, &self.responses(target));
        if faulty {
            VERDICTS_FAULTY.inc();
        } else {
            VERDICTS_HEALTHY.inc();
        }
        faulty
    }

    /// Detection rate over a fault campaign: the fraction of `count` fault
    /// models (derived from `golden_net` with `fault` under `seed`) that
    /// `criterion` flags. This is the paper's headline metric.
    pub fn detection_rate(
        &self,
        golden_net: &Network,
        fault: &FaultModel,
        count: usize,
        seed: u64,
        criterion: SdcCriterion,
    ) -> f32 {
        let rates = self.detection_rates(golden_net, fault, count, seed, &[criterion]);
        rates[0]
    }

    /// Detection rates for several criteria over a single campaign pass
    /// (each fault model is evaluated once; all criteria are applied to
    /// its responses).
    pub fn detection_rates(
        &self,
        golden_net: &Network,
        fault: &FaultModel,
        count: usize,
        seed: u64,
        criteria: &[SdcCriterion],
    ) -> Vec<f32> {
        if count == 0 {
            return vec![0.0; criteria.len()];
        }
        let _campaign = tel::span("detect.campaign");
        let verdicts: Vec<Vec<bool>> =
            par_map_models(golden_net, fault, seed, count, |_, net| {
                let responses = self.responses(&*net);
                criteria
                    .iter()
                    .map(|c| c.detects(&self.golden, &responses))
                    .collect()
            });
        tally_verdicts(criteria, &verdicts);
        (0..criteria.len())
            .map(|ci| {
                verdicts.iter().filter(|v| v[ci]).count() as f32 / count as f32
            })
            .collect()
    }

    /// [`Detector::detection_rates`] executed on an arbitrary backend:
    /// every fault model's weights are *programmed onto live crossbar
    /// state* described by `spec` before its responses are measured, so
    /// detection rates include DAC/ADC quantization, cell resolution, and
    /// tile partial-sum effects.
    ///
    /// The digital spec routes through the exact same code path as
    /// [`Detector::detection_rates`] (byte-identical results). For analog
    /// specs, fault model `i` is programmed under the deterministic stream
    /// `SeededRng::new(seed ^ BACKEND_SALT).fork(i)`, so rates are
    /// reproducible at any thread count.
    pub fn detection_rates_with(
        &self,
        golden_net: &Network,
        fault: &FaultModel,
        count: usize,
        seed: u64,
        criteria: &[SdcCriterion],
        spec: &BackendSpec,
    ) -> Vec<f32> {
        if spec.kind == BackendKind::Digital {
            return self.detection_rates(golden_net, fault, count, seed, criteria);
        }
        spec.validate();
        if count == 0 {
            return vec![0.0; criteria.len()];
        }
        let _campaign = tel::span("detect.campaign");
        let verdicts: Vec<Vec<bool>> =
            par_map_models(golden_net, fault, seed, count, |i, net| {
                let mut program_rng = SeededRng::new(seed ^ BACKEND_SALT).fork(i as u64);
                let backend = spec.instantiate(&*net, &mut program_rng);
                BACKEND_PROGRAMS.inc();
                let responses = self.responses(&backend);
                criteria
                    .iter()
                    .map(|c| c.detects(&self.golden, &responses))
                    .collect()
            });
        tally_verdicts(criteria, &verdicts);
        (0..criteria.len())
            .map(|ci| {
                verdicts.iter().filter(|v| v[ci]).count() as f32 / count as f32
            })
            .collect()
    }

    /// Advances a checkpointed detection sweep by up to `budget` fault
    /// models (all remaining ones when `budget` is `None`), recording
    /// each evaluated model's verdicts into `checkpoint`.
    ///
    /// Returns `Some(rates)` once the sweep is complete, `None` while
    /// models remain. Because fault model `i` is a pure function of
    /// `(golden weights, checkpoint seed, fault, i)`, a sweep interrupted
    /// at any point and resumed — even from a checkpoint that was
    /// serialized and reloaded — produces rates bit-identical to an
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`HealthmonError::CheckpointMismatch`] if `criteria` differ from
    /// the ones the checkpoint was started with.
    pub fn detection_rates_resumable(
        &self,
        golden_net: &Network,
        fault: &FaultModel,
        criteria: &[SdcCriterion],
        checkpoint: &mut CampaignCheckpoint,
        budget: Option<usize>,
    ) -> Result<Option<Vec<f32>>, HealthmonError> {
        checkpoint.verify_criteria(criteria)?;
        let mut todo = checkpoint.remaining();
        if let Some(limit) = budget {
            todo.truncate(limit);
        }
        let _campaign = tel::span("detect.campaign");
        let verdicts: Vec<Vec<bool>> =
            par_map_indices(golden_net, fault, checkpoint.seed(), &todo, |_, net| {
                let responses = self.responses(&*net);
                criteria
                    .iter()
                    .map(|c| c.detects(&self.golden, &responses))
                    .collect()
            });
        tally_verdicts(criteria, &verdicts);
        for (i, row) in todo.into_iter().zip(verdicts) {
            checkpoint.record(i, row)?;
        }
        Ok(if checkpoint.is_complete() { Some(checkpoint.rates()) } else { None })
    }

    /// Confidence distance of every fault model in a campaign, in index
    /// order — the raw series behind Fig 3, Table IV and Fig 7.
    pub fn campaign_distances(
        &self,
        golden_net: &Network,
        fault: &FaultModel,
        count: usize,
        seed: u64,
    ) -> Vec<ConfidenceDistance> {
        par_map_models(golden_net, fault, seed, count, |_, net| {
            self.confidence_distance(&*net)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_nn::models::tiny_mlp;
    use healthmon_tensor::{SeededRng, Tensor};

    fn setup() -> (Network, Detector) {
        let mut rng = SeededRng::new(1);
        let net = tiny_mlp(8, 16, 4, &mut rng);
        let patterns =
            TestPatternSet::new("rand", Tensor::rand_uniform(&[12, 8], 0.0, 1.0, &mut rng));
        let detector = Detector::new(&net, patterns);
        (net, detector)
    }

    #[test]
    fn golden_model_is_never_flagged() {
        let (net, detector) = setup();
        for crit in SdcCriterion::paper_suite() {
            // SDC-5 requires >=5 classes; our toy model has 4.
            if matches!(crit, SdcCriterion::Sdc5) {
                continue;
            }
            assert!(!detector.is_faulty(&net, crit), "{} flagged the golden model", crit.label());
        }
        let d = detector.confidence_distance(&net);
        assert_eq!(d.top_ranked, 0.0);
        assert_eq!(d.all_classes, 0.0);
    }

    #[test]
    fn heavy_fault_is_detected() {
        let (net, detector) = setup();
        let mut faulty = net.clone();
        FaultModel::RandomSoftError { probability: 0.6 }
            .apply(&mut faulty, &mut SeededRng::new(9));
        let d = detector.confidence_distance(&faulty);
        assert!(d.all_classes > 0.01, "heavy fault left distance {}", d.all_classes);
        assert!(detector.is_faulty(&faulty, SdcCriterion::SdcA { threshold: 0.01 }));
    }

    #[test]
    fn detection_rate_monotone_in_severity() {
        let (net, detector) = setup();
        let crit = SdcCriterion::SdcA { threshold: 0.02 };
        let mild = detector.detection_rate(
            &net,
            &FaultModel::ProgrammingVariation { sigma: 0.01 },
            16,
            5,
            crit,
        );
        let severe = detector.detection_rate(
            &net,
            &FaultModel::ProgrammingVariation { sigma: 0.8 },
            16,
            5,
            crit,
        );
        assert!(severe >= mild, "severity must not reduce detection: {mild} vs {severe}");
        assert!(severe > 0.8, "σ=0.8 should be detected nearly always, got {severe}");
    }

    #[test]
    fn detection_rates_consistent_with_single() {
        let (net, detector) = setup();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.3 };
        let criteria = [
            SdcCriterion::Sdc1,
            SdcCriterion::SdcA { threshold: 0.03 },
        ];
        let both = detector.detection_rates(&net, &fault, 10, 3, &criteria);
        let one = detector.detection_rate(&net, &fault, 10, 3, criteria[1]);
        assert_eq!(both[1], one);
    }

    #[test]
    fn campaign_distances_len_and_determinism() {
        let (net, detector) = setup();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.2 };
        let a = detector.campaign_distances(&net, &fault, 7, 11);
        let b = detector.campaign_distances(&net, &fault, 7, 11);
        assert_eq!(a.len(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn truncated_detector_consistency() {
        let (net, detector) = setup();
        let t = detector.truncated(5);
        assert_eq!(t.patterns().len(), 5);
        assert_eq!(t.golden().len(), 5);
        let mut faulty = net.clone();
        FaultModel::ProgrammingVariation { sigma: 0.3 }
            .apply(&mut faulty, &mut SeededRng::new(2));
        // Truncated distance computed on prefix only.
        let d_full = detector.confidence_distance(&faulty);
        let d_trunc = t.confidence_distance(&faulty);
        assert!(d_full.all_classes > 0.0 && d_trunc.all_classes > 0.0);
    }

    #[test]
    fn subset_rejects_degenerate_sizes() {
        let (_, detector) = setup();
        let n = detector.patterns().len();
        let err = detector.subset(0).unwrap_err();
        assert!(matches!(
            err,
            HealthmonError::InvalidTruncation { requested: 0, available } if available == n
        ));
        assert!(err.to_string().contains("subset of 0"));
        assert!(detector.subset(n + 1).is_err());
    }

    #[test]
    fn subset_matches_truncated_in_range() {
        let (net, detector) = setup();
        let s = detector.subset(5).unwrap();
        let t = detector.truncated(5);
        assert_eq!(s.patterns().len(), t.patterns().len());
        let device = net.clone();
        let a = s.confidence_distance(&device);
        let b = t.confidence_distance(&device);
        assert_eq!(a, b);
    }

    #[test]
    fn resumable_sweep_matches_one_shot() {
        let (net, detector) = setup();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.3 };
        let criteria = [SdcCriterion::Sdc1, SdcCriterion::SdcA { threshold: 0.03 }];
        let one_shot = detector.detection_rates(&net, &fault, 12, 3, &criteria);

        let mut cp = CampaignCheckpoint::new(3, 12, &criteria);
        // Advance in uneven bites, round-tripping through JSON between
        // them, as an interrupted process would.
        let mut rates = None;
        for budget in [5usize, 1, 100] {
            cp = CampaignCheckpoint::from_json_str(&cp.to_json_string()).unwrap();
            rates = detector
                .detection_rates_resumable(&net, &fault, &criteria, &mut cp, Some(budget))
                .unwrap();
        }
        assert_eq!(rates.unwrap(), one_shot);
    }

    #[test]
    fn resumable_sweep_rejects_swapped_criteria() {
        let (net, detector) = setup();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.3 };
        let mut cp = CampaignCheckpoint::new(3, 4, &[SdcCriterion::Sdc1]);
        let err = detector
            .detection_rates_resumable(
                &net,
                &fault,
                &[SdcCriterion::SdcA { threshold: 0.03 }],
                &mut cp,
                None,
            )
            .unwrap_err();
        assert!(matches!(err, HealthmonError::CheckpointMismatch(_)));
    }

    #[test]
    fn backend_campaign_digital_spec_is_byte_identical() {
        let (net, detector) = setup();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.3 };
        let criteria = [SdcCriterion::Sdc1, SdcCriterion::SdcA { threshold: 0.03 }];
        let plain = detector.detection_rates(&net, &fault, 10, 3, &criteria);
        let routed = detector.detection_rates_with(
            &net,
            &fault,
            10,
            3,
            &criteria,
            &healthmon_reram::BackendSpec::digital(),
        );
        assert_eq!(
            plain.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            routed.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn backend_campaign_exact_analog_matches_digital() {
        use healthmon_reram::{BackendSpec, CrossbarConfig};
        let (net, detector) = setup();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.3 };
        let criteria = [SdcCriterion::SdcA { threshold: 0.03 }];
        let digital = detector.detection_rates(&net, &fault, 8, 3, &criteria);
        let spec = BackendSpec::analog(CrossbarConfig {
            rows: 4096,
            cols: 4096,
            ..CrossbarConfig::exact()
        });
        let analog = detector.detection_rates_with(&net, &fault, 8, 3, &criteria, &spec);
        assert_eq!(digital, analog, "exact analog campaign must reproduce digital rates");
    }

    #[test]
    fn backend_campaign_quantization_is_visible_and_deterministic() {
        use healthmon_reram::{BackendSpec, CrossbarConfig};
        let (net, detector) = setup();
        // A *clean* device on a coarse backend: cell quantization alone
        // perturbs responses, which a tight threshold notices.
        let fault = FaultModel::ProgrammingVariation { sigma: 0.0 };
        let criteria = [SdcCriterion::SdcA { threshold: 1e-4 }];
        let spec = BackendSpec::analog(CrossbarConfig {
            cell_bits: 2,
            dac_bits: 4,
            adc_bits: 4,
            ..CrossbarConfig::default()
        });
        let a = detector.detection_rates_with(&net, &fault, 6, 3, &criteria, &spec);
        let b = detector.detection_rates_with(&net, &fault, 6, 3, &criteria, &spec);
        assert_eq!(a, b, "backend campaign must be deterministic");
        let digital = detector.detection_rates(&net, &fault, 6, 3, &criteria);
        assert!(
            a[0] > digital[0],
            "coarse quantization should trip the tight criterion: analog {} vs digital {}",
            a[0],
            digital[0]
        );
    }

    #[test]
    fn zero_count_campaign() {
        let (net, detector) = setup();
        let r = detector.detection_rates(
            &net,
            &FaultModel::ProgrammingVariation { sigma: 0.1 },
            0,
            0,
            &[SdcCriterion::Sdc1],
        );
        assert_eq!(r, vec![0.0]);
    }
}
