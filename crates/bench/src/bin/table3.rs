//! **Table III**: average detection rate of AET, C-TP and O-TP over all
//! programming-variation σ, on every SDC criterion, for both benchmarks.
//!
//! O-TP cells for top-class criteria are dashes, matching the paper.

use healthmon::report::{percent, TextTable};
use healthmon::{Detector, SdcCriterion};
use healthmon_bench::harness::{
    emit, models_per_level, pattern_suite, train_or_load, Benchmark, CAMPAIGN_SEED,
};
use healthmon_faults::FaultModel;
use std::fmt::Write as _;

fn main() {
    let criteria = SdcCriterion::paper_suite();
    let count = models_per_level();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table III — average detection rate over all sigma ({count} fault models per sigma)\n"
    );
    for benchmark in [Benchmark::Lenet5Digits, Benchmark::Convnet7Objects] {
        let mut trained = train_or_load(benchmark);
        let suite = pattern_suite(&mut trained);
        let sigmas = benchmark.sigma_grid();
        let _ = writeln!(out, "== {} ==", benchmark.label());
        let mut header = vec!["method".to_owned()];
        header.extend(criteria.iter().map(|c| c.label()));
        let mut table = TextTable::new(header);
        for patterns in suite.methods() {
            let detector = Detector::new(&trained.model, patterns.clone());
            let mut sums = vec![0.0f32; criteria.len()];
            for &sigma in &sigmas {
                let rates = detector.detection_rates(
                    &trained.model,
                    &FaultModel::ProgrammingVariation { sigma },
                    count,
                    CAMPAIGN_SEED,
                    &criteria,
                );
                for (s, r) in sums.iter_mut().zip(&rates) {
                    *s += r;
                }
            }
            let mut row = vec![patterns.method().to_owned()];
            for (crit, sum) in criteria.iter().zip(&sums) {
                if patterns.method() == "O-TP" && crit.uses_top_class() {
                    row.push("-".to_owned());
                } else {
                    row.push(percent(sum / sigmas.len() as f32));
                }
            }
            table.push_row(row);
        }
        let _ = writeln!(out, "{}", table.render());
    }
    emit("table3", &out);
}
