//! Element-wise arithmetic for [`Tensor`], including operator overloads.
//!
//! All binary operators require identical shapes and panic otherwise, in
//! line with the explicit-over-implicit style of this workspace (no silent
//! broadcasting).

use crate::Tensor;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

impl Tensor {
    /// Element-wise sum with `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference with `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product with `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Adds `s` to every element.
    pub fn shift(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// In-place `self += alpha * other` (axpy), the inner-loop primitive of
    /// every optimizer in the workspace.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "axpy shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
    }

    /// Dot product of two same-shape tensors viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        self.as_slice().iter().zip(other.as_slice()).map(|(&a, &b)| a * b).sum()
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn norm_l2(&self) -> f32 {
        self.as_slice().iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// L1 norm (sum of absolute values) of the flattened tensor.
    pub fn norm_l1(&self) -> f32 {
        self.as_slice().iter().map(|&v| v.abs()).sum()
    }

    /// L1 distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn l1_distance(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "l1_distance length mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| (a - b).abs())
            .sum()
    }

    /// L-infinity distance to `other` (maximum absolute difference).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn linf_distance(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "linf_distance length mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        Tensor::add(self, rhs)
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        Tensor::sub(self, rhs)
    }
}

impl Mul<&Tensor> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: &Tensor) -> Tensor {
        Tensor::mul(self, rhs)
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f32) -> Tensor {
        self.scale(rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.scale(-1.0)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Tensor> for Tensor {
    fn sub_assign(&mut self, rhs: &Tensor) {
        self.axpy(-1.0, rhs);
    }
}

impl MulAssign<f32> for Tensor {
    fn mul_assign(&mut self, rhs: f32) {
        self.map_inplace(|v| v * rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice(v)
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * &b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0, -3.0]);
        assert_eq!(a.shift(1.0).as_slice(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn assign_ops() {
        let mut a = t(&[1.0, 1.0]);
        a += &t(&[2.0, 3.0]);
        assert_eq!(a.as_slice(), &[3.0, 4.0]);
        a -= &t(&[1.0, 1.0]);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
        a *= 0.5;
        assert_eq!(a.as_slice(), &[1.0, 1.5]);
    }

    #[test]
    fn axpy_matches_manual() {
        let mut a = t(&[1.0, 2.0]);
        a.axpy(0.5, &t(&[4.0, 8.0]));
        assert_eq!(a.as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn dot_and_norms() {
        let a = t(&[3.0, 4.0]);
        let b = t(&[1.0, 2.0]);
        assert_eq!(a.dot(&b), 11.0);
        assert_eq!(a.norm_l2(), 5.0);
        assert_eq!(a.norm_l1(), 7.0);
    }

    #[test]
    fn distances() {
        let a = t(&[1.0, 5.0, -1.0]);
        let b = t(&[2.0, 2.0, -1.0]);
        assert_eq!(a.l1_distance(&b), 4.0);
        assert_eq!(a.linf_distance(&b), 3.0);
        assert_eq!(a.l1_distance(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "axpy shape mismatch")]
    fn axpy_rejects_mismatch() {
        let mut a = t(&[1.0]);
        a.axpy(1.0, &t(&[1.0, 2.0]));
    }
}
