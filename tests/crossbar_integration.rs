//! Integration between the crossbar simulator and the detection flow:
//! deploying a model onto simulated hardware, degrading the hardware, and
//! catching the degradation with concurrent test.

use healthmon::{CtpGenerator, Detector, SdcCriterion};
use healthmon_data::{Dataset, DatasetSpec, SynthDigits};
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::optim::Sgd;
use healthmon_nn::{Network, TrainConfig, Trainer};
use healthmon_reram::{deploy, CrossbarConfig};
use healthmon_tensor::SeededRng;

fn trained() -> (Network, Dataset) {
    let spec = DatasetSpec { train: 700, test: 200, seed: 8, noise: 0.10 };
    let raw = SynthDigits::new(spec).generate();
    let n_pixels = 28 * 28;
    let train = Dataset::new(
        raw.train.images.reshape(&[raw.train.len(), n_pixels]).expect("flatten"),
        raw.train.labels.clone(),
        10,
    );
    let test = Dataset::new(
        raw.test.images.reshape(&[raw.test.len(), n_pixels]).expect("flatten"),
        raw.test.labels.clone(),
        10,
    );
    let mut rng = SeededRng::new(2);
    let mut net = tiny_mlp(n_pixels, 40, 10, &mut rng);
    let config = TrainConfig { epochs: 3, batch_size: 32, ..TrainConfig::default() };
    Trainer::new(&mut net, Sgd::new(0.1).momentum(0.9), config).fit(
        &train.images,
        &train.labels,
        None,
    );
    (net, test)
}

#[test]
fn ideal_crossbar_deployment_preserves_accuracy() {
    let (mut net, test) = trained();
    let base = healthmon_nn::trainer::accuracy(&mut net, &test.images, &test.labels, 64);
    let (mut deployed, report) =
        deploy(&net, &CrossbarConfig::ideal(), &mut SeededRng::new(1));
    let acc = healthmon_nn::trainer::accuracy(&mut deployed, &test.images, &test.labels, 64);
    assert!((base - acc).abs() < 0.02, "ideal deployment moved accuracy {base} -> {acc}");
    assert!(report.total_tiles() >= 2);
}

#[test]
fn realistic_quantization_costs_little_accuracy() {
    let (mut net, test) = trained();
    let base = healthmon_nn::trainer::accuracy(&mut net, &test.images, &test.labels, 64);
    // 4-bit cells, the ISAAC-class default.
    let (mut deployed, _) =
        deploy(&net, &CrossbarConfig::default(), &mut SeededRng::new(1));
    let acc = healthmon_nn::trainer::accuracy(&mut deployed, &test.images, &test.labels, 64);
    assert!(base - acc < 0.1, "4-bit mapping lost too much: {base} -> {acc}");
}

#[test]
fn write_noise_degrades_monotonically_in_expectation() {
    let (mut net, test) = trained();
    let acc_for = |noise: f32, net: &Network, test: &Dataset| {
        // Average over a few deployments to smooth sampling noise.
        let mut total = 0.0f32;
        for seed in 0..4u64 {
            let config = CrossbarConfig { write_noise: noise, cell_bits: 8, ..CrossbarConfig::default() };
            let (mut deployed, _) = deploy(net, &config, &mut SeededRng::new(seed));
            total += healthmon_nn::trainer::accuracy(&mut deployed, &test.images, &test.labels, 64);
        }
        total / 4.0
    };
    let clean = acc_for(0.0, &net, &test);
    let noisy = acc_for(0.6, &net, &test);
    assert!(clean > noisy, "write noise must cost accuracy: {clean} vs {noisy}");
    let _ = &mut net;
}

#[test]
fn detector_flags_noisy_deployment() {
    let (mut net, test) = trained();
    let patterns = CtpGenerator::new(15).select(&mut net, &test);
    let detector = Detector::new(&net, patterns);

    // A clean redeployment at high precision is NOT flagged ...
    let fine = CrossbarConfig { cell_bits: 12, ..CrossbarConfig::default() };
    let (good, _) = deploy(&net, &fine, &mut SeededRng::new(3));
    assert!(!detector.is_faulty(&good, SdcCriterion::SdcA { threshold: 0.03 }));

    // ... while a heavily drifted / mis-programmed one is.
    let sloppy = CrossbarConfig { cell_bits: 4, write_noise: 0.5, ..CrossbarConfig::default() };
    let (bad, _) = deploy(&net, &sloppy, &mut SeededRng::new(3));
    assert!(detector.is_faulty(&bad, SdcCriterion::SdcA { threshold: 0.03 }));
}

#[test]
fn deployment_report_accounts_for_all_weight_layers() {
    let (net, _) = trained();
    let (_, report) = deploy(&net, &CrossbarConfig::default(), &mut SeededRng::new(4));
    let keys: Vec<&str> = report.mappings.iter().map(|m| m.key.as_str()).collect();
    assert_eq!(keys, ["layer0.weight", "layer2.weight"]);
    // 784x40 over 128x128 tiles: 7x1 grid; 40x10: 1 tile.
    assert_eq!(report.total_tiles(), 8);
}
