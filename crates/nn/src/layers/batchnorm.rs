//! Batch normalization over `[N, C, H, W]` feature maps.

use super::{Layer, MatmulEngine};
use healthmon_tensor::Tensor;

/// Per-channel batch normalization (Ioffe & Szegedy):
/// `y = γ·(x − μ)/√(σ² + ε) + β`, with batch statistics during training
/// and tracked running statistics during inference.
///
/// Useful when extending the paper's models to deeper networks, where
/// training without normalization becomes unstable; the ReRAM mapping
/// treats γ/β as CMOS-side scale/shift (they are *not* conductance-mapped,
/// so fault injectors leave them alone — their state-dict keys are
/// `gamma`/`beta`, not `weight`).
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    training: bool,
    /// Cached from forward: normalized input and the per-channel inverse
    /// std, needed by backward.
    cached: Option<(Tensor, Tensor)>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channel count must be non-zero");
        BatchNorm2d {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            training: true,
            cached: None,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    fn check_input(&self, input: &Tensor) {
        assert_eq!(input.ndim(), 4, "batchnorm expects [N,C,H,W], got {:?}", input.shape());
        assert_eq!(
            input.shape()[1],
            self.channels,
            "batchnorm configured for {} channels, got {}",
            self.channels,
            input.shape()[1]
        );
    }

    /// Iterates channel elements: calls `f(channel, linear_index)`.
    fn for_each_channel_elem(shape: &[usize], mut f: impl FnMut(usize, usize)) {
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let plane = h * w;
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * plane;
                for p in 0..plane {
                    f(ci, base + p);
                }
            }
        }
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> &'static str {
        "batchnorm2d"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.check_input(input);
        let shape = input.shape().to_vec();
        let count = (shape[0] * shape[2] * shape[3]) as f32;
        let x = input.as_slice();

        let (mean, var) = if self.training {
            let mut mean = vec![0.0f32; self.channels];
            Self::for_each_channel_elem(&shape, |c, i| mean[c] += x[i]);
            for m in &mut mean {
                *m /= count;
            }
            let mut var = vec![0.0f32; self.channels];
            Self::for_each_channel_elem(&shape, |c, i| {
                let d = x[i] - mean[c];
                var[c] += d * d;
            });
            for v in &mut var {
                *v /= count;
            }
            // Track running statistics for inference.
            for c in 0..self.channels {
                let rm = &mut self.running_mean.as_mut_slice()[c];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean[c];
                let rv = &mut self.running_var.as_mut_slice()[c];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * var[c];
            }
            (mean, var)
        } else {
            (
                self.running_mean.as_slice().to_vec(),
                self.running_var.as_slice().to_vec(),
            )
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut x_hat = Tensor::zeros(&shape);
        let mut out = Tensor::zeros(&shape);
        {
            let xh = x_hat.as_mut_slice();
            let o = out.as_mut_slice();
            let gamma = self.gamma.as_slice();
            let beta = self.beta.as_slice();
            Self::for_each_channel_elem(&shape, |c, i| {
                let normalized = (x[i] - mean[c]) * inv_std[c];
                xh[i] = normalized;
                o[i] = gamma[c] * normalized + beta[c];
            });
        }
        self.cached = Some((
            x_hat,
            Tensor::from_vec(inv_std, &[self.channels]).expect("channel vector"),
        ));
        out
    }

    fn infer(&self, input: &Tensor, _key_prefix: &str, _engine: &dyn MatmulEngine) -> Tensor {
        self.check_input(input);
        let shape = input.shape().to_vec();
        let x = input.as_slice();
        let mean = self.running_mean.as_slice();
        let inv_std: Vec<f32> = self
            .running_var
            .as_slice()
            .iter()
            .map(|&v| 1.0 / (v + self.eps).sqrt())
            .collect();
        let mut out = Tensor::zeros(&shape);
        {
            let o = out.as_mut_slice();
            let gamma = self.gamma.as_slice();
            let beta = self.beta.as_slice();
            Self::for_each_channel_elem(&shape, |c, i| {
                o[i] = gamma[c] * ((x[i] - mean[c]) * inv_std[c]) + beta[c];
            });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (x_hat, inv_std) = self
            .cached
            .as_ref()
            .expect("batchnorm backward before forward");
        let shape = grad_out.shape().to_vec();
        assert_eq!(x_hat.shape(), &shape[..], "batchnorm grad shape mismatch");
        let count = (shape[0] * shape[2] * shape[3]) as f32;
        let g = grad_out.as_slice();
        let xh = x_hat.as_slice();

        // Per-channel reductions: Σ dy and Σ dy·x̂.
        let mut sum_dy = vec![0.0f32; self.channels];
        let mut sum_dy_xhat = vec![0.0f32; self.channels];
        Self::for_each_channel_elem(&shape, |c, i| {
            sum_dy[c] += g[i];
            sum_dy_xhat[c] += g[i] * xh[i];
        });
        for c in 0..self.channels {
            self.grad_beta.as_mut_slice()[c] += sum_dy[c];
            self.grad_gamma.as_mut_slice()[c] += sum_dy_xhat[c];
        }

        let mut grad_in = Tensor::zeros(&shape);
        {
            let gi = grad_in.as_mut_slice();
            let gamma = self.gamma.as_slice();
            let istd = inv_std.as_slice();
            if self.training {
                // dx = γ/√(σ²+ε) · (dy − mean(dy) − x̂ · mean(dy·x̂))
                Self::for_each_channel_elem(&shape, |c, i| {
                    gi[i] = gamma[c] * istd[c]
                        * (g[i] - sum_dy[c] / count - xh[i] * sum_dy_xhat[c] / count);
                });
            } else {
                // Inference statistics are constants: dx = γ/√(σ²+ε)·dy.
                Self::for_each_channel_elem(&shape, |c, i| {
                    gi[i] = gamma[c] * istd[c] * g[i];
                });
            }
        }
        grad_in
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn param_names(&self) -> Vec<&'static str> {
        // Deliberately NOT `weight`: γ/β live in CMOS periphery and are
        // excluded from conductance-domain fault injection.
        vec!["gamma", "beta"]
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![
            (&mut self.gamma, &mut self.grad_gamma),
            (&mut self.beta, &mut self.grad_beta),
        ]
    }

    fn zero_grads(&mut self) {
        self.grad_gamma.map_inplace(|_| 0.0);
        self.grad_beta.map_inplace(|_| 0.0);
    }

    fn set_training(&mut self, on: bool) {
        self.training = on;
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use healthmon_tensor::SeededRng;

    #[test]
    fn normalizes_per_channel_in_training() {
        let mut rng = SeededRng::new(1);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn(&[4, 3, 5, 5], &mut rng).map(|v| v * 3.0 + 2.0);
        let y = bn.forward(&x);
        // Each channel of the output has ~zero mean, ~unit variance.
        let plane = 25;
        for c in 0..3 {
            let mut vals = Vec::new();
            for n in 0..4 {
                let base = (n * 3 + c) * plane;
                vals.extend_from_slice(&y.as_slice()[base..base + plane]);
            }
            let t = Tensor::from_slice(&vals);
            assert!(t.mean().abs() < 1e-4, "channel {c} mean {}", t.mean());
            assert!((t.std() - 1.0).abs() < 1e-2, "channel {c} std {}", t.std());
        }
    }

    #[test]
    fn gamma_beta_scale_and_shift() {
        let mut rng = SeededRng::new(2);
        let mut bn = BatchNorm2d::new(1);
        bn.gamma.as_mut_slice()[0] = 2.0;
        bn.beta.as_mut_slice()[0] = -1.0;
        let x = Tensor::randn(&[8, 1, 3, 3], &mut rng);
        let y = bn.forward(&x);
        assert!((y.mean() + 1.0).abs() < 1e-4);
        assert!((y.std() - 2.0).abs() < 2e-2);
    }

    #[test]
    fn eval_mode_uses_running_statistics() {
        let mut rng = SeededRng::new(3);
        let mut bn = BatchNorm2d::new(2);
        // Train on shifted data so running stats move.
        for _ in 0..50 {
            let x = Tensor::randn(&[8, 2, 4, 4], &mut rng).map(|v| v + 5.0);
            bn.forward(&x);
        }
        bn.set_training(false);
        // A single eval sample at the training distribution lands near 0.
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng).map(|v| v + 5.0);
        let y = bn.forward(&x);
        assert!(y.mean().abs() < 0.5, "eval-mode mean {}", y.mean());
        // Eval output differs from train-mode output on the same input
        // whenever the batch stats differ from the running stats.
        bn.set_training(true);
        let y_train = bn.forward(&x);
        assert_ne!(y, y_train);
    }

    #[test]
    fn input_gradient_check_training_mode() {
        let mut rng = SeededRng::new(4);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let err = gradcheck::input_gradient_error(&mut bn, &x);
        assert!(err < 2e-2, "batchnorm input grad error {err}");
    }

    #[test]
    fn param_gradient_check() {
        let mut rng = SeededRng::new(5);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let err = gradcheck::param_gradient_error(&mut bn, &x);
        assert!(err < 2e-2, "batchnorm param grad error {err}");
    }

    #[test]
    fn param_names_exclude_conductance_domain() {
        let bn = BatchNorm2d::new(4);
        assert_eq!(bn.param_names(), vec!["gamma", "beta"]);
        // Fault injectors only touch keys ending in `weight`.
        assert!(bn.param_names().iter().all(|n| !n.ends_with("weight")));
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn rejects_wrong_channel_count() {
        BatchNorm2d::new(3).forward(&Tensor::zeros(&[1, 2, 4, 4]));
    }
}
