//! Property-based tests for the NN framework: gradient correctness on
//! randomly-configured layers and training invariants.
//!
//! Run on the deterministic `healthmon-check` harness; a failure at case
//! `N` reproduces with `healthmon_check::run_case(N, ..)`.

use healthmon_check::run_cases;
use healthmon_nn::layers::{Conv2d, Dense, Layer, MaxPool2d, Relu, Tanh};
use healthmon_nn::loss::SoftmaxCrossEntropy;
use healthmon_nn::models::tiny_mlp;
use healthmon_nn::optim::{Adam, Optimizer, Sgd};
use healthmon_nn::Network;
use healthmon_tensor::{SeededRng, Tensor};

const CASES: usize = 16;

/// Finite-difference check of the input gradient for a layer given a
/// sum-of-outputs loss. Returns the max relative error.
fn input_grad_error(layer: &mut dyn Layer, input: &Tensor) -> f32 {
    let out = layer.forward(input);
    let ones = Tensor::ones(out.shape());
    let analytic = layer.backward(&ones);
    let eps = 1e-2f32;
    let mut max_err = 0.0f32;
    for i in 0..input.len() {
        let mut xp = input.clone();
        xp.as_mut_slice()[i] += eps;
        let mut xm = input.clone();
        xm.as_mut_slice()[i] -= eps;
        let numeric = (layer.forward(&xp).sum() - layer.forward(&xm).sum()) / (2.0 * eps);
        let a = analytic.as_slice()[i];
        let denom = 1.0f32.max(a.abs()).max(numeric.abs());
        max_err = max_err.max((a - numeric).abs() / denom);
    }
    max_err
}

#[test]
fn dense_input_gradients_correct() {
    run_cases(CASES, |g| {
        let mut rng = SeededRng::new(g.seed());
        let inputs = g.usize_in(1, 8);
        let outputs = g.usize_in(1, 8);
        let batch = g.usize_in(1, 4);
        let mut layer = Dense::new(inputs, outputs, &mut rng);
        let x = Tensor::randn(&[batch, inputs], &mut rng);
        assert!(input_grad_error(&mut layer, &x) < 2e-2);
    });
}

#[test]
fn conv_input_gradients_correct() {
    run_cases(CASES, |g| {
        let mut rng = SeededRng::new(g.seed());
        let channels = g.usize_in(1, 3);
        let filters = g.usize_in(1, 3);
        let pad = g.usize_in(0, 2);
        let mut layer = Conv2d::new(channels, filters, 3, 1, pad, &mut rng);
        let x = Tensor::randn(&[1, channels, 5, 5], &mut rng);
        assert!(input_grad_error(&mut layer, &x) < 2e-2);
    });
}

#[test]
fn smooth_activation_gradients_correct() {
    run_cases(CASES, |g| {
        let mut rng = SeededRng::new(g.seed());
        let batch = g.usize_in(1, 4);
        // Tanh is smooth everywhere, so finite differences are reliable
        // at any input (unlike ReLU's kink).
        let x = Tensor::randn(&[batch, 6], &mut rng);
        let mut layer = Tanh::new();
        assert!(input_grad_error(&mut layer, &x) < 2e-2);
    });
}

#[test]
fn maxpool_routes_gradient_to_argmax() {
    run_cases(CASES, |g| {
        let mut rng = SeededRng::new(g.seed());
        // Well-separated values keep the argmax stable.
        let mut x = Tensor::randn(&[1, 1, 4, 4], &mut rng);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v += i as f32;
        }
        let mut pool = MaxPool2d::new(2, 2);
        let y = pool.forward(&x);
        let grad = pool.backward(&Tensor::ones(y.shape()));
        // Exactly one gradient entry per pooling window.
        let nonzero = grad.as_slice().iter().filter(|&&v| v != 0.0).count();
        assert_eq!(nonzero, y.len());
        assert!((grad.sum() - y.len() as f32).abs() < 1e-5);
    });
}

#[test]
fn relu_gradient_is_input_mask() {
    run_cases(CASES, |g| {
        let mut rng = SeededRng::new(g.seed());
        let n = g.usize_in(1, 32);
        let x = Tensor::randn(&[1, n], &mut rng);
        let mut relu = Relu::new();
        relu.forward(&x);
        let grad = relu.backward(&Tensor::ones(&[1, n]));
        for (xv, gv) in x.as_slice().iter().zip(grad.as_slice()) {
            assert_eq!(*gv != 0.0, *xv > 0.0);
        }
    });
}

#[test]
fn sgd_step_moves_against_gradient() {
    run_cases(CASES, |g| {
        let mut rng = SeededRng::new(g.seed());
        let mut net = tiny_mlp(4, 8, 3, &mut rng);
        let x = Tensor::randn(&[4, 4], &mut rng);
        let labels = [0usize, 1, 2, 0];
        let before = SoftmaxCrossEntropy::with_labels(&net.forward(&x), &labels).loss;
        let mut opt = Sgd::new(0.05);
        for _ in 0..5 {
            net.zero_grads();
            let out = SoftmaxCrossEntropy::with_labels(&net.forward(&x), &labels);
            net.backward(&out.grad);
            opt.step(&mut net);
        }
        let after = SoftmaxCrossEntropy::with_labels(&net.forward(&x), &labels).loss;
        assert!(after <= before + 1e-4, "loss rose: {before} -> {after}");
    });
}

#[test]
fn adam_and_sgd_are_deterministic() {
    run_cases(CASES, |g| {
        let seed = g.seed();
        let run = |use_adam: bool| -> Vec<(String, Tensor)> {
            let mut rng = SeededRng::new(seed);
            let mut net = tiny_mlp(4, 6, 3, &mut rng);
            let x = Tensor::randn(&[4, 4], &mut rng);
            let labels = [0usize, 1, 2, 0];
            let mut sgd = Sgd::new(0.05);
            let mut adam = Adam::new(0.05);
            for _ in 0..3 {
                net.zero_grads();
                let out = SoftmaxCrossEntropy::with_labels(&net.forward(&x), &labels);
                net.backward(&out.grad);
                if use_adam {
                    adam.step(&mut net);
                } else {
                    sgd.step(&mut net);
                }
            }
            net.state_dict()
        };
        assert_eq!(run(false), run(false));
        assert_eq!(run(true), run(true));
    });
}

#[test]
fn state_dict_round_trip_preserves_outputs() {
    run_cases(CASES, |g| {
        let seed = g.seed();
        let mut rng = SeededRng::new(seed);
        let src = tiny_mlp(5, 7, 4, &mut rng);
        let mut dst = tiny_mlp(5, 7, 4, &mut SeededRng::new(seed ^ 0xFFFF));
        dst.load_state_dict(&src.state_dict()).unwrap();
        let x = Tensor::randn(&[2, 5], &mut rng);
        let mut src = src;
        assert_eq!(src.forward(&x), dst.forward(&x));
    });
}

#[test]
fn loss_gradient_rows_sum_to_zero() {
    run_cases(CASES, |g| {
        // softmax(z) - onehot sums to 0 across classes for each sample.
        let mut rng = SeededRng::new(g.seed());
        let classes = g.usize_in(2, 8);
        let logits = Tensor::randn(&[3, classes], &mut rng);
        let labels: Vec<usize> = (0..3).map(|i| i % classes).collect();
        let out = SoftmaxCrossEntropy::with_labels(&logits, &labels);
        for row in 0..3 {
            assert!(out.grad.row(row).sum().abs() < 1e-5);
        }
    });
}

#[test]
fn network_forward_is_pure() {
    run_cases(CASES, |g| {
        let mut rng = SeededRng::new(g.seed());
        let mut net: Network = tiny_mlp(4, 8, 3, &mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let a = net.forward(&x);
        let b = net.forward(&x);
        assert_eq!(a, b);
    });
}
