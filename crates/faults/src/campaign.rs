//! Fault campaigns: statistical fleets of fault models derived from one
//! golden network.
//!
//! The paper reports detection rates averaged over 100 fault models per
//! error level; [`FaultCampaign`] reproduces that protocol with exact
//! per-index determinism, and [`par_map_models`] fans evaluation out
//! across threads.

use crate::FaultModel;
use healthmon_nn::Network;
use healthmon_tensor::SeededRng;

/// A generator of faulty copies of a golden network.
///
/// Fault model `i` of a campaign is always identical for the same
/// `(golden weights, campaign seed, fault spec, i)` regardless of how many
/// other models were generated or in what order — each index derives its
/// own RNG stream.
#[derive(Debug, Clone)]
pub struct FaultCampaign<'a> {
    golden: &'a Network,
    seed: u64,
}

impl<'a> FaultCampaign<'a> {
    /// Creates a campaign over `golden` with the given seed.
    pub fn new(golden: &'a Network, seed: u64) -> Self {
        FaultCampaign { golden, seed }
    }

    /// The campaign seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The RNG stream for fault-model `index`.
    fn stream(&self, index: usize) -> SeededRng {
        SeededRng::new(self.seed).fork(index as u64)
    }

    /// Builds fault model `index`: a clone of the golden network with
    /// `fault` applied under the index's own RNG stream.
    pub fn model(&self, fault: &FaultModel, index: usize) -> Network {
        let mut net = self.golden.clone();
        let mut rng = self.stream(index);
        fault.apply(&mut net, &mut rng);
        net
    }

    /// Iterates over the first `count` fault models.
    pub fn models<'b>(
        &'b self,
        fault: &'b FaultModel,
        count: usize,
    ) -> impl Iterator<Item = Network> + 'b {
        (0..count).map(move |i| self.model(fault, i))
    }
}

/// Evaluates `f` on `count` fault models in parallel, returning results in
/// index order.
///
/// `f` receives the fault-model index and a mutable reference to that
/// index's faulty network (mutable because inference through
/// [`Network::forward`] caches activations).
///
/// Determinism matches [`FaultCampaign::model`]: the result for index `i`
/// does not depend on thread count.
pub fn par_map_models<T, F>(
    golden: &Network,
    fault: &FaultModel,
    seed: u64,
    count: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Network) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(count.max(1));
    let campaign = FaultCampaign::new(golden, seed);
    let mut results: Vec<Option<T>> = (0..count).map(|_| None).collect();
    if threads <= 1 {
        for (i, slot) in results.iter_mut().enumerate() {
            let mut net = campaign.model(fault, i);
            *slot = Some(f(i, &mut net));
        }
    } else {
        let chunk = count.div_ceil(threads);
        std::thread::scope(|s| {
            for (t, slots) in results.chunks_mut(chunk).enumerate() {
                let campaign = &campaign;
                let f = &f;
                let fault = &*fault;
                s.spawn(move || {
                    for (j, slot) in slots.iter_mut().enumerate() {
                        let i = t * chunk + j;
                        let mut net = campaign.model(fault, i);
                        *slot = Some(f(i, &mut net));
                    }
                });
            }
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("every index was evaluated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_nn::models::tiny_mlp;
    use healthmon_tensor::Tensor;

    fn golden() -> Network {
        let mut rng = SeededRng::new(1);
        tiny_mlp(4, 8, 3, &mut rng)
    }

    fn weights(net: &Network) -> Vec<f32> {
        let mut v = Vec::new();
        net.for_each_param(|_, t| v.extend_from_slice(t.as_slice()));
        v
    }

    #[test]
    fn model_index_is_deterministic() {
        let g = golden();
        let c = FaultCampaign::new(&g, 5);
        let fault = FaultModel::ProgrammingVariation { sigma: 0.2 };
        let a = c.model(&fault, 3);
        let b = c.model(&fault, 3);
        assert_eq!(weights(&a), weights(&b));
    }

    #[test]
    fn different_indices_differ() {
        let g = golden();
        let c = FaultCampaign::new(&g, 5);
        let fault = FaultModel::ProgrammingVariation { sigma: 0.2 };
        assert_ne!(weights(&c.model(&fault, 0)), weights(&c.model(&fault, 1)));
    }

    #[test]
    fn different_seeds_differ() {
        let g = golden();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.2 };
        let a = FaultCampaign::new(&g, 1).model(&fault, 0);
        let b = FaultCampaign::new(&g, 2).model(&fault, 0);
        assert_ne!(weights(&a), weights(&b));
    }

    #[test]
    fn golden_model_unchanged_by_campaign() {
        let g = golden();
        let before = weights(&g);
        let c = FaultCampaign::new(&g, 5);
        let _ = c
            .models(&FaultModel::RandomSoftError { probability: 0.5 }, 4)
            .collect::<Vec<_>>();
        assert_eq!(before, weights(&g));
    }

    #[test]
    fn par_map_matches_sequential() {
        let g = golden();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.3 };
        let x = Tensor::ones(&[4]);
        let seq: Vec<f32> = FaultCampaign::new(&g, 9)
            .models(&fault, 8)
            .map(|mut net| net.forward_single(&x).sum())
            .collect();
        let par = par_map_models(&g, &fault, 9, 8, |_, net| net.forward_single(&x).sum());
        assert_eq!(seq, par);
    }

    #[test]
    fn par_map_preserves_index_order() {
        let g = golden();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.1 };
        let idx = par_map_models(&g, &fault, 0, 13, |i, _| i);
        assert_eq!(idx, (0..13).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_zero_count_is_empty() {
        let g = golden();
        let fault = FaultModel::ProgrammingVariation { sigma: 0.1 };
        let out: Vec<usize> = par_map_models(&g, &fault, 0, 0, |i, _| i);
        assert!(out.is_empty());
    }
}
