//! Spatial pooling layers over `[N, C, H, W]` feature maps.

use super::{Layer, MatmulEngine};
use healthmon_tensor::Tensor;

fn pooled_extent(input: usize, kernel: usize, stride: usize) -> usize {
    assert!(input >= kernel, "pool kernel {kernel} larger than input extent {input}");
    (input - kernel) / stride + 1
}

/// 2-D max pooling.
///
/// # Example
///
/// ```
/// use healthmon_nn::layers::{Layer, MaxPool2d};
/// use healthmon_tensor::Tensor;
///
/// let mut pool = MaxPool2d::new(2, 2);
/// let y = pool.forward(&Tensor::zeros(&[1, 3, 8, 8]));
/// assert_eq!(y.shape(), &[1, 3, 4, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    cached_input_shape: Option<Vec<usize>>,
    /// Linear index (into the input buffer) of each output's winner.
    cached_argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with square kernel and stride.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "pool kernel/stride must be non-zero");
        MaxPool2d { kernel, stride, cached_input_shape: None, cached_argmax: Vec::new() }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 4, "maxpool expects [N,C,H,W], got {:?}", input.shape());
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let oh = pooled_extent(h, self.kernel, self.stride);
        let ow = pooled_extent(w, self.kernel, self.stride);
        let x = input.as_slice();
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        self.cached_argmax = vec![0usize; n * c * oh * ow];
        let o = out.as_mut_slice();
        let mut oi = 0usize;
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * h * w;
                for ph in 0..oh {
                    for pw in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for kh in 0..self.kernel {
                            let row = plane + (ph * self.stride + kh) * w + pw * self.stride;
                            for kw in 0..self.kernel {
                                let v = x[row + kw];
                                if v > best {
                                    best = v;
                                    best_idx = row + kw;
                                }
                            }
                        }
                        o[oi] = best;
                        self.cached_argmax[oi] = best_idx;
                        oi += 1;
                    }
                }
            }
        }
        self.cached_input_shape = Some(input.shape().to_vec());
        out
    }

    fn infer(&self, input: &Tensor, _key_prefix: &str, _engine: &dyn MatmulEngine) -> Tensor {
        assert_eq!(input.ndim(), 4, "maxpool expects [N,C,H,W], got {:?}", input.shape());
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let oh = pooled_extent(h, self.kernel, self.stride);
        let ow = pooled_extent(w, self.kernel, self.stride);
        let x = input.as_slice();
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let o = out.as_mut_slice();
        let mut oi = 0usize;
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * h * w;
                for ph in 0..oh {
                    for pw in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for kh in 0..self.kernel {
                            let row = plane + (ph * self.stride + kh) * w + pw * self.stride;
                            for kw in 0..self.kernel {
                                let v = x[row + kw];
                                if v > best {
                                    best = v;
                                }
                            }
                        }
                        o[oi] = best;
                        oi += 1;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_input_shape
            .as_ref()
            .expect("maxpool backward before forward");
        assert_eq!(grad_out.len(), self.cached_argmax.len(), "maxpool grad shape mismatch");
        let mut grad_in = Tensor::zeros(shape);
        let gi = grad_in.as_mut_slice();
        for (g, &idx) in grad_out.as_slice().iter().zip(&self.cached_argmax) {
            gi[idx] += g;
        }
        grad_in
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// 2-D average pooling.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
    cached_input_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with square kernel and stride.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "pool kernel/stride must be non-zero");
        AvgPool2d { kernel, stride, cached_input_shape: None }
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> &'static str {
        "avgpool2d"
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 4, "avgpool expects [N,C,H,W], got {:?}", input.shape());
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let oh = pooled_extent(h, self.kernel, self.stride);
        let ow = pooled_extent(w, self.kernel, self.stride);
        let x = input.as_slice();
        let inv_area = 1.0 / (self.kernel * self.kernel) as f32;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let o = out.as_mut_slice();
        let mut oi = 0usize;
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * h * w;
                for ph in 0..oh {
                    for pw in 0..ow {
                        let mut acc = 0.0f32;
                        for kh in 0..self.kernel {
                            let row = plane + (ph * self.stride + kh) * w + pw * self.stride;
                            for kw in 0..self.kernel {
                                acc += x[row + kw];
                            }
                        }
                        o[oi] = acc * inv_area;
                        oi += 1;
                    }
                }
            }
        }
        self.cached_input_shape = Some(input.shape().to_vec());
        out
    }

    fn infer(&self, input: &Tensor, _key_prefix: &str, _engine: &dyn MatmulEngine) -> Tensor {
        assert_eq!(input.ndim(), 4, "avgpool expects [N,C,H,W], got {:?}", input.shape());
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let oh = pooled_extent(h, self.kernel, self.stride);
        let ow = pooled_extent(w, self.kernel, self.stride);
        let x = input.as_slice();
        let inv_area = 1.0 / (self.kernel * self.kernel) as f32;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let o = out.as_mut_slice();
        let mut oi = 0usize;
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * h * w;
                for ph in 0..oh {
                    for pw in 0..ow {
                        let mut acc = 0.0f32;
                        for kh in 0..self.kernel {
                            let row = plane + (ph * self.stride + kh) * w + pw * self.stride;
                            for kw in 0..self.kernel {
                                acc += x[row + kw];
                            }
                        }
                        o[oi] = acc * inv_area;
                        oi += 1;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_input_shape
            .as_ref()
            .expect("avgpool backward before forward")
            .clone();
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let oh = pooled_extent(h, self.kernel, self.stride);
        let ow = pooled_extent(w, self.kernel, self.stride);
        let inv_area = 1.0 / (self.kernel * self.kernel) as f32;
        let mut grad_in = Tensor::zeros(&shape);
        let gi = grad_in.as_mut_slice();
        let g = grad_out.as_slice();
        let mut oi = 0usize;
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * h * w;
                for ph in 0..oh {
                    for pw in 0..ow {
                        let share = g[oi] * inv_area;
                        for kh in 0..self.kernel {
                            let row = plane + (ph * self.stride + kh) * w + pw * self.stride;
                            for kw in 0..self.kernel {
                                gi[row + kw] += share;
                            }
                        }
                        oi += 1;
                    }
                }
            }
        }
        grad_in
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use healthmon_tensor::SeededRng;

    #[test]
    fn maxpool_hand_example() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_winner() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        pool.forward(&x);
        let g = pool.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap());
        assert_eq!(g.as_slice(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn avgpool_hand_example() {
        let mut pool = AvgPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = pool.forward(&x);
        assert_eq!(y.as_slice(), &[2.5]);
        let g = pool.backward(&Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]).unwrap());
        assert_eq!(g.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn maxpool_gradient_check() {
        let mut rng = SeededRng::new(6);
        // Distinct values so the argmax is stable under the FD epsilon.
        let mut x = Tensor::randn(&[2, 2, 4, 4], &mut rng);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v += (i as f32) * 0.1;
        }
        let mut pool = MaxPool2d::new(2, 2);
        let err = gradcheck::input_gradient_error(&mut pool, &x);
        assert!(err < 1e-2, "maxpool grad error {err}");
    }

    #[test]
    fn avgpool_gradient_check() {
        let mut rng = SeededRng::new(7);
        let x = Tensor::randn(&[2, 3, 4, 4], &mut rng);
        let mut pool = AvgPool2d::new(2, 2);
        let err = gradcheck::input_gradient_error(&mut pool, &x);
        assert!(err < 1e-2, "avgpool grad error {err}");
    }

    #[test]
    fn stride_one_overlapping_windows() {
        let mut pool = MaxPool2d::new(2, 1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], &[1, 1, 3, 3])
            .unwrap();
        let y = pool.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn rejects_kernel_larger_than_input() {
        MaxPool2d::new(3, 1).forward(&Tensor::zeros(&[1, 1, 2, 2]));
    }
}
