//! First-order IR-drop model for crossbar wire parasitics.
//!
//! Large crossbars suffer voltage degradation along word lines and
//! current-collection loss along bit lines: a cell far from the drivers
//! sees less than the full input voltage, so its effective contribution
//! shrinks. This module implements the widely-used first-order analytical
//! approximation (cf. the calibration literature the paper cites, e.g.
//! Li et al., DATE'14 "ICE"): the effective conductance of cell `(i, j)`
//! is attenuated by a factor
//!
//! ```text
//! a(i, j) = 1 / (1 + r_wire · g_avg · (i + j))
//! ```
//!
//! where `i + j` is the Manhattan distance from the driver corner,
//! `r_wire` the per-segment wire resistance and `g_avg` the mean
//! programmed conductance (the loading of the line). Setting
//! `r_wire = 0` recovers the ideal array. The model is deliberately
//! closed-form: it captures the qualitative position dependence that
//! makes IR drop a *systematic, position-correlated* weight error —
//! distinct from the i.i.d. error models of `healthmon-faults` — at a
//! cost compatible with campaign-scale simulation.

use healthmon_tensor::Tensor;

/// First-order IR-drop attenuation model.
///
/// # Example
///
/// ```
/// use healthmon_reram::IrDropModel;
/// use healthmon_tensor::Tensor;
///
/// let model = IrDropModel::new(0.002);
/// let g = Tensor::ones(&[64, 64]);
/// let attenuated = model.attenuate(&g);
/// // The far corner is attenuated the most.
/// assert!(attenuated.at(&[63, 63]) < attenuated.at(&[0, 0]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrDropModel {
    /// Normalized per-segment wire resistance (`r_wire · g_unit`).
    r_wire: f32,
}

impl IrDropModel {
    /// Creates a model with the given normalized per-segment wire
    /// resistance. Typical normalized values for 128×128 arrays are in
    /// `1e-4 … 1e-2`; 0 disables the effect.
    ///
    /// # Panics
    ///
    /// Panics if `r_wire` is negative or not finite.
    pub fn new(r_wire: f32) -> Self {
        assert!(r_wire >= 0.0 && r_wire.is_finite(), "invalid wire resistance {r_wire}");
        IrDropModel { r_wire }
    }

    /// The normalized wire resistance.
    pub fn r_wire(&self) -> f32 {
        self.r_wire
    }

    /// Attenuation factor of cell `(row, col)` for an array whose mean
    /// conductance is `g_avg`.
    pub fn factor(&self, row: usize, col: usize, g_avg: f32) -> f32 {
        1.0 / (1.0 + self.r_wire * g_avg * (row + col) as f32)
    }

    /// Mean attenuation factor of the cells `(r0..r1, col)` — the
    /// row-block granularity the integer crossbar path applies drop at:
    /// one factor per (row block, bit line) scales the block's `i32`
    /// partial sum instead of attenuating every cell individually.
    ///
    /// # Panics
    ///
    /// Panics if the row range is empty.
    pub fn mean_factor(&self, r0: usize, r1: usize, col: usize, g_avg: f32) -> f32 {
        assert!(r0 < r1, "empty row block [{r0}, {r1})");
        let sum: f32 = (r0..r1).map(|r| self.factor(r, col, g_avg)).sum();
        sum / (r1 - r0) as f32
    }

    /// Applies position-dependent attenuation to a conductance (or
    /// effective-weight) matrix, returning the array the analog
    /// computation actually realizes.
    ///
    /// # Panics
    ///
    /// Panics if `conductances` is not 2-D.
    pub fn attenuate(&self, conductances: &Tensor) -> Tensor {
        assert_eq!(conductances.ndim(), 2, "IR drop applies to 2-D arrays");
        if self.r_wire == 0.0 {
            return conductances.clone();
        }
        let (rows, cols) = (conductances.shape()[0], conductances.shape()[1]);
        let g_avg = conductances
            .as_slice()
            .iter()
            .map(|v| v.abs())
            .sum::<f32>()
            / conductances.len() as f32;
        let mut out = conductances.clone();
        let data = out.as_mut_slice();
        for r in 0..rows {
            for c in 0..cols {
                data[r * cols + c] *= self.factor(r, c, g_avg);
            }
        }
        out
    }

    /// Worst-case attenuation (the far corner) for an array of the given
    /// geometry and mean conductance — a quick feasibility check when
    /// choosing tile sizes.
    pub fn worst_case(&self, rows: usize, cols: usize, g_avg: f32) -> f32 {
        self.factor(rows.saturating_sub(1), cols.saturating_sub(1), g_avg)
    }
}

impl Default for IrDropModel {
    /// A mild default (`r_wire = 1e-3`) representative of 128×128 arrays.
    fn default() -> Self {
        IrDropModel { r_wire: 1e-3 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use healthmon_tensor::SeededRng;

    #[test]
    fn zero_resistance_is_identity() {
        let mut rng = SeededRng::new(1);
        let g = Tensor::randn(&[8, 8], &mut rng);
        assert_eq!(IrDropModel::new(0.0).attenuate(&g), g);
    }

    #[test]
    fn attenuation_monotone_in_distance() {
        let model = IrDropModel::new(0.01);
        let g_avg = 0.5;
        let mut prev = f32::INFINITY;
        for d in 0..20 {
            let f = model.factor(d, 0, g_avg);
            assert!(f < prev, "factor must decrease with distance");
            assert!(f > 0.0 && f <= 1.0);
            prev = f;
        }
    }

    #[test]
    fn near_corner_nearly_ideal() {
        let model = IrDropModel::new(0.005);
        assert_eq!(model.factor(0, 0, 1.0), 1.0);
    }

    #[test]
    fn mean_factor_brackets_block_extremes() {
        let model = IrDropModel::new(0.01);
        let g_avg = 0.5;
        let mean = model.mean_factor(8, 16, 3, g_avg);
        assert!(mean < model.factor(8, 3, g_avg));
        assert!(mean > model.factor(15, 3, g_avg));
        // A one-row block is exactly that row's factor.
        assert_eq!(model.mean_factor(4, 5, 2, g_avg), model.factor(4, 2, g_avg));
    }

    #[test]
    fn larger_arrays_suffer_more() {
        let model = IrDropModel::default();
        let small = model.worst_case(32, 32, 0.5);
        let large = model.worst_case(256, 256, 0.5);
        assert!(large < small);
    }

    #[test]
    fn attenuate_shrinks_magnitudes_only() {
        let mut rng = SeededRng::new(2);
        let g = Tensor::randn(&[16, 16], &mut rng);
        let out = IrDropModel::new(0.01).attenuate(&g);
        for (a, b) in g.as_slice().iter().zip(out.as_slice()) {
            assert!(b.abs() <= a.abs() + 1e-7, "attenuation must not amplify");
            assert_eq!(a.signum(), b.signum());
        }
    }

    #[test]
    fn higher_resistance_attenuates_more() {
        let g = Tensor::ones(&[32, 32]);
        let mild = IrDropModel::new(1e-4).attenuate(&g);
        let harsh = IrDropModel::new(1e-2).attenuate(&g);
        assert!(harsh.sum() < mild.sum());
    }

    #[test]
    #[should_panic(expected = "invalid wire resistance")]
    fn rejects_negative_resistance() {
        IrDropModel::new(-0.1);
    }
}
