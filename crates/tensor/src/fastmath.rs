//! Fast, branchless approximations of the transcendentals the bulk
//! stochastic samplers need.
//!
//! The fault models draw one lognormal/normal variate *per weight*, so a
//! 40-model campaign over even a small MLP evaluates `exp`/`ln`/`sin`/`cos`
//! millions of times. libm calls are precise to 0.5 ulp but cost an
//! out-of-line call each and cannot be vectorized by the compiler. The
//! routines here trade that last digit of precision (relative error is
//! bounded around `1e-6`, far below the σ-level noise the error models
//! inject) for straight-line polynomial code that LLVM auto-vectorizes
//! inside the block samplers of [`crate::SeededRng`].
//!
//! All functions are total over the documented domains: inputs are clamped
//! or reduced before the polynomial step, so no input produces NaN or a
//! spurious overflow. Rounding to the nearest integer uses the `2^23`
//! magic-number trick instead of `round()`/`floor()` so the code stays
//! branchless and vectorizable on baseline x86-64 (no SSE4.1 `roundps`
//! needed).

/// Adding and subtracting `2^23` rounds an `f32` of magnitude `< 2^22`
/// to the nearest integer (ties to even) using the FPU's own rounding.
const ROUND_MAGIC: f32 = 12_582_912.0; // 1.5 * 2^23

/// Integral `f32` in `[-32768, 32767]` → `i32`, read straight out of the
/// magic-add mantissa (biased by 2¹⁵ so negatives park above the magic
/// constant too). Bit-for-bit equal to `as i32` on that domain, but
/// add/and/sub ops the vectorizer handles — the saturating float→int
/// `as` cast lowers to serial scalar code and de-vectorizes every loop
/// it appears in.
#[inline(always)]
fn integral_to_i32(v: f32) -> i32 {
    const BIASED_MAGIC: f32 = 12_582_912.0 + 32_768.0;
    ((v + BIASED_MAGIC).to_bits() & 0x3F_FFFF) as i32 - 32_768
}

/// `e^x`, clamped to `x ∈ [-87, 88]` (beyond which f32 under/overflows).
///
/// Decomposes `x = k·ln2 + r` with `|r| ≤ ln2/2`, evaluates a degree-5
/// Taylor polynomial for `2^(r/ln2)` and applies `2^k` by exponent-field
/// arithmetic. Relative error ≲ 3e-6 across the clamped domain, and the
/// result is always positive and finite.
#[inline(always)]
pub fn exp(x: f32) -> f32 {
    let x = x.clamp(-87.0, 88.0);
    let z = x * std::f32::consts::LOG2_E;
    let kf = (z + ROUND_MAGIC) - ROUND_MAGIC; // nearest integer to z
    let r = (z - kf) * std::f32::consts::LN_2; // |r| <= ln2/2
    // Taylor for e^r around 0; |r| <= 0.347 keeps the tail below 3e-6.
    let p = 1.0
        + r * (1.0
            + r * (0.5
                + r * (1.6666667e-1 + r * (4.1666668e-2 + r * (8.333334e-3 + r * 1.3888889e-3)))));
    let scale = f32::from_bits(((integral_to_i32(kf) + 127) as u32) << 23);
    p * scale
}

/// `ln(x)` for strictly-positive, finite, normal `x`.
///
/// Splits `x = m·2^e` with `m ∈ [√2/2, √2)` and evaluates the Cephes
/// `logf` polynomial on `t = m − 1`. Not meaningful for zero, negative,
/// subnormal, or non-finite inputs (the samplers never produce them).
#[inline(always)]
pub fn ln(x: f32) -> f32 {
    let bits = x.to_bits() as i32;
    let mut e = ((bits >> 23) - 127) as f32;
    let mut m = f32::from_bits(((bits & 0x007F_FFFF) as u32) | 0x3F80_0000); // [1, 2)
    // Shift mantissas above sqrt(2) down one octave so t stays small.
    let shift = (m >= std::f32::consts::SQRT_2) as u32 as f32;
    m *= 1.0 - 0.5 * shift;
    e += shift;
    let t = m - 1.0;
    let z = t * t;
    // Cephes logf minimax polynomial for ln(1 + t), t in [sqrt2/2-1, sqrt2-1].
    let mut p = 7.037_683_6e-2;
    p = p * t - 1.151_461e-1;
    p = p * t + 1.167_699_9e-1;
    p = p * t - 1.242_014_1e-1;
    p = p * t + 1.424_932_3e-1;
    p = p * t - 1.666_805_7e-1;
    p = p * t + 2.000_071_5e-1;
    p = p * t - 2.499_999_4e-1;
    p = p * t + 3.333_333e-1;
    let y = t * z * p - 0.5 * z + t;
    y + e * std::f32::consts::LN_2
}

/// `(sin 2πt, cos 2πt)` for `t ∈ [0, 1)`.
///
/// Works in half-turn units (`x = 2t` so the angle is `πx`), reduces to
/// the nearest half-turn and evaluates Taylor polynomials of `sin πr` /
/// `cos πr` on `|r| ≤ ½`. Absolute error ≲ 3e-6.
#[inline(always)]
pub fn sincos_2pi(t: f32) -> (f32, f32) {
    let x = 2.0 * t; // angle in units of pi, [0, 2)
    let kf = (x + ROUND_MAGIC) - ROUND_MAGIC; // nearest half-turn
    let r = x - kf; // [-1/2, 1/2]
    let r2 = r * r;
    // sin(pi r) = r * (pi - pi^3/3! r^2 + pi^5/5! r^4 - pi^7/7! r^6 + pi^9/9! r^8)
    let s = r
        * (std::f32::consts::PI
            + r2 * (-5.167_712
                + r2 * (2.550_164_2 + r2 * (-0.599_264_1 + r2 * 8.214_588_6e-2))));
    // cos(pi r) = 1 - pi^2/2! r^2 + pi^4/4! r^4 - pi^6/6! r^6 + pi^8/8! r^8 - pi^10/10! r^10
    let c = 1.0
        + r2 * (-4.934_802
            + r2 * (4.058_712 + r2 * (-1.335_262_7 + r2 * (0.235_330_6 - r2 * 2.580_689e-2))));
    // Odd half-turns flip both signs: sin(pi r + pi k) = (-1)^k sin(pi r).
    let flip = ((integral_to_i32(kf) & 1) as u32) << 31;
    (
        f32::from_bits(s.to_bits() ^ flip),
        f32::from_bits(c.to_bits() ^ flip),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_matches_libm() {
        let mut worst = 0.0f32;
        let mut x = -86.0f32;
        while x <= 87.0 {
            let want = x.exp();
            let got = exp(x);
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
            x += 0.0137;
        }
        assert!(worst < 1e-5, "exp relative error {worst}");
    }

    #[test]
    fn exp_is_total_and_positive() {
        for x in [-1e30f32, -87.0, 0.0, 88.0, 1e30] {
            let v = exp(x);
            assert!(v.is_finite() && v > 0.0, "exp({x}) = {v}");
        }
        assert_eq!(exp(0.0), 1.0);
    }

    #[test]
    fn ln_matches_libm() {
        let mut worst = 0.0f32;
        let mut x = 1e-24f32;
        while x < 1e6 {
            let want = x.ln();
            let got = ln(x);
            let err = if want.abs() > 1.0 { ((got - want) / want).abs() } else { (got - want).abs() };
            worst = worst.max(err);
            x *= 1.0173;
        }
        assert!(worst < 1e-5, "ln error {worst}");
        assert_eq!(ln(1.0), 0.0);
    }

    #[test]
    fn sincos_matches_libm() {
        let mut worst = 0.0f32;
        let mut t = 0.0f32;
        while t < 1.0 {
            let (s, c) = sincos_2pi(t);
            let angle = 2.0 * std::f64::consts::PI * t as f64;
            worst = worst.max((s as f64 - angle.sin()).abs() as f32);
            worst = worst.max((c as f64 - angle.cos()).abs() as f32);
            t += 1.9073e-4; // ~5000 points
        }
        assert!(worst < 5e-6, "sincos absolute error {worst}");
    }

    #[test]
    fn sincos_unit_circle() {
        let mut t = 0.0f32;
        while t < 1.0 {
            let (s, c) = sincos_2pi(t);
            let norm = s * s + c * c;
            assert!((norm - 1.0).abs() < 1e-5, "s^2+c^2 = {norm} at t = {t}");
            t += 0.001;
        }
    }
}
